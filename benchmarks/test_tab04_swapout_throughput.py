"""Table 4: swap-out throughput with and without adaptive allocation.

Paper (natives co-running with Spark): isolation lifts swap-out
throughput 1.67x over Linux 5.5 and adaptive allocation adds another
1.51x (98 → 164 → 295 KPages/s for the Spark apps; 185 → 309 → 468
overall).
"""

from _common import NATIVES, config, print_header, run_cached
from repro.metrics import format_table

GROUP = NATIVES + ["spark_lr"]


def _swapout_rate_kpps(result, names):
    total = 0.0
    for name in names:
        meter = result.telemetry.swapout_rate(name)
        elapsed = result.apps[name].completion_time_us or result.elapsed_us
        total += meter.mean_rate_per_second(elapsed)
    return total / 1000.0


def _run():
    linux = run_cached(GROUP, config("linux"))
    without = run_cached(GROUP, config("canvas", adaptive_allocation=False))
    with_adaptive = run_cached(GROUP, config("canvas"))
    rows = {}
    for label, result in (
        ("linux", linux),
        ("canvas w/o adaptive", without),
        ("canvas w/ adaptive", with_adaptive),
    ):
        rows[label] = (
            _swapout_rate_kpps(result, ["spark_lr"]),
            _swapout_rate_kpps(result, GROUP),
        )
    return rows


def test_tab04_swapout_throughput(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)

    print_header("Table 4: swap-out throughput (KPages/s)")
    table = [
        [label, spark, overall] for label, (spark, overall) in rows.items()
    ]
    print(format_table(["system", "Spark app", "all apps"], table))
    print("paper: Spark 98 / 164 / 295; all 185 / 309 / 468")

    linux_all = rows["linux"][1]
    iso_all = rows["canvas w/o adaptive"][1]
    adaptive_all = rows["canvas w/ adaptive"][1]
    # Shape: each layer increases aggregate swap-out throughput.
    assert iso_all > linux_all
    assert adaptive_all > iso_all * 0.95
    assert adaptive_all > linux_all * 1.2
