"""Figure 3: Leap's prefetching contribution, individually vs co-running.

Paper: the percentage of page faults served by Leap-prefetched pages
drops dramatically when applications co-run, because Leap's majority
vote runs over one shared fault window that interleaved applications
pollute (e.g. co-running Spark with natives cuts Leap's contribution
~3.19x).
"""

from _common import NATIVES, config, print_header, run_cached
from repro.metrics import format_table

SOLO_APPS = ["spark_lr", "spark_km", "cassandra", "neo4j", "xgboost", "snappy"]
CORUN_GROUPS = {
    "natives+spark_lr": NATIVES + ["spark_lr"],
    "natives+spark_km": NATIVES + ["spark_km"],
    "natives+cassandra": NATIVES + ["cassandra"],
}


def _run():
    leap = config("linux", prefetcher="leap", bandwidth_scale=1.0)
    solo_contrib = {}
    for name in SOLO_APPS:
        result = run_cached([name], leap)
        solo_contrib[name] = result.results[name].prefetch_contribution
    corun_contrib = {}
    for label, group in CORUN_GROUPS.items():
        result = run_cached(group, leap)
        values = [result.results[n].prefetch_contribution for n in group]
        corun_contrib[label] = sum(values) / len(values)
    return solo_contrib, corun_contrib


def test_fig03_leap_contribution(benchmark):
    solo, corun = benchmark.pedantic(_run, rounds=1, iterations=1)

    print_header("Figure 3: Leap prefetching contribution (%), solo vs co-run")
    rows = [[name, 100 * value] for name, value in solo.items()]
    print(format_table(["program (individual)", "contribution %"], rows))
    rows = [[label, 100 * value] for label, value in corun.items()]
    print(format_table(["co-run group (average)", "contribution %"], rows))

    solo_avg = sum(solo.values()) / len(solo)
    corun_avg = sum(corun.values()) / len(corun)
    print(f"solo average {100 * solo_avg:.1f}%  co-run average {100 * corun_avg:.1f}%"
          f"  (ratio {solo_avg / max(corun_avg, 1e-9):.2f}x; paper ~3.19x for Spark)")

    # Shape: co-running reduces Leap's contribution.
    assert corun_avg < solo_avg
