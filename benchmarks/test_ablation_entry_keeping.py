"""Ablation (Appendix B): Linux 5.5's clean-page entry keeping.

Paper: "the kernel keeps swap entries for clean pages ... this approach
works for read-intensive applications where most pages are clean, but
not for write-intensive workloads such as Spark.  We tried various
entry-keeping thresholds between 25% and 75% and saw only marginal
performance differences (<5%)."

We reproduce both halves: entry keeping helps the read-intensive app
(XGBoost, 5% writes) far more than the write-heavy one (Spark-KM, 45%
writes), and the threshold choice barely matters.
"""

from _common import config, print_header, run_cached
from repro.metrics import format_table

THRESHOLDS = [0.25, 0.50, 0.75]


def _run():
    data = {}
    for app, label in (("xgboost", "read-intensive"), ("spark_km", "write-heavy")):
        # Entry keeping only engages below the occupancy threshold, so
        # this ablation provisions ample remote memory (unlike the tight
        # partitions used in the interference experiments).
        off = run_cached(
            [app],
            config(
                "linux",
                partition_headroom=1.5,
                system_config_overrides={"entry_keeping": False},
            ),
        ).completion_time(app)
        by_threshold = {}
        for threshold in THRESHOLDS:
            on = run_cached(
                [app],
                config(
                    "linux",
                    partition_headroom=1.5,
                    system_config_overrides={
                        "entry_keeping": True,
                        "entry_keep_max_occupancy": threshold,
                    },
                ),
            ).completion_time(app)
            by_threshold[threshold] = on
        data[app] = (label, off, by_threshold)
    return data


def test_ablation_entry_keeping(benchmark):
    data = benchmark.pedantic(_run, rounds=1, iterations=1)

    print_header("Appendix B ablation: clean-page entry keeping (Linux 5.5)")
    rows = []
    for app, (label, off, by_threshold) in data.items():
        for threshold, on in by_threshold.items():
            rows.append([f"{app} ({label})", f"{threshold:.0%}", off / 1000, on / 1000, off / on])
    print(
        format_table(
            ["program", "keep threshold", "keeping off (ms)", "keeping on (ms)", "benefit (x)"],
            rows,
        )
    )

    xgboost_label, xgboost_off, xgboost_on = data["xgboost"]
    spark_label, spark_off, spark_on = data["spark_km"]
    xgboost_gain = xgboost_off / min(xgboost_on.values())
    spark_gain = spark_off / min(spark_on.values())
    print(f"best gains: xgboost {xgboost_gain:.2f}x, spark_km {spark_gain:.2f}x")

    # Entry keeping must not hurt, and the threshold choice is marginal.
    assert xgboost_gain > 0.95
    assert spark_gain > 0.9
    for app, (_label, _off, by_threshold) in data.items():
        # The paper saw <5% difference across thresholds; we allow more
        # slack because the lowest threshold can sit below the initial
        # occupancy and disable keeping outright.
        active = [by_threshold[t] for t in (0.50, 0.75)]
        assert max(active) / min(active) < 1.15, f"{app}: threshold should be marginal"