"""Figure 10: overall co-run performance under 25% and 50% local memory.

Paper: for each group (three natives + one managed app), four bars per
application: running alone on Linux 5.5, co-running on Linux 5.5,
co-running on Fastswap, and co-running on Canvas.  Canvas improves
co-run performance up to 6.2x (average 3.5x) at 25% local memory and up
to 3.8x (average 1.9x) at 50%, and lets Spark even beat its solo run.
"""

from _common import (
    MANAGED_FOUR,
    NATIVES,
    config,
    geometric_mean,
    prewarm,
    print_header,
    run_cached,
    solo_jobs,
    solo_times,
)
from repro.metrics import format_table


def _jobs():
    jobs = []
    for fraction in (0.25, 0.50):
        linux = config("linux", local_memory_fraction=fraction)
        fastswap = config("fastswap", local_memory_fraction=fraction)
        canvas = config("canvas", local_memory_fraction=fraction)
        for managed in MANAGED_FOUR:
            group = NATIVES + [managed]
            jobs.extend(solo_jobs(group, linux))
            jobs.extend([(group, linux), (group, fastswap), (group, canvas)])
    return jobs


def _run():
    prewarm(_jobs())
    data = {}
    for fraction in (0.25, 0.50):
        linux = config("linux", local_memory_fraction=fraction)
        fastswap = config("fastswap", local_memory_fraction=fraction)
        canvas = config("canvas", local_memory_fraction=fraction)
        for managed in MANAGED_FOUR:
            group = NATIVES + [managed]
            solo = solo_times(group, linux)
            linux_co = run_cached(group, linux)
            fastswap_co = run_cached(group, fastswap)
            canvas_co = run_cached(group, canvas)
            for app in group:
                data[(fraction, managed, app)] = (
                    solo[app],
                    linux_co.completion_time(app),
                    fastswap_co.completion_time(app),
                    canvas_co.completion_time(app),
                )
    return data


def test_fig10_overall(benchmark):
    data = benchmark.pedantic(_run, rounds=1, iterations=1)

    gains = {0.25: [], 0.50: []}
    for fraction in (0.25, 0.50):
        print_header(
            f"Figure 10: completion times (ms), {int(fraction * 100)}% local memory"
        )
        rows = []
        for managed in MANAGED_FOUR:
            for app in NATIVES + [managed]:
                solo, linux_co, fastswap_co, canvas_co = data[(fraction, managed, app)]
                rows.append(
                    [
                        f"{managed}:{app}",
                        solo / 1000,
                        linux_co / 1000,
                        fastswap_co / 1000,
                        canvas_co / 1000,
                        linux_co / canvas_co,
                    ]
                )
                gains[fraction].append(linux_co / canvas_co)
        print(
            format_table(
                ["group:app", "solo", "linux co", "fastswap co", "canvas co", "canvas gain (x)"],
                rows,
            )
        )
        print(
            f"canvas vs linux co-run: max {max(gains[fraction]):.2f}x, "
            f"geomean {geometric_mean(gains[fraction]):.2f}x "
            f"(paper: up to {'6.2x, avg 3.5x' if fraction == 0.25 else '3.8x, avg 1.9x'})"
        )

    # Shape assertions.
    assert geometric_mean(gains[0.25]) > 1.3, "Canvas must clearly beat Linux co-run"
    assert max(gains[0.25]) > 2.0
    # Benefits shrink when more memory is local.
    assert geometric_mean(gains[0.25]) > geometric_mean(gains[0.50]) * 0.9
    # At least one managed app outperforms its individual run on Canvas.
    outperforms = any(
        data[(0.25, managed, managed)][3] < data[(0.25, managed, managed)][0]
        for managed in MANAGED_FOUR
    )
    assert outperforms, "paper: Spark/Neo4j outperform individual runs on Canvas"
