"""Figure 14 + §6.4.3: two-dimensional RDMA scheduling effectiveness.

Paper: GraphX-CC co-running with the natives.  The baseline already
separates sync/async queues (demand priority, as Fastswap does); the
*horizontal* contribution is timeliness-based dropping on top.  It adds
no demand-latency overhead, trims the served-prefetch latency, and
improves prefetching contribution/accuracy (+10.7%/+5.5%).  The vertical
dimension achieves a weighted min-max ratio (WMMR) of ~0.88.
"""

from _common import NATIVES, config, print_header, run_cached
from repro.metrics import format_table, weighted_min_max_ratio
from repro.rdma.message import RequestKind

GROUP = NATIVES + ["graphx_cc"]


def _run():
    # §6.4.3: "we set the weight proportionally to the average bandwidth
    # of each application when running individually."
    weights = {}
    for name in GROUP:
        solo = run_cached([name], config("canvas"))
        elapsed = solo.apps[name].completion_time_us
        weights[name] = max(
            1.0, solo.telemetry.read_bandwidth.mean_mbps(name, elapsed)
        )
    # Both variants keep the demand/prefetch priority split; they differ
    # only in timeliness-based dropping (the paper's horizontal knob).
    without = run_cached(
        GROUP,
        config(
            "canvas",
            horizontal_scheduling=True,
            timeliness_drops=False,
            rdma_weights=weights,
        ),
    )
    with_h = run_cached(
        GROUP,
        config(
            "canvas",
            horizontal_scheduling=True,
            timeliness_drops=True,
            rdma_weights=weights,
        ),
    )
    return without, with_h


def test_fig14_horizontal_sched(benchmark):
    without, with_h = benchmark.pedantic(_run, rounds=1, iterations=1)

    print_header(
        "Figure 14: timeliness-based prefetch dropping (GraphX-CC + natives)"
    )
    rows = []
    for label, result in (("priority only", without), ("priority+drops", with_h)):
        demand = result.telemetry.merged_latency(RequestKind.DEMAND)
        prefetch = result.telemetry.merged_latency(RequestKind.PREFETCH)
        gx = result.results["graphx_cc"]
        rows.append(
            [
                label,
                demand.percentile(90),
                prefetch.percentile(90),
                prefetch.percentile(99),
                100 * gx.prefetch_contribution,
                100 * gx.prefetch_accuracy,
                result.completion_time("graphx_cc") / 1000,
            ]
        )
    print(
        format_table(
            [
                "scheduling",
                "demand p90 µs",
                "prefetch p90 µs",
                "prefetch p99 µs",
                "GX contribution %",
                "GX accuracy %",
                "GX time ms",
            ],
            rows,
        )
    )
    drops = with_h.system.scheduler.stats.prefetches_dropped
    reissues = sum(a.stats.prefetch_drops for a in with_h.apps.values())
    print(f"stale prefetches dropped at the scheduler: {drops}; "
          f"blocked threads re-issued as demand: {reissues}")

    # Vertical dimension: weighted fairness across apps, measured over
    # the window in which every application is still running.
    window = min(app.completion_time_us for app in with_h.apps.values())
    consumption = {
        name: with_h.telemetry.read_bandwidth.total_until(name, window)
        for name in GROUP
    }
    weights = {name: with_h.apps[name].config.rdma_weight for name in GROUP}
    wmmr = weighted_min_max_ratio(consumption, weights)
    print(f"vertical WMMR (read bytes / weight, shared window): {wmmr:.2f}"
          f" (paper: 0.88)")

    demand_without = without.telemetry.merged_latency(RequestKind.DEMAND)
    demand_with = with_h.telemetry.merged_latency(RequestKind.DEMAND)
    prefetch_without = without.telemetry.merged_latency(RequestKind.PREFETCH)
    prefetch_with = with_h.telemetry.merged_latency(RequestKind.PREFETCH)
    # Shapes: the served-prefetch tail is trimmed sharply by dropping
    # stale requests (the paper's headline for Fig. 14a); the overall
    # running time holds; the drop machinery is actually exercised.
    # (Re-issued demand reads add some demand-side load at our scale —
    # see EXPERIMENTS.md — so demand p90 is bounded rather than flat.)
    assert prefetch_with.percentile(99) < prefetch_without.percentile(99) * 0.6
    assert demand_with.percentile(90) < demand_without.percentile(90) * 4.0
    assert drops + reissues > 0
    time_without = without.completion_time("graphx_cc")
    time_with = with_h.completion_time("graphx_cc")
    assert time_with < time_without * 1.15
    assert wmmr > 0.6
