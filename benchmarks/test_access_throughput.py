"""Access throughput: simulated accesses per second through the driver.

Not a paper figure — a harness micro-benchmark guarding the resident
fast path (PR 2).  Two configurations bracket what experiments pay per
simulated memory access:

* **resident-heavy co-run** — memcached + neo4j with local memory
  larger than the working set, so (almost) every access takes the fast
  path.  Measured twice, with batched streams and with the scalar
  protocol, to show the batched/unbatched wall-clock ratio on the same
  bit-identical simulation.
* **fault-path co-run** — the same pair under memory pressure, where
  throughput is bounded by the event-driven slow path (faults, RDMA,
  reclaim) that batching deliberately leaves untouched.

Numbers are recorded in ``benchmark.extra_info`` (and the CI workflow
uploads the JSON as an artifact).  The assertion floor is deliberately
below the typical ~2x batched speedup to stay robust on noisy runners.
"""

from _common import print_header
from repro.harness import ExperimentConfig, result_digest, run_experiment

PAIR = ["memcached", "neo4j"]

#: Representative resident-heavy co-run: full-size working sets, local
#: memory above the working set, CPU charged in 800µs slices so runs of
#: resident accesses between engine events are long (the regime the
#: fast path targets; the simulated results are identical either way).
RESIDENT_OVERRIDES = {
    "memcached": {"accesses_per_thread": 120_000},
    "neo4j": {"accesses_per_thread": 78_000},
}


def resident_config(batched: bool) -> ExperimentConfig:
    return ExperimentConfig(
        system="canvas",
        scale=1.0,
        local_memory_fraction=1.4,
        cpu_flush_us=800.0,
        batched_streams=batched,
        workload_overrides=RESIDENT_OVERRIDES,
    )


def fault_config(batched: bool = True) -> ExperimentConfig:
    return ExperimentConfig(
        system="canvas",
        scale=0.25,
        local_memory_fraction=0.25,
        batched_streams=batched,
    )


def run_accesses(config) -> int:
    result = run_experiment(PAIR, config)
    return sum(result.results[name].stats.accesses for name in PAIR)


def _report(benchmark, label, accesses):
    seconds = benchmark.stats.stats.min
    rate = accesses / seconds
    benchmark.extra_info["accesses"] = accesses
    benchmark.extra_info["accesses_per_second"] = rate
    print_header(f"access throughput: {label}")
    print(f"{accesses} accesses in {seconds:.3f}s -> {rate / 1e3:.0f}k accesses/s")
    return rate


def test_resident_fast_path_batched_vs_scalar(benchmark):
    """The tentpole number: batched vs scalar on the same co-run."""
    accesses = benchmark.pedantic(
        lambda: run_accesses(resident_config(batched=True)), rounds=3, iterations=1
    )
    _report(benchmark, "resident-heavy co-run (batched)", accesses)

    scalar_seconds = min(
        _timed(run_accesses, resident_config(batched=False)) for _ in range(3)
    )
    scalar_rate = accesses / scalar_seconds
    speedup = scalar_seconds / benchmark.stats.stats.min
    benchmark.extra_info["scalar_accesses_per_second"] = scalar_rate
    benchmark.extra_info["batched_speedup"] = speedup
    print(
        f"scalar: {accesses} accesses in {scalar_seconds:.3f}s "
        f"-> {scalar_rate / 1e3:.0f}k accesses/s (batched speedup {speedup:.2f}x)"
    )
    assert result_digest(run_experiment(PAIR, resident_config(True))) == result_digest(
        run_experiment(PAIR, resident_config(False))
    ), "batched and scalar protocols diverged"
    assert speedup > 1.3, f"fast path regressed: batched only {speedup:.2f}x scalar"


def test_fault_path_throughput(benchmark):
    accesses = benchmark.pedantic(
        lambda: run_accesses(fault_config()), rounds=3, iterations=1
    )
    _report(benchmark, "fault-path co-run (under memory pressure)", accesses)


def _timed(fn, *args) -> float:
    import time

    start = time.perf_counter()
    fn(*args)
    return time.perf_counter() - start
