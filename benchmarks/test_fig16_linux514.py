"""Figure 16 (Appendix B): Canvas vs the Linux 5.14 allocator on RAMDisk.

Paper: Memcached with 8-48 cores swapping to a RAMDisk (no RDMA, so the
allocator is the only bottleneck).  Linux 5.14's per-core-cluster +
batch allocation is cheap at low core counts but collapses super-
linearly past ~24 cores as cores collide on clusters; Canvas's
reservations keep the *allocation rate* orders of magnitude lower and
per-entry cost flat — 13x faster than Linux 5.14 at 48 cores.
"""

from _common import config, print_header, run_cached
from repro.metrics import format_table

CORE_COUNTS = [8, 16, 32, 48]
#: RAMDisk: model as an extremely fast, low-latency fabric.
RAMDISK = dict(bandwidth_scale=10.0)


def _measure(result):
    app = result.apps["memcached"]
    elapsed = app.completion_time_us or result.elapsed_us
    alloc_rate = result.telemetry.alloc_rate("memcached").mean_rate_per_second(elapsed)
    allocations = result.telemetry.alloc_rate("memcached").total
    per_entry = app.stats.alloc_stall_us / allocations if allocations else 0.0
    return alloc_rate / 1000.0, per_entry


def _run():
    data = {}
    for cores in CORE_COUNTS:
        shared = dict(
            cores_override={"memcached": cores},
            workload_overrides={
                "memcached": {"n_threads": cores, "accesses_per_thread": 250}
            },
            system_config_overrides={"kswapd_batch": 1},
            **RAMDISK,
        )
        linux55 = run_cached(["memcached"], config("linux", **shared))
        linux514 = run_cached(["memcached"], config("linux514", **shared))
        canvas = run_cached(["memcached"], config("canvas", **shared))
        data[cores] = {
            "linux5.5": _measure(linux55),
            "linux5.14": _measure(linux514),
            "canvas": _measure(canvas),
        }
    return data


def test_fig16_linux514(benchmark):
    data = benchmark.pedantic(_run, rounds=1, iterations=1)

    print_header("Figure 16: allocator scalability on RAMDisk (Memcached)")
    rows = []
    for cores in CORE_COUNTS:
        row = [cores]
        for system in ("canvas", "linux5.5", "linux5.14"):
            rate, per_entry = data[cores][system]
            row.extend([rate, per_entry])
        rows.append(row)
    print(
        format_table(
            [
                "cores",
                "canvas alloc K/s",
                "canvas µs/entry",
                "l5.5 alloc K/s",
                "l5.5 µs/entry",
                "l5.14 alloc K/s",
                "l5.14 µs/entry",
            ],
            rows,
        )
    )
    print("paper: canvas alloc rate orders lower; l5.14 cheap then super-linear")

    first, last = CORE_COUNTS[0], CORE_COUNTS[-1]
    # The paper's headline Fig. 16a claim: Canvas's reservations cut the
    # allocation *rate* by orders of magnitude relative to both kernels.
    assert data[last]["canvas"][0] < data[last]["linux5.5"][0] * 0.5
    assert data[last]["canvas"][0] < data[last]["linux5.14"][0] * 0.5
    # Linux 5.14 beats 5.5 at low core counts (finer locks, batching).
    assert data[first]["linux5.14"][1] <= data[first]["linux5.5"][1] * 1.1
    # Linux 5.5 per-entry cost grows with cores; Canvas's rare locked
    # allocations stay below it throughout.
    assert data[last]["linux5.5"][1] > data[first]["linux5.5"][1]
    assert data[last]["canvas"][1] < data[last]["linux5.5"][1]
