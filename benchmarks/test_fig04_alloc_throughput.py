"""Figure 4: swap-entry allocation throughput, individually vs together.

Paper: with Spark-LR, XGBoost, and Snappy sharing Linux 5.5's single
swap partition, the *total* allocation throughput collapses (~450 K/s
summed over individual runs vs ~200 K/s co-running) because every
allocation serializes on the shared free-list lock.
"""

from _common import config, print_header, run_cached
from repro.metrics import format_table

APPS = ["spark_lr", "xgboost", "snappy"]


def _alloc_rate(result, name) -> float:
    meter = result.telemetry.alloc_rate(name)
    elapsed = result.apps[name].completion_time_us or result.elapsed_us
    return meter.mean_rate_per_second(elapsed)


def _run():
    linux = config("linux")
    solo_rates = {name: _alloc_rate(run_cached([name], linux), name) for name in APPS}
    corun = run_cached(APPS, linux)
    corun_rates = {name: _alloc_rate(corun, name) for name in APPS}
    return solo_rates, corun_rates


def test_fig04_alloc_throughput(benchmark):
    solo, corun = benchmark.pedantic(_run, rounds=1, iterations=1)

    print_header("Figure 4: swap-entry allocation throughput (allocs/sec)")
    rows = [[name, solo[name], corun[name]] for name in APPS]
    print(format_table(["program", "individual (a)", "co-run (b)"], rows))
    total_solo = sum(solo.values())
    total_corun = sum(corun.values())
    print(f"total: individual {total_solo:,.0f}/s  co-run {total_corun:,.0f}/s"
          f"  (paper: ~450K/s -> ~200K/s)")

    # Shape: summed throughput drops under co-running.
    assert total_corun < total_solo * 0.85
