"""Churn + SLO macro-benchmark: one diurnal day at 1,000 cgroups.

Not a paper figure — the harness macro-benchmark guarding app lifecycle
teardown and traffic-driven elasticity (PR 10).  Canvas's motivating
setting is many cgroups sharing one swap path, but real fleets are not
a fixed roster: sessions arrive on a diurnal curve, run, and depart
through ``unregister_app``, so registration, partition reservation,
prefetcher state, and swap entries are built up and torn down a
thousand times per simulated day.  A fault storm (a link flap plus a
bandwidth-degrade window) lands inside the busiest decile of the day,
and the SLO controller is live throughout, feeding per-cgroup p99
demand-fault latency back into the two-dimensional scheduler's weights.

The guarded number is events/sec (engine callbacks dispatched per wall
second) over the full day — it covers the teardown sweeps, the traffic
plan's arrival machinery, and the SLO control loop alongside the swap
path itself.  Correctness riders on the same run: every session must
depart leak-free, arrivals/departures must actually be spread across
the day (this is churn, not a synchronized wave), and the controller
must have both boosted and decayed.
"""

import time

from _common import print_header
from repro.core.slo import SloConfig
from repro.faults import FaultConfig
from repro.harness.experiment import ExperimentConfig, run_churn
from repro.workloads.traffic import TrafficConfig, make_traffic_plan

SEED = 7
N_FULL = 1_000
SWEEP = (100, 300)
DAY_US = 200_000.0
#: Per-session mean accesses; sized so the full day is dominated by the
#: swap path, not the arrival machinery, while three pedantic rounds
#: stay tractable.
ACCESSES_MEAN = 1_500
#: The controller's latency target sits below storm-time p99, so the
#: storm forces breaches (boosts) and the quiet shoulders decay them.
TARGET_P99_US = 60.0


def churn_traffic(n_sessions: int) -> TrafficConfig:
    return TrafficConfig(
        n_sessions=n_sessions,
        day_us=DAY_US,
        accesses_mean=ACCESSES_MEAN,
        working_set_pages=48,
        pressured_every=4,
    )


def storm_config(traffic: TrafficConfig, seed: int) -> FaultConfig:
    """A fault storm aimed at the busiest decile of the arrival curve.

    The traffic plan is a pure function of ``(traffic, seed)``, so the
    peak window computed here is exactly the one ``run_churn`` will
    replay: the flap and the degrade window land at peak load.
    """
    plan = make_traffic_plan(traffic, seed)
    start, end = plan.peak_window_us
    width = end - start
    return FaultConfig(
        fault_seed=seed,
        flap_windows=((start + 0.1 * width, 1_500.0),),
        degrade_windows=((start + 0.4 * width, 0.5 * width, 0.4),),
    )


def churn_config(n_sessions: int) -> ExperimentConfig:
    traffic = churn_traffic(n_sessions)
    return ExperimentConfig(
        system="canvas",
        seed=SEED,
        traffic=traffic,
        slo=SloConfig(
            target_p99_us=TARGET_P99_US, period_us=2_000.0, min_samples=8
        ),
        fault_config=storm_config(traffic, SEED),
    )


def run_day(n_sessions: int):
    """One full churn day; returns (wall_s, steps, result)."""
    config = churn_config(n_sessions)
    start = time.perf_counter()
    result = run_churn(config)
    wall = time.perf_counter() - start
    return wall, result.machine.engine.step_count, result


def test_churn_slo_diurnal_day(benchmark):
    print_header("churn + SLO sweep (diurnal day, peak fault storm)")
    print(f"{'sessions':>8} {'wall_s':>8} {'events/s':>12} {'accesses/s':>12}")
    for n_sessions in SWEEP:
        wall, steps, result = run_day(n_sessions)
        accesses = sum(app.stats.accesses for app in result.apps.values())
        print(
            f"{n_sessions:>8} {wall:>8.3f} {steps / wall:>12.0f} "
            f"{accesses / wall:>12.0f}"
        )

    state = {}

    def run_full():
        wall, steps, result = run_day(N_FULL)
        state["result"] = result
        return steps

    steps = benchmark.pedantic(run_full, rounds=3, iterations=1)
    seconds = benchmark.stats.stats.min
    result = state["result"]
    apps = result.apps
    accesses = sum(app.stats.accesses for app in apps.values())
    faults = sum(app.stats.faults for app in apps.values())
    events_per_second = steps / seconds

    # Every one of the 1,000 sessions departed leak-free.
    assert len(apps) == N_FULL
    assert len(result.system.apps) == 0
    for app in apps.values():
        assert app.pool.used == 0
        assert app.outstanding_writebacks == 0
        assert app.inflight_prefetches == 0

    # Arrivals and departures are spread across the day, not one wave.
    starts = sorted(app.started_at_us for app in apps.values())
    finishes = sorted(app.finished_at_us for app in apps.values())
    assert starts[-1] - starts[0] > DAY_US / 2
    assert finishes[-1] > finishes[0]

    # The SLO loop ran all day and both levers moved: the peak storm
    # forced breaches (boosts); quiet shoulders decayed them back.
    slo = result.slo.stats
    assert slo.rounds > 50
    assert slo.boosts_applied > 0
    assert slo.decays_applied > 0

    benchmark.extra_info["sessions"] = N_FULL
    benchmark.extra_info["events"] = steps
    benchmark.extra_info["events_per_second"] = events_per_second
    benchmark.extra_info["accesses_per_second"] = accesses / seconds
    benchmark.extra_info["faults"] = faults
    benchmark.extra_info["slo_rounds"] = slo.rounds
    benchmark.extra_info["slo_boosts"] = slo.boosts_applied

    print_header("1,000-session diurnal day: churn + peak storm + SLO")
    print(
        f"day:    {steps} events in {seconds:.3f}s -> "
        f"{events_per_second / 1e3:.0f}k events/s, "
        f"{accesses / seconds / 1e6:.2f}M accesses/s"
    )
    print(
        f"storm:  {faults} demand faults; SLO {slo.rounds} rounds, "
        f"{slo.boosts_applied} boosts / {slo.decays_applied} decays"
    )
