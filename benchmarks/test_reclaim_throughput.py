"""Swap-out storm microbenchmarks: grouped vs. scalar reclaim (PR 8).

Not paper figures — the harness micro-benchmarks guarding the grouped
reclaim egress pipeline, the write-side twin of
``test_fault_group_throughput``.  Two storms, two honest answers:

* ``test_reclaim_storm`` — the end-to-end co-run under steady memory
  pressure.  Here reclaim is ~12% of the wall clock (every eviction is
  preceded by a costlier demand fault) and kswapd's digest-pinned
  batches average ~3 pages, so grouped and scalar reclaim measure the
  same within noise: **~1.0x** on the development machine (interleaved
  best-of-3; 0.96–1.0x across runs, and 0.98x median-of-ratios against
  the pre-PR tree).  What this storm guards is not a speedup but the
  contract: bit-identical digests with the write doorbells batched.
* ``test_reclaim_drain`` — the storm the batching is actually for: a
  partition shrink leaves kswapd a deep backlog of entry-kept clean
  pages (the Canvas adaptive-partitioning story).  The scalar oracle
  pays one whole-remainder revalidation gather per pop; grouped
  selection pays it once per batch.  Measured **~4.2x** pages/sec on
  the development machine (interleaved rounds, 4.0–4.5x, same ratio
  against the pre-PR tree), end state and simulated clock identical.

Both A/Bs are meaningful only because the two paths are *bit-identical*:
the storm asserts ``result_digest`` equality and the drain asserts
field-for-field stats, pool, and clock equality before reporting any
number.  A traced grouped run must also agree with the untraced
numbers, show grouped rounds actually formed (``reclaim_groups`` > 0),
and pass every ``repro.obs.check`` lint including the PR 8
reclaim-group-pairing rule.

``pages_evicted_per_second`` (both storms) and the drain's
``grouped_drain_speedup`` feed ``check_regression.py`` against
``perf_baseline.json``.  On shared CI runners wall-clock ratios of
sub-second runs swing ±25%, so the in-test asserts are loose floors —
the real guards are the checked-in baseline entries.
"""

import dataclasses
import time

from _common import print_header
from repro.harness import ExperimentConfig, result_digest, run_experiment
from repro.harness.driver import run_to_completion
from repro.harness.machine import Machine
from repro.kernel import AppContext, CgroupConfig, LinuxSwapSystem, SwapSystemConfig
from repro.obs.check import check_trace
from repro.obs.trace import TraceBuffer, summarize_trace

PAIR = ["memcached", "neo4j"]

#: Local memory fraction of the working set.  At 10% the resident set
#: churns constantly: every demand swap-in needs a frame, kswapd stays
#: below its watermarks, and eviction throughput dominates the run.
STORM_LOCAL_FRACTION = 0.10

#: Resident pages for the backlog drain: the pool starts full, so the
#: drain target is capacity minus the low watermark (~10%).
DRAIN_PAGES = 40_000


def storm_config(**kwargs) -> ExperimentConfig:
    """The swap-out storm co-run: memcached + neo4j far above budget."""
    return ExperimentConfig(
        system="canvas",
        scale=0.25,
        local_memory_fraction=STORM_LOCAL_FRACTION,
        **kwargs,
    )


def _run(config):
    result = run_experiment(PAIR, config)
    evicted = sum(
        result.results[name].stats.swapouts
        + result.results[name].stats.clean_drops
        for name in PAIR
    )
    return evicted, result_digest(result), result


def test_reclaim_storm(benchmark):
    grouped_cfg = storm_config()
    scalar_cfg = storm_config(system_config_overrides={"grouped_reclaim": False})

    last = {}

    def run_grouped():
        evicted, digest, _ = _run(grouped_cfg)
        last["digest"] = digest
        return evicted

    evicted = benchmark.pedantic(run_grouped, rounds=3, iterations=1)
    grouped_seconds = benchmark.stats.stats.min
    digest = last["digest"]

    # The scalar oracle: same simulation, one _evict_one per page.
    scalar_seconds = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        scalar_evicted, scalar_digest, _ = _run(scalar_cfg)
        scalar_seconds = min(scalar_seconds, time.perf_counter() - start)
        assert scalar_digest == digest, (
            "grouped and scalar reclaim diverged on simulated results"
        )
        assert scalar_evicted == evicted

    # Traced run: digest-inert, proves kswapd really grouped its
    # batches, and must be clean under every causality lint (the
    # reclaim-group-pairing rule included).
    _, traced_digest, traced = _run(storm_config(trace=True))
    assert traced_digest == digest, "tracing changed simulated numbers"
    records = traced.trace.records()
    violations = check_trace(records, truncated=traced.trace.truncated)
    assert not violations, f"trace lints failed: {violations[:5]}"
    summaries = summarize_trace(records)
    groups = sum(s["reclaim_groups"] for s in summaries.values())
    assert groups > 0, "storm drove no grouped reclaim rounds"

    rate = evicted / grouped_seconds
    speedup = scalar_seconds / grouped_seconds
    benchmark.extra_info["pages_evicted"] = evicted
    benchmark.extra_info["pages_evicted_per_second"] = rate
    benchmark.extra_info["grouped_reclaim_speedup"] = speedup
    benchmark.extra_info["reclaim_groups"] = groups

    print_header("swap-out storm: grouped vs scalar reclaim")
    print(
        f"grouped: {evicted} evictions in {grouped_seconds:.3f}s -> "
        f"{rate / 1e3:.1f}k pages/s"
    )
    print(
        f"scalar:  {evicted} evictions in {scalar_seconds:.3f}s -> "
        f"{evicted / scalar_seconds / 1e3:.1f}k pages/s "
        f"(grouped speedup {speedup:.2f}x)"
    )
    print(f"{groups} reclaim groups traced")

    assert evicted > 0
    # The co-run is ingest-dominated and kswapd's batches are tiny, so
    # grouped reclaim is wall-clock *neutral* here (~1.0x measured) —
    # this floor only catches the grouped path becoming an outright
    # regression.  The drain storm below is where the batching pays.
    assert speedup > 0.75, (
        f"grouped reclaim slower than the scalar oracle: {speedup:.2f}x"
    )


# -- the backlog drain: a partition shrink's worth of clean pages --------


def _build_drain(grouped, tracer=False):
    """A full frame pool of entry-kept clean pages over a fat LRU.

    The state a Canvas partition shrink leaves behind: every resident
    page came in from swap (entry retained, ``stored_vpn`` valid) and
    was only read since, so kswapd's whole backlog — pool capacity down
    to the low watermark — drains as clean drops.
    """
    machine = Machine(seed=3)
    trace_buffer = TraceBuffer(machine.engine, capacity=200_000) if tracer else None
    system = LinuxSwapSystem(
        machine.engine,
        machine.nic,
        partition_pages=DRAIN_PAGES + 512,
        telemetry=machine.telemetry,
        config=SwapSystemConfig(grouped_reclaim=grouped),
    )
    if trace_buffer is not None:
        system.attach_tracer(trace_buffer)
    app = AppContext(
        machine.engine,
        CgroupConfig(name="app", n_cores=4, local_memory_pages=DRAIN_PAGES),
        flat_state=True,
    )
    vma = app.space.map_region(DRAIN_PAGES, name="heap")
    system.register_app(app)
    assert app.pool.try_charge(DRAIN_PAGES)
    for vpn in range(vma.start_vpn, vma.start_vpn + DRAIN_PAGES):
        page = app.space.pages[vpn]
        entry = system._allocator_for(app, page).take_free_untimed()
        entry.stored_vpn = vpn
        page.swap_entry = entry
        page.resident = True
        app.lru.insert(page)
    return machine, system, app, trace_buffer


def _drain(machine, app):
    """Run the engine until kswapd has drained the backlog."""
    backlog = app.pool.reclaim_target()

    def monitor():
        while app.pool.reclaim_target() > 0:
            yield machine.engine.sleep(5.0)

    proc = machine.engine.spawn(monitor())
    run_to_completion(machine.engine, [proc])
    return backlog


def test_reclaim_drain(benchmark):
    grouped_end = {}

    def setup():
        machine, _, app, _ = _build_drain(grouped=True)
        grouped_end["run"] = (machine, app)
        return (machine, app), {}

    def run(machine, app):
        return _drain(machine, app)

    drained = benchmark.pedantic(run, setup=setup, rounds=3)
    grouped_seconds = benchmark.stats.stats.min
    g_machine, g_app = grouped_end["run"]
    assert drained == DRAIN_PAGES - g_app.pool.low_watermark
    assert g_app.stats.clean_drops == drained
    assert g_app.stats.swapouts == 0
    assert g_app.pool.used == g_app.pool.low_watermark

    # The scalar oracle drains the same backlog one select_victim at a
    # time; every round must land on the identical end state and clock.
    scalar_seconds = float("inf")
    for _ in range(3):
        machine, _, app, _ = _build_drain(grouped=False)
        start = time.perf_counter()
        scalar_drained = _drain(machine, app)
        scalar_seconds = min(scalar_seconds, time.perf_counter() - start)
        assert scalar_drained == drained
        assert dataclasses.asdict(app.stats) == dataclasses.asdict(g_app.stats)
        assert machine.engine.now == g_machine.engine.now
        assert app.pool.used == g_app.pool.used

    # Traced grouped drain: same end state, grouped rounds visible,
    # every causality lint clean.
    machine, _, app, trace_buffer = _build_drain(grouped=True, tracer=True)
    traced_drained = _drain(machine, app)
    assert traced_drained == drained
    assert dataclasses.asdict(app.stats) == dataclasses.asdict(g_app.stats)
    assert machine.engine.now == g_machine.engine.now
    records = trace_buffer.records()
    violations = check_trace(records, truncated=trace_buffer.truncated)
    assert not violations, f"trace lints failed: {violations[:5]}"
    groups = sum(s["reclaim_groups"] for s in summarize_trace(records).values())
    assert groups > 0, "drain drove no grouped reclaim rounds"

    rate = drained / grouped_seconds
    speedup = scalar_seconds / grouped_seconds
    benchmark.extra_info["pages_evicted"] = drained
    benchmark.extra_info["pages_evicted_per_second"] = rate
    benchmark.extra_info["grouped_drain_speedup"] = speedup
    benchmark.extra_info["reclaim_groups"] = groups

    print_header("backlog drain: grouped vs scalar reclaim")
    print(
        f"grouped: {drained} clean drops in {grouped_seconds:.3f}s -> "
        f"{rate / 1e3:.1f}k pages/s"
    )
    print(
        f"scalar:  {drained} clean drops in {scalar_seconds:.3f}s -> "
        f"{drained / scalar_seconds / 1e3:.1f}k pages/s "
        f"(grouped speedup {speedup:.2f}x)"
    )

    # Measured ~4.2x on the development machine (the scalar oracle
    # re-gathers the whole queue remainder per pop; grouped selection
    # gathers once per batch).  1.2x leaves room for runner noise.
    assert speedup > 1.2, (
        f"grouped drain lost its edge over the scalar oracle: {speedup:.2f}x"
    )
