"""Figure 2: slowdowns of co-running applications vs running individually.

Paper: on Linux 5.5 with identical per-app CPU/memory limits, co-running
the three native applications with Spark slows them ~3.9x overall and
with Neo4j ~2.2x overall; Spark (high swap throughput, >90 threads)
crowds out Memcached/XGBoost/Snappy far more than Neo4j (which holds its
graph locally and swaps little).
"""

from _common import (
    NATIVES,
    config,
    geometric_mean,
    prewarm,
    print_header,
    run_cached,
    slowdowns,
    solo_jobs,
    solo_times,
)
from repro.metrics import format_table


def _run():
    linux = config("linux")
    prewarm(
        solo_jobs(NATIVES + ["spark_lr", "neo4j"], linux)
        + [(NATIVES + ["spark_lr"], linux), (NATIVES + ["neo4j"], linux)]
    )
    solo = solo_times(NATIVES + ["spark_lr", "neo4j"], linux)
    with_spark = slowdowns(run_cached(NATIVES + ["spark_lr"], linux), solo)
    with_neo4j = slowdowns(run_cached(NATIVES + ["neo4j"], linux), solo)
    return solo, with_spark, with_neo4j


def test_fig02_corun_slowdown(benchmark):
    solo, with_spark, with_neo4j = benchmark.pedantic(_run, rounds=1, iterations=1)

    print_header("Figure 2: co-run slowdown vs individual run (Linux 5.5)")
    rows = [
        [name, with_spark.get(name, float("nan")), with_neo4j.get(name, float("nan"))]
        for name in NATIVES
    ]
    print(format_table(["program", "co-run w/ Spark (x)", "co-run w/ Neo4j (x)"], rows))
    spark_overall = geometric_mean([with_spark[n] for n in NATIVES])
    neo4j_overall = geometric_mean([with_neo4j[n] for n in NATIVES])
    print(f"overall (geomean): spark={spark_overall:.2f}x  neo4j={neo4j_overall:.2f}x")
    print("paper: ~3.9x with Spark, ~2.2x with Neo4j")

    # Shape assertions: co-running hurts, and Spark hurts more than Neo4j.
    for name in NATIVES:
        assert with_spark[name] > 1.1, f"{name} should slow down beside Spark"
    assert spark_overall > neo4j_overall, "Spark must interfere more than Neo4j"
    assert spark_overall > 1.5
