"""Table 3: performance variation of the natives across co-runners.

Paper: the three natives co-run with each of the eleven managed
applications; the table reports mean/min/max/σ of their slowdowns under
Canvas, Linux 5.5, and Fastswap.  Canvas cuts the overall standard
deviation ~7x (1.72 → 0.23): an application's performance stops
depending on who its neighbours are.
"""

import statistics

from _common import (
    MANAGED_ELEVEN,
    NATIVES,
    config,
    prewarm,
    print_header,
    run_cached,
    solo_jobs,
    solo_times,
)
from repro.metrics import format_table

#: Running all 11 managed co-runners x 3 systems is the paper's setup;
#: trim to 6 co-runners to keep the benchmark under a couple of minutes
#: while preserving behavioural diversity (scan/graph/zipf/local-heavy).
CORUNNERS = ["spark_lr", "spark_km", "cassandra", "neo4j", "graphx_cc", "spark_sg"]


def _run():
    linux = config("linux")
    prewarm(
        solo_jobs(NATIVES, linux)
        + [
            (NATIVES + [managed], config(system))
            for managed in CORUNNERS
            for system in ("linux", "fastswap", "canvas")
        ]
    )
    solo = solo_times(NATIVES, linux)
    slowdowns = {system: {name: [] for name in NATIVES} for system in ("linux", "fastswap", "canvas")}
    for managed in CORUNNERS:
        group = NATIVES + [managed]
        for system in ("linux", "fastswap", "canvas"):
            result = run_cached(group, config(system))
            for name in NATIVES:
                slowdowns[system][name].append(
                    result.completion_time(name) / solo[name]
                )
    return slowdowns


def test_tab03_variation(benchmark):
    slowdowns = benchmark.pedantic(_run, rounds=1, iterations=1)

    print_header(
        "Table 3: native-app slowdown stats across managed co-runners "
        "(Canvas / Linux 5.5 / Fastswap)"
    )
    rows = []
    overall = {}
    for system in ("canvas", "linux", "fastswap"):
        all_values = []
        for name in NATIVES:
            values = slowdowns[system][name]
            all_values.extend(values)
            rows.append(
                [
                    f"{name} ({system})",
                    statistics.mean(values),
                    min(values),
                    max(values),
                    statistics.stdev(values) if len(values) > 1 else 0.0,
                ]
            )
        overall[system] = {
            "mean": statistics.mean(all_values),
            "sigma": statistics.stdev(all_values),
        }
        rows.append(
            [
                f"overall ({system})",
                overall[system]["mean"],
                min(all_values),
                max(all_values),
                overall[system]["sigma"],
            ]
        )
    print(format_table(["program", "mean", "min", "max", "sigma"], rows))
    print(
        f"sigma: canvas {overall['canvas']['sigma']:.2f} vs linux "
        f"{overall['linux']['sigma']:.2f} "
        f"({overall['linux']['sigma'] / max(overall['canvas']['sigma'], 1e-9):.1f}x"
        f" reduction; paper: 7x, 1.72 -> 0.23)"
    )

    # Shapes: Canvas reduces both the mean slowdown and its variation.
    assert overall["canvas"]["mean"] < overall["linux"]["mean"]
    assert overall["canvas"]["sigma"] < overall["linux"]["sigma"] * 0.7
    assert overall["canvas"]["sigma"] < overall["fastswap"]["sigma"]
