"""Event-engine throughput: raw dispatch rate of the simulation core.

Not a paper figure — a harness micro-benchmark guarding the engine's
hot path.  Two workloads bracket what real experiments exercise:

* **timeout storm** — many concurrent processes sleeping repeatedly;
  stresses the time-ordered heap (schedule + pop per step).
* **process ping-pong** — two processes waking each other through
  events with no simulated delay; stresses the zero-delay immediate
  lane and generator resume, the pattern swap-fault handling hits
  hardest.

Reported numbers are dispatched callbacks ("steps") per second, read
from ``Engine.step_count``.  Run with ``--benchmark-enable`` to compare
before/after engine changes.
"""

from _common import print_header
from repro.sim.engine import Engine

STORM_PROCESSES = 100
STORM_TIMEOUTS = 500
PING_PONGS = 20_000


def timeout_storm() -> int:
    engine = Engine()

    def sleeper(engine):
        for _ in range(STORM_TIMEOUTS):
            yield engine.timeout(1.0)

    for _ in range(STORM_PROCESSES):
        engine.spawn(sleeper(engine))
    engine.run()
    return engine.step_count


def ping_pong() -> int:
    engine = Engine()
    ping = [engine.event()]
    pong = [engine.event()]

    def server(engine):
        for _ in range(PING_PONGS):
            yield ping[0]
            ping[0] = engine.event()
            pong[0].succeed()

    def client(engine):
        for _ in range(PING_PONGS):
            ping[0].succeed()
            yield pong[0]
            pong[0] = engine.event()

    engine.spawn(server(engine))
    engine.spawn(client(engine))
    engine.run()
    return engine.step_count


def _report(benchmark, label, steps):
    seconds = benchmark.stats.stats.mean
    rate = steps / seconds
    benchmark.extra_info["steps"] = steps
    benchmark.extra_info["steps_per_second"] = rate
    print_header(f"engine throughput: {label}")
    print(f"{steps} steps in {seconds:.3f}s -> {rate / 1e6:.2f}M steps/s")


def test_engine_timeout_storm(benchmark):
    steps = benchmark.pedantic(timeout_storm, rounds=3, iterations=1)
    _report(benchmark, "timeout storm (heap-bound)", steps)


def test_engine_ping_pong(benchmark):
    steps = benchmark.pedantic(ping_pong, rounds=3, iterations=1)
    _report(benchmark, "event ping-pong (immediate-lane-bound)", steps)
