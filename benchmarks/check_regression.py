#!/usr/bin/env python
"""Guard the harness micro-benchmarks against performance regressions.

Usage::

    python benchmarks/check_regression.py out1.json [out2.json ...]
    python benchmarks/check_regression.py --update out1.json [...]

Each ``outN.json`` is a ``pytest-benchmark --benchmark-json`` output.
The script compares every guarded ``extra_info`` metric (throughput
numbers — higher is better) against ``benchmarks/perf_baseline.json``
and exits non-zero when a current value falls below
``baseline * (1 - tolerance)``.

Tolerances live in the baseline file per metric: ratio metrics such as
``batched_speedup`` are machine-independent and use a tight bound,
absolute rates (steps/s, accesses/s, faults/s) vary with runner
hardware and get a loose one.  ``REPRO_PERF_TOLERANCE_SCALE`` multiplies
every tolerance (e.g. ``2.0`` on a known-slow runner); ``--update``
rewrites the baseline from the provided JSONs: existing metrics keep
their tolerances, and guardable metrics (``*_per_second`` rates,
``*_speedup`` ratios) from benchmarks or metrics not yet in the
baseline are added with the default tolerance for their kind.

Benchmarks present in the outputs but absent from the baseline are
reported and ignored by ``check``, so adding a benchmark never breaks
CI until a baseline entry is recorded — run ``--update`` once to record
it.
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

BASELINE_PATH = Path(__file__).resolve().parent / "perf_baseline.json"

#: Default tolerances for metrics newly adopted by ``--update``, keyed
#: by name suffix.  Rates are runner-dependent (loose); speedup ratios
#: are machine-independent (tight).  Metrics matching neither pattern
#: are informational ``extra_info`` and never auto-guarded.
DEFAULT_TOLERANCES = (
    ("_per_second", 0.5),
    ("_speedup", 0.3),
)


def _default_tolerance(metric: str) -> float | None:
    for suffix, tolerance in DEFAULT_TOLERANCES:
        if metric.endswith(suffix):
            return tolerance
    return None


def load_results(paths: list[str]) -> dict[str, dict[str, float]]:
    """name -> extra_info metrics, merged across the given JSON files."""
    merged: dict[str, dict[str, float]] = {}
    for path in paths:
        with open(path) as handle:
            data = json.load(handle)
        for bench in data.get("benchmarks", []):
            info = {
                key: value
                for key, value in bench.get("extra_info", {}).items()
                if isinstance(value, (int, float))
            }
            merged.setdefault(bench["name"], {}).update(info)
    return merged


def update_baseline(results: dict[str, dict[str, float]]) -> None:
    baseline = json.loads(BASELINE_PATH.read_text()) if BASELINE_PATH.exists() else {}
    # Orphan detection: a baseline entry whose benchmark (or metric)
    # no longer appears in the provided outputs keeps its stale value
    # silently — and ``check`` would then FAIL it as "missing from
    # benchmark output" on the next CI run.  Warn loudly so a renamed
    # or deleted benchmark gets its baseline entry cleaned up (or the
    # missing JSON gets passed) instead of rotting.
    for name, entries in baseline.items():
        if name not in results:
            print(
                f"  WARNING: baseline benchmark {name!r} absent from the "
                f"provided outputs; its entry was kept unchanged (delete "
                f"it from {BASELINE_PATH.name} if the benchmark is gone)"
            )
            continue
        for metric in entries:
            if metric not in results[name]:
                print(
                    f"  WARNING: baseline metric {name}.{metric} absent "
                    f"from the provided outputs; kept unchanged"
                )
    for name, metrics in results.items():
        entries = baseline.setdefault(name, {})
        # Refresh values of metrics already guarded, keeping tolerances.
        for metric, entry in entries.items():
            if metric in metrics:
                entry["value"] = metrics[metric]
        # Adopt guardable metrics this baseline has never seen — new
        # benchmarks land with the default tolerance for their kind.
        for metric, value in metrics.items():
            if metric in entries:
                continue
            tolerance = _default_tolerance(metric)
            if tolerance is None:
                continue
            entries[metric] = {"value": value, "tolerance": tolerance}
            print(f"  adopted {name}.{metric} (tolerance {tolerance})")
        if not entries:
            del baseline[name]
    BASELINE_PATH.write_text(json.dumps(baseline, indent=1, sort_keys=True) + "\n")
    print(f"baseline updated: {BASELINE_PATH}")


def check(results: dict[str, dict[str, float]]) -> int:
    baseline = json.loads(BASELINE_PATH.read_text())
    scale = float(os.environ.get("REPRO_PERF_TOLERANCE_SCALE", "1.0"))
    failures = 0
    for name in sorted(results):
        guarded = baseline.get(name)
        if guarded is None:
            print(f"  (no baseline for {name}; skipped)")
            continue
        for metric, entry in sorted(guarded.items()):
            current = results[name].get(metric)
            if current is None:
                print(f"FAIL {name}.{metric}: missing from benchmark output")
                failures += 1
                continue
            tolerance = min(0.95, entry["tolerance"] * scale)
            floor = entry["value"] * (1.0 - tolerance)
            verdict = "ok" if current >= floor else "FAIL"
            print(
                f"{verdict:>4} {name}.{metric}: {current:.1f} "
                f"(baseline {entry['value']:.1f}, floor {floor:.1f})"
            )
            if current < floor:
                failures += 1
    if failures:
        print(f"{failures} metric(s) regressed past tolerance")
    else:
        print("all guarded metrics within tolerance")
    return 1 if failures else 0


def main(argv: list[str]) -> int:
    update = "--update" in argv
    paths = [a for a in argv if a != "--update"]
    if not paths:
        print(__doc__)
        return 2
    results = load_results(paths)
    if update:
        update_baseline(results)
        return 0
    return check(results)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
