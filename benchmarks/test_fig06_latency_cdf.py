"""Figure 6: latency CDFs of demand vs prefetch requests under co-running.

Paper (Fastswap-style sync/async QP split, four apps co-running on
Leap): 99% of demand requests are served within ~40 µs, but 36.9% of
prefetch requests exceed 512 µs (up to 52 ms) — prefetched pages arrive
far too late to matter, because the async QP only drains when the sync
QP is idle.
"""

from _common import NATIVES, config, print_header, run_cached
from repro.metrics import format_table
from repro.rdma.message import RequestKind

GROUP = NATIVES + ["spark_lr"]


def _run():
    fastswap = config("fastswap", prefetcher="leap", bandwidth_scale=1.0)
    result = run_cached(GROUP, fastswap)
    demand = result.telemetry.merged_latency(RequestKind.DEMAND)
    prefetch = result.telemetry.merged_latency(RequestKind.PREFETCH)
    return demand, prefetch


def test_fig06_latency_cdf(benchmark):
    demand, prefetch = benchmark.pedantic(_run, rounds=1, iterations=1)

    print_header("Figure 6: demand vs prefetch RDMA latency CDF (µs)")
    percentiles = [50, 90, 95, 99, 99.9]
    rows = [
        ["demand"] + [demand.percentile(p) for p in percentiles],
        ["prefetch"] + [prefetch.percentile(p) for p in percentiles],
    ]
    print(format_table(["kind"] + [f"p{p}" for p in percentiles], rows))
    late = prefetch.fraction_above(512.0)
    print(
        f"prefetch requests beyond 512µs: {100 * late:.1f}%"
        f" (paper: 36.9%); max prefetch latency {prefetch.max_value:,.0f}µs"
    )
    print(f"demand p99: {demand.percentile(99):.1f}µs (paper: ~40µs)")

    # Shape: demand stays fast, prefetch suffers a long tail.
    assert demand.percentile(99) < prefetch.percentile(99)
    assert prefetch.max_value > demand.percentile(99) * 5
