"""Figure 12: benefit of adaptive swap-entry allocation.

Paper: comparing each managed app running individually on Linux 5.5,
co-running on Canvas with adaptive entry allocation disabled, and with
it enabled.  The adaptive allocator adds 1.50x (Spark-LR), 1.77x
(Spark-KM), 1.31x (Cassandra), 1.28x (Neo4j) on top of isolation,
because multi-threaded managed apps otherwise still serialize on their
(now private) allocator lock.
"""

from _common import (
    MANAGED_FOUR,
    NATIVES,
    config,
    prewarm,
    print_header,
    run_cached,
    solo_jobs,
    solo_times,
)
from repro.metrics import format_table


def _run():
    linux = config("linux")
    without = config(
        "canvas", adaptive_allocation=False
    )
    with_adaptive = config("canvas", adaptive_allocation=True)
    prewarm(
        solo_jobs(MANAGED_FOUR, linux)
        + [
            (NATIVES + [managed], cfg)
            for managed in MANAGED_FOUR
            for cfg in (without, with_adaptive)
        ]
    )
    solo = solo_times(MANAGED_FOUR, linux)
    data = {}
    for managed in MANAGED_FOUR:
        group = NATIVES + [managed]
        off = run_cached(group, without)
        on = run_cached(group, with_adaptive)
        data[managed] = (
            solo[managed],
            off.completion_time(managed),
            on.completion_time(managed),
            on.system.adaptive_stats(managed),
            on.apps[managed].stats.clean_drops,
        )
    return data


def test_fig12_adaptive_alloc(benchmark):
    data = benchmark.pedantic(_run, rounds=1, iterations=1)

    print_header("Figure 12: adaptive swap-entry allocation (managed apps, ms)")
    rows = []
    boosts = {}
    for managed, (solo, off, on, stats, clean_drops) in data.items():
        boosts[managed] = off / on
        rows.append(
            [
                managed,
                solo / 1000,
                off / 1000,
                on / 1000,
                boosts[managed],
                f"{100 * stats.lock_free_fraction:.0f}%",
            ]
        )
    print(
        format_table(
            [
                "program",
                "solo (linux)",
                "canvas w/o adaptive",
                "canvas w/ adaptive",
                "boost (x)",
                "lock-free swap-outs",
            ],
            rows,
        )
    )
    print("paper boosts: SLR 1.50x, SKM 1.77x, Cassandra 1.31x, Neo4j 1.28x")

    # Shape: adaptive allocation helps the swap-heavy managed apps, and
    # their evictions mostly skip the allocator lock — either by reusing
    # a reserved entry for the writeback, or (read-mostly pages whose
    # reserved entry still holds valid data) by a free clean drop.
    for managed, (solo, off, on, stats, clean_drops) in data.items():
        assert boosts[managed] > 0.85, f"{managed} must not regress"
        lock_free = stats.reserved_swapouts + clean_drops
        total_evictions = lock_free + stats.locked_allocations
        if total_evictions >= 100:
            assert lock_free / total_evictions > 0.5, managed
    assert max(boosts.values()) > 1.05
