"""Ablation (extension): dynamic swap-cache rebalancing.

§4's closing limitation: "cgroup can only partition resources statically
... future work could incorporate max-min fair allocation to improve
resource utilization."  This benchmark implements and measures that
future work: an asymmetric co-run where one application (XGBoost, heavy
sequential prefetching) keeps overflowing its private swap cache while
another (Memcached, zipf, barely prefetches) leaves its budget idle.
Rebalancing lends the idle budget to the pressured cache.
"""

from _common import config, print_header, run_cached
from repro.metrics import format_table

GROUP = ["xgboost", "memcached"]


def _run():
    results = {}
    for label, enabled in (("static", False), ("rebalanced", True)):
        cfg = config("canvas", dynamic_cache_rebalance=enabled)
        results[label] = run_cached(GROUP, cfg)
    return results


def test_ablation_cache_rebalance(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)

    print_header("Extension ablation: dynamic swap-cache rebalancing")
    rows = []
    for label, result in results.items():
        xg = result.results["xgboost"]
        moved = 0
        if result.system.rebalancer is not None:
            moved = result.system.rebalancer.stats.pages_moved
        rows.append(
            [
                label,
                result.completion_time("xgboost") / 1000,
                result.completion_time("memcached") / 1000,
                100 * xg.prefetch_contribution,
                moved,
            ]
        )
    print(
        format_table(
            ["variant", "xgboost ms", "memcached ms", "xgboost contrib %", "pages moved"],
            rows,
        )
    )

    static = results["static"]
    rebalanced = results["rebalanced"]
    # The extension must be wired up and must not hurt either app.
    assert rebalanced.system.rebalancer is not None
    assert rebalanced.system.rebalancer.stats.rounds > 0
    for name in GROUP:
        assert (
            rebalanced.completion_time(name)
            < static.completion_time(name) * 1.15
        )