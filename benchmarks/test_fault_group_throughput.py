"""Fault-storm microbenchmark: grouped vs. ungrouped fault admission.

Not a paper figure — the harness micro-benchmark guarding the coalesced
fault slow path (PR 7).  ``test_fault_throughput`` pins a fault-heavy
co-run; this one goes further and provokes a genuine *fault storm*:
local memory at 10% of the working set, so per-thread batches are
dominated by dense runs of consecutive non-resident accesses — exactly
the shape ``handle_fault_group`` coalesces into one admission call and
one doorbell-batched NIC submission.

Measured twice on the same seeded co-run:

* **grouped** — ``grouped_faults=True`` (the default): the driver hands
  each run of misses to ``handle_fault_group``, which resolves the whole
  group at one simulated instant and submits its reads through
  ``RNIC.submit_many``'s single doorbell;
* **ungrouped** — ``grouped_faults=False``: the permanent scalar oracle,
  one ``handle_fault`` generator per miss.

The A/B is meaningful only because the two paths are *bit-identical*:
the test asserts ``result_digest`` equality (every per-app counter,
completion time, and the machine clock) before reporting any number.  A
traced grouped run must also agree with the untraced digest, show the
storm actually formed groups (``fault_groups`` > 0 in the trace
summary), and pass every ``repro.obs.check`` lint including the PR 7
group-pairing rule.

``faults_per_second`` (grouped path) feeds ``check_regression.py``
against ``perf_baseline.json``; ``grouped_speedup`` is reported as
``extra_info`` for trend-watching but only sanity-floored here — on
shared CI runners the wall-clock ratio of two ~0.5 s runs is too noisy
for a tight machine-independent bound.
"""

import time

from _common import print_header
from repro.harness import ExperimentConfig, result_digest, run_experiment
from repro.obs.check import check_trace
from repro.obs.trace import summarize_trace

PAIR = ["memcached", "neo4j"]

#: Local memory fraction of the working set.  At 10% the batched driver
#: truncates at a miss almost immediately and the remainder of the batch
#: is one long non-resident run: mean group size sits well above 1, so
#: the grouped path's per-group costs are actually amortized.
STORM_LOCAL_FRACTION = 0.10


def storm_config(**kwargs) -> ExperimentConfig:
    """The fault-storm co-run: memcached + neo4j far above local memory."""
    return ExperimentConfig(
        system="canvas",
        scale=0.25,
        local_memory_fraction=STORM_LOCAL_FRACTION,
        **kwargs,
    )


def _run(config):
    result = run_experiment(PAIR, config)
    faults = sum(result.results[name].stats.faults for name in PAIR)
    return faults, result_digest(result), result


def test_fault_group_storm(benchmark):
    grouped_cfg = storm_config()
    ungrouped_cfg = storm_config(
        system_config_overrides={"grouped_faults": False}
    )

    last = {}

    def run_grouped():
        faults, digest, _ = _run(grouped_cfg)
        last["digest"] = digest
        return faults

    faults = benchmark.pedantic(run_grouped, rounds=3, iterations=1)
    grouped_seconds = benchmark.stats.stats.min
    digest = last["digest"]

    # The scalar oracle: same simulation, one handle_fault per miss.
    ungrouped_seconds = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        ungrouped_faults, ungrouped_digest, _ = _run(ungrouped_cfg)
        ungrouped_seconds = min(ungrouped_seconds, time.perf_counter() - start)
        assert ungrouped_digest == digest, (
            "grouped and ungrouped admission diverged on simulated results"
        )
        assert ungrouped_faults == faults

    # Traced run: digest-inert, proves the storm really coalesced, and
    # must be clean under every causality lint (group pairing included).
    _, traced_digest, traced = _run(storm_config(trace=True))
    assert traced_digest == digest, "tracing changed simulated numbers"
    records = traced.trace.records()
    violations = check_trace(records, truncated=traced.trace.truncated)
    assert not violations, f"trace lints failed: {violations[:5]}"
    summaries = summarize_trace(records)
    groups = sum(s["fault_groups"] for s in summaries.values())
    traced_faults = sum(s["faults"] for s in summaries.values())
    assert groups > 0, "storm produced no fault groups"
    mean_group = traced_faults / groups

    rate = faults / grouped_seconds
    speedup = ungrouped_seconds / grouped_seconds
    benchmark.extra_info["faults"] = faults
    benchmark.extra_info["faults_per_second"] = rate
    benchmark.extra_info["ungrouped_faults_per_second"] = faults / ungrouped_seconds
    benchmark.extra_info["grouped_speedup"] = speedup
    benchmark.extra_info["fault_groups"] = groups
    benchmark.extra_info["mean_group_size"] = mean_group

    print_header("fault storm: grouped vs ungrouped admission")
    print(
        f"grouped:   {faults} faults in {grouped_seconds:.3f}s -> "
        f"{rate / 1e3:.1f}k faults/s"
    )
    print(
        f"ungrouped: {faults} faults in {ungrouped_seconds:.3f}s -> "
        f"{faults / ungrouped_seconds / 1e3:.1f}k faults/s "
        f"(grouped speedup {speedup:.2f}x)"
    )
    print(f"{groups} groups, mean size {mean_group:.1f} faults/group")

    assert faults > 0
    # Dense runs actually formed: a storm where most "groups" are single
    # faults would not exercise the coalesced path at all.
    assert mean_group > 1.5, f"storm too sparse: {mean_group:.2f} faults/group"
    # Sanity floor only — wall-clock ratios of sub-second runs swing
    # ±25% on shared runners; the real guard is faults_per_second vs the
    # checked-in baseline.
    assert speedup > 0.75, (
        f"grouped admission slower than the scalar oracle: {speedup:.2f}x"
    )
