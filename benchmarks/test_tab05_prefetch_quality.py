"""Table 5: prefetching contribution and accuracy per prefetcher.

Paper (each managed app co-running with the three natives): Leap has the
lowest accuracy (16.8-35.9% on Spark apps) because it keeps prefetching
with no pattern; the kernel prefetcher is conservative and accurate
(93.9-96.4%) but contributes less than Canvas's two-tier prefetcher,
which adds semantic (reference/thread) patterns on top (79.2/79.3/75.3%
contribution for the Spark apps).
"""

from _common import NATIVES, config, print_header, run_cached
from repro.metrics import format_table

MANAGED = ["spark_lr", "spark_km", "spark_tc", "neo4j"]


def _run():
    leap = config(
        "canvas",
        two_tier_prefetch=False,
        prefetcher="leap",  # unused by canvas; kernel tier overridden below
    )
    # Canvas with Leap as the (isolated) kernel-tier prefetcher:
    from repro.core.canvas import CanvasConfig
    from repro.prefetch.leap import LeapPrefetcher

    data = {}
    for managed in MANAGED:
        group = NATIVES + [managed]
        kernel = run_cached(group, config("canvas", two_tier_prefetch=False))
        two_tier = run_cached(group, config("canvas", two_tier_prefetch=True))
        leap_run = run_cached(group, config("linux", prefetcher="leap-isolated"))
        data[managed] = {
            "leap": leap_run.results[managed],
            "kernel": kernel.results[managed],
            "two-tier": two_tier.results[managed],
        }
    return data


def test_tab05_prefetch_quality(benchmark):
    data = benchmark.pedantic(_run, rounds=1, iterations=1)

    print_header("Table 5: prefetching contribution / accuracy (%)")
    rows = []
    for managed, by_prefetcher in data.items():
        for label in ("leap", "kernel", "two-tier"):
            result = by_prefetcher[label]
            rows.append(
                [
                    f"{managed} ({label})",
                    100 * result.prefetch_contribution,
                    100 * result.prefetch_accuracy,
                ]
            )
    print(format_table(["program (prefetcher)", "contribution %", "accuracy %"], rows))
    print("paper: Leap accuracy 6-36%; kernel 80-96%; two-tier contribution highest")

    for managed, by_prefetcher in data.items():
        leap = by_prefetcher["leap"]
        kernel = by_prefetcher["kernel"]
        two_tier = by_prefetcher["two-tier"]
        # Leap's aggressive fallback has the worst accuracy.
        assert leap.prefetch_accuracy < kernel.prefetch_accuracy
        # The two-tier prefetcher contributes comparably to the kernel
        # tier on stride-friendly apps (its gains concentrate on the
        # pointer-chasing ones, asserted below).
        assert two_tier.prefetch_contribution >= kernel.prefetch_contribution * 0.7
    spark_rows = [m for m in MANAGED if m.startswith("spark")]
    assert any(
        data[m]["two-tier"].prefetch_contribution
        > data[m]["kernel"].prefetch_contribution
        for m in spark_rows
    )
