"""Figure 11: isolation alone reduces co-run degradation.

Paper: a Canvas variant with only the isolated swap system and vertical
RDMA scheduling (no adaptive allocation, no two-tier prefetching, no
horizontal scheduling) cuts co-run times by up to 5.2x (average 2.5x) at
25% local memory; Memcached, with only 4 threads, gains the most (3.3x)
because it can finally stop competing with Spark's ~90 threads.
"""

from _common import (
    MANAGED_FOUR,
    NATIVES,
    config,
    geometric_mean,
    prewarm,
    print_header,
    run_cached,
)
from repro.metrics import format_table


def _run():
    linux = config("linux")
    iso = config("canvas-iso")
    prewarm(
        [(NATIVES + [managed], cfg) for managed in MANAGED_FOUR for cfg in (linux, iso)]
    )
    data = {}
    for managed in MANAGED_FOUR:
        group = NATIVES + [managed]
        linux_co = run_cached(group, linux)
        iso_co = run_cached(group, iso)
        for app in group:
            data[(managed, app)] = (
                linux_co.completion_time(app),
                iso_co.completion_time(app),
            )
    return data


def test_fig11_isolation(benchmark):
    data = benchmark.pedantic(_run, rounds=1, iterations=1)

    print_header("Figure 11: isolation-only co-run times (ms) vs Linux 5.5")
    rows = []
    gains = []
    native_gains = {name: [] for name in NATIVES}
    for (managed, app), (linux_t, iso_t) in sorted(data.items()):
        gain = linux_t / iso_t
        rows.append([f"{managed}:{app}", linux_t / 1000, iso_t / 1000, gain])
        gains.append(gain)
        if app in native_gains:
            native_gains[app].append(gain)
    print(format_table(["group:app", "linux co", "isolation co", "gain (x)"], rows))
    print(
        f"isolation gain: max {max(gains):.2f}x geomean {geometric_mean(gains):.2f}x"
        f" (paper: up to 5.2x, avg 2.5x)"
    )
    memcached_gain = geometric_mean(native_gains["memcached"])
    print(f"memcached gain {memcached_gain:.2f}x (paper: 3.3x)")

    assert geometric_mean(gains) > 1.25
    assert max(gains) > 2.0
    # The few-threaded latency-sensitive app benefits most among natives.
    assert memcached_gain > 1.5
