"""Figure 15 (Appendix A): time spent on swap-entry allocation.

Paper: each application spends far more of its execution on obtaining
swap entries when co-running on Linux 5.5 than when running alone (up to
~70% of busy windows), because every allocation serializes on the shared
free-list lock.  We report the mean time a swap-out spends obtaining its
entry (wait + critical section) and the share of wall-clock thread time.
"""

from _common import config, print_header, run_cached
from repro.metrics import format_table

APPS = ["spark_lr", "xgboost", "snappy"]


def _alloc_metrics(result, name):
    app = result.apps[name]
    elapsed = app.completion_time_us or result.elapsed_us
    allocations = result.telemetry.alloc_rate(name).total
    per_alloc = app.stats.alloc_stall_us / allocations if allocations else 0.0
    share = 100.0 * app.stats.alloc_stall_us / (elapsed * app.config.n_cores)
    return per_alloc, share


def _run():
    linux = config("linux")
    solo = {name: _alloc_metrics(run_cached([name], linux), name) for name in APPS}
    corun_result = run_cached(APPS, linux)
    corun = {name: _alloc_metrics(corun_result, name) for name in APPS}
    return solo, corun


def test_fig15_alloc_time_pct(benchmark):
    solo, corun = benchmark.pedantic(_run, rounds=1, iterations=1)

    print_header("Figure 15: time spent obtaining swap entries (Linux 5.5)")
    rows = [
        [name, solo[name][0], corun[name][0], solo[name][1], corun[name][1]]
        for name in APPS
    ]
    print(
        format_table(
            [
                "program",
                "solo µs/alloc",
                "co-run µs/alloc",
                "solo % of time",
                "co-run % of time",
            ],
            rows,
        )
    )
    print("paper: co-running pushes allocation to up to ~70% of busy windows")

    # Shape: the shared lock makes each allocation far more expensive
    # when applications co-run.
    for name in APPS:
        assert corun[name][0] > solo[name][0] * 1.3, (
            f"{name}: per-allocation time must rise under co-running"
        )
