"""Figure 9: individual applications on basic swap systems.

Paper: each application running *alone* on Infiniswap, Infiniswap+Leap,
Fastswap, and Canvas's ported Fastswap (Canvas-swap, no isolation
features needed solo).  Infiniswap (block layer, no sync/async split) is
slowest; Fastswap and Canvas-swap perform similarly.  Infiniswap hung on
XGBoost and Spark, so those bars are absent.
"""

from _common import config, print_header, run_cached
from repro.baselines.infiniswap import InfiniswapSystem
from repro.metrics import format_table

APPS = ["spark_lr", "cassandra", "neo4j", "memcached", "xgboost", "snappy"]
SYSTEMS = [
    ("infiniswap", "readahead"),
    ("infiniswap+leap", "leap"),
    ("fastswap", "readahead"),
    ("canvas-swap", "readahead"),
]


def _run():
    times = {}
    for label, prefetcher in SYSTEMS:
        if label == "infiniswap+leap":
            cfg = config("infiniswap", prefetcher="leap")
        elif label == "canvas-swap":
            # Canvas's swap core without co-run features engaged: solo on
            # the full system (isolation is a no-op with one app).
            cfg = config("canvas")
        else:
            cfg = config(label, prefetcher=prefetcher)
        for app in APPS:
            if label.startswith("infiniswap") and app in InfiniswapSystem.UNSUPPORTED:
                times[(label, app)] = None  # the documented hang
                continue
            result = run_cached([app], cfg)
            times[(label, app)] = result.completion_time(app) / 1000.0
    return times


def test_fig09_basic_systems(benchmark):
    times = benchmark.pedantic(_run, rounds=1, iterations=1)

    print_header("Figure 9: individual runs on basic swap systems (ms, simulated)")
    rows = []
    for app in APPS:
        row = [app]
        for label, _pf in SYSTEMS:
            value = times[(label, app)]
            row.append("hang" if value is None else value)
        rows.append(row)
    print(format_table(["program"] + [label for label, _ in SYSTEMS], rows))

    # Shapes: Infiniswap (block layer) is slower than Fastswap on the
    # workloads it can run; Canvas-swap tracks Fastswap within ~35%.
    for app in ("memcached", "snappy", "neo4j", "cassandra"):
        assert times[("infiniswap", app)] > times[("fastswap", app)]
    for app in APPS:
        fast = times[("fastswap", app)]
        canvas = times[("canvas-swap", app)]
        assert canvas < fast * 1.35, f"canvas-swap far off fastswap on {app}"
