"""Figure 13 (+16a analog): entry allocation vs core count, Memcached.

Paper: running Memcached alone under 25% local memory with 8-48 cores.
Under Linux 5.5, per-entry allocation time grows super-linearly with
cores (10µs at 16 → 130µs at 48) so the swap-out rate *decreases*; under
Canvas, entry reservations make most swap-outs lock-free, the measured
allocation rate stays low, and the swap-out rate scales with cores.
"""

from _common import config, print_header, run_cached
from repro.metrics import format_table

CORE_COUNTS = [8, 16, 32, 48]


def _measure(result):
    app = result.apps["memcached"]
    elapsed = app.completion_time_us or result.elapsed_us
    swapout_rate = result.telemetry.swapout_rate("memcached").mean_rate_per_second(
        elapsed
    )
    alloc_rate = result.telemetry.alloc_rate("memcached").mean_rate_per_second(elapsed)
    allocations = result.telemetry.alloc_rate("memcached").total
    alloc_time = (
        app.stats.alloc_stall_us / allocations if allocations else 0.0
    )
    return swapout_rate / 1000.0, alloc_rate / 1000.0, alloc_time


def _run():
    data = {}
    for cores in CORE_COUNTS:
        overrides = {
            "cores_override": {"memcached": cores},
            "workload_overrides": {
                "memcached": {"n_threads": cores, "accesses_per_thread": 250}
            },
            # The paper's regime: swap-outs happen on the faulting threads
            # themselves (every thread allocates), so contention scales
            # with the core count.  A minimal kswapd forces direct reclaim.
            "system_config_overrides": {"kswapd_batch": 1},
        }
        linux = run_cached(["memcached"], config("linux", **overrides))
        canvas = run_cached(["memcached"], config("canvas", **overrides))
        data[cores] = {"linux": _measure(linux), "canvas": _measure(canvas)}
    return data


def test_fig13_alloc_scalability(benchmark):
    data = benchmark.pedantic(_run, rounds=1, iterations=1)

    print_header("Figure 13: Memcached entry allocation vs cores (Canvas vs Linux 5.5)")
    rows = []
    for cores in CORE_COUNTS:
        linux = data[cores]["linux"]
        canvas = data[cores]["canvas"]
        rows.append(
            [
                cores,
                canvas[0],
                linux[0],
                canvas[1],
                linux[1],
                canvas[2],
                linux[2],
            ]
        )
    print(
        format_table(
            [
                "cores",
                "canvas swapout K/s",
                "linux swapout K/s",
                "canvas alloc K/s",
                "linux alloc K/s",
                "canvas per-entry µs",
                "linux per-entry µs",
            ],
            rows,
        )
    )
    print("paper: linux per-entry 10µs@16 -> 130µs@48; canvas flat & low")

    first, last = CORE_COUNTS[0], CORE_COUNTS[-1]
    # Linux: per-entry allocation time grows with cores (super-linear),
    # dragging its swap-out rate flat/down; Canvas's swap-out rate grows.
    assert data[last]["linux"][2] > data[first]["linux"][2] * 2
    assert data[last]["canvas"][0] > data[first]["canvas"][0]
    # Canvas: reservations keep the allocation rate far below the
    # swap-out rate and per-entry time below Linux's at high core counts.
    assert data[last]["canvas"][1] < data[last]["canvas"][0] * 0.2
    assert data[last]["canvas"][2] < data[last]["linux"][2]
