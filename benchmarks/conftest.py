"""Benchmark session configuration.

Benchmarks print the reproduced rows/series; ``-s`` (or pytest-benchmark's
normal output capture) shows them.  All experiments are deterministic, so
one round per benchmark is the meaningful measurement unit.
"""

import sys
from pathlib import Path

# Allow `from _common import ...` in benchmark modules when pytest is
# invoked from the repository root.
sys.path.insert(0, str(Path(__file__).parent))
