"""Benchmark session configuration.

Benchmarks print the reproduced rows/series; ``-s`` (or pytest-benchmark's
normal output capture) shows them.  All experiments are deterministic, so
one round per benchmark is the meaningful measurement unit.

The terminal summary reports experiment-cache traffic (memory/disk
hits vs. simulations) and the per-job wall clock, so the effect of
``$REPRO_CACHE_DIR`` and parallel prewarming is visible in every run.
"""

import sys
from pathlib import Path

# Allow `from _common import ...` in benchmark modules when pytest is
# invoked from the repository root.
sys.path.insert(0, str(Path(__file__).parent))


def pytest_terminal_summary(terminalreporter):
    from repro.harness.cache import CACHE_STATS
    from repro.metrics import format_cache_summary, format_run_log

    import _common

    if CACHE_STATS.total_lookups or _common.RUN_LOG:
        terminalreporter.section("experiment cache")
        terminalreporter.write_line(format_cache_summary(CACHE_STATS))
        if _common.RUN_LOG:
            terminalreporter.write_line(format_run_log(_common.RUN_LOG))
    if _common.PROFILER is not None and _common.PROFILER.runs:
        terminalreporter.section("simulation profile (REPRO_PROFILE)")
        terminalreporter.write_line(_common.PROFILER.format())
