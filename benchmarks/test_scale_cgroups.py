"""1,000-cgroup co-run: flat kernel state at multi-tenant scale.

Not a paper figure — the harness macro-benchmark guarding the flat-array
kernel state (PR 6).  Canvas's motivating setting is many cgroups
sharing one swap path; this benchmark builds an elastic co-run of
hundreds to a thousand single-core cgroups that arrive staggered, run
mostly-resident access streams, and depart as they finish.  A minority
of cgroups run above their local memory so reclaim/fault slow-path
traffic stays in the mix.

Measured twice on the same seeded co-run:

* **flat** — ``AppContext(flat_state=True)``: generation-stamp LRU over
  the address space's VPN-indexed arrays, vectorized ``consume_batch``
  fast path (the default for batched experiments);
* **legacy** — ``flat_state=False``: linked active/inactive lists and
  the per-page scan core (the representation before PR 6).

Both runs must agree on every per-app access/fault count and finish
time (the A/B assertion below); the guarded numbers are events/sec
(engine callbacks dispatched per wall second) and the flat/legacy
wall-clock ratio at 1,000 cgroups.  The assertion floor (4x) sits below
the typical ~5.5-6x speedup to stay robust on noisy runners.
"""

import time

import numpy as np

from _common import print_header
from repro.harness.driver import run_to_completion, spawn_app
from repro.harness.machine import Machine
from repro.kernel.cgroup import AppContext, CgroupConfig
from repro.kernel.swap_system import LinuxSwapSystem, SwapSystemConfig
from repro.sim.rng import derive_seed
from repro.workloads.batch import emit_batches

SEED = 7
#: Per-cgroup working set; small enough that 1,000 cgroups build fast,
#: large enough that reclaim has real victim choices.
WS_PAGES = 48
#: Mean accesses per cgroup; the actual count varies ±50% per app so
#: departures spread out instead of finishing in one wave.
ACCESSES_PER_APP = 24_000
#: Every Nth cgroup runs above its local memory (reclaim + faults).
#: Pressured cgroups run a shorter stream: the event-driven fault and
#: reclaim slow path costs the same under both representations, so it
#: stays in the mix as realism, not as the dominant term — the guarded
#: number is the resident path both representations spend most of the
#: co-run on.
PRESSURED_EVERY = 20
PRESSURED_LOCAL_FRACTION = 0.9
PRESSURED_ACCESS_DIVISOR = 30
#: Arrivals are spread uniformly over this window (elastic arrive).
ARRIVAL_SPREAD_US = 20_000.0
CPU_US = 0.05
CPU_FLUSH_US = 800.0

SWEEP = (100, 300, 1000)
N_FULL = 1000


def build_corun(n_apps: int, flat_state: bool, seed: int = SEED):
    """An n-app elastic co-run on a Linux-baseline system.

    Returns ``(machine, apps, procs)``; ``procs`` are the arrival
    wrappers, so waiting on them covers sleep-then-run of every app.
    """
    machine = Machine(seed=seed)
    engine = machine.engine
    system = LinuxSwapSystem(
        engine,
        machine.nic,
        partition_pages=max(4096, n_apps * WS_PAGES),
        telemetry=machine.telemetry,
        config=SwapSystemConfig(shared_cache_pages=max(256, 4 * n_apps)),
    )
    apps = []
    procs = []
    for index in range(n_apps):
        name = f"cg{index:04d}"
        pressured = index % PRESSURED_EVERY == 0
        if pressured:
            local = int(WS_PAGES * PRESSURED_LOCAL_FRACTION)
            resident_fraction = PRESSURED_LOCAL_FRACTION * 0.85
        else:
            # Local memory above the working set: pure resident fast
            # path, no kswapd pressure (same headroom rule the
            # experiment harness uses).
            local = int(WS_PAGES * 1.3)
            resident_fraction = 1.0
        app = AppContext(
            engine,
            CgroupConfig(name=name, n_cores=1, local_memory_pages=local),
            flat_state=flat_state,
        )
        vma = app.space.map_region(WS_PAGES, name="heap")
        system.register_app(app)
        system.prepopulate(app, resident_fraction=resident_fraction)
        rng = np.random.default_rng(derive_seed(seed, name))
        base = ACCESSES_PER_APP // PRESSURED_ACCESS_DIVISOR if pressured else ACCESSES_PER_APP
        n = int(base * (0.5 + rng.random()))
        vpns = rng.integers(vma.start_vpn, vma.end_vpn, size=n)
        writes = rng.random(n) < 0.3
        arrival = float(rng.random() * ARRIVAL_SPREAD_US)
        batches = emit_batches(vpns, writes, CPU_US)

        def arrive(app=app, batches=batches, arrival=arrival):
            yield engine.sleep(arrival)
            proc = spawn_app(
                system, app, [batches], cpu_flush_us=CPU_FLUSH_US, batched=True
            )
            yield engine.all_of([proc])

        apps.append(app)
        procs.append(engine.spawn(arrive(), name=f"{name}.arrival"))
    return machine, apps, procs


def run_corun(n_apps: int, flat_state: bool):
    """Build + run one co-run; returns (wall_s, steps, accesses, apps)."""
    machine, apps, procs = build_corun(n_apps, flat_state)
    start = time.perf_counter()
    run_to_completion(machine.engine, procs)
    wall = time.perf_counter() - start
    accesses = sum(app.stats.accesses for app in apps)
    return wall, machine.engine.step_count, accesses, apps


def _fingerprint(apps):
    """Everything the A/B comparison demands agreement on."""
    return {
        app.name: (
            app.stats.accesses,
            app.stats.faults,
            app.stats.swapouts,
            app.started_at_us,
            app.finished_at_us,
        )
        for app in apps
    }


def test_scale_cgroups_flat_vs_legacy(benchmark):
    """The tentpole number: events/sec at 1,000 cgroups, flat vs legacy."""
    print_header("cgroup-scale co-run sweep (flat state)")
    print(f"{'cgroups':>8} {'wall_s':>8} {'events/s':>12} {'accesses/s':>12}")
    for n_apps in SWEEP:
        if n_apps == N_FULL:
            continue
        wall, steps, accesses, _ = run_corun(n_apps, flat_state=True)
        print(
            f"{n_apps:>8} {wall:>8.3f} {steps / wall:>12.0f} "
            f"{accesses / wall:>12.0f}"
        )

    state = {}

    def setup():
        machine, apps, procs = build_corun(N_FULL, flat_state=True)
        state["machine"], state["apps"], state["procs"] = machine, apps, procs
        return (), {}

    def run_full():
        run_to_completion(state["machine"].engine, state["procs"])
        return state["machine"].engine.step_count

    steps = benchmark.pedantic(run_full, setup=setup, rounds=3, iterations=1)
    seconds = benchmark.stats.stats.min
    apps = state["apps"]
    accesses = sum(app.stats.accesses for app in apps)
    events_per_second = steps / seconds
    flat_fingerprint = _fingerprint(apps)

    # Elastic arrive/depart actually happened: starts and finishes are
    # spread, not one synchronized wave.
    starts = sorted(app.started_at_us for app in apps)
    finishes = sorted(app.finished_at_us for app in apps)
    assert starts[-1] - starts[0] > ARRIVAL_SPREAD_US / 2
    assert finishes[-1] > finishes[0]
    assert sum(1 for app in apps if app.stats.faults) >= N_FULL // PRESSURED_EVERY

    legacy_wall, legacy_steps, legacy_accesses, legacy_apps = run_corun(
        N_FULL, flat_state=False
    )
    assert legacy_steps == steps, "flat and legacy dispatched different events"
    assert legacy_accesses == accesses
    assert _fingerprint(legacy_apps) == flat_fingerprint, (
        "flat and legacy kernel state diverged on per-app results"
    )
    speedup = legacy_wall / seconds

    benchmark.extra_info["cgroups"] = N_FULL
    benchmark.extra_info["events"] = steps
    benchmark.extra_info["events_per_second"] = events_per_second
    benchmark.extra_info["accesses_per_second"] = accesses / seconds
    benchmark.extra_info["legacy_events_per_second"] = legacy_steps / legacy_wall
    benchmark.extra_info["flat_speedup"] = speedup

    print_header("1,000-cgroup co-run: flat vs legacy kernel state")
    print(
        f"flat:   {steps} events in {seconds:.3f}s -> "
        f"{events_per_second / 1e3:.0f}k events/s, "
        f"{accesses / seconds / 1e6:.2f}M accesses/s"
    )
    print(
        f"legacy: {legacy_steps} events in {legacy_wall:.3f}s -> "
        f"{legacy_steps / legacy_wall / 1e3:.0f}k events/s "
        f"(flat speedup {speedup:.2f}x)"
    )
    assert speedup > 4.0, (
        f"flat kernel state regressed: only {speedup:.2f}x legacy at scale"
    )
