"""Graceful degradation under fabric faults (extension; no paper figure).

A Canvas co-run is repeated under the acceptance fault scenario — 1%
silent wire drops plus one link flap pinned inside the run window — and
compared against the fault-free baseline.  The claims under test:

* every application still completes (retried demand faults all finish;
  no livelock or collapse),
* the slowdown is proportional to the injected fault load, not
  catastrophic,
* the per-cgroup report separates transport retry stalls from ordinary
  queueing/service stalls (``retry_stall_us`` vs the rest of
  ``fault_stall_us``).
"""

from dataclasses import replace

from _common import NATIVES, config, geometric_mean, print_header, run_cached
from repro.faults import FaultConfig
from repro.metrics import (
    FAULT_STALL_HEADERS,
    fault_stall_rows,
    format_fault_summary,
    format_table,
)

GROUP = NATIVES  # snappy + memcached + xgboost on canvas


def _run():
    base = config("canvas")
    baseline = run_cached(GROUP, base)
    # Pin the flap a quarter of the way into the shortest app's run so it
    # always lands inside the window regardless of the scale knob.
    first_done = min(baseline.completion_time(name) for name in GROUP)
    fault_config = FaultConfig(
        drop_prob=0.01,
        flap_windows=((0.25 * first_done, 2_000.0),),
    )
    faulted = run_cached(GROUP, replace(base, fault_config=fault_config))
    return baseline, faulted


def test_fault_degradation(benchmark):
    baseline, faulted = benchmark.pedantic(_run, rounds=1, iterations=1)

    print_header(
        "Fault degradation: canvas co-run under 1% drops + one link flap"
    )
    rows = []
    slowdowns = []
    for name in GROUP:
        base_t = baseline.completion_time(name)
        fault_t = faulted.completion_time(name)
        slowdown = fault_t / base_t
        slowdowns.append(slowdown)
        rows.append([name, base_t / 1000, fault_t / 1000, slowdown])
    print(format_table(["app", "baseline (ms)", "faulted (ms)", "slowdown (x)"], rows))
    print()
    print(format_table(FAULT_STALL_HEADERS, fault_stall_rows(faulted.results)))
    if faulted.machine is not None:  # live run (not a pickled cache hit)
        print()
        print(format_fault_summary(faulted.machine.nic.stats))

    # Everyone completed: every retried demand fault eventually landed.
    for name in GROUP:
        assert faulted.completion_time(name) is not None
        assert faulted.results[name].stats.faults > 0
    # Degradation is proportional, not a collapse or a livelock.
    assert all(s < 5.0 for s in slowdowns)
    assert geometric_mean(slowdowns) < 2.5
    # The retransmission machinery actually engaged and its backoff time
    # was attributed to the cgroups that suffered it.
    total_retry_stall = sum(
        faulted.results[name].stats.retry_stall_us for name in GROUP
    )
    assert total_retry_stall > 0.0
    # Retry stall is a strict subset of each app's total fault stall.
    for name in GROUP:
        stats = faulted.results[name].stats
        assert stats.retry_stall_us <= stats.fault_stall_us
    if faulted.machine is not None:
        nic = faulted.machine.nic.stats
        assert nic.wire_drops > 0
        assert nic.retransmits > 0
        assert nic.flap_stall_us > 0.0
        # Every injected fault was retransmitted or surfaced.
        assert (
            nic.wire_drops + nic.completion_errors
            == nic.retransmits + nic.transport_failures
        )
