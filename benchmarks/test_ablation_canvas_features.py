"""Ablation: which Canvas layer buys what.

Not a paper figure per se, but the synthesis of §6.3-6.4: starting from
the Linux 5.5 co-run, add isolation, then each adaptive optimization,
and report the managed app's and natives' slowdowns at each step.  The
expected staircase: isolation does the heavy lifting (Fig. 11), adaptive
allocation adds a further boost for multi-threaded managed apps
(Fig. 12), and the full system is at least as good as any partial stack.
"""

from _common import NATIVES, config, geometric_mean, print_header, run_cached, solo_times
from repro.metrics import format_table

GROUP = NATIVES + ["spark_lr"]
VARIANTS = [
    ("linux 5.5", dict(system="linux")),
    ("+ isolation", dict(system="canvas-iso")),
    (
        "+ adaptive alloc",
        dict(
            system="canvas",
            adaptive_allocation=True,
            two_tier_prefetch=False,
            horizontal_scheduling=False,
        ),
    ),
    (
        "+ two-tier prefetch",
        dict(
            system="canvas",
            adaptive_allocation=True,
            two_tier_prefetch=True,
            horizontal_scheduling=False,
        ),
    ),
    ("+ 2D scheduling (full)", dict(system="canvas")),
]


def _run():
    solo = solo_times(GROUP, config("linux"))
    rows = {}
    for label, overrides in VARIANTS:
        result = run_cached(GROUP, config(**overrides))
        rows[label] = {
            name: result.completion_time(name) / solo[name] for name in GROUP
        }
    return rows


def test_ablation_canvas_features(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)

    print_header("Ablation: slowdown vs solo as Canvas layers stack up")
    table = [
        [label] + [slowdowns[name] for name in GROUP]
        + [geometric_mean(list(slowdowns.values()))]
        for label, slowdowns in rows.items()
    ]
    print(format_table(["variant"] + GROUP + ["geomean"], table))

    geomeans = {
        label: geometric_mean(list(slowdowns.values()))
        for label, slowdowns in rows.items()
    }
    # Staircase: isolation is the big step; the full stack beats Linux
    # by a wide margin and is not worse than isolation alone.
    assert geomeans["+ isolation"] < geomeans["linux 5.5"] * 0.8
    assert geomeans["+ 2D scheduling (full)"] < geomeans["linux 5.5"] * 0.7
    assert geomeans["+ 2D scheduling (full)"] < geomeans["+ isolation"] * 1.1