"""§6.4.2 "Time": runtime benefit of two-tier prefetching.

Paper: with isolation + adaptive allocation as the baseline, enabling
the application tier adds 33% (Spark-LR), 17% (Spark-KM), 19%
(Spark-TC), 8% (Neo4j); Leap — aggressive, pattern-less fallback —
instead *slows managed apps down* 1.4x versus the kernel's default
prefetcher because useless prefetches waste bandwidth and swap cache.
"""

from _common import NATIVES, config, print_header, run_cached
from repro.metrics import format_table

MANAGED = ["spark_lr", "spark_km", "spark_tc", "neo4j"]


def _run():
    kernel_only = config("canvas", two_tier_prefetch=False)
    two_tier = config("canvas", two_tier_prefetch=True)
    leap = config(
        "canvas",
        two_tier_prefetch=False,
        system_config_overrides={"max_inflight_prefetches": 96},
    )
    data = {}
    for managed in MANAGED:
        group = NATIVES + [managed]
        base = run_cached(group, kernel_only).completion_time(managed)
        tt = run_cached(group, two_tier).completion_time(managed)
        data[managed] = (base, tt)
    return data


def test_prefetch_time(benchmark):
    data = benchmark.pedantic(_run, rounds=1, iterations=1)

    print_header("§6.4.2: two-tier prefetching runtime benefit (managed apps)")
    rows = []
    gains = {}
    for managed, (base, tt) in data.items():
        gains[managed] = base / tt
        rows.append([managed, base / 1000, tt / 1000, f"{100 * (base / tt - 1):+.0f}%"])
    print(
        format_table(
            ["program", "kernel prefetcher (ms)", "two-tier (ms)", "benefit"], rows
        )
    )
    print("paper: SLR +33%, SKM +17%, STC +19%, Neo4j +8%")
    print(
        "note: at 1/1000 scale the private swap cache cannot hold one\n"
        "prefetch window per thread, so application-tier gains are muted\n"
        "relative to the paper (see EXPERIMENTS.md); the shape preserved\n"
        "here is 'two-tier never hurts and trends positive'."
    )

    # Shape: the application tier is neutral-to-positive; it never badly
    # regresses a managed app (Leap, by contrast, slows them 1.4x).
    import statistics

    assert statistics.mean(gains.values()) > 0.97
    assert max(gains.values()) > 1.0
    for managed, gain in gains.items():
        assert gain > 0.85, f"two-tier must not badly regress {managed}"
