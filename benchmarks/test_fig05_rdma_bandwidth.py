"""Figure 5: RDMA swap-in bandwidth, individually vs together.

Paper: the summed RDMA read bandwidth of Spark-LR + XGBoost + Snappy
co-running on Linux 5.5 stays ~3.28x below the sum of their individual
runs (locking, reduced prefetching, shared queues); writes degrade
~2.80x.
"""

from _common import config, print_header, run_cached
from repro.metrics import format_table

APPS = ["spark_lr", "xgboost", "snappy"]


def _bandwidths(result, name):
    elapsed = result.apps[name].completion_time_us or result.elapsed_us
    read = result.telemetry.read_bandwidth.mean_mbps(name, elapsed)
    write = result.telemetry.write_bandwidth.mean_mbps(name, elapsed)
    return read, write


def _run():
    linux = config("linux")
    solo = {name: _bandwidths(run_cached([name], linux), name) for name in APPS}
    corun_result = run_cached(APPS, linux)
    corun = {name: _bandwidths(corun_result, name) for name in APPS}
    return solo, corun


def test_fig05_rdma_bandwidth(benchmark):
    solo, corun = benchmark.pedantic(_run, rounds=1, iterations=1)

    print_header("Figure 5: RDMA swap-in bandwidth (MB/s)")
    rows = [
        [name, solo[name][0], corun[name][0], solo[name][1], corun[name][1]]
        for name in APPS
    ]
    print(
        format_table(
            ["program", "read solo", "read co-run", "write solo", "write co-run"],
            rows,
        )
    )
    read_solo = sum(v[0] for v in solo.values())
    read_corun = sum(v[0] for v in corun.values())
    write_solo = sum(v[1] for v in solo.values())
    write_corun = sum(v[1] for v in corun.values())
    print(
        f"total read: {read_solo:,.0f} -> {read_corun:,.0f} MB/s"
        f" ({read_solo / max(read_corun, 1e-9):.2f}x lower; paper ~3.28x)"
    )
    print(
        f"total write: {write_solo:,.0f} -> {write_corun:,.0f} MB/s"
        f" ({write_solo / max(write_corun, 1e-9):.2f}x lower; paper ~2.80x)"
    )

    # Shape: per-app summed bandwidth degrades when co-running.
    assert read_corun < read_solo * 0.8
