"""Fault throughput: simulated page faults per second through the slow path.

Not a paper figure — a harness micro-benchmark guarding the fault slow
path (PR 3).  Where ``test_access_throughput`` measures the batched
resident fast path, this one pins the co-run under heavy memory
pressure so wall-clock is dominated by everything a fault touches:
pooled park/kick events, recycled ``RdmaRequest`` objects, the NIC's
batch-draining dispatch loop, bound-method completion delivery, and
(for the Leap configuration) the incremental majority vote.

Two configurations:

* **canvas fault-heavy co-run** — memcached + neo4j on Canvas with
  local memory at 25% of the working set; exercises the two-tier
  scheduler, timeliness drops, and the dropped-request recycle path.
* **linux + Leap** — the same pair on the shared-baseline kernel with
  the Leap prefetcher, so the incremental Boyer-Moore vote sits on the
  measured path.

Numbers land in ``benchmark.extra_info`` (faults/sec plus the NIC's
served request mix) and the CI workflow uploads the JSON as an
artifact; ``benchmarks/check_regression.py`` compares them against the
checked-in baseline.  When the slow-path overhaul landed, the canvas
configuration measured 1.67x faults/sec over the previous slow path
(interleaved min-of-mins: 0.564s -> 0.338s per run) and linux+leap
1.36x, with every simulated number bit-identical.  The grouped-admission
pass (PR 7: coalesced fault groups, doorbell-batched submission, the
append-fed LRU victim queue, and assorted hot-path micro-work) measured
a further ~1.25x on this canvas configuration and ~1.38x under a denser
fault storm (local memory at 10%, see ``test_fault_group_throughput``),
with linux+leap roughly unchanged (~1.05x) — all interleaved
median-of-ratios A/B against the pre-PR tree, digests identical.  Each
test also re-runs its configuration with the simulation profiler
attached and asserts digest equality — profiled and unprofiled slow
paths must produce bit-identical simulations.
"""

from _common import print_header
from repro.harness import ExperimentConfig, result_digest, run_experiment

PAIR = ["memcached", "neo4j"]


def fault_config(system: str = "canvas", **kwargs) -> ExperimentConfig:
    """Fault-heavy co-run: local memory well below the working set."""
    return ExperimentConfig(
        system=system,
        scale=0.25,
        local_memory_fraction=0.25,
        **kwargs,
    )


def _run(config):
    """One experiment; returns (total faults, nic stats, digest)."""
    result = run_experiment(PAIR, config)
    faults = sum(result.results[name].stats.faults for name in PAIR)
    return faults, result.machine.nic.stats, result_digest(result)


def _report(benchmark, label, faults, nic):
    seconds = benchmark.stats.stats.min
    rate = faults / seconds
    benchmark.extra_info["faults"] = faults
    benchmark.extra_info["faults_per_second"] = rate
    benchmark.extra_info["nic_demand_completed"] = nic.demand_completed
    benchmark.extra_info["nic_prefetch_completed"] = nic.prefetch_completed
    benchmark.extra_info["nic_swapout_completed"] = nic.swapout_completed
    benchmark.extra_info["nic_dropped_skipped"] = nic.dropped_skipped
    print_header(f"fault throughput: {label}")
    print(f"{faults} faults in {seconds:.3f}s -> {rate / 1e3:.1f}k faults/s")
    print(
        f"NIC served: {nic.demand_completed} demand / "
        f"{nic.prefetch_completed} prefetch / {nic.swapout_completed} swap-out "
        f"({nic.dropped_skipped} dropped before dispatch)"
    )
    return rate


def _assert_profiled_parity(config, digest):
    """The profiled slow path must simulate the exact same numbers."""
    from repro.metrics import SimProfiler

    profiler = SimProfiler()
    profiled = run_experiment(PAIR, config, profiler=profiler)
    assert result_digest(profiled) == digest, (
        "profiler attachment changed simulated numbers on the fault path"
    )
    assert profiler.runs == 1 and profiler.wall_seconds > 0


def test_fault_throughput_canvas(benchmark):
    last = {}

    def run():
        faults, nic, digest = _run(fault_config("canvas"))
        last["nic"], last["digest"] = nic, digest
        return faults

    faults = benchmark.pedantic(run, rounds=3, iterations=1)
    nic = last["nic"]
    _report(benchmark, "canvas fault-heavy co-run", faults, nic)
    assert faults > 0 and nic.demand_completed > 0
    # Canvas under pressure must exercise every request kind, including
    # the timeliness-drop path the recycler has to unwind.
    assert nic.prefetch_completed > 0 and nic.swapout_completed > 0
    _assert_profiled_parity(fault_config("canvas"), last["digest"])


def test_fault_throughput_linux_leap(benchmark):
    config = fault_config("linux", prefetcher="leap")
    last = {}

    def run():
        faults, nic, digest = _run(config)
        last["nic"], last["digest"] = nic, digest
        return faults

    faults = benchmark.pedantic(run, rounds=3, iterations=1)
    nic = last["nic"]
    _report(benchmark, "linux + leap fault-heavy co-run", faults, nic)
    assert faults > 0 and nic.demand_completed > 0
    # Leap must actually be prefetching, or the incremental vote is
    # not on the measured path.
    assert nic.prefetch_completed > 0
    _assert_profiled_parity(config, last["digest"])
