"""Shared infrastructure for the per-figure/table benchmarks.

Every benchmark regenerates one table or figure from the paper's
evaluation: it runs the relevant experiment(s) on the simulator, prints
the same rows/series the paper reports, and asserts the qualitative
shape (who wins, roughly by how much).  Absolute numbers are simulated
microseconds, not the authors' testbed — see DESIGN.md §1.

Runs are memoized in three layers (all keyed by the full experiment
configuration, so benchmarks that share baselines — e.g. Figs. 4 and 5
use the same co-run — reuse them):

1. an in-process dict,
2. the persistent disk cache under ``$REPRO_CACHE_DIR`` (optional),
3. actual simulation, optionally prewarmed in parallel: each benchmark
   hands its full job list to :func:`prewarm`, which fans cold jobs out
   over ``REPRO_WORKERS`` processes before the serial code path reads
   the warm results back.

None of the layers can change a simulated number: workers execute the
identical serial code path, and disk keys include a fingerprint of the
``repro`` sources (see ``repro.harness.cache``).
"""

from __future__ import annotations

import os
import time
from typing import Dict, Iterable, List, Tuple

from repro.harness import ExperimentConfig, ExperimentResult
from repro.harness.cache import CACHE_STATS, cached_run, job_key
from repro.harness.parallel import default_worker_count, run_experiments_parallel

#: Scale knob for all benchmarks (working sets & access counts).
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.15"))

#: ``REPRO_PROFILE=1`` attaches one shared simulation profiler to every
#: experiment a benchmark session runs and prints the per-subsystem
#: wall-clock attribution in the terminal summary.  Profiled runs bypass
#: the caches and the parallel prewarm (a cache hit or a worker process
#: would leave nothing to measure); simulated results are unchanged.
PROFILE = os.environ.get("REPRO_PROFILE", "") not in ("", "0")

PROFILER = None
if PROFILE:
    from repro.metrics.profiler import SimProfiler

    PROFILER = SimProfiler()

NATIVES = ["snappy", "memcached", "xgboost"]
#: The four managed applications Fig. 10/11/12 pair with the natives.
MANAGED_FOUR = ["spark_lr", "spark_km", "cassandra", "neo4j"]
#: All eleven managed applications (Table 3).
MANAGED_ELEVEN = [
    "cassandra",
    "neo4j",
    "spark_pr",
    "spark_km",
    "spark_lr",
    "spark_sg",
    "spark_tc",
    "mllib_bc",
    "graphx_cc",
    "graphx_pr",
    "graphx_sp",
]

_CACHE: Dict[str, ExperimentResult] = {}

#: (label, source, wall-clock seconds) per run_cached/prewarm job, printed
#: in the terminal summary so speedups show up in logs rather than silently.
RUN_LOG: List[Tuple[str, str, float]] = []


def _label(workloads: Iterable[str], config: ExperimentConfig) -> str:
    return f"{config.system}[{','.join(workloads)}]"


def run_cached(workloads: Iterable[str], config: ExperimentConfig) -> ExperimentResult:
    """Run (or reuse) an experiment: memory → disk → simulate."""
    workloads = list(workloads)
    key = job_key(workloads, config)
    result = _CACHE.get(key)
    if result is not None:
        CACHE_STATS.memory_hits += 1
        return result
    start = time.perf_counter()
    if PROFILER is not None:
        from repro.harness.experiment import run_experiment

        result, source = run_experiment(workloads, config, profiler=PROFILER), "profiled"
    else:
        result, source = cached_run(workloads, config)
    RUN_LOG.append((_label(workloads, config), source, time.perf_counter() - start))
    _CACHE[key] = result
    return result


def prewarm(
    jobs: Iterable[Tuple[Iterable[str], ExperimentConfig]],
    max_workers: int | None = None,
) -> int:
    """Fan cold jobs out in parallel so serial ``run_cached`` calls hit.

    Deduplicates the job list, drops everything already warm in the
    in-process cache, and runs the rest via
    :func:`~repro.harness.parallel.run_experiments_parallel` (workers
    still consult the disk cache, so a warm ``$REPRO_CACHE_DIR`` makes
    this near-instant).  Returns the number of jobs actually executed.
    """
    if PROFILER is not None:
        # Worker processes cannot feed the in-process profiler; let the
        # serial run_cached calls simulate (and profile) every job.
        return 0
    unique: Dict[str, Tuple[List[str], ExperimentConfig]] = {}
    for workloads, config in jobs:
        workloads = list(workloads)
        key = job_key(workloads, config)
        if key not in _CACHE and key not in unique:
            unique[key] = (workloads, config)
    if not unique:
        return 0
    if max_workers is None:
        max_workers = default_worker_count()
    start = time.perf_counter()
    results = run_experiments_parallel(list(unique.values()), max_workers=max_workers)
    elapsed = time.perf_counter() - start
    for (key, (workloads, config)), result in zip(unique.items(), results):
        _CACHE[key] = result
    RUN_LOG.append(
        (f"prewarm[{len(unique)} jobs, {max_workers} workers]", "parallel", elapsed)
    )
    return len(unique)


def config(system: str = "linux", **kwargs) -> ExperimentConfig:
    kwargs.setdefault("scale", BENCH_SCALE)
    return ExperimentConfig(system=system, **kwargs)


def solo_times(
    names: Iterable[str], base_config: ExperimentConfig
) -> Dict[str, float]:
    """Individual-run completion times, one experiment per app."""
    times = {}
    for name in names:
        result = run_cached([name], base_config)
        times[name] = result.completion_time(name)
    return times


def solo_jobs(
    names: Iterable[str], base_config: ExperimentConfig
) -> List[Tuple[List[str], ExperimentConfig]]:
    """The prewarm job list matching :func:`solo_times`."""
    return [([name], base_config) for name in names]


def slowdowns(
    corun: ExperimentResult, solo: Dict[str, float]
) -> Dict[str, float]:
    return {
        name: corun.completion_time(name) / solo[name]
        for name in corun.results
        if name in solo
    }


def geometric_mean(values: List[float]) -> float:
    import math

    if not values:
        return float("nan")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def print_header(title: str) -> None:
    print()
    print("=" * 78)
    print(title)
    print("=" * 78)
