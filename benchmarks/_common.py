"""Shared infrastructure for the per-figure/table benchmarks.

Every benchmark regenerates one table or figure from the paper's
evaluation: it runs the relevant experiment(s) on the simulator, prints
the same rows/series the paper reports, and asserts the qualitative
shape (who wins, roughly by how much).  Absolute numbers are simulated
microseconds, not the authors' testbed — see DESIGN.md §1.

Runs are cached per-process by their full configuration, so benchmarks
that share baselines (e.g. Figs. 4 and 5 use the same co-run) reuse them.
"""

from __future__ import annotations

import os
from dataclasses import fields
from typing import Dict, Iterable, List, Tuple

from repro.harness import ExperimentConfig, ExperimentResult, run_experiment

#: Scale knob for all benchmarks (working sets & access counts).
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.15"))

NATIVES = ["snappy", "memcached", "xgboost"]
#: The four managed applications Fig. 10/11/12 pair with the natives.
MANAGED_FOUR = ["spark_lr", "spark_km", "cassandra", "neo4j"]
#: All eleven managed applications (Table 3).
MANAGED_ELEVEN = [
    "cassandra",
    "neo4j",
    "spark_pr",
    "spark_km",
    "spark_lr",
    "spark_sg",
    "spark_tc",
    "mllib_bc",
    "graphx_cc",
    "graphx_pr",
    "graphx_sp",
]

_CACHE: Dict[tuple, ExperimentResult] = {}


def _freeze(value):
    if isinstance(value, dict):
        return tuple(sorted((k, _freeze(v)) for k, v in value.items()))
    if isinstance(value, (list, set)):
        return tuple(_freeze(v) for v in value)
    return value


def _config_key(config: ExperimentConfig) -> tuple:
    return tuple((f.name, _freeze(getattr(config, f.name))) for f in fields(config))


def run_cached(workloads: Iterable[str], config: ExperimentConfig) -> ExperimentResult:
    """Run (or reuse) an experiment for this workload set + config."""
    key = (tuple(workloads), _config_key(config))
    result = _CACHE.get(key)
    if result is None:
        result = run_experiment(list(workloads), config)
        _CACHE[key] = result
    return result


def config(system: str = "linux", **kwargs) -> ExperimentConfig:
    kwargs.setdefault("scale", BENCH_SCALE)
    return ExperimentConfig(system=system, **kwargs)


def solo_times(
    names: Iterable[str], base_config: ExperimentConfig
) -> Dict[str, float]:
    """Individual-run completion times, one experiment per app."""
    times = {}
    for name in names:
        result = run_cached([name], base_config)
        times[name] = result.completion_time(name)
    return times


def slowdowns(
    corun: ExperimentResult, solo: Dict[str, float]
) -> Dict[str, float]:
    return {
        name: corun.completion_time(name) / solo[name]
        for name in corun.results
        if name in solo
    }


def geometric_mean(values: List[float]) -> float:
    import math

    if not values:
        return float("nan")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def print_header(title: str) -> None:
    print()
    print("=" * 78)
    print(title)
    print("=" * 78)
