"""Rack-scale sweep: multi-server fabric scaling and re-homing (PR 9).

Not a paper figure — the fig13-style scalability macro-benchmark for the
rack substrate.  A Canvas co-run is swept across ``n_servers`` in
{1, 2, 4, 8} with striped placement; every point must complete with the
rack's charge ledger reconciled, and the 1-server point must be
bit-identical to the rack-free run (the ``n_servers=1`` oracle, also
pinned per-system in ``tests/test_faults.py``).

Guarded numbers:

* ``rack_events_per_second`` — engine callbacks per wall second at the
  8-server point (host cost of the per-server channel bookkeeping);
* ``rehome_pages_per_second`` — host-side throughput of the failure
  path: pages re-homed per wall second across a server-death run,
  timed end-to-end (run + post-completion migration drain).
"""

import time

from _common import BENCH_SCALE, print_header
from repro.cluster import ClusterConfig
from repro.faults import RACK_SCENARIOS
from repro.harness.experiment import ExperimentConfig, run_experiment
from repro.harness.results import result_digest

APPS = ["snappy", "memcached"]
SEED = 11
SWEEP = (1, 2, 4)
N_FULL = 8


def _config(n_servers, fault_config=None):
    cluster = ClusterConfig(n_servers=n_servers) if n_servers else None
    return ExperimentConfig(
        system="canvas",
        scale=BENCH_SCALE,
        seed=SEED,
        cluster=cluster,
        fault_config=fault_config,
    )


def _run(n_servers, fault_config=None):
    """One timed rack run, drained past app completion; (result, wall_s)."""
    start = time.perf_counter()
    result = run_experiment(APPS, _config(n_servers, fault_config))
    # Let background migration legs land before reading the ledger.
    result.machine.engine.run(until=result.machine.engine.now + 200_000)
    wall = time.perf_counter() - start
    return result, wall


def test_rack_scale_sweep(benchmark):
    print_header("rack-scale sweep (canvas co-run, striped placement)")
    print(f"{'servers':>8} {'worst_ms':>9} {'wall_s':>8} {'events/s':>12}")
    digests = {}
    for n_servers in SWEEP:
        result, wall = _run(n_servers)
        digests[n_servers] = result_digest(result)
        worst = max(result.completion_time(a) for a in result.results)
        steps = result.machine.engine.step_count
        print(f"{n_servers:>8} {worst / 1e3:>9.2f} {wall:>8.3f} {steps / wall:>12.0f}")
        assert result.rack.ledger_balanced()

    # The permanent oracle: one server behind the rack layer is
    # bit-identical to no rack layer at all.
    base, _ = _run(None)
    assert digests[1] == result_digest(base)

    # The guarded point: host throughput with 8 per-server channel lanes.
    state = {}

    def run_full():
        result, wall = _run(N_FULL)
        state["result"], state["wall"] = result, wall
        return result.machine.engine.step_count

    steps = benchmark.pedantic(run_full, rounds=3, iterations=1)
    seconds = benchmark.stats.stats.min
    result = state["result"]
    assert result.rack.ledger_balanced()
    for app in result.apps.values():
        assert app.finished_at_us is not None

    # The failure path: a scripted server death mid-run, timed
    # end-to-end.  Every lost page must be re-homed (exact ledger).
    death, death_wall = _run(4, RACK_SCENARIOS["server-death"])
    stats = death.rack.stats
    assert stats.servers_failed == 1
    assert stats.pages_rehomed > 0
    assert stats.migration_aborts == 0
    assert stats.pages_rehomed == stats.pages_lost_from_dead + stats.pages_drained
    rehome_rate = stats.pages_rehomed / death_wall

    benchmark.extra_info["servers"] = N_FULL
    benchmark.extra_info["events"] = steps
    benchmark.extra_info["rack_events_per_second"] = steps / seconds
    benchmark.extra_info["pages_rehomed"] = stats.pages_rehomed
    benchmark.extra_info["rehome_pages_per_second"] = rehome_rate

    print_header("rack-scale: 8-server point and failure re-homing")
    print(
        f"8 servers: {steps} events in {seconds:.3f}s -> "
        f"{steps / seconds / 1e3:.0f}k events/s"
    )
    print(
        f"death run: {stats.pages_rehomed} pages re-homed "
        f"({stats.pages_lost_from_dead} lost, {stats.pages_drained} drained) "
        f"in {death_wall:.3f}s -> {rehome_rate:.0f} pages/s"
    )
