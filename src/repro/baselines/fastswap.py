"""Fastswap (Amaro et al., EuroSys '20) as a swap backend.

Fastswap's contributions relative to stock Linux swapping, as modeled:

* **Sync/async QP split** — demand swap-ins go to a high-priority
  (polled) QP, prefetches to a low-priority (interrupt-completed) QP.
  This removes prefetch-induced head-of-line blocking for demand reads,
  but §3 of the Canvas paper shows the flip side: under co-running load,
  prefetches sit behind every demand read and arrive too late (Fig. 6).
* **Offloaded reclaim** — eviction work is pushed off the fault path to
  dedicated reclaim cores; modeled as a more aggressive kswapd batch, so
  direct reclaim on the fault path is rarer.

Everything else (shared partition, shared cache, one shared prefetcher)
is inherited from the Linux baseline — Fastswap does not isolate.
"""

from __future__ import annotations

from typing import Optional

from repro.kernel.cgroup import AppContext
from repro.kernel.swap_system import LinuxSwapSystem, SwapSystemConfig
from repro.kernel.telemetry import Telemetry
from repro.prefetch.base import Prefetcher
from repro.rdma.message import RdmaOp, RdmaRequest, RequestKind
from repro.rdma.nic import RNIC
from repro.sim.engine import Engine

__all__ = ["FastswapSystem"]


class FastswapSystem(LinuxSwapSystem):
    """Linux swapping with Fastswap's sync/async QP separation."""

    def __init__(
        self,
        engine: Engine,
        nic: RNIC,
        partition_pages: int,
        prefetcher: Optional[Prefetcher] = None,
        telemetry: Optional[Telemetry] = None,
        config: Optional[SwapSystemConfig] = None,
        name: str = "fastswap",
    ):
        if config is None:
            config = SwapSystemConfig()
        # Dedicated reclaim cores drain memory pressure in bigger batches.
        config.kswapd_batch = max(config.kswapd_batch, 32)
        super().__init__(
            engine,
            nic,
            partition_pages,
            prefetcher=prefetcher,
            telemetry=telemetry,
            config=config,
            name=name,
        )
        # self.read_qp (priority 0) becomes the sync QP; add the async one.
        self.sync_qp = self.read_qp
        self.async_qp = nic.create_qp(f"{name}.async", RdmaOp.READ, priority=1)

    def _submit_read(self, app: AppContext, request: RdmaRequest) -> None:
        if request.kind is RequestKind.DEMAND:
            self.nic.submit(self.sync_qp, request)
        else:
            self.nic.submit(self.async_qp, request)

    def _submit_read_many(self, app: AppContext, requests) -> None:
        # Split the run across the sync/async QPs; per-QP FIFO order is
        # what dispatch sees, so stable partitioning is exact.
        demands = [r for r in requests if r.kind is RequestKind.DEMAND]
        others = [r for r in requests if r.kind is not RequestKind.DEMAND]
        if demands:
            self.nic.submit_many(self.sync_qp, demands)
        if others:
            self.nic.submit_many(self.async_qp, others)
