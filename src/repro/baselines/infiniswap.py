"""Infiniswap (Gu et al., NSDI '17) as a swap backend.

Infiniswap exposes remote memory as a block device under the unmodified
kernel swap path.  Relative to the Fastswap-era systems it:

* routes every read — demand or prefetch — through one request queue
  (full head-of-line blocking, no sync/async split);
* pays block-layer overhead on each I/O (bio submission, slab mapping
  lookup), modeled as a fixed extra cost before the verb is posted;
* was built against Linux 4.4, before clean-page entry keeping.

The paper notes Infiniswap hung on XGBoost and Spark (§6.1); we model
that as the documented omission (`SUPPORTED` set), not a literal
deadlock — benchmarks skip those pairs the way Fig. 9 omits the bars.
"""

from __future__ import annotations

from typing import Optional

from repro.kernel.cgroup import AppContext
from repro.kernel.swap_system import LinuxSwapSystem, SwapSystemConfig
from repro.kernel.telemetry import Telemetry
from repro.prefetch.base import Prefetcher
from repro.rdma.message import RdmaRequest
from repro.rdma.nic import RNIC
from repro.sim.engine import Engine

__all__ = ["InfiniswapSystem"]


class InfiniswapSystem(LinuxSwapSystem):
    """Block-device remote swap with per-I/O block-layer overhead."""

    #: Applications the original artifact could not run (§6.1).
    UNSUPPORTED = frozenset({"xgboost", "spark_lr", "spark_km", "spark_pr"})

    def __init__(
        self,
        engine: Engine,
        nic: RNIC,
        partition_pages: int,
        prefetcher: Optional[Prefetcher] = None,
        telemetry: Optional[Telemetry] = None,
        config: Optional[SwapSystemConfig] = None,
        block_layer_overhead_us: float = 2.5,
        name: str = "infiniswap",
    ):
        if config is None:
            config = SwapSystemConfig()
        config.entry_keeping = False  # pre-5.5 kernel
        super().__init__(
            engine,
            nic,
            partition_pages,
            prefetcher=prefetcher,
            telemetry=telemetry,
            config=config,
            name=name,
        )
        self.block_layer_overhead_us = block_layer_overhead_us

    def supports(self, workload_name: str) -> bool:
        return workload_name not in self.UNSUPPORTED

    def _submit_read(self, app: AppContext, request: RdmaRequest) -> None:
        request.enqueued_at_us = self.engine.now  # include block-layer time
        self.engine.call_after(
            self.block_layer_overhead_us,
            lambda: self.nic.submit(self.read_qp, request),
        )

    def _submit_read_many(self, app: AppContext, requests) -> None:
        # No doorbell batching through the block layer: each bio pays its
        # own submission cost, so keep the base per-request loop.
        for request in requests:
            self._submit_read(app, request)

    def _submit_write(self, app: AppContext, request: RdmaRequest) -> None:
        request.enqueued_at_us = self.engine.now
        self.engine.call_after(
            self.block_layer_overhead_us,
            lambda: self.nic.submit(self.write_qp, request),
        )

    def _submit_write_many(self, app: AppContext, requests) -> None:
        # As with reads: every bio pays its own block-layer submission
        # cost, so the write doorbell stays per-request here.
        for request in requests:
            self._submit_write(app, request)
