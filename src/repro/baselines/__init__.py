"""Comparator swap systems: Linux 5.5, Fastswap, Infiniswap, Linux 5.14.

The Linux 5.5 baseline itself lives in :mod:`repro.kernel.swap_system`
(:class:`~repro.kernel.swap_system.LinuxSwapSystem`); the Linux 5.14
allocator comparator is ``LinuxSwapSystem`` constructed with
:class:`~repro.swap.allocator.Linux514Allocator`.
"""

from repro.baselines.fastswap import FastswapSystem
from repro.baselines.infiniswap import InfiniswapSystem
from repro.kernel.swap_system import LinuxSwapSystem

__all__ = ["FastswapSystem", "InfiniswapSystem", "LinuxSwapSystem"]
