"""Canvas: the fully isolated, adaptive swap system (§4, §5).

Per cgroup, Canvas provisions:

* a **private swap partition** with its own entry manager — optionally
  the adaptive reservation allocator of §5.1;
* a **private swap cache** (default 32 MB) charged to the cgroup's
  memory budget;
* a **private kernel-tier prefetcher** instance (isolated fault history),
  optionally escalating to the application tier through userfaultfd
  (§5.2);
* a **virtual queue pair** feeding the two-dimensional RDMA scheduler
  (§4, §5.3).

Shared pages (mapcount > 1) bypass all of this onto a global partition
and global swap cache managed with the original lock-based allocator,
limited by the ``cgroup-shared`` budget (§4).

The three adaptive optimizations can be toggled independently via
:class:`CanvasConfig`, which is how the evaluation's ablations (isolation
only, ± adaptive allocation, ± two-tier prefetching, ± horizontal
scheduling) are expressed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional

from repro.core.adaptive_alloc import AdaptiveSwapManager
from repro.core.rdma_sched import TwoDimensionalScheduler
from repro.core.two_tier import TwoTierController
from repro.kernel.cgroup import AppContext
from repro.kernel.swap_system import BaseSwapSystem, SwapSystemConfig
from repro.kernel.telemetry import Telemetry
from repro.kernel.userfaultfd import UserfaultfdChannel
from repro.mem.page import Page, PageState
from repro.obs.trace import DEMAND_ISSUE, PF_DROP
from repro.prefetch.base import Prefetcher
from repro.prefetch.readahead import KernelReadahead
from repro.rdma.message import RdmaOp, RdmaRequest, RequestKind
from repro.rdma.nic import RNIC
from repro.sim.engine import DEBUG_EVENT_NAMES, Engine, Event
from repro.swap.allocator import EntryAllocator, FreeListAllocator
from repro.swap.entry import SwapEntry
from repro.swap.partition import SwapPartition
from repro.swap.swap_cache import SwapCache

__all__ = ["CanvasConfig", "CanvasSwapSystem"]


@dataclass
class CanvasConfig:
    """Feature toggles and sizing for Canvas (isolation is always on)."""

    adaptive_allocation: bool = True
    two_tier_prefetch: bool = True
    #: Priority (demand over prefetch) + timeliness drops within each app.
    horizontal_scheduling: bool = True
    #: Toggle timeliness drops independently of the priority split (the
    #: Fig. 14 ablation); None follows ``horizontal_scheduling``.
    timeliness_drops: Optional[bool] = None
    #: §5.1 trigger: start cancelling reservations at this occupancy.
    reservation_high_occupancy: float = 0.75
    #: Global (cgroup-shared) partition/cache for shared pages.
    global_partition_pages: int = 8192
    global_cache_pages: int = 8192
    #: Factory for per-app kernel-tier prefetchers; None → KernelReadahead.
    kernel_prefetcher_factory: Optional[object] = None
    #: Extension (the paper's stated future work): dynamically shift
    #: swap-cache budget from idle cgroups to pressured ones, max-min
    #: style, instead of purely static partitioning.
    dynamic_cache_rebalance: bool = False
    #: §4: allocate remote memory in a demand-driven manner — partitions
    #: start at one chunk and grow (paying an RDMA buffer-registration
    #: latency) toward the cgroup limit as the free list drains.
    demand_driven_remote: bool = False
    remote_chunk_entries: int = 1024


class _CanvasAppState:
    """Everything Canvas provisions for one cgroup."""

    def __init__(self):
        self.partition: Optional[SwapPartition] = None
        self.allocator: Optional[EntryAllocator] = None
        self.adaptive: Optional[AdaptiveSwapManager] = None
        self.cache: Optional[SwapCache] = None
        self.prefetcher: Optional[Prefetcher] = None
        self.uffd: Optional[UserfaultfdChannel] = None
        self.two_tier: Optional[TwoTierController] = None
        self.remote: Optional["DemandDrivenRemoteMemory"] = None


class CanvasSwapSystem(BaseSwapSystem):
    """Holistic swap isolation plus the three adaptive optimizations."""

    def __init__(
        self,
        engine: Engine,
        nic: RNIC,
        telemetry: Optional[Telemetry] = None,
        config: Optional[SwapSystemConfig] = None,
        canvas_config: Optional[CanvasConfig] = None,
        name: str = "canvas",
    ):
        super().__init__(engine, nic, telemetry, config, name)
        self.canvas = canvas_config if canvas_config is not None else CanvasConfig()
        self.scheduler = TwoDimensionalScheduler(
            engine,
            nic,
            telemetry=self.telemetry,
            name=f"{name}.sched",
            horizontal=self.canvas.horizontal_scheduling,
            timeliness_drops=self.canvas.timeliness_drops,
            drop_callback=self._on_prefetch_dropped,
        )
        # Global resources for shared pages (cgroup-shared, §4).
        self.global_partition = SwapPartition(
            f"{name}.global", self.canvas.global_partition_pages
        )
        self.global_allocator = FreeListAllocator(
            engine, self.global_partition, name=f"{name}.global.alloc"
        )
        self.global_cache = SwapCache(
            f"{name}.global.cache", self.canvas.global_cache_pages
        )
        self._state: Dict[str, _CanvasAppState] = {}
        self.rebalancer = None
        if self.canvas.dynamic_cache_rebalance:
            from repro.core.rebalance import CacheRebalancer

            self._rebalance_caches: Dict[str, SwapCache] = {}
            self.rebalancer = CacheRebalancer(engine, self._rebalance_caches)

    # ------------------------------------------------------------------
    # Per-app provisioning
    # ------------------------------------------------------------------

    def _setup_app(self, app: AppContext) -> None:
        state = _CanvasAppState()
        partition_pages = app.config.swap_partition_pages
        if partition_pages is None:
            # Default: enough remote memory for the whole address space.
            partition_pages = max(1024, app.space.total_pages + 256)
        if self.canvas.demand_driven_remote:
            from repro.core.remote_memory import DemandDrivenRemoteMemory

            initial = min(self.canvas.remote_chunk_entries, partition_pages)
            state.partition = SwapPartition(f"{app.name}.swap", initial)
            state.remote = DemandDrivenRemoteMemory(
                self.engine,
                state.partition,
                limit_entries=partition_pages,
                chunk_entries=self.canvas.remote_chunk_entries,
                fault_plan=self.fault_plan,
            )
        else:
            state.partition = SwapPartition(f"{app.name}.swap", partition_pages)
        base_alloc = FreeListAllocator(
            self.engine, state.partition, name=f"{app.name}.alloc"
        )
        base_alloc.tracer = self.trace
        state.allocator = base_alloc
        if self.rack is not None:
            # Rack model: home this cgroup's partition (and the shared
            # global one) on memory servers, and let demand-driven
            # growth pay the home server's registration cost.
            self.rack.adopt(self, state.partition, base_alloc)
            self.rack.adopt(self, self.global_partition, self.global_allocator)
            if state.remote is not None:
                state.remote.rack = self.rack
        if self.canvas.adaptive_allocation:
            state.adaptive = AdaptiveSwapManager(
                self.engine,
                state.partition,
                app,
                base_allocator=base_alloc,
                reservation_high_occupancy=self.canvas.reservation_high_occupancy,
            )
        state.cache = SwapCache(f"{app.name}.cache", app.config.swap_cache_pages)
        if self.rebalancer is not None:
            self._rebalance_caches[app.name] = state.cache
            self.rebalancer._baseline_total = sum(
                c.capacity_pages for c in self._rebalance_caches.values()
            )
        factory = self.canvas.kernel_prefetcher_factory
        state.prefetcher = factory() if factory is not None else KernelReadahead(
            name=f"{app.name}.readahead"
        )
        self.scheduler.register_app(app.name, weight=app.config.rdma_weight)
        if self.canvas.two_tier_prefetch:
            state.uffd = UserfaultfdChannel(
                self.engine,
                app,
                # Application-tier prefetches reach remote memory through
                # the same kernel path (async_prefetch, §5.2), including
                # its recycle-under-pressure behaviour; volume is bounded
                # by the in-flight window and the runtime's proposal caps.
                async_prefetch=self.issue_prefetch_vpns,
                max_queue=32,
            )
            state.two_tier = TwoTierController(state.uffd)
            runtime = app.runtime
            if runtime is not None and hasattr(runtime, "handle_forwarded_fault"):
                state.uffd.register_handler(runtime.handle_forwarded_fault)
        self._state[app.name] = state

    def _attach_tracer_extra(self, tracer) -> None:
        self.global_allocator.tracer = tracer
        for state in self._state.values():
            if state.allocator is not None:
                state.allocator.tracer = tracer

    def attach_runtime_handler(self, app: AppContext) -> None:
        """Bind a runtime attached after registration to the uffd channel."""
        state = self._state[app.name]
        if state.uffd is not None and app.runtime is not None:
            state.uffd.register_handler(app.runtime.handle_forwarded_fault)

    def prepopulate(self, app: AppContext, resident_fraction: float) -> None:
        state = self._state[app.name]
        if state.remote is not None:
            # Register enough remote memory for the initial cold set.
            total = app.space.total_pages
            n_resident = min(
                int(total * resident_fraction), app.pool.capacity_pages
            )
            state.remote.ensure_untimed(total - n_resident)
        super().prepopulate(app, resident_fraction)
        state = self._state[app.name]
        if state.adaptive is None:
            return
        # §5.1: "Canvas starts an execution by reserving swap entries for
        # all pages" — prepopulated cold pages keep their entries as
        # reservations (the partition is sized so cancellation triggers).
        for page in app.space.pages.values():
            if not page.resident and page.swap_entry is not None and not page.shared:
                state.adaptive.reserve_prepopulated(page)

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------

    def _teardown_app(self, app: AppContext) -> int:
        """Dismantle the per-cgroup provisioning of :meth:`_setup_app`.

        Reservation release and the daemon interrupts run first (the
        adaptive manager needs live pages); the base sweep runs while
        ``_state`` still resolves this app, because it dispatches
        through the ``_cache_for``/``_release_entry`` hooks; scheduler,
        rebalancer, and rack unregistration come last.
        """
        state = self._state[app.name]
        if state.adaptive is not None:
            # The hot-page scanner only ever waits on timeouts, so an
            # interrupt is a clean exit (never mid-allocation).
            scanner = state.adaptive._scanner
            if scanner is not None and not scanner.fired:
                scanner.interrupt("teardown")
            for page in app.space.pages.values():
                if page.owner_name == app.name and page.reserved_entry is not None:
                    state.adaptive.release_on_free(page)
        if state.uffd is not None:
            # The uffd daemon is parked on its message store once the
            # app's threads are done; interrupting there is clean too.
            daemon = state.uffd._daemon
            if daemon is not None and not daemon.fired:
                daemon.interrupt("teardown")
        freed = super()._teardown_app(app)
        self.scheduler.unregister_app(app.name)
        if self.rebalancer is not None:
            self._rebalance_caches.pop(app.name, None)
            self.rebalancer._baseline_total = sum(
                c.capacity_pages for c in self._rebalance_caches.values()
            )
        if self.rack is not None:
            # Only the private partition withdraws; the global one stays
            # adopted for the apps still sharing it.
            self.rack.withdraw(state.partition)
        del self._state[app.name]
        return freed

    # ------------------------------------------------------------------
    # Policy hooks
    # ------------------------------------------------------------------

    def _cache_for(self, app: AppContext, page: Page) -> SwapCache:
        if page.shared:
            return self.global_cache
        return self._state[app.name].cache

    def _private_cache(self, app: AppContext) -> SwapCache:
        return self._state[app.name].cache

    def _allocator_for(self, app: AppContext, page: Page) -> EntryAllocator:
        if page.shared:
            return self.global_allocator
        return self._state[app.name].allocator

    def _prefetcher_for(self, app: AppContext) -> Prefetcher:
        return self._state[app.name].prefetcher

    def _submit_read(self, app: AppContext, request: RdmaRequest) -> None:
        self.scheduler.submit(app.name, request)

    def _submit_read_many(self, app, requests) -> None:
        self.scheduler.submit_many(app.name, requests)

    def _submit_write(self, app: AppContext, request: RdmaRequest) -> None:
        self.scheduler.submit(app.name, request)

    def _submit_write_many(self, app, requests) -> None:
        # Grouped reclaim's egress doorbell: one VQP push and one write
        # kick for the round's writebacks, mirroring _submit_read_many.
        self.scheduler.submit_many(app.name, requests)

    def _obtain_writeback_entry(
        self, app: AppContext, page: Page, core_id: int
    ) -> Generator:
        state = self._state[app.name]
        if state.remote is not None and not page.shared:
            # §4: register more remote memory if the free list runs low.
            yield from state.remote.maybe_grow()
        if state.adaptive is not None and not page.shared:
            locked_before = state.adaptive.stats.locked_allocations
            entry = yield from state.adaptive.obtain_entry(page, core_id)
            if state.adaptive.stats.locked_allocations > locked_before:
                self.telemetry.alloc_rate(app.name).record(self.engine.now)
            return entry
        entry = yield from super()._obtain_writeback_entry(app, page, core_id)
        return entry

    def _on_mapped(self, app: AppContext, page: Page) -> None:
        state = self._state[app.name]
        if state.adaptive is not None and not page.shared:
            state.adaptive.on_mapped(page)
            return
        super()._on_mapped(app, page)

    def _on_evicted(self, app: AppContext, page: Page) -> None:
        state = self._state[app.name]
        if state.adaptive is not None and not page.shared:
            state.adaptive.on_evicted(page)

    def _post_prefetch_hook(
        self,
        app: AppContext,
        thread_id: int,
        vpn: int,
        issued: int,
        prefetched_hit: bool = False,
    ) -> None:
        controller = self._state[app.name].two_tier
        if controller is None:
            return
        if prefetched_hit:
            # A readahead hit is direct proof the kernel tier works.
            controller.note_kernel_hit()
        else:
            controller.on_kernel_prefetch(thread_id, vpn, issued)

    # ------------------------------------------------------------------
    # §5.3: stale-prefetch detection and dropping
    # ------------------------------------------------------------------

    def _wait_inflight(
        self, app: AppContext, page: Page, thread_id: int, event
    ) -> Generator:
        request = self._inflight_req.get(page)
        if (
            self.scheduler.timeliness_drops
            and request is not None
            and request.kind is RequestKind.PREFETCH
            and page.prefetch_timestamp_us is not None
        ):
            threshold = self.scheduler.timeout_threshold_us(app.name)
            elapsed = self.engine.now - page.prefetch_timestamp_us
            if elapsed > threshold:
                yield from self._drop_and_reissue(app, page, request, event)
                return
            # §5.3: "we detect threads that block on prefetching requests
            # for too long and generate new demand requests for them" —
            # wait only until the request turns stale, then drop it.
            index, _value = yield self.engine.any_of(
                [event, self.engine.sleep(threshold - elapsed)]
            )
            if index == 0 or event.fired:
                return
            request = self._inflight_req.get(page)
            if request is not None and request.kind is RequestKind.PREFETCH:
                yield from self._drop_and_reissue(app, page, request, event)
            elif not event.fired:
                yield event
            return
        yield event

    def _drop_and_reissue(
        self, app: AppContext, page: Page, request: RdmaRequest, old_event
    ) -> Generator:
        """The faulting thread gives up on a late prefetch (§5.3)."""
        app.stats.prefetch_drops += 1
        if self.trace is not None:
            self.trace.emit(PF_DROP, app.name, 0, page.vpn, "stale")
        self._dec_inflight_prefetch(request.app_name)
        request.entry.valid = False  # in-service copy discards itself
        request.dropped = True  # still-queued copy is skipped
        page.prefetch_timestamp_us = None
        request.entry.timestamp_us = None
        new_event = Event(
            self.engine,
            f"reissue.{app.name}.{page.vpn:#x}" if DEBUG_EVENT_NAMES else "",
        )
        self._inflight[page] = new_event
        # Wake any co-waiters parked on the old event; they re-evaluate
        # and block on the new demand read.
        if not old_event.fired:
            old_event.succeed()
        demand = self._acquire_request(
            RdmaOp.READ, RequestKind.DEMAND, app.name, request.entry, page
        )
        self._inflight_req[page] = demand
        if self.trace is not None:
            self.trace.emit(DEMAND_ISSUE, app.name, 0, page.vpn, demand.request_id)
        self._submit_read(app, demand)
        yield new_event

    def _on_prefetch_dropped(self, request: RdmaRequest) -> None:
        """Scheduler-side drop: unwind kernel state so a fault re-fetches."""
        page = request.page
        app = self.apps.get(request.app_name)
        if app is None or page is None:
            return
        if self._inflight_req.get(page) is not request:
            return  # already superseded by a demand reissue
        del self._inflight_req[page]
        if self.trace is not None:
            self.trace.emit(PF_DROP, app.name, 0, page.vpn, "sched")
        if request.kind is RequestKind.PREFETCH:
            self._dec_inflight_prefetch(request.app_name)
        event = self._inflight.pop(page, None)
        if page.in_swap_cache and page.swap_entry is not None:
            cache = self._cache_for(app, page)
            cache.discard(page.swap_entry)
            app.pool.uncharge(1)
        page.locked = False
        page.prefetched = False
        page.prefetch_timestamp_us = None
        request.entry.timestamp_us = None
        if event is not None and not event.fired:
            event.succeed()  # waiters re-evaluate and demand-fetch

    # ------------------------------------------------------------------
    # Introspection helpers for experiments
    # ------------------------------------------------------------------

    def adaptive_stats(self, app_name: str):
        state = self._state[app_name].adaptive
        return None if state is None else state.stats

    def partition_of(self, app_name: str) -> SwapPartition:
        return self._state[app_name].partition

    def cache_of(self, app_name: str) -> SwapCache:
        return self._state[app_name].cache

    def two_tier_stats(self, app_name: str):
        controller = self._state[app_name].two_tier
        return None if controller is None else controller.stats
