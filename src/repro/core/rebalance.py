"""Dynamic swap-cache rebalancing (extension; the paper's stated future work).

§4 closes: "cgroup can only partition resources statically while
applications' resource usage may change from time to time and static
partitioning could lead to resource underutilization ... future work
could incorporate max-min fair allocation to improve resource
utilization."

This module implements that direction for the private swap caches: a
daemon periodically measures each cgroup's cache pressure and shifts
budget from caches with slack (working well below capacity) to caches
that keep overflowing, conserving the total.  Each cache keeps a
guaranteed floor — an application reclaims its lent-out budget simply by
using its cache again, at which point the donor (now pressured) wins it
back on a later round.  This is max-min-style: satisfied users keep what
they use; surplus flows to the unsatisfied, largest-deficit first.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Generator, List

from repro.sim.engine import Engine

if TYPE_CHECKING:  # pragma: no cover
    from repro.swap.swap_cache import SwapCache

__all__ = ["RebalanceStats", "CacheRebalancer"]


@dataclass
class RebalanceStats:
    rounds: int = 0
    pages_moved: int = 0
    transfers: int = 0


class CacheRebalancer:
    """Max-min style budget shifting between per-cgroup swap caches."""

    def __init__(
        self,
        engine: Engine,
        caches: Dict[str, "SwapCache"],
        period_us: float = 5_000.0,
        floor_pages: int = 64,
        slack_threshold: float = 0.5,
        pressure_threshold: float = 0.95,
        step_fraction: float = 0.25,
    ):
        self.engine = engine
        self.caches = caches
        self.period_us = period_us
        #: No cache is ever shrunk below its floor.
        self.floor_pages = floor_pages
        #: Occupancy below which a cache is considered a donor.
        self.slack_threshold = slack_threshold
        #: Occupancy above which a cache is considered pressured.
        self.pressure_threshold = pressure_threshold
        #: Fraction of a donor's surplus moved per round (gradual shifts).
        self.step_fraction = step_fraction
        self.stats = RebalanceStats()
        self._baseline_total = sum(c.capacity_pages for c in caches.values())
        engine.spawn(self._loop(), name="cache-rebalancer")

    @property
    def total_budget(self) -> int:
        return sum(cache.capacity_pages for cache in self.caches.values())

    def _loop(self) -> Generator:
        while True:
            yield self.engine.timeout(self.period_us)
            self.rebalance_once()

    def rebalance_once(self) -> int:
        """One max-min pass; returns pages moved."""
        self.stats.rounds += 1
        donors: List[tuple] = []
        takers: List[tuple] = []
        for name, cache in self.caches.items():
            occupancy = len(cache) / cache.capacity_pages
            if (
                occupancy < self.slack_threshold
                and cache.capacity_pages > self.floor_pages
            ):
                surplus = min(
                    cache.capacity_pages - self.floor_pages,
                    int((cache.capacity_pages - len(cache)) * self.step_fraction),
                )
                if surplus > 0:
                    donors.append((surplus, name, cache))
            elif occupancy >= self.pressure_threshold:
                # Deficit signal: how hard the cache is bumping its lid.
                takers.append((cache.stats.shrink_evictions, name, cache))
        if not donors or not takers:
            return 0
        # Largest deficit first (max-min: serve the least satisfied).
        takers.sort(reverse=True)
        donors.sort(reverse=True)
        moved = 0
        taker_index = 0
        for surplus, _donor_name, donor in donors:
            if taker_index >= len(takers):
                break
            _deficit, _taker_name, taker = takers[taker_index]
            donor.capacity_pages -= surplus
            taker.capacity_pages += surplus
            moved += surplus
            self.stats.transfers += 1
            taker_index = (taker_index + 1) % len(takers)
        self.stats.pages_moved += moved
        assert self.total_budget == self._baseline_total
        return moved
