"""Adaptive swap-entry allocation (§5.1).

The idea: pay the allocator's lock **once per page**.  The first time a
page is swapped out, its entry is obtained through the normal
lock-protected path and then *reserved* — the entry ID is written into
the page's ``struct page`` metadata and kept for the page's lifetime, so
every later swap-out of the page writes straight into the same remote
cell, lock-free.

Reservations trade remote-memory *space* for allocation *time*.  When the
cgroup's remote-memory usage approaches its limit (75% occupancy), the
manager starts cancelling reservations, preferring **hot pages**: pages
that keep appearing at the head of the LRU active list across consecutive
scans are likely to stay resident, so their reservations buy nothing.
A cancelled-then-evicted page simply falls back to the lock-protected
path — the paper's worst case, which equals stock Linux.

The page-state machine of Fig. 7 is maintained on
:class:`~repro.mem.page.Page.state` by this manager together with the
Canvas system's eviction/map-in hooks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional, Set

from repro.kernel.cgroup import AppContext
from repro.mem.page import Page, PageState
from repro.sim.engine import Engine
from repro.swap.allocator import FreeListAllocator
from repro.swap.entry import SwapEntry
from repro.swap.partition import SwapPartition

__all__ = ["AdaptiveAllocStats", "AdaptiveSwapManager"]


@dataclass
class AdaptiveAllocStats:
    #: Swap-outs served lock-free from a reservation.
    reserved_swapouts: int = 0
    #: Swap-outs that went through the lock-protected allocator.
    locked_allocations: int = 0
    reservations_granted: int = 0
    reservations_removed: int = 0
    scans: int = 0

    @property
    def lock_free_fraction(self) -> float:
        total = self.reserved_swapouts + self.locked_allocations
        if total == 0:
            return 0.0
        return self.reserved_swapouts / total


class AdaptiveSwapManager:
    """Per-cgroup reservation bookkeeping over a private swap partition."""

    def __init__(
        self,
        engine: Engine,
        partition: SwapPartition,
        app: AppContext,
        base_allocator: Optional[FreeListAllocator] = None,
        reservation_high_occupancy: float = 0.75,
        scan_period_us: float = 2_000.0,
        scan_fraction: float = 0.10,
        hot_threshold: int = 2,
        reserved_write_cost_us: float = 0.2,
    ):
        self.engine = engine
        self.partition = partition
        self.app = app
        self.base_allocator = (
            base_allocator
            if base_allocator is not None
            else FreeListAllocator(engine, partition, name=f"{app.name}.alloc")
        )
        self.reservation_high_occupancy = reservation_high_occupancy
        self.scan_period_us = scan_period_us
        self.scan_fraction = scan_fraction
        self.hot_threshold = hot_threshold
        self.reserved_write_cost_us = reserved_write_cost_us
        self.stats = AdaptiveAllocStats()
        self._prev_scan_set: Set[Page] = set()
        self._scanner = engine.spawn(self._scan_loop(), name=f"{app.name}.hotscan")

    # -- allocation ----------------------------------------------------------

    @property
    def under_pressure(self) -> bool:
        return self.partition.occupancy >= self.reservation_high_occupancy

    def obtain_entry(self, page: Page, core_id: int) -> Generator:
        """Swap-out path: reserved entries skip the allocator entirely."""
        if page.reserved_entry is not None:
            yield self.engine.timeout(self.reserved_write_cost_us)
            self.stats.reserved_swapouts += 1
            self.app.stats.reserved_swapouts += 1
            return page.reserved_entry
        start = self.engine.now
        if self.partition.free_count <= self.reserve_guard // 2:
            # Refill the free list in bulk before it runs dry, so each
            # allocation does not pay its own emergency scan.
            self._emergency_release(max(32, self.reserve_guard))
        for attempt in range(3):
            try:
                entry = yield from self.base_allocator.allocate(core_id)
                break
            except RuntimeError:
                if self._emergency_release(max(32, self.reserve_guard)) == 0:
                    raise
        self.stats.locked_allocations += 1
        self.app.stats.alloc_stall_us += self.engine.now - start
        # Reserve whenever free entries remain: "we should trade off
        # space for time if an application has much available swap
        # space".  The hot-page scanner (not grant denial) is what frees
        # space back when the 75% trigger fires — a page that cycles
        # in and out is exactly the page that deserves its reservation.
        if self.partition.free_count > self.reserve_guard:
            self._grant_reservation(page, entry)
        return entry

    @property
    def reserve_guard(self) -> int:
        """Free entries kept un-reservable as writeback headroom."""
        return max(2, self.partition.n_entries // 32)

    def _emergency_release(self, n: int) -> int:
        """Partition exhausted: cancel reservations held by resident pages.

        Only resident pages qualify — a cold page's reserved entry holds
        its only data copy.  Returns the number of entries reclaimed.
        """
        released = 0
        for lru_list in (self.app.lru.active, self.app.lru.inactive):
            for page in list(lru_list.head_pages(len(lru_list))):
                if released >= n:
                    return released
                if page.resident and page.reserved_entry is not None:
                    self._remove_reservation(page, release_entry=True)
                    page.state = PageState.HOT_NO_RESERVATION
                    released += 1
        return released

    def _grant_reservation(self, page: Page, entry: SwapEntry) -> None:
        page.reserved_entry = entry
        entry.reserved = True
        self.stats.reservations_granted += 1
        if not page.resident:
            # The grant happens mid-eviction, after the on_evicted hook
            # labelled the page; refresh the Fig. 7 state.
            page.state = PageState.COLD_RESERVED

    def reserve_prepopulated(self, page: Page) -> None:
        """Setup hook: treat a prepopulated cold page's entry as reserved."""
        if page.swap_entry is None:
            raise ValueError(f"page {page.vpn:#x} has no entry to reserve")
        self._grant_reservation(page, page.swap_entry)
        page.state = PageState.COLD_RESERVED

    # -- map-in / eviction state upkeep --------------------------------------

    def on_mapped(self, page: Page) -> None:
        """Swap-in completed and the page is mapped (states 4/2 of Fig. 7)."""
        if page.reserved_entry is not None:
            # One-to-one mapping: the entry stays allocated & reserved;
            # its data remains valid until the page is dirtied, so a
            # clean re-eviction is free.
            page.state = PageState.RESIDENT_RESERVED
        else:
            if page.swap_entry is not None:
                self.base_allocator.free(page.swap_entry)
                page.swap_entry = None
            page.state = PageState.HOT_NO_RESERVATION

    def on_evicted(self, page: Page) -> None:
        page.state = (
            PageState.COLD_RESERVED
            if page.reserved_entry is not None
            else PageState.COLD_NO_RESERVATION
        )
        page.hot_score = 0

    def release_on_free(self, page: Page) -> None:
        """Drop everything when a page dies (region unmap)."""
        if page.reserved_entry is not None:
            self._remove_reservation(page, release_entry=page.resident)

    # -- hot-page scanning -------------------------------------------------

    def _scan_loop(self) -> Generator:
        while True:
            yield self.engine.timeout(self.scan_period_us)
            if not self.under_pressure:
                self._prev_scan_set.clear()
                continue
            self._scan_once()

    def _scan_once(self) -> None:
        """One pass over the head of the active list (§5.1)."""
        self.stats.scans += 1
        active = self.app.lru.active
        scan_len = max(8, int(len(active) * self.scan_fraction))
        current = set(active.head_pages(scan_len))
        for page in self._prev_scan_set - current:
            page.hot_score = 0
        for page in current:
            page.hot_score += 1
            if (
                page.hot_score >= self.hot_threshold
                and page.reserved_entry is not None
                and page.resident
            ):
                self._remove_reservation(page, release_entry=True)
                page.state = PageState.HOT_NO_RESERVATION
        self._prev_scan_set = current

    def _remove_reservation(self, page: Page, release_entry: bool) -> None:
        entry = page.reserved_entry
        page.reserved_entry = None
        entry.reserved = False
        self.stats.reservations_removed += 1
        if release_entry:
            # The entry returns to the free list; for a resident page the
            # stale remote data is abandoned with it.
            self.base_allocator.free(entry)
            if page.swap_entry is entry:
                page.swap_entry = None
