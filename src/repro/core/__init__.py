"""Canvas core: isolation, adaptive allocation, two-tier prefetch, 2D RDMA."""

from repro.core.adaptive_alloc import AdaptiveAllocStats, AdaptiveSwapManager
from repro.core.canvas import CanvasConfig, CanvasSwapSystem
from repro.core.rdma_sched import SchedulerStats, TwoDimensionalScheduler
from repro.core.two_tier import TwoTierController, TwoTierStats

__all__ = [
    "AdaptiveAllocStats",
    "AdaptiveSwapManager",
    "CanvasConfig",
    "CanvasSwapSystem",
    "SchedulerStats",
    "TwoDimensionalScheduler",
    "TwoTierController",
    "TwoTierStats",
]

from repro.core.rebalance import CacheRebalancer, RebalanceStats

__all__ += ["CacheRebalancer", "RebalanceStats"]

from repro.core.remote_memory import DemandDrivenRemoteMemory, RemoteMemoryStats

__all__ += ["DemandDrivenRemoteMemory", "RemoteMemoryStats"]
