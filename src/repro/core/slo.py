"""SLO feedback: per-cgroup p99 demand-fault latency drives adaptation.

Canvas already has the two mechanisms an SLO loop needs — the
two-dimensional RDMA scheduler's per-cgroup WFQ weights (§4) and the
adaptive allocator's reservation aggressiveness (§5.1) — but nothing
closes the loop.  This controller does, in the spirit of the paper's
"performance isolation as a first-class goal": every period it reads
each live cgroup's p99 *demand* swap-in latency from telemetry and

* **scheduler lever** — scales the cgroup's WFQ weight up while it
  breaches its latency target (more of the shared wire) and decays it
  back toward the registered base weight while compliant, bounded to
  ``[base/max_boost, base*max_boost]`` so one tenant can never starve
  the rest;
* **allocator lever** — while breaching, drops the cgroup's adaptive
  hot-page threshold one step (reserve entries for more of the working
  set, shaving entry allocation off the eviction path that backs up
  behind demand faults), restoring it on compliance.

Both levers act on *live* state only: a cgroup that unregisters simply
disappears from the next control round (its controller state is dropped
with it), so the loop is churn-safe by construction.  The controller
reads telemetry and writes policy knobs — it never touches the engine
schedule directly — and a controller over a system whose latencies stay
under target applies no adjustment at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, Optional

from repro.rdma.message import RequestKind

__all__ = ["SloConfig", "SloAppState", "SloStats", "SloController"]


@dataclass(frozen=True)
class SloConfig:
    """Control-loop knobs.  Frozen: sits inside an ``ExperimentConfig``."""

    #: p99 demand swap-in latency target per cgroup.
    target_p99_us: float = 400.0
    #: Control period.
    period_us: float = 2_000.0
    #: Multiplicative weight step per breaching period.
    gain: float = 0.25
    #: Decay rate back toward the base weight while compliant.
    decay: float = 0.5
    #: Weight boost bound (relative to the registered base weight).
    max_boost: float = 8.0
    #: New demand samples required in a period before acting on it
    #: (quantiles over a handful of faults are noise).
    min_samples: int = 16
    #: Adaptive-allocator lever: hot-threshold multiplier while
    #: breaching (``<1`` reserves more aggressively).
    hot_threshold_scale: float = 0.5

    def __post_init__(self):
        if self.target_p99_us <= 0:
            raise ValueError("target_p99_us must be positive")
        if self.period_us <= 0:
            raise ValueError("period_us must be positive")
        if self.max_boost < 1.0:
            raise ValueError("max_boost must be >= 1.0")


@dataclass
class SloAppState:
    """Per-cgroup controller memory (dropped when the cgroup departs)."""

    base_weight: float
    boost: float = 1.0
    #: Histogram count at the last control round (windowing).
    last_count: int = 0
    base_hot_threshold: Optional[float] = None
    breaching: bool = False
    last_p99_us: float = 0.0


@dataclass
class SloStats:
    rounds: int = 0
    breaches: int = 0
    boosts_applied: int = 0
    decays_applied: int = 0
    #: Most recent per-app p99 observations (for reporting/tests).
    last_p99: Dict[str, float] = field(default_factory=dict)


class SloController:
    """Periodic feedback from demand-latency telemetry into policy knobs."""

    def __init__(self, engine, system, telemetry, config: Optional[SloConfig] = None):
        self.engine = engine
        self.system = system
        self.telemetry = telemetry
        self.config = config if config is not None else SloConfig()
        self.stats = SloStats()
        self._states: Dict[str, SloAppState] = {}
        #: Canvas exposes the 2-D scheduler; baselines have no weight
        #: lever, so the controller degrades to measurement-only there.
        self._scheduler = getattr(system, "scheduler", None)
        self._proc = engine.spawn(self._control_loop(), name="slo.controller")

    # -- levers --------------------------------------------------------------

    def _state_for(self, name: str) -> SloAppState:
        state = self._states.get(name)
        if state is None:
            base = 1.0
            if self._scheduler is not None:
                base = self._scheduler.weight_of(name) or 1.0
            state = SloAppState(base_weight=base)
            self._states[name] = state
        return state

    def _adaptive_for(self, name: str):
        canvas_state = getattr(self.system, "_state", {}).get(name)
        return getattr(canvas_state, "adaptive", None)

    def _apply_weight(self, name: str, state: SloAppState) -> None:
        if self._scheduler is not None:
            self._scheduler.set_weight(name, state.base_weight * state.boost)

    def _apply_allocator(self, name: str, state: SloAppState) -> None:
        adaptive = self._adaptive_for(name)
        if adaptive is None:
            return
        if state.base_hot_threshold is None:
            state.base_hot_threshold = adaptive.hot_threshold
        if state.breaching:
            adaptive.hot_threshold = (
                state.base_hot_threshold * self.config.hot_threshold_scale
            )
        else:
            adaptive.hot_threshold = state.base_hot_threshold

    # -- control loop --------------------------------------------------------

    def _control_round(self) -> None:
        config = self.config
        self.stats.rounds += 1
        live = list(self.system.apps)
        # Departed cgroups: drop their controller memory.
        for name in [n for n in self._states if n not in self.system.apps]:
            del self._states[name]
        for name in live:
            hist = self.telemetry.latency_hist(name, RequestKind.DEMAND)
            state = self._state_for(name)
            fresh = hist.count - state.last_count
            if fresh < config.min_samples:
                # Not enough new signal; decay any boost so an idle (or
                # finished-faulting) cgroup returns the wire share.
                if state.boost > 1.0:
                    state.boost = max(
                        1.0, 1.0 + (state.boost - 1.0) * (1.0 - config.decay)
                    )
                    state.breaching = False
                    self._apply_weight(name, state)
                    self._apply_allocator(name, state)
                    self.stats.decays_applied += 1
                continue
            state.last_count = hist.count
            p99 = hist.percentile(99.0)
            state.last_p99_us = p99
            self.stats.last_p99[name] = p99
            if p99 > config.target_p99_us:
                state.breaching = True
                state.boost = min(config.max_boost, state.boost * (1.0 + config.gain))
                self.stats.breaches += 1
                self.stats.boosts_applied += 1
            else:
                state.breaching = False
                if state.boost > 1.0:
                    state.boost = max(
                        1.0, 1.0 + (state.boost - 1.0) * (1.0 - config.decay)
                    )
                    self.stats.decays_applied += 1
            self._apply_weight(name, state)
            self._apply_allocator(name, state)

    def _control_loop(self) -> Generator:
        while True:
            yield self.engine.sleep(self.config.period_us)
            self._control_round()

    def stop(self) -> None:
        """Interrupt the control process (clean exit at a timeout yield)."""
        if self._proc is not None and not self._proc.fired:
            self._proc.interrupt("slo-stop")
