"""Demand-driven remote-memory provisioning (§4).

"Canvas allocates remote memory in a demand-driven manner — upon a
pressure in local memory, Canvas allocates remote memory and registers
it as a RDMA buffer."  Instead of provisioning the whole per-cgroup
partition up front, the partition starts small and grows in chunks as
the free list drains, paying an RDMA buffer-registration latency per
chunk, until the cgroup's remote-memory limit is reached.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

from repro.sim.engine import Engine
from repro.swap.partition import SwapPartition

__all__ = ["RemoteMemoryStats", "DemandDrivenRemoteMemory"]


@dataclass
class RemoteMemoryStats:
    growths: int = 0
    entries_registered: int = 0
    registration_stall_us: float = 0.0
    #: Registrations that paid a fault-plan server-slowdown multiplier.
    degraded_registrations: int = 0


class DemandDrivenRemoteMemory:
    """Grow a partition toward its cgroup limit as demand materializes."""

    def __init__(
        self,
        engine: Engine,
        partition: SwapPartition,
        limit_entries: int,
        chunk_entries: int = 1024,
        registration_us_per_chunk: float = 120.0,
        low_water_entries: int = 64,
        fault_plan=None,
    ):
        if partition.n_entries > limit_entries:
            raise ValueError(
                f"partition already exceeds its limit "
                f"({partition.n_entries} > {limit_entries})"
            )
        self.engine = engine
        self.partition = partition
        self.limit_entries = limit_entries
        self.chunk_entries = chunk_entries
        self.registration_us_per_chunk = registration_us_per_chunk
        self.low_water_entries = low_water_entries
        #: Optional :class:`repro.faults.FaultPlan`: server slowdown
        #: episodes multiply the buffer-registration cost.
        self.fault_plan = fault_plan
        #: Optional :class:`repro.cluster.Rack`: registration cost is
        #: scaled by the home server the next chunk would land on (the
        #: per-server registration-cost knob).  A 1.0 scale is guarded
        #: out, so a homogeneous rack never perturbs the arithmetic.
        self.rack = None
        self.stats = RemoteMemoryStats()
        self._growing = False

    @property
    def headroom(self) -> int:
        """Entries still available to register under the cgroup limit."""
        return self.limit_entries - self.partition.n_entries

    @property
    def at_limit(self) -> bool:
        return self.headroom <= 0

    def maybe_grow(self) -> Generator:
        """Simulation sub-generator: register another chunk if the free
        list is running low.  Concurrent callers coalesce onto one
        registration (the second caller returns immediately; its
        allocation then either finds entries or retries)."""
        if (
            self.partition.free_count > self.low_water_entries
            or self.at_limit
            or self._growing
        ):
            return
        self._growing = True
        try:
            chunk = min(self.chunk_entries, self.headroom)
            start = self.engine.now
            cost = self.registration_us_per_chunk
            if self.fault_plan is not None:
                factor = self.fault_plan.registration_slowdown(start)
                if factor != 1.0:
                    cost *= factor
                    self.stats.degraded_registrations += 1
            if self.rack is not None:
                server_factor = self.rack.registration_scale_for(self.partition)
                if server_factor != 1.0:
                    cost *= server_factor
            yield self.engine.timeout(cost)
            self.partition.grow(chunk)
            self.stats.growths += 1
            self.stats.entries_registered += chunk
            self.stats.registration_stall_us += self.engine.now - start
        finally:
            self._growing = False

    def ensure_untimed(self, n_entries: int) -> None:
        """Setup-time growth (experiment prepopulation; costs no time)."""
        needed = n_entries - self.partition.free_count
        if needed <= 0:
            return
        if needed > self.headroom:
            raise RuntimeError(
                f"{self.partition.name}: needs {needed} entries but only "
                f"{self.headroom} below the cgroup limit"
            )
        self.partition.grow(needed)
        self.stats.growths += 1
        self.stats.entries_registered += needed
