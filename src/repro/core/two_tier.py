"""Two-tier adaptive prefetching control (§5.2).

The kernel-tier prefetcher (per-application readahead into the private
swap cache) is always the first line.  This controller watches how well
it does: when the number of pages it prefetches stays below
``fail_threshold_pages`` for ``consecutive_faults`` faults in a row, the
faulting addresses start being forwarded up through the modified
userfaultfd interface to the application tier (the JVM's semantic
prefetcher).  Forwarding stops the moment the kernel tier becomes
effective again, because the application tier costs the app's own CPU.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.kernel.userfaultfd import UserfaultfdChannel

__all__ = ["TwoTierStats", "TwoTierController"]


@dataclass
class TwoTierStats:
    kernel_successes: int = 0
    kernel_failures: int = 0
    forwarding_activations: int = 0
    forwarded: int = 0


class TwoTierController:
    """Per-application decision logic for uffd forwarding."""

    def __init__(
        self,
        uffd: UserfaultfdChannel,
        fail_threshold_pages: int = 2,
        consecutive_faults: int = 3,
    ):
        self.uffd = uffd
        self.fail_threshold_pages = fail_threshold_pages
        self.consecutive_faults = consecutive_faults
        self.stats = TwoTierStats()
        self._failure_streak = 0
        self.forwarding = False

    def note_kernel_hit(self) -> None:
        """A fault hit a kernel-prefetched page: the kernel tier works."""
        self._failure_streak = 0
        self.stats.kernel_successes += 1
        self.forwarding = False

    def on_kernel_prefetch(self, thread_id: int, vpn: int, pages_issued: int) -> None:
        """Observe one fault's kernel-tier outcome; maybe forward."""
        if pages_issued < self.fail_threshold_pages:
            self._failure_streak += 1
            self.stats.kernel_failures += 1
            if (
                not self.forwarding
                and self._failure_streak >= self.consecutive_faults
            ):
                self.forwarding = True
                self.stats.forwarding_activations += 1
        else:
            self._failure_streak = 0
            self.stats.kernel_successes += 1
            self.forwarding = False  # kernel tier is effective again
        if self.forwarding and self.uffd.has_handler:
            self.stats.forwarded += 1
            self.uffd.forward(thread_id, vpn)
