"""Two-dimensional RDMA scheduling (§4, §5.3).

Requests leave the kernel through per-cgroup virtual queue pairs (VQPs);
a centralized scheduler forwards them onto physical QPs, deciding along
two dimensions:

* **Vertical (across applications)** — weighted fair queuing with a
  virtual clock: each application accrues virtual finish time at a rate
  inversely proportional to its weight, and the pending application with
  the smallest candidate finish tag is served next.  Unconsumed bandwidth
  is naturally redistributed because idle applications' tags don't
  advance past the global virtual clock.

* **Horizontal (within an application)** — demand requests are served
  strictly before prefetch requests, and every prefetch is checked for
  **timeliness** before being forwarded: if its estimated arrival time
  (queueing so far + EWMA service estimate) exceeds the application's
  timeliness threshold (a high percentile of observed prefetch-to-use
  gaps), the request is dropped instead of wasting wire time.  The
  kernel's drop callback unwinds the swap-cache state so a later fault
  re-issues a demand read (§5.3's valid/timestamp protocol).

Swap-outs are subject to fair scheduling only.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Generator, Optional

from repro.kernel.telemetry import Telemetry
from repro.rdma.message import RdmaOp, RdmaRequest, RequestKind
from repro.rdma.nic import RNIC
from repro.rdma.vqp import VirtualQP
from repro.sim.engine import Engine, Event

__all__ = ["SchedulerStats", "TwoDimensionalScheduler"]

DropCallback = Callable[[RdmaRequest], None]


@dataclass
class _AppState:
    vqp: VirtualQP
    weight: float = 1.0
    read_finish_tag: float = 0.0
    write_finish_tag: float = 0.0
    #: EWMA of observed read service time (forward → completion), µs.
    service_ewma_us: float = 20.0
    timeliness_floor_us: float = 200.0
    #: Memoized timeliness threshold: the histogram only changes when its
    #: count does, so the (count, floor, ceiling) key makes re-deriving
    #: the percentile between samples free.  Host-side only.
    _timeliness_hist: Optional[object] = None
    _thr_key: tuple = (-1,)
    _thr_value: float = 0.0


@dataclass
class SchedulerStats:
    reads_forwarded: int = 0
    writes_forwarded: int = 0
    prefetches_dropped: int = 0
    demand_forwarded: int = 0
    prefetch_forwarded: int = 0


class TwoDimensionalScheduler:
    """WFQ across cgroups × priority-with-timeliness within each cgroup."""

    def __init__(
        self,
        engine: Engine,
        nic: RNIC,
        telemetry: Optional[Telemetry] = None,
        name: str = "canvas-sched",
        read_window: int = 12,
        write_window: int = 12,
        horizontal: bool = True,
        timeliness_drops: Optional[bool] = None,
        drop_callback: Optional[DropCallback] = None,
        ewma_alpha: float = 0.2,
        timeliness_percentile: float = 90.0,
        timeliness_ceiling_us: float = 800.0,
    ):
        self.engine = engine
        self.nic = nic
        self.telemetry = telemetry
        self.name = name
        self.read_window = read_window
        self.write_window = write_window
        #: When False (isolation-only variant), demand and prefetch are
        #: forwarded FIFO per app and no timeliness drops happen.
        self.horizontal = horizontal
        #: Stale-prefetch dropping can be toggled independently of the
        #: priority split (the Fig. 14 ablation); defaults to following it.
        self.timeliness_drops = (
            horizontal if timeliness_drops is None else timeliness_drops
        )
        self.drop_callback = drop_callback
        self.ewma_alpha = ewma_alpha
        self.timeliness_percentile = timeliness_percentile
        self.timeliness_ceiling_us = timeliness_ceiling_us
        self.stats = SchedulerStats()
        self._apps: Dict[str, _AppState] = {}
        self._virtual_clock_read = 0.0
        self._virtual_clock_write = 0.0
        self._outstanding_reads = 0
        self._outstanding_writes = 0
        self._forward_time: Dict[int, float] = {}
        self._read_kick: Optional[Event] = None
        self._write_kick: Optional[Event] = None
        #: Reusable park events for the two forwarding loops.
        self._read_park = Event(engine, f"{name}.read.kick")
        self._write_park = Event(engine, f"{name}.write.kick")
        self.demand_qp = nic.create_qp(f"{name}.demand", RdmaOp.READ, priority=0)
        self.prefetch_qp = nic.create_qp(f"{name}.prefetch", RdmaOp.READ, priority=1)
        self.write_qp = nic.create_qp(f"{name}.write", RdmaOp.WRITE, priority=0)
        nic.completion_hooks.append(self._on_completion)
        nic.dropped_hooks.append(self._on_dropped_skip)
        engine.spawn(self._read_loop(), name=f"{name}.read")
        engine.spawn(self._write_loop(), name=f"{name}.write")

    # -- registration ------------------------------------------------------

    def register_app(self, app_name: str, weight: float = 1.0) -> VirtualQP:
        if app_name in self._apps:
            raise ValueError(f"app {app_name!r} already registered")
        if weight <= 0:
            raise ValueError(f"weight must be positive, got {weight}")
        vqp = VirtualQP(self.engine, app_name)
        self._apps[app_name] = _AppState(vqp=vqp, weight=weight)
        return vqp

    def unregister_app(self, app_name: str) -> None:
        """Drop a departed app from the fair-queuing roster.

        The caller (teardown) guarantees the VQP is drained and no
        request of this app is in flight, so removing the state cannot
        strand a forwarded request: completions look the app up with
        ``.get`` and tolerate absence.
        """
        self._apps.pop(app_name, None)

    def set_weight(self, app_name: str, weight: float) -> None:
        """Retune an app's WFQ share in place (the SLO control knob).

        Finish tags are left untouched — the virtual clock catches the
        app up on its next packet, so a weight change takes effect
        smoothly instead of granting a burst of retroactive credit.
        """
        if weight <= 0:
            raise ValueError(f"weight must be positive, got {weight}")
        state = self._apps.get(app_name)
        if state is not None:
            state.weight = weight

    def weight_of(self, app_name: str) -> float:
        state = self._apps.get(app_name)
        return state.weight if state is not None else 0.0

    def submit(self, app_name: str, request: RdmaRequest) -> None:
        self._apps[app_name].vqp.push(request)
        if request.op is RdmaOp.READ:
            self._kick_read()
        else:
            self._kick_write()

    def submit_many(self, app_name: str, requests) -> None:
        """Doorbell twin of ``submit``: one VQP pass, one kick per op.

        Per-request kicks after the first were no-ops anyway (the park
        event latches), so forwarding order and timing are unchanged.
        """
        if not requests:
            return
        self._apps[app_name].vqp.push_many(requests)
        kicked_read = kicked_write = False
        for request in requests:
            if request.op is RdmaOp.READ:
                if not kicked_read:
                    self._kick_read()
                    kicked_read = True
            elif not kicked_write:
                self._kick_write()
                kicked_write = True

    # -- timeliness --------------------------------------------------------

    def timeout_threshold_us(self, app_name: str) -> float:
        """The staleness bound for this app's in-flight prefetches."""
        state = self._apps[app_name]
        threshold = state.timeliness_floor_us
        if self.telemetry is not None:
            hist = state._timeliness_hist
            if hist is None:
                hist = state._timeliness_hist = self.telemetry.timeliness_hist(
                    app_name
                )
            key = (hist.count, threshold, self.timeliness_ceiling_us)
            if key == state._thr_key:
                return state._thr_value
            if hist.count >= 30:
                threshold = max(
                    threshold, hist.percentile(self.timeliness_percentile)
                )
            # A prefetch this late is never worth wire time, whatever the
            # observed arrival-to-use distribution says.
            value = min(threshold, self.timeliness_ceiling_us)
            state._thr_key = key
            state._thr_value = value
            return value
        return min(threshold, self.timeliness_ceiling_us)

    def estimated_service_us(self, app_name: str) -> float:
        return self._apps[app_name].service_ewma_us

    def _prefetch_is_stale(self, app_name: str, request: RdmaRequest) -> bool:
        queued = self.engine.now - (request.enqueued_at_us or self.engine.now)
        estimate = queued + self.estimated_service_us(app_name)
        return estimate > self.timeout_threshold_us(app_name)

    # -- selection ----------------------------------------------------------

    def _head_read_request(self, state: _AppState) -> Optional[RdmaRequest]:
        """Horizontal dimension: next read for one app, applying drops.

        Heads are read straight off the VQP's per-kind deques (a dropped
        head falls back to the skipping ``peek``); with horizontal
        priority on and a demand pending, the prefetch queue is not
        consulted at all — demand wins regardless.
        """
        vqp = state.vqp
        dq = vqp.demand_q
        if dq:
            demand = dq[0]
            if demand.dropped:
                demand = vqp.peek(RequestKind.DEMAND)
        else:
            demand = None
        if demand is not None:
            if self.horizontal:
                return demand
            prefetch = vqp.peek(RequestKind.PREFETCH)
            if prefetch is None:
                return demand
            # FIFO between kinds when horizontal scheduling is disabled:
            # serve whichever was enqueued first; request IDs break
            # same-instant ties in submission order.
            demand_key = (demand.enqueued_at_us, demand.request_id)
            prefetch_key = (prefetch.enqueued_at_us, prefetch.request_id)
            return demand if demand_key <= prefetch_key else prefetch
        if not self.horizontal:
            return vqp.peek(RequestKind.PREFETCH)
        # Only prefetches pending: drop stale ones from the head.
        pq = vqp.prefetch_q
        while True:
            if pq:
                prefetch = pq[0]
                if prefetch.dropped:
                    prefetch = vqp.peek(RequestKind.PREFETCH)
            else:
                prefetch = None
            if prefetch is None:
                return None
            if self.timeliness_drops and self._prefetch_is_stale(
                vqp.app_name, prefetch
            ):
                vqp.pop(RequestKind.PREFETCH)  # pop first, then mark: pop
                prefetch.dropped = True  # skips requests already marked
                self.stats.prefetches_dropped += 1
                if self.drop_callback is not None:
                    self.drop_callback(prefetch)
                if prefetch.owner is not None:
                    # Dropped before forwarding: it will never reach the
                    # NIC, so recycle once the unwind has been dispatched.
                    self.engine._immediate.append(prefetch._recycle_cb)
                continue
            return prefetch

    def _select_fair(self, op: RdmaOp) -> Optional[RdmaRequest]:
        """Vertical dimension: start-time fair queuing with virtual clock.

        Each packet's start tag is max(app's last finish tag, clock); the
        pending app with the smallest start tag is served, the clock
        advances to that start tag, and the app's finish tag becomes
        start + cost/weight.  A continuously backlogged app accumulates
        finish-tag debt proportional to 1/weight, so lighter apps win as
        soon as they have anything pending — no starvation.
        """
        best_name = None
        best_start = None
        best_request = None
        read = op is RdmaOp.READ
        clock = self._virtual_clock_read if read else self._virtual_clock_write
        if read:
            head = self._head_read_request
            for app_name, state in self._apps.items():
                request = head(state)
                if request is None:
                    continue
                last_finish = state.read_finish_tag
                start = last_finish if last_finish > clock else clock
                if best_start is None or start < best_start:
                    best_name, best_start, best_request = app_name, start, request
        else:
            for app_name, state in self._apps.items():
                request = state.vqp.peek(RequestKind.SWAPOUT)
                if request is None:
                    continue
                last_finish = state.write_finish_tag
                start = last_finish if last_finish > clock else clock
                if best_start is None or start < best_start:
                    best_name, best_start, best_request = app_name, start, request
        if best_request is None:
            return None
        state = self._apps[best_name]
        finish = best_start + 1.0 / state.weight
        if op is RdmaOp.READ:
            state.read_finish_tag = finish
            self._virtual_clock_read = best_start
            state.vqp.pop(best_request.kind)
        else:
            state.write_finish_tag = finish
            self._virtual_clock_write = best_start
            state.vqp.pop(RequestKind.SWAPOUT)
        return best_request

    # -- forwarding loops ----------------------------------------------------

    def _kick_read(self) -> None:
        if self._read_kick is not None and not self._read_kick.fired:
            self._read_kick.succeed()

    def _kick_write(self) -> None:
        if self._write_kick is not None and not self._write_kick.fired:
            self._write_kick.succeed()

    def _read_loop(self) -> Generator:
        while True:
            if self._outstanding_reads >= self.read_window:
                yield from self._wait_read()
                continue
            request = self._select_fair(RdmaOp.READ)
            if request is None:
                yield from self._wait_read()
                continue
            self._forward_time[request.request_id] = self.engine.now
            self._outstanding_reads += 1
            self.stats.reads_forwarded += 1
            if request.kind is RequestKind.DEMAND:
                self.stats.demand_forwarded += 1
                self.nic.submit(self.demand_qp, request)
            else:
                self.stats.prefetch_forwarded += 1
                self.nic.submit(self.prefetch_qp, request)

    def _write_loop(self) -> Generator:
        while True:
            if self._outstanding_writes >= self.write_window:
                yield from self._wait_write()
                continue
            request = self._select_fair(RdmaOp.WRITE)
            if request is None:
                yield from self._wait_write()
                continue
            self._forward_time[request.request_id] = self.engine.now
            self._outstanding_writes += 1
            self.stats.writes_forwarded += 1
            self.nic.submit(self.write_qp, request)

    def _wait_read(self) -> Generator:
        event = self._read_park
        self._read_kick = event
        yield event
        self._read_kick = None
        event.reset()

    def _wait_write(self) -> Generator:
        event = self._write_park
        self._write_kick = event
        yield event
        self._write_kick = None
        event.reset()

    # -- completion hook ----------------------------------------------------

    def _on_dropped_skip(self, request: RdmaRequest) -> None:
        """A forwarded request was dropped before service: free its slot."""
        forwarded_at = self._forward_time.pop(request.request_id, None)
        if forwarded_at is None:
            return
        if request.op is RdmaOp.READ:
            self._outstanding_reads -= 1
            self._kick_read()
        else:
            self._outstanding_writes -= 1
            self._kick_write()

    def _on_completion(self, request: RdmaRequest) -> None:
        forwarded_at = self._forward_time.pop(request.request_id, None)
        if forwarded_at is None:
            return  # not ours (other systems may share the NIC in tests)
        if request.op is RdmaOp.READ:
            self._outstanding_reads -= 1
            state = self._apps.get(request.app_name)
            if state is not None and not request.error:
                # Error CQEs free the slot but must not feed the service
                # EWMA: their latency is retry backoff, not service time,
                # and would poison the timeliness estimate.
                service = self.engine.now - forwarded_at
                state.service_ewma_us += self.ewma_alpha * (
                    service - state.service_ewma_us
                )
            self._kick_read()
        else:
            self._outstanding_writes -= 1
            self._kick_write()
