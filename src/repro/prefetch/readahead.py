"""The kernel's default swap readahead.

Models Linux's cluster/VMA swap readahead as a *readaround* policy with
hit feedback:

* on every fault the kernel considers reading a window of pages after
  the faulting address (``page_cluster`` style), following a confirmed
  stride when one exists and contiguous addresses otherwise;
* the window adapts to *readahead effectiveness*: faults that land on
  previously prefetched pages (swap_ra hits) grow it, demand misses
  shrink it, down to complete silence for pattern-less workloads —
  "if no pattern is found, the kernel reduces the number of prefetched
  pages until it stops prefetching completely" (§2).

Because effectiveness is tracked per (application, VMA bucket) rather
than per thread, interleaved multi-threaded scans still benefit (each
thread's fault drags in its own successors), but the *stride* detector
sees a polluted delta stream — the §5.2 weakness Canvas's per-thread
application tier addresses.

This prefetcher is conservative and therefore accurate (Table 5: ~95%
accuracy) but contributes nothing on pointer-chasing workloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.prefetch.base import Prefetcher

__all__ = ["KernelReadahead"]


@dataclass
class _BucketState:
    prev_vpn: Optional[int] = None
    prev_delta: Optional[int] = None
    #: Readahead effectiveness score; window = 2**score (0 when negative).
    score: int = 2
    #: Demand misses since the last score decrement (decay smoothing).
    miss_streak: int = 0
    #: Faults since the window went silent (probe scheduling).
    silent_faults: int = 0


class KernelReadahead(Prefetcher):
    """Readaround with hit-feedback window sizing and stride following."""

    #: Strides larger than this are treated as random jumps, not patterns.
    MAX_STRIDE = 64
    SCORE_MIN = -2
    SCORE_MAX = 3  # window cap = 2**3 = 8 pages ("page_cluster" default)
    #: Demand misses absorbed before the score drops one step.
    MISS_DECAY = 2
    #: While silent, probe with a single readahead page every Nth fault
    #: so a workload that turns sequential can re-bootstrap the window.
    PROBE_INTERVAL = 16

    def __init__(
        self,
        name: str = "kernel-readahead",
        max_window: int = 8,
        vma_bucket_pages: int = 512,
    ):
        super().__init__(name)
        self.max_window = max_window
        self.vma_bucket_pages = vma_bucket_pages
        self._buckets: Dict[Tuple[str, int], _BucketState] = {}
        #: Mapped VPN ranges per app, as sorted ``(start, end)`` pairs.
        self._regions: Dict[str, List[Tuple[int, int]]] = {}
        #: Apps explicitly unregistered: clamp drops *all* their
        #: proposals (unlike a never-registered app, which keeps the
        #: permissive legacy fallback below).
        self._forgotten: set = set()

    def note_region(self, app_name: str, start_vpn: int, end_vpn: int) -> None:
        self._forgotten.discard(app_name)
        regions = self._regions.setdefault(app_name, [])
        regions.append((start_vpn, end_vpn))
        regions.sort()

    def forget_app(self, app_name: str) -> None:
        """Unmap a departed app: drop its VMAs and bucket state.

        Without this the clamp's unknown-mapping fallback would keep
        letting proposals through at freed addresses (the old line-92
        workaround); forgotten apps now clamp to nothing until a fresh
        ``note_region`` re-registers them.
        """
        self._regions.pop(app_name, None)
        self._forgotten.add(app_name)
        for key in [k for k in self._buckets if k[0] == app_name]:
            del self._buckets[key]

    def _clamp(self, app_name: str, vpn: int, proposals: List[int]) -> List[int]:
        """Drop proposed VPNs outside the VMA containing the fault.

        Linux's VMA readahead never crosses the mapping boundary; without
        this, a confirmed negative stride near the region start proposes
        negative (or foreign) VPNs that would fault the simulator on
        pages the app never mapped.
        """
        if app_name in self._forgotten:
            # Explicitly unregistered: its address space is freed, so no
            # proposal may target it.
            self.stats.proposals_clamped += len(proposals)
            return []
        bounds = None
        for start, end in self._regions.get(app_name, ()):
            if start <= vpn < end:
                bounds = (start, end)
                break
        if bounds is None:
            # Unknown mapping (never-registered app): only drop
            # impossible VPNs.
            kept = [p for p in proposals if p >= 0]
        else:
            start, end = bounds
            kept = [p for p in proposals if start <= p < end]
        self.stats.proposals_clamped += len(proposals) - len(kept)
        return kept

    def _bucket_for(self, app_name: str, vpn: int) -> _BucketState:
        key = (app_name, vpn // self.vma_bucket_pages)
        state = self._buckets.get(key)
        if state is None:
            state = _BucketState()
            self._buckets[key] = state
        return state

    def window_of(self, app_name: str, vpn: int) -> int:
        """Current readahead window for this address's bucket."""
        state = self._bucket_for(app_name, vpn)
        if state.score < 0:
            return 0
        return min(self.max_window, 1 << state.score)

    def on_fault(
        self,
        app_name: str,
        thread_id: int,
        vpn: int,
        now_us: float,
        prefetched_hit: bool = False,
    ) -> List[int]:
        self.stats.faults_observed += 1
        state = self._bucket_for(app_name, vpn)
        # Effectiveness feedback: swap_ra hits grow the window; demand
        # misses shrink it (smoothed, since a scan at window W produces
        # ~W hits per boundary miss anyway).
        if prefetched_hit:
            state.score = min(self.SCORE_MAX, state.score + 1)
            state.miss_streak = 0
        else:
            state.miss_streak += 1
            if state.miss_streak >= self.MISS_DECAY:
                state.miss_streak = 0
                state.score = max(self.SCORE_MIN, state.score - 1)

        delta = None if state.prev_vpn is None else vpn - state.prev_vpn
        stride_confirmed = (
            delta is not None
            and delta == state.prev_delta
            and delta != 0
            and abs(delta) <= self.MAX_STRIDE
        )
        state.prev_vpn = vpn
        state.prev_delta = delta

        if state.score < 0:
            # Silent; probe occasionally so hits can revive the window.
            state.silent_faults += 1
            if state.silent_faults % self.PROBE_INTERVAL == 0:
                return self._propose(self._clamp(app_name, vpn, [vpn + 1]))
            return self._propose([])
        state.silent_faults = 0
        window = min(self.max_window, 1 << state.score)
        step = delta if stride_confirmed else 1
        proposals = [vpn + step * i for i in range(1, window + 1)]
        return self._propose(self._clamp(app_name, vpn, proposals))
