"""Leap: majority-vote trend detection with an aggressive fallback.

Leap (Maruf & Chowdhury, ATC '20) finds the majority access-stride over a
recent window of the *global* fault stream using a Boyer-Moore majority
vote, then prefetches along that stride.  Two properties matter for the
Canvas paper's experiments:

* It is **process-wide, not per-thread**: when applications (or a JVM's GC
  threads) interleave, their deltas mix in one window and the vote
  degrades — the effect behind Fig. 3.
* It is **aggressive**: "even if Leap does not find any pattern, it always
  prefetches a number of contiguous pages" (§3), which wastes bandwidth
  and swap-cache space on pointer-chasing workloads (Table 5: 16.8%
  accuracy on Spark-LR).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional

from repro.prefetch.base import Prefetcher

__all__ = ["majority_vote", "LeapPrefetcher"]


def majority_vote(deltas: List[int]) -> Optional[int]:
    """Boyer-Moore majority element; None when no strict majority exists."""
    if not deltas:
        return None
    candidate, count = deltas[0], 0
    for delta in deltas:
        if count == 0:
            candidate = delta
        count += 1 if delta == candidate else -1
    if sum(1 for d in deltas if d == candidate) * 2 > len(deltas):
        return candidate
    return None


class LeapPrefetcher(Prefetcher):
    """Majority-vote trend detector over a shared fault-history window."""

    def __init__(
        self,
        name: str = "leap",
        history: int = 32,
        max_window: int = 8,
        min_window: int = 2,
        aggressive: bool = True,
        per_app_history: bool = False,
    ):
        super().__init__(name)
        self.history = history
        self.max_window = max_window
        self.min_window = min_window
        #: When no majority exists, still prefetch contiguous pages.
        self.aggressive = aggressive
        #: True when running on an isolated swap system (one instance per
        #: app keyed separately); False models the shared baseline where
        #: every co-running application feeds one window.
        self.per_app_history = per_app_history
        self._histories: Dict[str, Deque[int]] = {}
        self._prev_vpn: Dict[str, int] = {}
        self._window: Dict[str, int] = {}
        #: Incremental Boyer-Moore state per history key: per-delta
        #: tallies over the window plus the current strict-majority
        #: element (or None).  Maintained as deltas enter/leave the
        #: window, so ``on_fault`` never rescans the history.
        self._counts: Dict[str, Dict[int, int]] = {}
        self._majority: Dict[str, Optional[int]] = {}

    def _key(self, app_name: str) -> str:
        return app_name if self.per_app_history else "__global__"

    def forget_app(self, app_name: str) -> None:
        """Drop a departed app's private trend state.

        Only per-app histories can be excised; in the shared-window
        baseline the app's deltas are already mixed into the global vote
        (exactly the pollution Fig. 3 is about) and age out naturally.
        """
        if not self.per_app_history:
            return
        self._histories.pop(app_name, None)
        self._prev_vpn.pop(app_name, None)
        self._window.pop(app_name, None)
        self._counts.pop(app_name, None)
        self._majority.pop(app_name, None)

    def _push_delta(self, key: str, history: Deque[int], delta: int) -> None:
        """Slide ``delta`` into the window, updating tallies and majority.

        After one slide the only candidates for strict majority are the
        delta just added (the only count that grew) and the previous
        majority (everything else was already at or below half and did
        not gain), so the update is O(1).
        """
        counts = self._counts.setdefault(key, {})
        if len(history) == history.maxlen:
            evicted = history[0]
            remaining = counts[evicted] - 1
            if remaining:
                counts[evicted] = remaining
            else:
                del counts[evicted]
        history.append(delta)
        counts[delta] = counts.get(delta, 0) + 1
        n = len(history)
        if counts[delta] * 2 > n:
            self._majority[key] = delta
        else:
            majority = self._majority.get(key)
            if majority is not None and counts.get(majority, 0) * 2 <= n:
                self._majority[key] = None

    def on_fault(
        self,
        app_name: str,
        thread_id: int,
        vpn: int,
        now_us: float,
        prefetched_hit: bool = False,
    ) -> List[int]:
        self.stats.faults_observed += 1
        key = self._key(app_name)
        history = self._histories.setdefault(key, deque(maxlen=self.history))
        prev = self._prev_vpn.get(key)
        self._prev_vpn[key] = vpn
        if prev is not None:
            self._push_delta(key, history, vpn - prev)

        window = self._window.get(key, self.min_window)
        trend = self._majority.get(key) if len(history) >= 4 else None
        if trend is not None and trend != 0:
            window = min(self.max_window, max(self.min_window, window * 2))
            self._window[key] = window
            return self._propose([vpn + trend * i for i in range(1, window + 1)])

        self._window[key] = max(self.min_window, window // 2)
        if self.aggressive:
            # No pattern: blind contiguous readaround, Leap's signature move.
            window = self._window[key]
            return self._propose([vpn + i for i in range(1, window + 1)])
        return self._propose([])
