"""Per-thread pattern analysis (Canvas application-tier pattern 2, §5.2).

The same majority-vote machinery as Leap, but with the fault history
**segregated by thread**: "Segregated addresses allow us to analyze
(sequential/strided) patterns on a per-thread basis (using Leap's
majority-vote algorithm)."  For JVM applications the thread IDs arriving
here have already been filtered through the runtime's user→kernel thread
map, so GC/JIT threads never pollute a worker thread's window; for native
applications kernel thread IDs are used directly.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.prefetch.base import Prefetcher
from repro.prefetch.leap import majority_vote

__all__ = ["ThreadPatternPrefetcher"]


class ThreadPatternPrefetcher(Prefetcher):
    """Majority-vote stride detection on per-thread fault streams."""

    def __init__(
        self,
        name: str = "thread-pattern",
        history: int = 16,
        max_window: int = 8,
        min_votes: int = 3,
    ):
        super().__init__(name)
        self.history = history
        self.max_window = max_window
        self.min_votes = min_votes
        self._histories: Dict[Tuple[str, int], Deque[int]] = {}
        self._prev_vpn: Dict[Tuple[str, int], int] = {}
        self._window: Dict[Tuple[str, int], int] = {}

    def forget_app(self, app_name: str) -> None:
        """Drop every thread window of a departed app."""
        for table in (self._histories, self._prev_vpn, self._window):
            for key in [k for k in table if k[0] == app_name]:
                del table[key]

    def observe(self, app_name: str, thread_id: int, vpn: int) -> None:
        """Feed one faulting address without producing a proposal."""
        key = (app_name, thread_id)
        history = self._histories.setdefault(key, deque(maxlen=self.history))
        prev = self._prev_vpn.get(key)
        self._prev_vpn[key] = vpn
        if prev is not None:
            history.append(vpn - prev)

    def trend(self, app_name: str, thread_id: int) -> Optional[int]:
        """The thread's current majority stride, if any."""
        history = self._histories.get((app_name, thread_id))
        if history is None or len(history) < self.min_votes:
            return None
        vote = majority_vote(list(history))
        if vote == 0:
            return None
        return vote

    def on_fault(
        self,
        app_name: str,
        thread_id: int,
        vpn: int,
        now_us: float,
        prefetched_hit: bool = False,
    ) -> List[int]:
        self.stats.faults_observed += 1
        self.observe(app_name, thread_id, vpn)
        stride = self.trend(app_name, thread_id)
        key = (app_name, thread_id)
        window = self._window.get(key, 2)
        if stride is None:
            self._window[key] = max(1, window // 2)
            return self._propose([])
        window = min(self.max_window, window * 2)
        self._window[key] = window
        return self._propose([vpn + stride * i for i in range(1, window + 1)])
