"""Reference-based prefetching (Canvas application-tier pattern 1, §5.2).

The JVM's write barrier reports object-reference writes ``a.f = b``; when
the two objects live on different *page groups*, an edge is recorded on a
summary graph whose nodes are consecutive groups of pages.  On a fault,
the prefetcher walks the graph up to ``max_hops`` (3 in the paper) from
the faulting page's group and proposes the pages of every reached group,
skipping cycles.  This captures "accessing an object brings in pages
containing objects referenced by this object" — the pattern class kernel
stride detectors cannot see.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Set

from repro.prefetch.base import Prefetcher

__all__ = ["PageGroupGraph", "ReferenceGraphPrefetcher"]


class PageGroupGraph:
    """Adjacency over fixed-size groups of consecutive pages."""

    def __init__(self, group_pages: int = 16):
        if group_pages <= 0:
            raise ValueError("group size must be positive")
        self.group_pages = group_pages
        self._edges: Dict[int, Set[int]] = {}
        self.edge_count = 0

    def group_of(self, vpn: int) -> int:
        return vpn // self.group_pages

    def record_reference(self, src_vpn: int, dst_vpn: int) -> None:
        """Write-barrier hook: note a reference crossing page groups."""
        src, dst = self.group_of(src_vpn), self.group_of(dst_vpn)
        if src == dst:
            return
        neighbors = self._edges.setdefault(src, set())
        if dst not in neighbors:
            neighbors.add(dst)
            self.edge_count += 1

    def neighbors(self, group: int) -> Set[int]:
        return self._edges.get(group, set())

    def reachable_groups(
        self, start_group: int, max_hops: int, min_hops: int = 1
    ) -> List[int]:
        """BFS out to ``max_hops``, cycle-free, excluding the start group.

        ``min_hops`` filters out the nearest groups — useful for
        prefetch timeliness, since hop-1 pages are often faulted before
        a just-issued read could land.
        """
        seen = {start_group}
        frontier = deque([(start_group, 0)])
        result: List[int] = []
        while frontier:
            group, depth = frontier.popleft()
            if depth == max_hops:
                continue
            for neighbor in sorted(self._edges.get(group, ())):
                if neighbor in seen:
                    continue
                seen.add(neighbor)
                if depth + 1 >= min_hops:
                    result.append(neighbor)
                frontier.append((neighbor, depth + 1))
        return result

    def group_vpns(self, group: int) -> Iterable[int]:
        start = group * self.group_pages
        return range(start, start + self.group_pages)


class ReferenceGraphPrefetcher(Prefetcher):
    """Graph-walking prefetcher over a write-barrier summary graph."""

    def __init__(
        self,
        graph: PageGroupGraph,
        name: str = "reference-graph",
        max_hops: int = 3,
        max_pages: int = 32,
        min_hops: int = 1,
    ):
        super().__init__(name)
        self.graph = graph
        self.max_hops = max_hops
        self.max_pages = max_pages
        self.min_hops = min_hops

    def on_fault(
        self,
        app_name: str,
        thread_id: int,
        vpn: int,
        now_us: float,
        prefetched_hit: bool = False,
    ) -> List[int]:
        self.stats.faults_observed += 1
        start = self.graph.group_of(vpn)
        vpns: List[int] = []
        for group in self.graph.reachable_groups(
            start, self.max_hops, min_hops=self.min_hops
        ):
            for candidate in self.graph.group_vpns(group):
                if candidate == vpn:
                    continue
                vpns.append(candidate)
                if len(vpns) >= self.max_pages:
                    return self._propose(vpns)
        return self._propose(vpns)
