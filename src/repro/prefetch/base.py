"""Prefetcher interface.

A prefetcher observes the page-fault stream and proposes victim VPNs to
fetch ahead of demand.  The fault handler owns the mechanics (allocating
cache pages, issuing RDMA reads); prefetchers are pure policy:

    vpns = prefetcher.on_fault(app, thread_id, vpn, now_us)

Effectiveness metrics (contribution/accuracy, Table 5) are *not* computed
here — they fall out of swap-cache hit accounting — but each prefetcher
tracks how many pages it proposed, which the two-tier controller (§5.2)
uses as its "is the kernel tier succeeding?" signal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

__all__ = ["PrefetcherStats", "Prefetcher"]


@dataclass
class PrefetcherStats:
    faults_observed: int = 0
    pages_proposed: int = 0
    patterns_found: int = 0
    no_pattern: int = 0
    #: Proposals discarded because they fell outside the faulting VMA
    #: (e.g. a negative stride walking past the region start).
    proposals_clamped: int = 0


class Prefetcher:
    """Base class: the null prefetcher (never proposes anything)."""

    def __init__(self, name: str = "none"):
        self.name = name
        self.stats = PrefetcherStats()

    def note_region(self, app_name: str, start_vpn: int, end_vpn: int) -> None:
        """Register a valid VPN range ``[start_vpn, end_vpn)`` for an app.

        The fault handler calls this once per VMA at registration so
        policies that extrapolate addresses (stride windows) can clamp
        their proposals to mapped memory.  The base policy ignores it.
        """

    def forget_app(self, app_name: str) -> None:
        """Drop every mapping and pattern keyed by a departed app.

        Teardown calls this so stale VMAs can never clamp-pass (or seed
        a stride toward) a freed address space.  The base policy keeps
        no per-app state, so there is nothing to drop.
        """

    def on_fault(
        self,
        app_name: str,
        thread_id: int,
        vpn: int,
        now_us: float,
        prefetched_hit: bool = False,
    ) -> List[int]:
        """Return VPNs to prefetch in response to a fault at ``vpn``.

        ``prefetched_hit`` is the kernel's feedback signal: the fault
        landed on a page an earlier prefetch brought in (swap_ra hit).
        """
        self.stats.faults_observed += 1
        return []

    def _propose(self, vpns: List[int]) -> List[int]:
        self.stats.pages_proposed += len(vpns)
        if vpns:
            self.stats.patterns_found += 1
        else:
            self.stats.no_pattern += 1
        return vpns
