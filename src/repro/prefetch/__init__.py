"""Prefetching policies: kernel readahead, Leap, per-thread, reference graph."""

from repro.prefetch.base import Prefetcher, PrefetcherStats
from repro.prefetch.leap import LeapPrefetcher, majority_vote
from repro.prefetch.readahead import KernelReadahead
from repro.prefetch.reference_graph import PageGroupGraph, ReferenceGraphPrefetcher
from repro.prefetch.thread_pattern import ThreadPatternPrefetcher

__all__ = [
    "Prefetcher",
    "PrefetcherStats",
    "LeapPrefetcher",
    "majority_vote",
    "KernelReadahead",
    "PageGroupGraph",
    "ReferenceGraphPrefetcher",
    "ThreadPatternPrefetcher",
]
