"""Canvas (NSDI 2023) reproduction: isolated and adaptive swapping for
multi-applications on remote memory, as a discrete-event simulation.

Layers (see DESIGN.md for the full inventory):

* :mod:`repro.sim` — event engine, simulated locks/queues, RNG streams
* :mod:`repro.mem` / :mod:`repro.swap` / :mod:`repro.rdma` — the memory,
  swap, and fabric substrates
* :mod:`repro.kernel` — the swap data path and the Linux 5.5 baseline
* :mod:`repro.prefetch` / :mod:`repro.runtime` — prefetchers and the JVM model
* :mod:`repro.workloads` — the Table 2 applications
* :mod:`repro.baselines` — Fastswap and Infiniswap comparators
* :mod:`repro.core` — Canvas itself
* :mod:`repro.harness` / :mod:`repro.metrics` — experiments and telemetry

Entry points most users want::

    from repro.harness import ExperimentConfig, run_experiment
    result = run_experiment(["memcached"], ExperimentConfig(system="canvas"))
    result.completion_time("memcached")
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
