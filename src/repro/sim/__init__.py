"""Discrete-event simulation substrate: engine, resources, RNG streams."""

from repro.sim.engine import (
    AllOf,
    AnyOf,
    Engine,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Timeout,
)
from repro.sim.resources import CoreSet, FIFOStore, LockStats, Semaphore, SimLock
from repro.sim.rng import RngRegistry, derive_seed

__all__ = [
    "AllOf",
    "AnyOf",
    "Engine",
    "Event",
    "Interrupt",
    "Process",
    "SimulationError",
    "Timeout",
    "CoreSet",
    "FIFOStore",
    "LockStats",
    "Semaphore",
    "SimLock",
    "RngRegistry",
    "derive_seed",
]
