"""Synchronization and resource primitives for the simulation engine.

These are the simulated analogues of the kernel objects the swap system
contends on: spinlocks protecting allocator free lists, semaphores, FIFO
stores used as message queues, and a core-set model for cgroup CPU limits.
All of them collect contention statistics, because lock contention *is* one
of the headline measurements in the Canvas paper (Figs. 4, 13, 15, 16).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Generator, Optional

from repro.sim.engine import DEBUG_EVENT_NAMES, Engine, Event, SimulationError

__all__ = ["LockStats", "SimLock", "Semaphore", "FIFOStore", "CoreSet"]


@dataclass
class LockStats:
    """Aggregate contention statistics for a :class:`SimLock`."""

    acquisitions: int = 0
    contended_acquisitions: int = 0
    total_wait_us: float = 0.0
    total_hold_us: float = 0.0
    max_queue_len: int = 0

    @property
    def mean_wait_us(self) -> float:
        if self.acquisitions == 0:
            return 0.0
        return self.total_wait_us / self.acquisitions

    @property
    def contention_ratio(self) -> float:
        if self.acquisitions == 0:
            return 0.0
        return self.contended_acquisitions / self.acquisitions


class SimLock:
    """A FIFO mutex with wait/hold accounting.

    Usage inside a process::

        yield lock.acquire()
        try:
            yield engine.timeout(critical_section_us)
        finally:
            lock.release()
    """

    def __init__(self, engine: Engine, name: str = "lock"):
        self.engine = engine
        self.name = name
        self.stats = LockStats()
        self._locked = False
        self._waiters: Deque[tuple[Event, float]] = deque()
        self._acquired_at = 0.0

    @property
    def locked(self) -> bool:
        return self._locked

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    def acquire(self) -> Event:
        """Return an event that fires when the caller holds the lock."""
        if not self._locked:
            self._locked = True
            self._acquired_at = self.engine.now
            self.stats.acquisitions += 1
            if DEBUG_EVENT_NAMES:
                return Event(self.engine, f"{self.name}.acquire").grant()
            return self.engine.granted
        event = Event(
            self.engine, f"{self.name}.acquire" if DEBUG_EVENT_NAMES else ""
        )
        self.stats.contended_acquisitions += 1
        self._waiters.append((event, self.engine.now))
        self.stats.max_queue_len = max(self.stats.max_queue_len, len(self._waiters))
        return event

    def release(self) -> None:
        if not self._locked:
            raise SimulationError(f"release of unlocked {self.name}")
        self.stats.total_hold_us += self.engine.now - self._acquired_at
        if self._waiters:
            event, enqueued_at = self._waiters.popleft()
            self.stats.acquisitions += 1
            self.stats.total_wait_us += self.engine.now - enqueued_at
            self._acquired_at = self.engine.now
            event.succeed()
        else:
            self._locked = False


class Semaphore:
    """A counting semaphore with FIFO wakeup order."""

    def __init__(self, engine: Engine, capacity: int, name: str = "sem"):
        if capacity < 1:
            raise SimulationError(f"semaphore capacity must be >= 1, got {capacity}")
        self.engine = engine
        self.name = name
        self.capacity = capacity
        self._in_use = 0
        self._waiters: Deque[Event] = deque()

    @property
    def available(self) -> int:
        return self.capacity - self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    def acquire(self) -> Event:
        if self._in_use < self.capacity:
            self._in_use += 1
            if DEBUG_EVENT_NAMES:
                return Event(self.engine, f"{self.name}.acquire").grant()
            return self.engine.granted
        event = Event(
            self.engine, f"{self.name}.acquire" if DEBUG_EVENT_NAMES else ""
        )
        self._waiters.append(event)
        return event

    def release(self) -> None:
        if self._in_use <= 0:
            raise SimulationError(f"release of idle semaphore {self.name}")
        if self._waiters:
            self._waiters.popleft().succeed()
        else:
            self._in_use -= 1


class FIFOStore:
    """An unbounded FIFO of items with blocking ``get``.

    ``put`` never blocks; ``get`` returns an event carrying the next item,
    firing immediately if one is buffered.  Used for message queues between
    simulated components (e.g. VQP → scheduler hand-off).
    """

    def __init__(self, engine: Engine, name: str = "store"):
        self.engine = engine
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        event = Event(self.engine, f"{self.name}.get" if DEBUG_EVENT_NAMES else "")
        if self._items:
            # The item rides on a fresh event (values differ per get), but
            # the empty dispatch step is skipped — the getter subscribes
            # late and is delivered through the immediate lane.
            event.grant(self._items.popleft())
        else:
            self._getters.append(event)
        return event

    def try_get(self) -> Optional[Any]:
        """Non-blocking pop; returns None when empty."""
        if self._items:
            return self._items.popleft()
        return None

    def peek_all(self) -> list:
        return list(self._items)


@dataclass
class CoreSetStats:
    busy_us: float = 0.0
    executions: int = 0
    total_runqueue_wait_us: float = 0.0


class CoreSet:
    """A pool of CPU cores with a FIFO run queue.

    Models a cgroup's CPU allotment: an application with ``n_cores`` cores
    can execute at most that many thread slices concurrently.  Threads call
    :meth:`execute` to burn CPU time; excess runnable threads queue.
    """

    def __init__(self, engine: Engine, n_cores: int, name: str = "cores"):
        self.engine = engine
        self.name = name
        self.n_cores = n_cores
        self.stats = CoreSetStats()
        self._sem = Semaphore(engine, n_cores, name=f"{name}.sem")

    @property
    def runnable_queue_length(self) -> int:
        return self._sem.queue_length

    def execute(self, duration_us: float) -> Generator:
        """Process sub-generator: occupy one core for ``duration_us``."""
        engine = self.engine
        sem = self._sem
        if sem._in_use < sem.capacity and not engine._immediate:
            heap = engine._heap
            if not heap or heap[0][0] > engine.now:
                # Inline the uncontended acquire.  The granted-event path
                # would append the resume to the (empty) immediate lane and
                # the engine — with no heap entry due now — would dispatch
                # it as the very next step, so no other process can run
                # between the grant and the resume: skipping that step is
                # order-identical, not merely equivalent-in-practice.
                sem._in_use += 1
                try:
                    yield engine.sleep(duration_us)
                    self.stats.busy_us += duration_us
                    self.stats.executions += 1
                finally:
                    sem.release()
                return
        enqueued_at = engine.now
        yield sem.acquire()
        self.stats.total_runqueue_wait_us += engine.now - enqueued_at
        try:
            yield engine.sleep(duration_us)
            self.stats.busy_us += duration_us
            self.stats.executions += 1
        finally:
            self._sem.release()

    def utilization(self, elapsed_us: float) -> float:
        """Mean fraction of the core set busy over ``elapsed_us``."""
        if elapsed_us <= 0:
            return 0.0
        return min(1.0, self.stats.busy_us / (elapsed_us * self.n_cores))
