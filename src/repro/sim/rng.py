"""Deterministic, named random-number streams.

Every stochastic component of the simulation (workload samplers, fabric
jitter, allocator scan costs, ...) draws from its own named stream derived
from a single root seed.  Adding a new consumer therefore never perturbs
the draws seen by existing ones, which keeps experiment outputs stable as
the codebase evolves.
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np

__all__ = ["RngRegistry", "derive_seed"]


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from ``root_seed`` and a stream name."""
    digest = hashlib.sha256(f"{root_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


class RngRegistry:
    """Factory and cache of named :class:`numpy.random.Generator` streams."""

    def __init__(self, root_seed: int = 0):
        self.root_seed = root_seed
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use."""
        generator = self._streams.get(name)
        if generator is None:
            generator = np.random.default_rng(derive_seed(self.root_seed, name))
            self._streams[name] = generator
        return generator

    def child(self, name: str) -> "RngRegistry":
        """A registry whose streams are namespaced under ``name``."""
        return RngRegistry(derive_seed(self.root_seed, name))

    def __contains__(self, name: str) -> bool:
        return name in self._streams
