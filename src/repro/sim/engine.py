"""Discrete-event simulation engine.

The engine keeps a heap of timestamped events and advances a simulated
clock measured in **microseconds** (float).  Concurrency is expressed with
*processes*: plain Python generators that ``yield`` waitables (timeouts,
events, other processes, resource acquisitions).  The style is deliberately
close to SimPy's, but the implementation is lean and self-contained so that
the hot paths of the swap simulation stay cheap.

Example
-------
>>> from repro.sim.engine import Engine
>>> eng = Engine()
>>> log = []
>>> def worker(eng, name, delay):
...     yield eng.timeout(delay)
...     log.append((eng.now, name))
>>> _ = eng.spawn(worker(eng, "a", 5.0))
>>> _ = eng.spawn(worker(eng, "b", 2.0))
>>> eng.run()
>>> log
[(2.0, 'b'), (5.0, 'a')]
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Engine",
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "SimulationError",
]


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation engine."""


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence that processes can wait on.

    An event starts *pending*; it is fired exactly once with
    :meth:`succeed` (or :meth:`fail`), after which every waiting process
    is resumed with the event's value (or the failure exception raised
    inside it).
    """

    __slots__ = ("engine", "_value", "_exc", "_fired", "_callbacks", "name")

    def __init__(self, engine: "Engine", name: str = ""):
        self.engine = engine
        self.name = name
        self._value: Any = None
        self._exc: Optional[BaseException] = None
        self._fired = False
        self._callbacks: list[Callable[["Event"], None]] = []

    @property
    def fired(self) -> bool:
        return self._fired

    @property
    def value(self) -> Any:
        if not self._fired:
            raise SimulationError("event value read before it fired")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Fire the event, resuming all waiters at the current sim time."""
        if self._fired:
            raise SimulationError(f"event {self.name!r} fired twice")
        self._fired = True
        self._value = value
        self.engine._schedule_call(0.0, self._dispatch)
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Fire the event with an exception; waiters see it raised."""
        if self._fired:
            raise SimulationError(f"event {self.name!r} fired twice")
        self._fired = True
        self._exc = exc
        self.engine._schedule_call(0.0, self._dispatch)
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        if self._fired:
            # Late subscription: deliver on the next engine step.
            self.engine._schedule_call(0.0, lambda: callback(self))
        else:
            self._callbacks.append(callback)

    def _dispatch(self) -> None:
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)


class Timeout(Event):
    """An event that fires automatically after a fixed delay."""

    __slots__ = ("delay",)

    def __init__(self, engine: "Engine", delay: float):
        if delay < 0:
            raise SimulationError(f"negative timeout: {delay}")
        super().__init__(engine, name=f"timeout({delay})")
        self.delay = delay
        engine._schedule_call(delay, self._fire)

    def _fire(self) -> None:
        self._fired = True
        self._value = None
        self._dispatch()


class Process(Event):
    """A running coroutine; also an event that fires when it returns.

    The wrapped generator yields waitables.  When a yielded event fires,
    the process resumes with the event's value; if the event failed, the
    exception is thrown into the generator.
    """

    __slots__ = ("generator", "_waiting_on", "_interrupt_pending")

    def __init__(self, engine: "Engine", generator: Generator, name: str = ""):
        super().__init__(engine, name=name or getattr(generator, "__name__", "process"))
        self.generator = generator
        self._waiting_on: Optional[Event] = None
        self._interrupt_pending: Optional[Interrupt] = None
        engine._schedule_call(0.0, lambda: self._resume(None, None))

    @property
    def alive(self) -> bool:
        return not self._fired

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self._fired:
            return
        interrupt = Interrupt(cause)
        self._interrupt_pending = interrupt
        waiting = self._waiting_on
        self._waiting_on = None
        # The stale wakeup from `waiting` is ignored via the _waiting_on check.
        del waiting
        self.engine._schedule_call(0.0, self._deliver_interrupt)

    def _deliver_interrupt(self) -> None:
        interrupt, self._interrupt_pending = self._interrupt_pending, None
        if interrupt is None or self._fired:
            return
        self._step(lambda: self.generator.throw(interrupt))

    def _on_event(self, event: Event) -> None:
        if self._waiting_on is not event:
            return  # stale wakeup (e.g. interrupted while waiting)
        self._waiting_on = None
        if event._exc is not None:
            exc = event._exc
            self._step(lambda: self.generator.throw(exc))
        else:
            self._resume(event._value, None)

    def _resume(self, value: Any, exc: Optional[BaseException]) -> None:
        if exc is not None:
            self._step(lambda: self.generator.throw(exc))
        else:
            self._step(lambda: self.generator.send(value))

    def _step(self, advance: Callable[[], Any]) -> None:
        try:
            target = advance()
        except StopIteration as stop:
            self._fired = True
            self._value = stop.value
            self._dispatch()
            return
        except Interrupt:
            # Process chose not to handle its interrupt: treat as a clean exit.
            self._fired = True
            self._value = None
            self._dispatch()
            return
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded non-event {target!r}"
            )
        self._waiting_on = target
        target.add_callback(self._on_event)


class AllOf(Event):
    """Fires once every child event has fired; value is the list of values."""

    __slots__ = ("_children", "_remaining")

    def __init__(self, engine: "Engine", events: Iterable[Event]):
        super().__init__(engine, name="all_of")
        self._children = list(events)
        self._remaining = len(self._children)
        if self._remaining == 0:
            self.succeed([])
            return
        for event in self._children:
            event.add_callback(self._on_child)

    def _on_child(self, event: Event) -> None:
        if self._fired:
            return
        if event._exc is not None:
            self.fail(event._exc)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([child._value for child in self._children])


class AnyOf(Event):
    """Fires as soon as any child event fires; value is (index, value)."""

    __slots__ = ("_children",)

    def __init__(self, engine: "Engine", events: Iterable[Event]):
        super().__init__(engine, name="any_of")
        self._children = list(events)
        if not self._children:
            raise SimulationError("AnyOf needs at least one event")
        for index, event in enumerate(self._children):
            event.add_callback(self._make_child_callback(index))

    def _make_child_callback(self, index: int) -> Callable[[Event], None]:
        def on_child(event: Event) -> None:
            if self._fired:
                return
            if event._exc is not None:
                self.fail(event._exc)
            else:
                self.succeed((index, event._value))

        return on_child


class Engine:
    """The event loop: a clock plus a heap of scheduled callbacks."""

    def __init__(self):
        self.now: float = 0.0
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = 0
        self._running = False
        self._step_count = 0

    # -- scheduling ------------------------------------------------------

    def _schedule_call(self, delay: float, callback: Callable[[], None]) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, self._seq, callback))

    def call_at(self, when: float, callback: Callable[[], None]) -> None:
        """Run ``callback()`` at absolute simulated time ``when``."""
        if when < self.now:
            raise SimulationError(f"cannot schedule in the past: {when} < {self.now}")
        self._schedule_call(when - self.now, callback)

    def call_after(self, delay: float, callback: Callable[[], None]) -> None:
        """Run ``callback()`` after ``delay`` simulated microseconds."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        self._schedule_call(delay, callback)

    # -- waitable factories ----------------------------------------------

    def event(self, name: str = "") -> Event:
        return Event(self, name)

    def timeout(self, delay: float) -> Timeout:
        return Timeout(self, delay)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def spawn(self, generator: Generator, name: str = "") -> Process:
        """Start a new process from a generator and return its handle."""
        return Process(self, generator, name=name)

    # -- execution ---------------------------------------------------------

    def run(self, until: Optional[float] = None, max_steps: Optional[int] = None) -> float:
        """Drain the event heap.

        Stops when the heap is empty, when the next event lies beyond
        ``until`` (the clock is then advanced exactly to ``until``), or
        after ``max_steps`` dispatched callbacks.  Returns the final clock.
        """
        if self._running:
            raise SimulationError("engine is already running")
        self._running = True
        try:
            steps = 0
            heap = self._heap
            while heap:
                when, _seq, callback = heap[0]
                if until is not None and when > until:
                    self.now = until
                    return self.now
                heapq.heappop(heap)
                self.now = when
                callback()
                steps += 1
                if max_steps is not None and steps >= max_steps:
                    break
            self._step_count += steps
            if until is not None and self.now < until:
                self.now = until
            return self.now
        finally:
            self._running = False

    def run_until_fired(self, event: Event, limit: Optional[float] = None) -> Any:
        """Run until ``event`` fires; returns its value.

        ``limit`` bounds the simulated time as a safety net; exceeding it
        raises :class:`SimulationError`.
        """
        while not event.fired:
            if not self._heap:
                raise SimulationError("event can never fire: heap is empty")
            if limit is not None and self._heap[0][0] > limit:
                raise SimulationError(f"event did not fire before t={limit}")
            when, _seq, callback = heapq.heappop(self._heap)
            self.now = when
            callback()
        if event._exc is not None:
            raise event._exc
        return event._value

    @property
    def pending_events(self) -> int:
        return len(self._heap)
