"""Discrete-event simulation engine.

The engine keeps a heap of timestamped events and advances a simulated
clock measured in **microseconds** (float).  Concurrency is expressed with
*processes*: plain Python generators that ``yield`` waitables (timeouts,
events, other processes, resource acquisitions).  The style is deliberately
close to SimPy's, but the implementation is lean and self-contained so that
the hot paths of the swap simulation stay cheap.

Example
-------
>>> from repro.sim.engine import Engine
>>> eng = Engine()
>>> log = []
>>> def worker(eng, name, delay):
...     yield eng.timeout(delay)
...     log.append((eng.now, name))
>>> _ = eng.spawn(worker(eng, "a", 5.0))
>>> _ = eng.spawn(worker(eng, "b", 2.0))
>>> eng.run()
>>> log
[(2.0, 'b'), (5.0, 'a')]
"""

from __future__ import annotations

import heapq
import os
from collections import deque
from functools import partial
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Engine",
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "SimulationError",
    "DEBUG_EVENT_NAMES",
]

#: When set (``REPRO_EVENT_NAMES=1``), hot-path call sites build their
#: descriptive f-string event names; by default they pass "" and the
#: allocation-heavy formatting is skipped entirely.
DEBUG_EVENT_NAMES = os.environ.get("REPRO_EVENT_NAMES", "") not in ("", "0")

#: Sentinel distinguishing "no argument" from "argument is None".
_NO_ARG = object()


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation engine."""


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence that processes can wait on.

    An event starts *pending*; it is fired exactly once with
    :meth:`succeed` (or :meth:`fail`), after which every waiting process
    is resumed with the event's value (or the failure exception raised
    inside it).
    """

    __slots__ = ("engine", "_value", "_exc", "_fired", "_callbacks", "name", "generation")

    def __init__(self, engine: "Engine", name: str = ""):
        self.engine = engine
        self.name = name
        self._value: Any = None
        self._exc: Optional[BaseException] = None
        self._fired = False
        self._callbacks: list[Callable[["Event"], None]] = []
        #: Bumped on every :meth:`reset`; recycling invariant tests use it
        #: to tell incarnations of a reused event apart.
        self.generation = 0

    @property
    def fired(self) -> bool:
        return self._fired

    @property
    def value(self) -> Any:
        if not self._fired:
            raise SimulationError("event value read before it fired")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Fire the event, resuming all waiters at the current sim time."""
        if self._fired:
            raise SimulationError(f"event {self.name!r} fired twice")
        self._fired = True
        self._value = value
        self.engine._immediate.append(self._dispatch)
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Fire the event with an exception; waiters see it raised."""
        if self._fired:
            raise SimulationError(f"event {self.name!r} fired twice")
        self._fired = True
        self._exc = exc
        self.engine._immediate.append(self._dispatch)
        return self

    def grant(self, value: Any = None) -> "Event":
        """Fire synchronously without scheduling a dispatch step.

        Only valid while no waiter has subscribed: late subscribers are
        delivered through the immediate lane anyway, so skipping the
        empty dispatch keeps FIFO order while saving one engine step.
        Used by resource fast paths that grant at creation time (an
        uncontended lock, a semaphore with a free slot, a non-empty
        FIFO store).
        """
        if self._fired:
            raise SimulationError(f"event {self.name!r} fired twice")
        if self._callbacks:
            raise SimulationError(f"grant of {self.name!r} with subscribers")
        self._fired = True
        self._value = value
        return self

    def reset(self) -> "Event":
        """Return a fired-and-delivered event to the pending state.

        Reuse discipline (single-waiter park/kick events, pooled request
        completions): reset only *after* the firing has been dispatched —
        a pending event, or one whose callbacks have not run yet, refuses
        to reset so a stale waiter can never be silently dropped.  The
        generation counter ties late observers to one incarnation.
        """
        if not self._fired:
            raise SimulationError(f"reset of pending event {self.name!r}")
        if self._callbacks:
            raise SimulationError(
                f"reset of {self.name!r} with undelivered callbacks"
            )
        self._fired = False
        self._value = None
        self._exc = None
        self.generation += 1
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        if self._fired:
            # Late subscription: deliver on the next engine step (FIFO
            # with everything else queued at the current time).
            self.engine._immediate.append(partial(callback, self))
        else:
            self._callbacks.append(callback)

    def _dispatch(self) -> None:
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)


class Timeout(Event):
    """An event that fires automatically after a fixed delay."""

    __slots__ = ("delay", "_fire_cb")

    def __init__(self, engine: "Engine", delay: float):
        if delay < 0:
            raise SimulationError(f"negative timeout: {delay}")
        super().__init__(
            engine, name=f"timeout({delay})" if DEBUG_EVENT_NAMES else "timeout"
        )
        self.delay = delay
        # The bound method is cached so pooled reuse schedules it without
        # allocating a fresh method object per sleep.
        self._fire_cb = self._fire
        engine._schedule_call(delay, self._fire_cb)

    def _fire(self) -> None:
        self._fired = True
        self._value = None
        self._dispatch()


class _PooledTimeout(Timeout):
    """A timeout drawn from the engine's free list via :meth:`Engine.sleep`.

    It recycles itself into the pool right after its firing has been
    dispatched, so the waiter that yielded it has already resumed (or its
    stale callback has been cleared) by the time the object can be handed
    out again.  Discipline: a pooled timeout must be yielded immediately
    by its creator (or handed to ``any_of``) and never stored for later —
    in particular never placed under ``all_of``, which reads child values
    after the last child fires.
    """

    __slots__ = ()

    def _fire(self) -> None:
        self._fired = True
        self._dispatch()
        self.engine._timeout_pool.append(self)


class Process(Event):
    """A running coroutine; also an event that fires when it returns.

    The wrapped generator yields waitables.  When a yielded event fires,
    the process resumes with the event's value; if the event failed, the
    exception is thrown into the generator.
    """

    __slots__ = ("generator", "_waiting_on", "_interrupt_pending", "_on_event_cb")

    def __init__(self, engine: "Engine", generator: Generator, name: str = ""):
        super().__init__(engine, name=name or getattr(generator, "__name__", "process"))
        self.generator = generator
        self._waiting_on: Optional[Event] = None
        self._interrupt_pending: Optional[Interrupt] = None
        # Cached bound method: every yield subscribes it to the target
        # event, so building it per step would allocate on the hot path.
        self._on_event_cb = self._on_event
        engine._immediate.append(self._start)

    def _start(self) -> None:
        self._step(None, None)

    @property
    def alive(self) -> bool:
        return not self._fired

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self._fired:
            return
        interrupt = Interrupt(cause)
        self._interrupt_pending = interrupt
        waiting = self._waiting_on
        self._waiting_on = None
        # The stale wakeup from `waiting` is ignored via the _waiting_on check.
        del waiting
        self.engine._immediate.append(self._deliver_interrupt)

    def _deliver_interrupt(self) -> None:
        interrupt, self._interrupt_pending = self._interrupt_pending, None
        if interrupt is None or self._fired:
            return
        self._step(None, interrupt)

    def _on_event(self, event: Event) -> None:
        if self._waiting_on is not event:
            return  # stale wakeup (e.g. interrupted while waiting)
        self._waiting_on = None
        if event._exc is not None:
            self._step(None, event._exc)
        else:
            self._step(event._value, None)

    def _step(self, value: Any, exc: Optional[BaseException]) -> None:
        try:
            if exc is None:
                target = self.generator.send(value)
            else:
                target = self.generator.throw(exc)
        except StopIteration as stop:
            self._fired = True
            self._value = stop.value
            self._dispatch()
            return
        except Interrupt:
            # Process chose not to handle its interrupt: treat as a clean exit.
            self._fired = True
            self._value = None
            self._dispatch()
            return
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded non-event {target!r}"
            )
        self._waiting_on = target
        target.add_callback(self._on_event_cb)


class AllOf(Event):
    """Fires once every child event has fired; value is the list of values."""

    __slots__ = ("_children", "_remaining")

    def __init__(self, engine: "Engine", events: Iterable[Event]):
        super().__init__(engine, name="all_of")
        self._children = list(events)
        self._remaining = len(self._children)
        if self._remaining == 0:
            self.succeed([])
            return
        for event in self._children:
            event.add_callback(self._on_child)

    def _on_child(self, event: Event) -> None:
        if self._fired:
            return
        if event._exc is not None:
            self.fail(event._exc)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([child._value for child in self._children])


class AnyOf(Event):
    """Fires as soon as any child event fires; value is (index, value)."""

    __slots__ = ("_children",)

    def __init__(self, engine: "Engine", events: Iterable[Event]):
        super().__init__(engine, name="any_of")
        self._children = list(events)
        if not self._children:
            raise SimulationError("AnyOf needs at least one event")
        for index, event in enumerate(self._children):
            event.add_callback(self._make_child_callback(index))

    def _make_child_callback(self, index: int) -> Callable[[Event], None]:
        def on_child(event: Event) -> None:
            if self._fired:
                return
            if event._exc is not None:
                self.fail(event._exc)
            else:
                self.succeed((index, event._value))

        return on_child


class Engine:
    """The event loop: a clock plus a heap of scheduled callbacks.

    Zero-delay work (event firings, process starts/resumes, late callback
    subscriptions) dominates the swap simulation's event count, so it takes
    a fast lane: a plain FIFO deque (``_immediate``) instead of the heap.
    Ordering is exactly what the single heap produced, because an entry in
    the heap timestamped *now* was necessarily scheduled earlier (it needed
    a positive delay to land at the current time) and therefore precedes —
    in FIFO sequence — anything appended to the deque at the current time.
    The dispatch rule in :meth:`_run_core` encodes that invariant.
    """

    def __init__(self):
        self.now: float = 0.0
        self._heap: list[tuple] = []
        self._immediate: deque = deque()
        self._seq = 0
        self._running = False
        self._step_count = 0
        #: Free list of recycled :class:`_PooledTimeout` objects.
        self._timeout_pool: list[_PooledTimeout] = []
        #: Shared permanently-fired event for value-less immediate grants
        #: (uncontended lock/semaphore acquires).  Safe to hand to any
        #: number of concurrent waiters: it carries no value, is never
        #: reset, and every subscription is a late one delivered through
        #: the immediate lane.
        self.granted: Event = Event(self, "granted").grant()

    # -- scheduling ------------------------------------------------------

    def _schedule_call(self, delay: float, callback: Callable[[], None]) -> None:
        if delay == 0.0:
            self._immediate.append(callback)
            return
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, self._seq, callback))

    def call_at(self, when: float, callback: Callable[[], None]) -> None:
        """Run ``callback()`` at absolute simulated time ``when``."""
        if when < self.now:
            raise SimulationError(f"cannot schedule in the past: {when} < {self.now}")
        self._schedule_call(when - self.now, callback)

    def call_after(
        self, delay: float, callback: Callable[..., None], arg: Any = _NO_ARG
    ) -> None:
        """Run ``callback()`` (or ``callback(arg)``) after ``delay`` µs.

        The optional ``arg`` is carried in the scheduling entry itself, so
        hot paths can schedule per-object work without allocating a
        closure per call.
        """
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        if arg is _NO_ARG:
            self._schedule_call(delay, callback)
        elif delay == 0.0:
            self._immediate.append((callback, arg))
        else:
            self._seq += 1
            heapq.heappush(self._heap, (self.now + delay, self._seq, callback, arg))

    def call_at_exact(
        self, when: float, callback: Callable[..., None], arg: Any = _NO_ARG
    ) -> None:
        """Run ``callback`` at the exact absolute time ``when``.

        Unlike :meth:`call_at`, the timestamp lands on the heap verbatim —
        no ``now + (when - now)`` float round-trip — so a caller that
        computed ``when`` arithmetically (the NIC's doorbell drain) fires
        at bit-exactly that instant.  ``when == now`` takes the immediate
        lane, preserving FIFO order with other zero-delay work.
        """
        if when < self.now:
            raise SimulationError(f"cannot schedule in the past: {when} < {self.now}")
        if when == self.now:
            if arg is _NO_ARG:
                self._immediate.append(callback)
            else:
                self._immediate.append((callback, arg))
            return
        self._seq += 1
        if arg is _NO_ARG:
            heapq.heappush(self._heap, (when, self._seq, callback))
        else:
            heapq.heappush(self._heap, (when, self._seq, callback, arg))

    # -- waitable factories ----------------------------------------------

    def event(self, name: str = "") -> Event:
        return Event(self, name)

    def timeout(self, delay: float) -> Timeout:
        return Timeout(self, delay)

    def sleep(self, delay: float) -> Timeout:
        """A pooled :class:`Timeout`: allocation-free on the steady state.

        The returned object recycles itself once its firing has been
        dispatched.  Callers must yield it immediately (directly or via
        ``any_of``); see :class:`_PooledTimeout` for the discipline.
        """
        pool = self._timeout_pool
        if not pool:
            return _PooledTimeout(self, delay)
        if delay < 0:
            raise SimulationError(f"negative timeout: {delay}")
        timeout = pool.pop()
        timeout._fired = False
        timeout._value = None
        timeout._exc = None
        timeout.generation += 1
        timeout.delay = delay
        self._schedule_call(delay, timeout._fire_cb)
        return timeout

    def sleep_until(self, when: float) -> Timeout:
        """A pooled timeout firing at the exact absolute time ``when``.

        The absolute timestamp is heap-pushed verbatim (the discipline of
        :meth:`call_at_exact`); ``sleep(when - now)`` would instead wake
        at ``now + (when - now)``, which need not equal ``when`` in
        floats.  Same yield-immediately pooling rules as :meth:`sleep`.
        """
        if when < self.now:
            raise SimulationError(f"cannot sleep into the past: {when} < {self.now}")
        pool = self._timeout_pool
        if pool:
            timeout = pool.pop()
            timeout._fired = False
            timeout._value = None
            timeout._exc = None
            timeout.generation += 1
        else:
            # Bypass Timeout.__init__: it schedules by *delay*, which is
            # exactly the float round-trip this helper exists to avoid.
            timeout = _PooledTimeout.__new__(_PooledTimeout)
            Event.__init__(timeout, self, "timeout")
            timeout._fire_cb = timeout._fire
        timeout.delay = when - self.now
        if when == self.now:
            self._immediate.append(timeout._fire_cb)
        else:
            self._seq += 1
            heapq.heappush(self._heap, (when, self._seq, timeout._fire_cb))
        return timeout

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def spawn(self, generator: Generator, name: str = "") -> Process:
        """Start a new process from a generator and return its handle."""
        return Process(self, generator, name=name)

    # -- execution ---------------------------------------------------------

    def _run_core(
        self,
        until: Optional[float] = None,
        max_steps: Optional[int] = None,
        stop_event: Optional[Event] = None,
        limit: Optional[float] = None,
    ) -> None:
        """The one stepping loop behind :meth:`run` and :meth:`run_until_fired`.

        Dispatch order per iteration: heap entries timestamped *now* (they
        were scheduled before anything currently in the immediate deque),
        then the immediate deque FIFO, then the heap entry that advances
        the clock.  ``until`` bounds the clock (reached exactly on exit);
        ``limit`` raises instead of advancing past it; ``stop_event``
        stops as soon as the event has fired.

        Entries come in two shapes per lane: heap entries are
        ``(when, seq, callback)`` or ``(when, seq, callback, arg)``;
        immediate entries are a bare callable or ``(callback, arg)``.
        The arg-carrying forms let hot paths schedule per-object work
        without a closure allocation (see :meth:`call_after`).
        """
        if self._running:
            raise SimulationError("engine is already running")
        self._running = True
        steps = 0
        heap = self._heap
        immediate = self._immediate
        pop = heapq.heappop
        popleft = immediate.popleft
        try:
            while True:
                if stop_event is not None and stop_event._fired:
                    break
                if heap:
                    when = heap[0][0]
                    if when <= self.now:
                        entry = pop(heap)
                        if len(entry) == 3:
                            entry[2]()
                        else:
                            entry[2](entry[3])
                    elif immediate:
                        entry = popleft()
                        if type(entry) is tuple:
                            entry[0](entry[1])
                        else:
                            entry()
                    else:
                        if until is not None and when > until:
                            break
                        if limit is not None and when > limit:
                            raise SimulationError(
                                f"event did not fire before t={limit}"
                            )
                        self.now = when
                        entry = pop(heap)
                        if len(entry) == 3:
                            entry[2]()
                        else:
                            entry[2](entry[3])
                elif immediate:
                    entry = popleft()
                    if type(entry) is tuple:
                        entry[0](entry[1])
                    else:
                        entry()
                else:
                    break
                steps += 1
                if max_steps is not None and steps >= max_steps:
                    break
            if until is not None and self.now < until:
                self.now = until
        finally:
            self._step_count += steps
            self._running = False

    def run(self, until: Optional[float] = None, max_steps: Optional[int] = None) -> float:
        """Drain the scheduled work.

        Stops when nothing is pending, when the next event lies beyond
        ``until`` (the clock is then advanced exactly to ``until``), or
        after ``max_steps`` dispatched callbacks.  Returns the final clock.
        """
        self._run_core(until=until, max_steps=max_steps)
        return self.now

    def run_until_fired(self, event: Event, limit: Optional[float] = None) -> Any:
        """Run until ``event`` fires; returns its value.

        ``limit`` bounds the simulated time as a safety net; exceeding it
        raises :class:`SimulationError`.
        """
        self._run_core(stop_event=event, limit=limit)
        if not event._fired:
            raise SimulationError("event can never fire: heap is empty")
        if event._exc is not None:
            raise event._exc
        return event._value

    @property
    def pending_events(self) -> int:
        return len(self._heap) + len(self._immediate)

    @property
    def step_count(self) -> int:
        """Total callbacks dispatched across all run calls."""
        return self._step_count
