"""LRU page lists, mirroring the kernel's active/inactive split.

The kernel keeps two lists per memory cgroup.  Newly faulted pages enter
the inactive list; a referenced inactive page is promoted to the active
list; reclaim shrinks the inactive tail and demotes active pages when the
inactive list runs short.  Canvas's hot-page detector (§5.1) periodically
scans the *head* of the active list, so :class:`LRUList` exposes that scan.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.mem.page import Page
from repro.obs.trace import LRU_DEMOTE

__all__ = ["LRUList", "ActiveInactiveLRU"]

#: Sentinel distinguishing "absent" from a stored None value.
_MISSING = object()


class LRUList:
    """An ordered list of pages, most-recently-used at the head.

    Backed by a plain insertion-ordered dict so every operation the
    simulation performs (insert, remove, promote, pop-tail, head scan)
    is O(1) or O(scan length); a promote is a single pop + re-insert,
    not a probe-then-move.
    """

    def __init__(self, name: str = "lru"):
        self.name = name
        # Dicts iterate oldest-first; we keep MRU at the *end* and treat
        # the end as the "head" of the kernel list.
        self._pages: Dict[Page, None] = {}

    def __len__(self) -> int:
        return len(self._pages)

    def __contains__(self, page: Page) -> bool:
        return page in self._pages

    def __iter__(self) -> Iterator[Page]:
        """Iterate LRU-first (tail to head)."""
        return iter(self._pages)

    def add_to_head(self, page: Page) -> None:
        if page in self._pages:
            raise ValueError(f"page {page.vpn:#x} already on {self.name}")
        self._pages[page] = None

    def move_to_head(self, page: Page) -> None:
        pages = self._pages
        pages[page] = pages.pop(page)

    def remove(self, page: Page) -> None:
        del self._pages[page]

    def discard(self, page: Page) -> bool:
        """Remove if present; returns whether the page was on the list."""
        sentinel = _MISSING
        return self._pages.pop(page, sentinel) is not sentinel

    def pop_tail(self) -> Optional[Page]:
        """Remove and return the least-recently-used page."""
        if not self._pages:
            return None
        page = next(iter(self._pages))
        del self._pages[page]
        return page

    def peek_tail(self) -> Optional[Page]:
        if not self._pages:
            return None
        return next(iter(self._pages))

    def head_pages(self, count: int) -> List[Page]:
        """The ``count`` most-recently-used pages, MRU first.

        This is the scan Canvas's hot-page detector performs on the active
        list (§5.1): "each scan identifies a set of pages from the head".
        """
        result: List[Page] = []
        for page in reversed(self._pages):
            if len(result) >= count:
                break
            result.append(page)
        return result


class ActiveInactiveLRU:
    """The two-list page aging structure used for reclaim decisions."""

    def __init__(self, name: str = "memcg"):
        self.name = name
        self.active = LRUList(f"{name}.active")
        self.inactive = LRUList(f"{name}.inactive")
        self.tracer = None

    def __len__(self) -> int:
        return len(self.active) + len(self.inactive)

    def __contains__(self, page: Page) -> bool:
        return page in self.active or page in self.inactive

    def insert(self, page: Page) -> None:
        """A newly faulted-in page starts on the inactive list."""
        self.inactive.add_to_head(page)

    def note_access(self, page: Page) -> None:
        """Promote a referenced inactive page; refresh an active one.

        Hot-path: called once per simulated resident access.  Each list
        is touched with a single hash probe (``pop``) instead of a
        membership test followed by a move/remove.
        """
        active = self.active._pages
        try:
            active[page] = active.pop(page)
            return
        except KeyError:
            pass
        inactive = self.inactive._pages
        try:
            inactive.pop(page)
        except KeyError:
            raise ValueError(f"page {page.vpn:#x} not on {self.name} LRU") from None
        active[page] = None

    def remove(self, page: Page) -> None:
        if not self.active.discard(page):
            self.inactive.remove(page)

    def discard(self, page: Page) -> bool:
        return self.active.discard(page) or self.inactive.discard(page)

    def balance(self, target_inactive_fraction: float = 0.5) -> int:
        """Demote active-tail pages until the inactive list holds at least
        ``target_inactive_fraction`` of all pages.  Returns demotions."""
        total = len(self)
        demoted = 0
        while total and len(self.inactive) < total * target_inactive_fraction:
            page = self.active.pop_tail()
            if page is None:
                break
            page.referenced = False
            self.inactive.add_to_head(page)
            demoted += 1
        if demoted and self.tracer is not None:
            self.tracer.emit(LRU_DEMOTE, self.name, 0, len(self.inactive), demoted)
        return demoted

    def select_victim(self) -> Optional[Page]:
        """Pick an eviction victim from the inactive tail.

        A referenced tail page gets a second chance (rotated to the
        inactive head with its referenced bit cleared), as in the kernel.
        """
        for _ in range(len(self.inactive) + 1):
            page = self.inactive.pop_tail()
            if page is None:
                break
            if page.referenced:
                page.referenced = False
                self.inactive.add_to_head(page)
                continue
            return page
        # Fall back to aging the active list.
        self.balance()
        page = self.inactive.pop_tail()
        return page
