"""LRU page lists, mirroring the kernel's active/inactive split.

The kernel keeps two lists per memory cgroup.  Newly faulted pages enter
the inactive list; a referenced inactive page is promoted to the active
list; reclaim shrinks the inactive tail and demotes active pages when the
inactive list runs short.  Canvas's hot-page detector (§5.1) periodically
scans the *head* of the active list, so :class:`LRUList` exposes that scan.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional

import numpy as np

from repro.mem.page import Page
from repro.obs.trace import LRU_DEMOTE, LRU_EPOCH

__all__ = ["LRUList", "ActiveInactiveLRU", "GenerationLRU"]

#: Sentinel distinguishing "absent" from a stored None value.
_MISSING = object()

#: Shared empty candidate queue (never mutated in place).
_EMPTY_I64 = np.zeros(0, dtype=np.int64)


class LRUList:
    """An ordered list of pages, most-recently-used at the head.

    Backed by a plain insertion-ordered dict so every operation the
    simulation performs (insert, remove, promote, pop-tail, head scan)
    is O(1) or O(scan length); a promote is a single pop + re-insert,
    not a probe-then-move.
    """

    def __init__(self, name: str = "lru"):
        self.name = name
        # Dicts iterate oldest-first; we keep MRU at the *end* and treat
        # the end as the "head" of the kernel list.
        self._pages: Dict[Page, None] = {}

    def __len__(self) -> int:
        return len(self._pages)

    def __contains__(self, page: Page) -> bool:
        return page in self._pages

    def __iter__(self) -> Iterator[Page]:
        """Iterate LRU-first (tail to head)."""
        return iter(self._pages)

    def add_to_head(self, page: Page) -> None:
        if page in self._pages:
            raise ValueError(f"page {page.vpn:#x} already on {self.name}")
        self._pages[page] = None

    def move_to_head(self, page: Page) -> None:
        pages = self._pages
        pages[page] = pages.pop(page)

    def remove(self, page: Page) -> None:
        del self._pages[page]

    def discard(self, page: Page) -> bool:
        """Remove if present; returns whether the page was on the list."""
        sentinel = _MISSING
        return self._pages.pop(page, sentinel) is not sentinel

    def pop_tail(self) -> Optional[Page]:
        """Remove and return the least-recently-used page."""
        if not self._pages:
            return None
        page = next(iter(self._pages))
        del self._pages[page]
        return page

    def peek_tail(self) -> Optional[Page]:
        if not self._pages:
            return None
        return next(iter(self._pages))

    def head_pages(self, count: int) -> List[Page]:
        """The ``count`` most-recently-used pages, MRU first.

        This is the scan Canvas's hot-page detector performs on the active
        list (§5.1): "each scan identifies a set of pages from the head".
        """
        result: List[Page] = []
        for page in reversed(self._pages):
            if len(result) >= count:
                break
            result.append(page)
        return result


class ActiveInactiveLRU:
    """The two-list page aging structure used for reclaim decisions."""

    #: Consumers branch on this instead of isinstance: the flat
    #: generation-stamp variant advertises ``flat = True``.
    flat = False

    def __init__(self, name: str = "memcg"):
        self.name = name
        self.active = LRUList(f"{name}.active")
        self.inactive = LRUList(f"{name}.inactive")
        self.tracer = None

    def __len__(self) -> int:
        return len(self.active) + len(self.inactive)

    def __contains__(self, page: Page) -> bool:
        return page in self.active or page in self.inactive

    def insert(self, page: Page) -> None:
        """A newly faulted-in page starts on the inactive list."""
        self.inactive.add_to_head(page)

    def note_access(self, page: Page) -> None:
        """Promote a referenced inactive page; refresh an active one.

        Hot-path: called once per simulated resident access.  Each list
        is touched with a single hash probe (``pop``) instead of a
        membership test followed by a move/remove.
        """
        active = self.active._pages
        try:
            active[page] = active.pop(page)
            return
        except KeyError:
            pass
        inactive = self.inactive._pages
        try:
            inactive.pop(page)
        except KeyError:
            raise ValueError(f"page {page.vpn:#x} not on {self.name} LRU") from None
        active[page] = None

    def remove(self, page: Page) -> None:
        if not self.active.discard(page):
            self.inactive.remove(page)

    def discard(self, page: Page) -> bool:
        return self.active.discard(page) or self.inactive.discard(page)

    def balance(self, target_inactive_fraction: float = 0.5) -> int:
        """Demote active-tail pages until the inactive list holds at least
        ``target_inactive_fraction`` of all pages.  Returns demotions."""
        total = len(self)
        demoted = 0
        while total and len(self.inactive) < total * target_inactive_fraction:
            page = self.active.pop_tail()
            if page is None:
                break
            page.referenced = False
            self.inactive.add_to_head(page)
            demoted += 1
        if demoted and self.tracer is not None:
            self.tracer.emit(LRU_DEMOTE, self.name, 0, len(self.inactive), demoted)
        return demoted

    def select_victim(self) -> Optional[Page]:
        """Pick an eviction victim from the inactive tail.

        A referenced tail page gets a second chance (rotated to the
        inactive head with its referenced bit cleared), as in the kernel.
        """
        for _ in range(len(self.inactive) + 1):
            page = self.inactive.pop_tail()
            if page is None:
                break
            if page.referenced:
                page.referenced = False
                self.inactive.add_to_head(page)
                continue
            return page
        # Fall back to aging the active list.
        self.balance()
        page = self.inactive.pop_tail()
        return page

    def select_victims(
        self, n: int, stop: Optional[Callable[[Page], bool]] = None
    ) -> List[Page]:
        """Pop up to ``n`` victims at one simulated instant.

        Identical to ``n`` back-to-back :meth:`select_victim` calls with
        no intervening LRU mutations.  When ``stop`` is given the batch
        ends with the first victim for which ``stop(page)`` is true (that
        victim is included) — the grouped reclaim path uses it to cut the
        batch at the first member whose processing passes simulated time,
        so every pop happens at the instant the serial oracle would have
        made it.
        """
        victims: List[Page] = []
        while len(victims) < n:
            page = self.select_victim()
            if page is None:
                break
            victims.append(page)
            if stop is not None and stop(page):
                break
        return victims


# -- flat generation-stamp LRU --------------------------------------------

#: Values of ``AddressSpace.lru_where``: not on the LRU, on the inactive
#: list, on the active list.
LRU_NONE, LRU_INACTIVE, LRU_ACTIVE = 0, 1, 2


class _GenerationView:
    """Read-only list view over one ``lru_where`` class (active/inactive).

    Quacks enough like :class:`LRUList` for the structure's consumers —
    the hot-page detector's ``head_pages`` scan, emergency reservation
    release, and tests — by materializing stamp order on demand.
    """

    __slots__ = ("_lru", "_which", "name")

    def __init__(self, lru: "GenerationLRU", which: int, name: str):
        self._lru = lru
        self._which = which
        self.name = name

    def _vpns_lru_first(self) -> np.ndarray:
        space = self._lru.space
        sel = np.flatnonzero(space.lru_where == self._which)
        order = np.argsort(space.lru_stamp[sel], kind="stable")
        return sel[order]

    def __len__(self) -> int:
        return self._lru._count_of(self._which)

    def __contains__(self, page: Page) -> bool:
        where = self._lru.space.lru_where
        vpn = page.vpn
        return vpn < len(where) and where[vpn] == self._which

    def __iter__(self) -> Iterator[Page]:
        """Iterate LRU-first (lowest stamp first), like :class:`LRUList`."""
        pages = self._lru.space.pages
        return (pages[vpn] for vpn in self._vpns_lru_first().tolist())

    def peek_tail(self) -> Optional[Page]:
        vpns = self._vpns_lru_first()
        if not len(vpns):
            return None
        return self._lru.space.pages[int(vpns[0])]

    def head_pages(self, count: int) -> List[Page]:
        """The ``count`` most-recently-stamped pages, MRU first."""
        if count <= 0:
            return []
        vpns = self._vpns_lru_first()[::-1][:count]
        pages = self._lru.space.pages
        return [pages[vpn] for vpn in vpns.tolist()]


class GenerationLRU:
    """Flat generation-stamp LRU over an address space's arrays.

    Drop-in replacement for :class:`ActiveInactiveLRU` that stores the
    ordering as a monotonically increasing stamp per VPN plus a one-byte
    active/inactive classification (``AddressSpace.lru_stamp`` /
    ``lru_where``) instead of linked-list nodes.  Every ordering event —
    insert, promote, refresh, rotate, demote — writes a fresh stamp, so
    ascending stamp order *is* the linked list's tail-to-head order and
    both structures pick identical eviction victims on identical access
    sequences (property-tested in ``tests/test_mem_lru.py``).

    The payoff is the batched resident fast path: ``note_access_run``
    retires a whole run of promotions/refreshes as two vectorized
    scatters, where the linked structure paid a dict probe per access.
    Reclaim keeps victim order as an append-fed candidate queue: every
    transition into the inactive class takes a fresh stamp and appends
    its ``(stamp, vpn)`` entry, so the queue is sorted by construction
    and entries are revalidated (still inactive, stamp unchanged) at
    pop time — eviction never scans the whole array to find the
    lowest-stamp inactive page.

    Epochs: when the stamp counter reaches ``epoch_limit`` the stamps of
    all on-LRU pages are renormalized to their ranks (an ``LRU_EPOCH``
    trace record marks it).  Order is preserved exactly; the limit only
    exists so the counter cannot grow without bound over arbitrarily
    long co-runs, and is test-settable to exercise the rollover.
    """

    flat = True

    #: Spaces at or below this many pages use the direct scan instead of
    #: the candidate-queue fallbacks (the two paths pick identical
    #: victims; the direct scan's full-array pass is trivial here).
    SMALL_SPACE_PAGES = 1024
    #: Queue remainders at or below this take the per-entry drain; the
    #: vectorized drain's fixed gather cost only amortizes above it.
    DRAIN_GATHER_MIN = 64

    def __init__(
        self,
        space,
        name: str = "memcg",
        epoch_limit: int = 1 << 62,
    ):
        self.space = space
        self.name = name
        self.tracer = None
        self.epoch_limit = epoch_limit
        self._gen = 0
        #: Completed epoch renormalizations.
        self.epochs = 0
        #: Pending eviction candidates: parallel stamp/VPN arrays in
        #: ascending stamp order, consumed from ``_vq_pos``.  Entries
        #: are revalidated at pop time; array storage lets the drain
        #: revalidate the whole remainder in one vectorized pass.
        self._vq_stamps: np.ndarray = _EMPTY_I64
        self._vq_vpns: np.ndarray = _EMPTY_I64
        self._vq_pos = 0
        #: Append-fed queue segment.  Every transition *into* the
        #: inactive class (insert, demote, second-chance rotation) takes
        #: a fresh — monotonically increasing — stamp, so appending at
        #: the tail keeps the whole queue in ascending stamp order for
        #: free: eviction never needs a full-array scan to find the
        #: lowest-stamp inactive page.  Stale entries (promoted or
        #: removed pages) are dropped by pop-time revalidation, exactly
        #: like the array segment's.
        self._vq_tail_stamps: List[int] = []
        self._vq_tail_vpns: List[int] = []
        #: True while the queue provably holds an entry for every
        #: inactive page at its current stamp.  Cleared when the append
        #: protocol is invalidated (epoch renormalization compacts the
        #: stamps, and at construction, when the space may hold inactive
        #: pages this LRU never saw); appends pause while False and the
        #: next drain rebuilds with one exhaustive refill scan.
        self._vq_complete = False
        #: Incremental class sizes, so balance/reclaim never rescan the
        #: whole ``lru_where`` array.  Scalar mutators maintain them
        #: exactly; the vectorized ``note_access_run`` (whose duplicate
        #: VPNs make an exact delta cost more than it saves) just marks
        #: them stale, and the next reader recounts once.
        self._n_active = 0
        self._n_inactive = 0
        self._counts_stale = False
        self.active = _GenerationView(self, LRU_ACTIVE, f"{name}.active")
        self.inactive = _GenerationView(self, LRU_INACTIVE, f"{name}.inactive")

    def _count_of(self, which: int) -> int:
        if self._counts_stale:
            self._recount()
        return self._n_active if which == LRU_ACTIVE else self._n_inactive

    def _recount(self) -> None:
        where = self.space.lru_where
        self._n_inactive = int(np.count_nonzero(where == LRU_INACTIVE))
        self._n_active = int(np.count_nonzero(where == LRU_ACTIVE))
        self._counts_stale = False

    # -- stamping ------------------------------------------------------

    def _take_stamps(self, n: int) -> int:
        """Reserve ``n`` consecutive stamps; renormalize at the epoch edge."""
        if self._gen + n > self.epoch_limit:
            self._renormalize()
        start = self._gen
        self._gen = start + n
        return start

    def _renormalize(self) -> None:
        """Compact stamps of on-LRU pages to their ranks (order-preserving)."""
        space = self.space
        on_lru = np.flatnonzero(space.lru_where != LRU_NONE)
        order = np.argsort(space.lru_stamp[on_lru], kind="stable")
        space.lru_stamp[on_lru[order]] = np.arange(len(on_lru), dtype=np.int64)
        old_gen = self._gen
        self._gen = len(on_lru)
        # Queued stamps are stale now.  Drop both segments and mark the
        # queue incomplete: appends pause until the next drain rebuilds
        # it from the compacted stamps with one refill scan.
        self._vq_stamps = _EMPTY_I64
        self._vq_vpns = _EMPTY_I64
        self._vq_pos = 0
        self._vq_tail_stamps = []
        self._vq_tail_vpns = []
        self._vq_complete = False
        self.epochs += 1
        if self.tracer is not None:
            self.tracer.emit(LRU_EPOCH, self.name, 0, len(on_lru), old_gen)

    # -- membership ----------------------------------------------------

    def __len__(self) -> int:
        if self._counts_stale:
            self._recount()
        return self._n_active + self._n_inactive

    def __contains__(self, page: Page) -> bool:
        where = self.space.lru_where
        vpn = page.vpn
        return vpn < len(where) and where[vpn] != LRU_NONE

    def insert(self, page: Page) -> None:
        """A newly faulted-in page starts on the inactive list."""
        space = self.space
        vpn = page.vpn
        if space.lru_where[vpn] != LRU_NONE:
            raise ValueError(f"page {vpn:#x} already on {self.name}.inactive")
        stamp = self._take_stamps(1)
        space.lru_where[vpn] = LRU_INACTIVE
        space.lru_stamp[vpn] = stamp
        self._n_inactive += 1
        if self._vq_complete:
            tail = self._vq_tail_vpns
            tail.append(vpn)
            self._vq_tail_stamps.append(stamp)
            if len(tail) > (len(space.lru_where) << 2) and len(tail) > 8192:
                self._vq_compact_tail()

    def note_access(self, page: Page) -> None:
        """Promote a referenced inactive page; refresh an active one."""
        space = self.space
        vpn = page.vpn
        prev = space.lru_where[vpn]
        if prev == LRU_NONE:
            raise ValueError(f"page {vpn:#x} not on {self.name} LRU")
        stamp = self._take_stamps(1)
        space.lru_where[vpn] = LRU_ACTIVE
        space.lru_stamp[vpn] = stamp
        if prev == LRU_INACTIVE:
            self._n_inactive -= 1
            self._n_active += 1

    def note_access_run(self, vpns: np.ndarray) -> None:
        """Vectorized :meth:`note_access` for a run of resident accesses.

        ``vpns`` is in access order; duplicate VPNs resolve to the last
        occurrence's stamp (numpy scatter semantics), exactly the stamp a
        scalar per-access loop would leave behind.  The stamp counter
        still advances once per access so batched and scalar protocols
        stay stamp-for-stamp identical.
        """
        n = len(vpns)
        if not n:
            return
        start = self._take_stamps(n)
        space = self.space
        space.lru_stamp[vpns] = np.arange(start, start + n, dtype=np.int64)
        space.lru_where[vpns] = LRU_ACTIVE
        self._counts_stale = True

    def remove(self, page: Page) -> None:
        space = self.space
        vpn = page.vpn
        prev = space.lru_where[vpn]
        if prev == LRU_NONE:
            raise KeyError(page)
        space.lru_where[vpn] = LRU_NONE
        if prev == LRU_INACTIVE:
            self._n_inactive -= 1
        else:
            self._n_active -= 1

    def discard(self, page: Page) -> bool:
        where = self.space.lru_where
        vpn = page.vpn
        if vpn >= len(where):
            return False
        prev = where[vpn]
        if prev == LRU_NONE:
            return False
        where[vpn] = LRU_NONE
        if prev == LRU_INACTIVE:
            self._n_inactive -= 1
        else:
            self._n_active -= 1
        return True

    # -- aging and reclaim ---------------------------------------------

    def balance(self, target_inactive_fraction: float = 0.5) -> int:
        """Demote lowest-stamp active pages until the inactive list holds
        at least ``target_inactive_fraction`` of all pages.  Mirrors the
        linked structure's loop exactly: the demote count comes from the
        same float comparison sequence, pages demote in ascending stamp
        order with fresh stamps, and referenced bits are cleared."""
        space = self.space
        where = space.lru_where
        if self._counts_stale:
            self._recount()
        n_inactive = self._n_inactive
        n_active = self._n_active
        total = n_active + n_inactive
        demoted = 0
        while (
            total
            and (n_inactive + demoted) < total * target_inactive_fraction
            and demoted < n_active
        ):
            demoted += 1
        if not demoted:
            return 0
        act = np.flatnonzero(where == LRU_ACTIVE)
        stamps = space.lru_stamp[act]
        if demoted < len(act):
            part = np.argpartition(stamps, demoted - 1)[:demoted]
            victims = act[part][np.argsort(stamps[part], kind="stable")]
        else:
            victims = act[np.argsort(stamps, kind="stable")]
        pages = space.pages
        for vpn in victims.tolist():
            # Referenced clears via the page accessor so shared pages
            # whose flag home is another space behave like the linked
            # structure's ``page.referenced = False``.
            pages[vpn].referenced = False
            stamp = self._take_stamps(1)
            where[vpn] = LRU_INACTIVE
            space.lru_stamp[vpn] = stamp
            if self._vq_complete:
                # Queue the demoted page (skipped once a stamp take hits
                # the epoch edge; the next drain's refill rebuilds).
                self._vq_tail_stamps.append(stamp)
                self._vq_tail_vpns.append(vpn)
        self._n_inactive += demoted
        self._n_active -= demoted
        if self.tracer is not None:
            self.tracer.emit(
                LRU_DEMOTE, self.name, 0, n_inactive + demoted, demoted
            )
        return demoted

    def _refill_victim_queue(self) -> bool:
        """Rebuild the queue from every inactive page; False when none.

        Steady state never gets here: each transition into the inactive
        class appends its own queue entry, so the queue only empties
        when the inactive set does.  The full-array scan survives for
        the two cases that invalidate the append protocol — an epoch
        renormalization (stamps compacted, queue dropped) and an LRU
        bootstrapped over a space with pre-existing inactive pages.  The
        rebuild must be exhaustive: later appends carry higher stamps,
        so any inactive page left out here would be passed over in
        favor of younger candidates.
        """
        space = self.space
        inactive = np.flatnonzero(space.lru_where == LRU_INACTIVE)
        if not len(inactive):
            return False
        stamps = space.lru_stamp[inactive]
        order = np.argsort(stamps, kind="stable")
        self._vq_stamps = stamps[order]
        self._vq_vpns = inactive[order]
        self._vq_pos = 0
        return True

    def _select_victim_direct(self) -> Optional[Page]:
        """Second-chance scan over a small inactive set, no queue.

        One stamp argsort replays the linked structure's tail-to-head
        walk: every referenced page before the first unreferenced one
        rotates (referenced cleared, fresh stamp, in stamp order), the
        first unreferenced page is the victim.  An all-referenced set
        rotates completely and the walk restarts — the first-rotated
        page, now lowest-stamped and clean, wins, exactly as the linked
        loop's ``len(inactive) + 1`` iterations end."""
        space = self.space
        where = space.lru_where
        stamp_arr = space.lru_stamp
        pages = space.pages
        while True:
            inactive = np.flatnonzero(where == LRU_INACTIVE)
            if not len(inactive):
                return None
            order = np.argsort(stamp_arr[inactive], kind="stable")
            for vpn in inactive[order].tolist():
                page = pages[vpn]
                # The referenced accessor keeps shared pages (flag home
                # in another space) behaving like the linked structure.
                if page.referenced:
                    page.referenced = False
                    stamp_arr[vpn] = self._take_stamps(1)  # rotate to head
                    continue
                where[vpn] = LRU_NONE
                self._n_inactive -= 1
                return page
            # Everything rotated: scan again from the fresh stamps.

    def _vq_compact_tail(self) -> None:
        """Drop stale append-segment entries (vectorized revalidation).

        Revalidation at pop time would skip them anyway; compaction just
        bounds the segment's memory when a space inserts far more than
        it evicts.  Surviving entries keep their relative (ascending
        stamp) order, so drain results are unchanged.
        """
        space = self.space
        stamps = np.asarray(self._vq_tail_stamps, dtype=np.int64)
        vpns = np.asarray(self._vq_tail_vpns, dtype=np.int64)
        keep = (space.lru_where[vpns] == LRU_INACTIVE) & (
            space.lru_stamp[vpns] == stamps
        )
        self._vq_tail_stamps = stamps[keep].tolist()
        self._vq_tail_vpns = vpns[keep].tolist()

    def _vq_promote_tail(self) -> None:
        """Move the append segment into the (exhausted) array segment."""
        self._vq_stamps = np.asarray(self._vq_tail_stamps, dtype=np.int64)
        self._vq_vpns = np.asarray(self._vq_tail_vpns, dtype=np.int64)
        self._vq_pos = 0
        self._vq_tail_stamps = []
        self._vq_tail_vpns = []

    def _drain_segment_scalar(self) -> Optional[Page]:
        """Per-entry array-segment drain: revalidate, rotate, pop.

        Kept for shared-flag spaces (``page.referenced`` may live in a
        foreign space's arrays), for drains that could cross the epoch
        edge (the per-rotation ``_take_stamps(1)`` calls must be allowed
        to renormalize mid-drain), and for short remainders where the
        vectorized drain's gathers cost more than a few scalar pops.
        """
        space = self.space
        where = space.lru_where
        stamp_arr = space.lru_stamp
        pages = space.pages
        vq_stamps = self._vq_stamps
        vq_vpns = self._vq_vpns
        n = len(vq_vpns)
        pos = self._vq_pos
        while pos < n:
            stamp = vq_stamps[pos]
            vpn = int(vq_vpns[pos])
            pos += 1
            if where[vpn] != LRU_INACTIVE or stamp_arr[vpn] != stamp:
                continue  # promoted, removed, or rotated since queued
            page = pages[vpn]
            if page.referenced:
                page.referenced = False
                fresh = self._take_stamps(1)
                stamp_arr[vpn] = fresh  # rotate to head
                if not self._vq_complete:
                    # The rotation renormalized the epoch and replaced
                    # the queue; the rest of this snapshot is stale and
                    # the next drain rebuilds from the compacted stamps.
                    return None
                self._vq_tail_stamps.append(fresh)
                self._vq_tail_vpns.append(vpn)
                continue
            where[vpn] = LRU_NONE
            self._n_inactive -= 1
            self._vq_pos = pos
            return page
        self._vq_pos = pos
        return None

    def _drain_segment(self) -> Optional[Page]:
        """Pop the next victim off the array segment (second chance).

        One gather revalidates every remaining candidate and one scan of
        the flat referenced bits finds the first evictable one; the
        referenced candidates ahead of it batch-rotate with consecutive
        stamps in queue order — value-for-value the sequence the
        per-entry loop's ``_take_stamps(1)`` calls would assign (a VPN
        can appear twice in the queue, but stamps are never reused
        within an epoch, so at most one of its entries validates — no
        entry can alias another's rotation).  Only taken when every
        candidate's flag home is this space, the whole drain fits inside
        the current stamp epoch, and the remainder is big enough that
        one gather beats the per-entry loop — under fault storms the
        inactive set (and so the queue) runs nearly empty and a couple
        of scalar pops win; the gathers pay off on the fat queues of
        large, lightly-pressured spaces.
        """
        pos = self._vq_pos
        vq_vpns = self._vq_vpns
        n = len(vq_vpns)
        if pos >= n:
            return None
        space = self.space
        if (
            n - pos <= self.DRAIN_GATHER_MIN
            or space.has_foreign_pages
            or self._gen + (n - pos) > self.epoch_limit
        ):
            return self._drain_segment_scalar()
        where = space.lru_where
        stamp_arr = space.lru_stamp
        vpns = vq_vpns[pos:]
        live = np.flatnonzero(
            (where[vpns] == LRU_INACTIVE) & (stamp_arr[vpns] == self._vq_stamps[pos:])
        )
        if not len(live):  # every entry promoted/removed/rotated away
            self._vq_pos = n
            return None
        referenced = space.referenced_bits[vpns[live]]
        unref = np.flatnonzero(~referenced)
        if not len(unref):
            # All live candidates are referenced: rotate them all and
            # report the segment drained (the rotations re-queue them).
            rotated = vpns[live]
            space.referenced_bits[rotated] = False
            start = self._take_stamps(len(rotated))
            stamp_arr[rotated] = np.arange(
                start, start + len(rotated), dtype=np.int64
            )
            self._vq_tail_stamps.extend(range(start, start + len(rotated)))
            self._vq_tail_vpns.extend(rotated.tolist())
            self._vq_pos = n
            return None
        first = int(unref[0])
        if first:
            rotated = vpns[live[:first]]
            space.referenced_bits[rotated] = False
            start = self._take_stamps(len(rotated))
            stamp_arr[rotated] = np.arange(
                start, start + len(rotated), dtype=np.int64
            )
            self._vq_tail_stamps.extend(range(start, start + len(rotated)))
            self._vq_tail_vpns.extend(rotated.tolist())
        victim = int(vpns[live[first]])
        where[victim] = LRU_NONE
        self._n_inactive -= 1
        self._vq_pos = pos + int(live[first]) + 1
        return space.pages[victim]

    def _drain_victim_queue(self) -> Optional[Page]:
        """Pop the next victim off the candidate queue (second chance).

        Drains the sorted array segment, then promotes the append
        segment (whose stamps are all higher) and keeps going; rotations
        re-queue through the append segment, so an all-referenced queue
        converges exactly like the linked structure's full rotation —
        the first-rotated page, now lowest-stamped and clean, wins.
        An incomplete queue (fresh LRU, or epoch renormalization since
        the last drain) is first rebuilt with one exhaustive refill
        scan.  ``None`` therefore means the inactive set is empty —
        unless a mid-drain renormalization invalidated the queue again
        (the caller's scan fallbacks cover that).
        """
        if not self._vq_complete:
            # The refill takes no stamps, so completeness holds the
            # moment it returns; set the flag first so its queue write
            # is never wiped by a racing invariant check.
            self._vq_complete = True
            self._refill_victim_queue()
        while True:
            victim = self._drain_segment()
            if victim is not None:
                return victim
            if self._vq_pos >= len(self._vq_vpns) and self._vq_tail_vpns:
                self._vq_promote_tail()
                continue
            return None

    def select_victim(self) -> Optional[Page]:
        """Pick an eviction victim from the inactive tail.

        A referenced candidate gets a second chance (fresh stamp, the
        rotation-to-head of the linked structure, with its referenced bit
        cleared).  Victims come off the append-fed candidate queue — new
        stamps are always higher than queued ones, so the queue front,
        revalidated against promotion/removal/rotation at pop time, is
        always the current lowest-stamp inactive page.  The scans below
        are fallbacks for an invalidated (renormalized/bootstrapped)
        queue.
        """
        victim = self._drain_victim_queue()
        if victim is not None:
            return victim
        space = self.space
        where = space.lru_where
        stamp_arr = space.lru_stamp
        pages = space.pages
        if not self._vq_complete:
            # A mid-drain epoch renormalization invalidated the rebuilt
            # queue; the direct scan replays the full second-chance walk
            # without queue bookkeeping (its rotations renormalize
            # freely — the next drain rebuilds from whatever stamps
            # stand).
            victim = self._select_victim_direct()
            if victim is not None:
                return victim
        # Otherwise the drain's ``None`` is authoritative: the inactive
        # set is empty, so fall through to aging the active list.
        # Fall back to aging the active list; the freshly demoted pages
        # arrive with referenced cleared, so the pop is unconditional
        # (exactly the linked structure's fallback pop_tail).
        self.balance()
        inactive = np.flatnonzero(where == LRU_INACTIVE)
        if not len(inactive):
            return None
        vpn = int(inactive[np.argmin(stamp_arr[inactive])])
        where[vpn] = LRU_NONE
        self._n_inactive -= 1
        return pages[vpn]

    def _drain_segment_multi(
        self, need: int, out: List[Page], stop: Optional[Callable[[Page], bool]]
    ) -> bool:
        """Pop up to ``need`` victims off the array segment in one pass.

        Multi-victim twin of :meth:`_drain_segment`: one gather
        revalidates the whole remainder, one referenced gather classifies
        the live candidates, and every consumed referenced candidate
        batch-rotates with consecutive stamps in queue order — exactly
        the stamps ``need`` sequential :meth:`select_victim` calls would
        assign, because victims take no stamps and rotations are stamped
        in encounter order either way.  Candidates beyond the last
        consumed victim are left untouched (their rotations have not
        happened yet in the serial order).  Returns True when ``stop``
        ended the batch.  Only sound at a single simulated instant: the
        caller must not yield between pops (LRU state frozen), which is
        what the ``stop`` predicate guarantees for the reclaim path.
        """
        pos = self._vq_pos
        vq_vpns = self._vq_vpns
        n = len(vq_vpns)
        if pos >= n or need <= 0:
            return False
        space = self.space
        if (
            n - pos <= self.DRAIN_GATHER_MIN
            or space.has_foreign_pages
            or self._gen + (n - pos) > self.epoch_limit
        ):
            # Same fallbacks as the single-victim drain; the per-entry
            # loop is already exact, so just take victims one at a time.
            while need > 0:
                page = self._drain_segment_scalar()
                if page is None:
                    return False
                out.append(page)
                need -= 1
                if stop is not None and stop(page):
                    return True
            return False
        where = space.lru_where
        stamp_arr = space.lru_stamp
        vpns = vq_vpns[pos:]
        live = np.flatnonzero(
            (where[vpns] == LRU_INACTIVE) & (stamp_arr[vpns] == self._vq_stamps[pos:])
        )
        if not len(live):  # every entry promoted/removed/rotated away
            self._vq_pos = n
            return False
        referenced = space.referenced_bits[vpns[live]]
        unref = np.flatnonzero(~referenced)
        if not len(unref):
            # All live candidates are referenced: rotate them all and
            # report the segment drained (the rotations re-queue them).
            rotated = vpns[live]
            space.referenced_bits[rotated] = False
            start = self._take_stamps(len(rotated))
            stamp_arr[rotated] = np.arange(
                start, start + len(rotated), dtype=np.int64
            )
            self._vq_tail_stamps.extend(range(start, start + len(rotated)))
            self._vq_tail_vpns.extend(rotated.tolist())
            self._vq_pos = n
            return False
        pages = space.pages
        # Walk the evictable candidates in queue order, applying the stop
        # predicate exactly where the serial selector would.  Rotations
        # do not change dirty bits or swap entries and earlier pops never
        # alter later candidates' predicate inputs, so evaluating the
        # predicate before the batched scatters below is order-exact.
        take = 0
        stopped = False
        last_u = int(unref[0])
        for u in unref.tolist():
            page = pages[int(vpns[live[u]])]
            out.append(page)
            take += 1
            last_u = u
            if stop is not None and stop(page):
                stopped = True
                break
            if take >= need:
                break
        consumed = live[: last_u + 1]
        rot_mask = np.ones(last_u + 1, dtype=bool)
        rot_mask[unref[:take]] = False
        rotated = vpns[consumed[rot_mask]]
        if len(rotated):
            space.referenced_bits[rotated] = False
            start = self._take_stamps(len(rotated))
            stamp_arr[rotated] = np.arange(
                start, start + len(rotated), dtype=np.int64
            )
            self._vq_tail_stamps.extend(range(start, start + len(rotated)))
            self._vq_tail_vpns.extend(rotated.tolist())
        where[vpns[live[unref[:take]]]] = LRU_NONE
        self._n_inactive -= take
        self._vq_pos = pos + int(live[last_u]) + 1
        return stopped

    def select_victims(
        self, n: int, stop: Optional[Callable[[Page], bool]] = None
    ) -> List[Page]:
        """Pop up to ``n`` victims in one revalidated pass.

        Identical to ``n`` back-to-back :meth:`select_victim` calls made
        with no intervening LRU mutations: the queue remainder is
        revalidated with one gather instead of one per pop, consumed
        referenced candidates batch-rotate with the stamps the serial
        loop would have assigned, and the scan fallbacks (incomplete
        queue, renormalized epoch, empty inactive set) delegate to the
        serial selector member by member.  When ``stop`` is given the
        batch ends with the first victim for which ``stop(page)`` is
        true (included) — the grouped reclaim path cuts the batch at the
        first member whose processing passes simulated time, keeping
        every later pop at the instant the serial oracle would make it.
        """
        victims: List[Page] = []
        if n <= 0:
            return victims
        if not self._vq_complete:
            self._vq_complete = True
            self._refill_victim_queue()
        while len(victims) < n:
            before = len(victims)
            if self._drain_segment_multi(n - before, victims, stop):
                return victims
            if len(victims) > before:
                continue
            if self._vq_pos >= len(self._vq_vpns) and self._vq_tail_vpns:
                self._vq_promote_tail()
                continue
            break
        # Queue exhausted (or invalidated by a mid-drain epoch
        # renormalization): the serial selector per member replays the
        # oracle's direct-scan and balance fallbacks exactly.
        while len(victims) < n:
            page = self.select_victim()
            if page is None:
                break
            victims.append(page)
            if stop is not None and stop(page):
                break
        return victims
