"""Virtual address spaces and VMAs.

The simulation works at page granularity: an :class:`AddressSpace` maps
virtual page numbers (VPNs) to :class:`~repro.mem.page.Page` objects and
groups them into :class:`VMA` regions.  VMAs matter for two reasons in the
paper's setting: the kernel's readahead state is per-VMA (the "per-VMA
prefetching policy" in §6's Linux tuning), and shared VMAs force pages onto
the global swap path (§4, Handling of Shared Pages).

Flat kernel state: alongside the ``resident_map`` object array (VPN →
Page-or-None, the scalar consume path's classifier), each space keeps
VPN-indexed numpy arrays — a residency bitmap, dirty/referenced
bitvectors, last-access timestamps, and LRU generation stamps with an
active/inactive classification byte.  The batched resident fast path
(``BaseSwapSystem.consume_batch``) gathers and scatters these arrays for
whole runs of accesses; scalar ``Page`` accessors address the same
storage element-wise.  Guard/unmapped slots simply stay at their zero
values.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

import numpy as np

from repro.mem.page import Page

__all__ = ["VMA", "AddressSpace"]


class VMA:
    """A contiguous virtual memory area."""

    def __init__(self, start_vpn: int, n_pages: int, name: str = "", shared: bool = False):
        if n_pages <= 0:
            raise ValueError(f"VMA needs at least one page, got {n_pages}")
        self.start_vpn = start_vpn
        self.n_pages = n_pages
        self.name = name
        self.shared = shared
        #: Scratch slot for per-VMA readahead window state (owned by the
        #: kernel prefetcher; kept here because the kernel stores it on the
        #: VMA too).
        self.readahead_state: Optional[object] = None

    @property
    def end_vpn(self) -> int:
        """One past the last VPN."""
        return self.start_vpn + self.n_pages

    def contains(self, vpn: int) -> bool:
        return self.start_vpn <= vpn < self.end_vpn

    def vpns(self) -> Iterator[int]:
        return iter(range(self.start_vpn, self.end_vpn))

    def __repr__(self) -> str:  # pragma: no cover
        return f"VMA({self.name!r}, [{self.start_vpn:#x}, {self.end_vpn:#x}))"


class AddressSpace:
    """Per-process page-granular address space.

    Regions are laid out by a bump allocator with guard gaps so that VPNs
    from different regions never collide, mirroring mmap behaviour closely
    enough for access-pattern purposes.
    """

    #: Gap (in pages) left between consecutively mapped regions.
    GUARD_PAGES = 16

    def __init__(self, name: str):
        self.name = name
        self.vmas: List[VMA] = []
        self.pages: Dict[int, Page] = {}
        #: Residency indexed by raw VPN: ``resident_map[vpn]`` is the
        #: page object when ``pages[vpn].resident`` and None otherwise
        #: (kept in sync by the Page setter).  The scalar consume path
        #: classifies an access *and* fetches its page with one flat
        #: list index.  Unmapped/guard slots stay None.
        self.resident_map: List[Optional[Page]] = []
        #: Every attached page indexed by raw VPN (resident or not): the
        #: flat companion to ``resident_map`` that the fault slow path
        #: reads, replacing the ``pages`` dict probe per fault/prefetch
        #: proposal.  Unmapped/guard slots stay None.
        self.page_map: List[Optional[Page]] = []
        #: Flat VPN-indexed kernel state (see module docstring).  The
        #: bitmap mirrors ``resident_map``; dirty/referenced/timestamps
        #: are the authoritative storage behind the ``Page`` accessors;
        #: ``lru_stamp``/``lru_where`` belong to the generation-stamp LRU
        #: (:class:`repro.mem.lru.GenerationLRU`) when the owning app
        #: uses it.
        self.resident_bits = np.zeros(0, dtype=bool)
        self.dirty_bits = np.zeros(0, dtype=bool)
        self.referenced_bits = np.zeros(0, dtype=bool)
        self.last_access_arr = np.zeros(0, dtype=np.float64)
        self.lru_stamp = np.zeros(0, dtype=np.int64)
        self.lru_where = np.zeros(0, dtype=np.uint8)
        #: Incremental count of resident pages, maintained by the Page
        #: residency setter: ``resident_pages`` is O(1) instead of a dict
        #: scan at stats-collection time.
        self._resident_count = 0
        #: True once this space maps pages whose flag home is another
        #: space (``map_shared_from``): the vectorized consume path must
        #: not scatter into *this* space's flag arrays then, so consumers
        #: fall back to the per-page object path.
        self.has_foreign_pages = False
        self._next_vpn = 0x1000  # skip the NULL guard area

    # -- mapping ---------------------------------------------------------

    def _grow_resident_map(self, end_vpn: int) -> None:
        if end_vpn > len(self.resident_map):
            self.resident_map.extend([None] * (end_vpn - len(self.resident_map)))
        if end_vpn > len(self.page_map):
            self.page_map.extend([None] * (end_vpn - len(self.page_map)))
        if end_vpn > len(self.resident_bits):
            grow = end_vpn - len(self.resident_bits)
            self.resident_bits = np.concatenate(
                (self.resident_bits, np.zeros(grow, dtype=bool))
            )
            self.dirty_bits = np.concatenate(
                (self.dirty_bits, np.zeros(grow, dtype=bool))
            )
            self.referenced_bits = np.concatenate(
                (self.referenced_bits, np.zeros(grow, dtype=bool))
            )
            self.last_access_arr = np.concatenate(
                (self.last_access_arr, np.zeros(grow, dtype=np.float64))
            )
            self.lru_stamp = np.concatenate(
                (self.lru_stamp, np.zeros(grow, dtype=np.int64))
            )
            self.lru_where = np.concatenate(
                (self.lru_where, np.zeros(grow, dtype=np.uint8))
            )

    def map_region(self, n_pages: int, name: str = "", shared: bool = False) -> VMA:
        """Map a fresh anonymous region and materialize its pages."""
        vma = VMA(self._next_vpn, n_pages, name=name, shared=shared)
        self._next_vpn = vma.end_vpn + self.GUARD_PAGES
        self.vmas.append(vma)
        self._grow_resident_map(vma.end_vpn)
        page_map = self.page_map
        for vpn in vma.vpns():
            page = Page(vpn, owner_name=self.name)
            self.pages[vpn] = page
            page_map[vpn] = page
            page.attach_space(self)
        return vma

    def map_shared_from(self, other: "AddressSpace", vma: VMA, name: str = "") -> VMA:
        """Map ``vma`` of ``other`` into this space, sharing its pages.

        The pages' mapcount is incremented, which routes them onto the
        global swap partition (§4).  The shared pages keep their flag
        home in ``other``, so this space's flag arrays no longer cover
        every mapped page — ``has_foreign_pages`` routes its consumers
        onto the per-page path.
        """
        mirror = VMA(vma.start_vpn, vma.n_pages, name=name or vma.name, shared=True)
        vma.shared = True
        self.vmas.append(mirror)
        self._grow_resident_map(vma.end_vpn)
        self.has_foreign_pages = True
        page_map = self.page_map
        for vpn in vma.vpns():
            page = other.pages[vpn]
            page.mapcount += 1
            self.pages[vpn] = page
            page_map[vpn] = page
            page.attach_space(self)
        return mirror

    # -- lookup ----------------------------------------------------------

    def page(self, vpn: int) -> Page:
        try:
            page = self.page_map[vpn] if vpn >= 0 else None
        except IndexError:
            page = None
        if page is None:
            raise KeyError(f"{self.name}: unmapped vpn {vpn:#x}")
        return page

    def page_or_none(self, vpn: int) -> Optional[Page]:
        """Flat-indexed ``pages.get``: None for unmapped or guard VPNs."""
        if 0 <= vpn < len(self.page_map):
            return self.page_map[vpn]
        return None

    def find_vma(self, vpn: int) -> Optional[VMA]:
        for vma in self.vmas:
            if vma.contains(vpn):
                return vma
        return None

    # -- statistics --------------------------------------------------------

    @property
    def total_pages(self) -> int:
        return len(self.pages)

    @property
    def resident_pages(self) -> int:
        """O(1): maintained incrementally by the Page residency setter."""
        return self._resident_count

    def __repr__(self) -> str:  # pragma: no cover
        return f"AddressSpace({self.name!r}, {len(self.vmas)} VMAs, {len(self.pages)} pages)"
