"""Memory substrate: pages, address spaces, LRU aging, frame accounting."""

from repro.mem.address_space import VMA, AddressSpace
from repro.mem.frame_pool import FramePool, FramePoolStats
from repro.mem.lru import ActiveInactiveLRU, GenerationLRU, LRUList
from repro.mem.page import PAGE_SHIFT, PAGE_SIZE, Page, PageState

__all__ = [
    "VMA",
    "AddressSpace",
    "FramePool",
    "FramePoolStats",
    "ActiveInactiveLRU",
    "GenerationLRU",
    "LRUList",
    "PAGE_SHIFT",
    "PAGE_SIZE",
    "Page",
    "PageState",
]
