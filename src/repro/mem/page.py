"""Pages and page metadata.

A :class:`Page` models one 4 KB virtual page together with the kernel
metadata the swap path reads and writes: the PTE's swap entry (set while
the page is swapped out), the ``struct page`` fields Canvas adds (the
reserved swap-entry ID of §5.1), residency/dirty/referenced bits, the
mapcount used to route shared pages to the global swap partition, and the
page lock held while swap I/O is in flight.

Flat-state layout: once a page is attached to an address space, its
dirty/referenced bits, access timestamp, and residency bit live in that
space's flat numpy arrays (indexed by VPN) rather than in per-object
slots.  The batched consume path updates whole runs of those arrays with
a handful of vectorized ops; the scalar accessors below read and write
the same storage, so both protocols always see one source of truth.  A
free-standing page (no space attached, as unit tests build them) falls
back to plain per-object slots.
"""

from __future__ import annotations

import enum
import itertools
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.swap.entry import SwapEntry

__all__ = ["PAGE_SIZE", "PAGE_SHIFT", "PageState", "Page"]

PAGE_SIZE = 4096
PAGE_SHIFT = 12

_page_ids = itertools.count()


class PageState(enum.Enum):
    """States of the Canvas §5.1 page/reservation FSM (Fig. 7).

    The paper's state machine distinguishes pages by (a) whether they are
    resident or evicted and (b) whether they carry a reserved swap entry
    in their ``struct page``:

    * ``HOT_NO_RESERVATION``  - resident, reservation removed (state 3)
    * ``RESIDENT_RESERVED``   - resident with a reserved entry (state 4)
    * ``COLD_NO_RESERVATION`` - evicted, no reservation: swap-out goes
      through the lock-protected allocator (state 2)
    * ``COLD_RESERVED``       - evicted, entry ID remembered: swap-out is
      lock-free (state 5)
    * ``NEW``                 - never swapped out (state 1)
    """

    NEW = "new"
    RESIDENT_RESERVED = "resident_reserved"
    HOT_NO_RESERVATION = "hot_no_reservation"
    COLD_RESERVED = "cold_reserved"
    COLD_NO_RESERVATION = "cold_no_reservation"


class Page:
    """One virtual 4 KB page and its kernel-visible metadata."""

    __slots__ = (
        "page_id",
        "vpn",
        "owner_name",
        "_resident",
        "_spaces",
        "_flags",
        "_dirty",
        "_referenced",
        "_last_access_us",
        "mapcount",
        "swap_entry",
        "reserved_entry",
        "in_swap_cache",
        "locked",
        "state",
        "hot_score",
        "prefetched",
        "prefetched_at_us",
        "prefetch_timestamp_us",
    )

    def __init__(self, vpn: int, owner_name: str = "", mapcount: int = 1):
        self.page_id: int = next(_page_ids)
        self.vpn = vpn
        self.owner_name = owner_name
        #: Address spaces beyond the flag home also mirroring this page's
        #: residency (see ``resident``).  Almost always empty — only
        #: shared mappings populate it — so the hot setter touches the
        #: home space directly and skips the loop.
        self._spaces: tuple = ()
        #: The space whose flat arrays hold this page's dirty/referenced/
        #: timestamp state (the first space attached); None while the page
        #: is free-standing and the ``_dirty``/... slots are authoritative.
        self._flags = None
        self._resident = True
        self._dirty = False
        self._referenced = False
        self._last_access_us = 0.0
        self.mapcount = mapcount
        #: PTE contents while swapped out (None when resident).
        self.swap_entry: Optional["SwapEntry"] = None
        #: Canvas: entry ID remembered in struct page (§5.1 reservation).
        self.reserved_entry: Optional["SwapEntry"] = None
        self.in_swap_cache = False
        #: Page lock held while swap I/O is outstanding.
        self.locked = False
        self.state = PageState.NEW
        #: Consecutive LRU-head scans in which this page appeared (§5.1).
        self.hot_score = 0
        #: True if the page currently in the swap cache arrived via prefetch.
        self.prefetched = False
        self.prefetched_at_us = 0.0
        #: Timestamp written when a prefetch for this page entered a VQP
        #: (§5.3 stale-prefetch detection); None when no prefetch pending.
        self.prefetch_timestamp_us: Optional[float] = None

    # -- flat-array-backed flag accessors --------------------------------

    @property
    def dirty(self) -> bool:
        space = self._flags
        if space is None:
            return self._dirty
        return bool(space.dirty_bits[self.vpn])

    @dirty.setter
    def dirty(self, value: bool) -> None:
        space = self._flags
        if space is None:
            self._dirty = value
        else:
            space.dirty_bits[self.vpn] = value

    @property
    def referenced(self) -> bool:
        space = self._flags
        if space is None:
            return self._referenced
        return bool(space.referenced_bits[self.vpn])

    @referenced.setter
    def referenced(self, value: bool) -> None:
        space = self._flags
        if space is None:
            self._referenced = value
        else:
            space.referenced_bits[self.vpn] = value

    @property
    def last_access_us(self) -> float:
        space = self._flags
        if space is None:
            return self._last_access_us
        return float(space.last_access_arr[self.vpn])

    @last_access_us.setter
    def last_access_us(self, value: float) -> None:
        space = self._flags
        if space is None:
            self._last_access_us = value
        else:
            space.last_access_arr[self.vpn] = value

    @property
    def resident(self) -> bool:
        return self._resident

    @resident.setter
    def resident(self, value: bool) -> None:
        """Flip residency, keeping every mapping space's O(1) residency
        map and bitmap (the batched fast path's classification arrays)
        and incremental resident counter in sync."""
        changed = value != self._resident
        self._resident = value
        entry = self if value else None
        home = self._flags
        if home is not None:
            vpn = self.vpn
            home.resident_map[vpn] = entry
            home.resident_bits[vpn] = value
            if changed:
                home._resident_count += 1 if value else -1
            if self._spaces:
                for space in self._spaces:
                    space.resident_map[vpn] = entry
                    space.resident_bits[vpn] = value
                    if changed:
                        space._resident_count += 1 if value else -1

    def attach_space(self, space) -> None:
        """Register an address space whose residency map mirrors this page.

        The first attached space becomes the page's flag home: the
        current slot-held dirty/referenced/timestamp values migrate into
        its flat arrays and the arrays become authoritative.  Later
        spaces (shared mappings) land in ``_spaces`` and are mirrored by
        the residency setter's slow loop.
        """
        vpn = self.vpn
        if self._flags is None:
            self._flags = space
            space.dirty_bits[vpn] = self._dirty
            space.referenced_bits[vpn] = self._referenced
            space.last_access_arr[vpn] = self._last_access_us
        else:
            self._spaces = self._spaces + (space,)
        space.resident_map[vpn] = self if self._resident else None
        space.resident_bits[vpn] = self._resident
        if self._resident:
            space._resident_count += 1

    @property
    def flag_space(self):
        """The address space whose flat arrays home this page's flag bits
        (None for a free-standing page).  Lets batch consumers (the swap
        cache's vectorized shrink scan) gather ``dirty_bits`` for a run
        of same-home pages in one numpy op instead of one property call
        per page."""
        return self._flags

    @property
    def shared(self) -> bool:
        """Shared pages (mapcount > 1) must use the global swap path (§4)."""
        return self.mapcount > 1

    @property
    def has_reservation(self) -> bool:
        return self.reserved_entry is not None

    def touch(self, now_us: float, write: bool = False) -> None:
        """Record an access: set referenced (and dirty for writes)."""
        space = self._flags
        if space is None:
            self._referenced = True
            self._last_access_us = now_us
            if write:
                self._dirty = True
        else:
            vpn = self.vpn
            space.referenced_bits[vpn] = True
            space.last_access_arr[vpn] = now_us
            if write:
                space.dirty_bits[vpn] = True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Page(vpn={self.vpn:#x}, owner={self.owner_name!r}, "
            f"resident={self.resident}, state={self.state.value})"
        )
