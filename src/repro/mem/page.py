"""Pages and page metadata.

A :class:`Page` models one 4 KB virtual page together with the kernel
metadata the swap path reads and writes: the PTE's swap entry (set while
the page is swapped out), the ``struct page`` fields Canvas adds (the
reserved swap-entry ID of §5.1), residency/dirty/referenced bits, the
mapcount used to route shared pages to the global swap partition, and the
page lock held while swap I/O is in flight.
"""

from __future__ import annotations

import enum
import itertools
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.swap.entry import SwapEntry

__all__ = ["PAGE_SIZE", "PAGE_SHIFT", "PageState", "Page"]

PAGE_SIZE = 4096
PAGE_SHIFT = 12

_page_ids = itertools.count()


class PageState(enum.Enum):
    """States of the Canvas §5.1 page/reservation FSM (Fig. 7).

    The paper's state machine distinguishes pages by (a) whether they are
    resident or evicted and (b) whether they carry a reserved swap entry
    in their ``struct page``:

    * ``HOT_NO_RESERVATION``  - resident, reservation removed (state 3)
    * ``RESIDENT_RESERVED``   - resident with a reserved entry (state 4)
    * ``COLD_NO_RESERVATION`` - evicted, no reservation: swap-out goes
      through the lock-protected allocator (state 2)
    * ``COLD_RESERVED``       - evicted, entry ID remembered: swap-out is
      lock-free (state 5)
    * ``NEW``                 - never swapped out (state 1)
    """

    NEW = "new"
    RESIDENT_RESERVED = "resident_reserved"
    HOT_NO_RESERVATION = "hot_no_reservation"
    COLD_RESERVED = "cold_reserved"
    COLD_NO_RESERVATION = "cold_no_reservation"


class Page:
    """One virtual 4 KB page and its kernel-visible metadata."""

    __slots__ = (
        "page_id",
        "vpn",
        "owner_name",
        "_resident",
        "_spaces",
        "dirty",
        "referenced",
        "mapcount",
        "swap_entry",
        "reserved_entry",
        "in_swap_cache",
        "locked",
        "state",
        "last_access_us",
        "hot_score",
        "prefetched",
        "prefetched_at_us",
        "prefetch_timestamp_us",
    )

    def __init__(self, vpn: int, owner_name: str = "", mapcount: int = 1):
        self.page_id: int = next(_page_ids)
        self.vpn = vpn
        self.owner_name = owner_name
        #: Address spaces mirroring this page's residency (see ``resident``).
        self._spaces: tuple = ()
        self._resident = True
        self.dirty = False
        self.referenced = False
        self.mapcount = mapcount
        #: PTE contents while swapped out (None when resident).
        self.swap_entry: Optional["SwapEntry"] = None
        #: Canvas: entry ID remembered in struct page (§5.1 reservation).
        self.reserved_entry: Optional["SwapEntry"] = None
        self.in_swap_cache = False
        #: Page lock held while swap I/O is outstanding.
        self.locked = False
        self.state = PageState.NEW
        self.last_access_us = 0.0
        #: Consecutive LRU-head scans in which this page appeared (§5.1).
        self.hot_score = 0
        #: True if the page currently in the swap cache arrived via prefetch.
        self.prefetched = False
        self.prefetched_at_us = 0.0
        #: Timestamp written when a prefetch for this page entered a VQP
        #: (§5.3 stale-prefetch detection); None when no prefetch pending.
        self.prefetch_timestamp_us: Optional[float] = None

    @property
    def resident(self) -> bool:
        return self._resident

    @resident.setter
    def resident(self, value: bool) -> None:
        """Flip residency, keeping every mapping space's O(1) residency
        map (the batched fast path's classification array) in sync."""
        self._resident = value
        entry = self if value else None
        for space in self._spaces:
            space.resident_map[self.vpn] = entry

    def attach_space(self, space) -> None:
        """Register an address space whose residency map mirrors this page."""
        self._spaces = self._spaces + (space,)

    @property
    def shared(self) -> bool:
        """Shared pages (mapcount > 1) must use the global swap path (§4)."""
        return self.mapcount > 1

    @property
    def has_reservation(self) -> bool:
        return self.reserved_entry is not None

    def touch(self, now_us: float, write: bool = False) -> None:
        """Record an access: set referenced (and dirty for writes)."""
        self.referenced = True
        self.last_access_us = now_us
        if write:
            self.dirty = True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Page(vpn={self.vpn:#x}, owner={self.owner_name!r}, "
            f"resident={self.resident}, state={self.state.value})"
        )
