"""Local-memory frame accounting.

A :class:`FramePool` models the physical-frame budget a cgroup grants an
application (its "local memory" in the paper's 25% / 50% configurations).
Faulted-in pages and swap-cache pages are charged here; eviction and
swap-cache shrinking uncharge.  Watermarks trigger reclaim the way kernel
zone watermarks wake kswapd.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["FramePoolStats", "FramePool"]


@dataclass
class FramePoolStats:
    charges: int = 0
    uncharges: int = 0
    failed_charges: int = 0
    peak_used: int = 0


class FramePool:
    """A bounded pool of physical page frames."""

    def __init__(
        self,
        capacity_pages: int,
        name: str = "frames",
        low_watermark_fraction: float = 0.90,
        high_watermark_fraction: float = 0.98,
    ):
        if capacity_pages <= 0:
            raise ValueError(f"frame pool needs capacity > 0, got {capacity_pages}")
        if not 0.0 < low_watermark_fraction <= high_watermark_fraction <= 1.0:
            raise ValueError("watermarks must satisfy 0 < low <= high <= 1")
        self.name = name
        self.capacity_pages = capacity_pages
        self.used = 0
        self.low_watermark = int(capacity_pages * low_watermark_fraction)
        self.high_watermark = int(capacity_pages * high_watermark_fraction)
        self.stats = FramePoolStats()

    @property
    def free(self) -> int:
        return self.capacity_pages - self.used

    @property
    def above_low_watermark(self) -> bool:
        """True once background reclaim should start."""
        return self.used >= self.low_watermark

    @property
    def above_high_watermark(self) -> bool:
        """True when allocations must reclaim synchronously."""
        return self.used >= self.high_watermark

    def try_charge(self, n_pages: int = 1) -> bool:
        """Charge ``n_pages`` frames; returns False (uncharged) on overcommit."""
        if n_pages < 0:
            raise ValueError(f"negative charge: {n_pages}")
        if self.used + n_pages > self.capacity_pages:
            self.stats.failed_charges += 1
            return False
        self.used += n_pages
        self.stats.charges += n_pages
        self.stats.peak_used = max(self.stats.peak_used, self.used)
        return True

    def uncharge(self, n_pages: int = 1) -> None:
        if n_pages < 0:
            raise ValueError(f"negative uncharge: {n_pages}")
        if n_pages > self.used:
            raise ValueError(
                f"{self.name}: uncharge {n_pages} exceeds used {self.used}"
            )
        self.used -= n_pages
        self.stats.uncharges += n_pages

    def reclaim_target(self) -> int:
        """How many frames reclaim should free to drop below the low mark."""
        return max(0, self.used - self.low_watermark)

    def __repr__(self) -> str:  # pragma: no cover
        return f"FramePool({self.name!r}, {self.used}/{self.capacity_pages})"
