"""Cgroups and per-application contexts.

The paper's experiments pin each application inside a cgroup with fixed
CPU and local-memory limits; Canvas extends cgroup with swap-partition,
swap-cache, and RDMA-bandwidth limits (§4).  :class:`CgroupConfig` holds
all of those knobs; :class:`AppContext` bundles the runtime state the
kernel keeps per application (address space, frame pool, LRU lists, CPU
cores, statistics).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.mem.address_space import AddressSpace
from repro.mem.frame_pool import FramePool
from repro.mem.lru import ActiveInactiveLRU, GenerationLRU
from repro.sim.engine import Engine
from repro.sim.resources import CoreSet

__all__ = ["CgroupConfig", "AppSwapStats", "AppContext"]


@dataclass
class CgroupConfig:
    """Static resource limits for one application."""

    name: str
    n_cores: int
    local_memory_pages: int
    #: Canvas: per-cgroup swap partition size (entries).  Baselines ignore
    #: this and use the shared partition.
    swap_partition_pages: Optional[int] = None
    #: Canvas: private swap cache budget, charged to local memory (§4).
    #: 32 MB default = 8192 pages.
    swap_cache_pages: int = 8192
    #: Canvas: weight for max-min fair RDMA scheduling (§5.3).  The paper
    #: sets weights proportional to swap-partition assignments.
    rdma_weight: float = 1.0

    def __post_init__(self) -> None:
        if self.n_cores <= 0:
            raise ValueError(f"{self.name}: need at least one core")
        if self.local_memory_pages <= 0:
            raise ValueError(f"{self.name}: need local memory")


@dataclass
class AppSwapStats:
    """Per-application counters maintained by the swap system."""

    accesses: int = 0
    faults: int = 0
    cache_hits: int = 0
    #: Cache hits that landed on a *prefetched* page (the numerator of
    #: the paper's prefetching-contribution metric, §6.4.2).
    prefetch_cache_hits: int = 0
    demand_swapins: int = 0
    prefetches_issued: int = 0
    prefetch_frames_denied: int = 0
    swapouts: int = 0
    clean_drops: int = 0
    direct_reclaims: int = 0
    kswapd_reclaims: int = 0
    #: Total thread time stalled inside handle_fault.
    fault_stall_us: float = 0.0
    #: Total thread time spent obtaining swap entries (Fig. 15).
    alloc_stall_us: float = 0.0
    #: Lock-free swap-outs served by a Canvas reservation (§5.1).
    reserved_swapouts: int = 0
    #: §5.3: stale prefetches dropped and re-issued as demand reads.
    prefetch_drops: int = 0
    #: Faults that had to wait on an in-flight prefetch.
    blocked_on_prefetch: int = 0
    #: Faults that re-mapped a page whose writeback was still in flight.
    writeback_rescues: int = 0
    #: Addresses forwarded to the application tier (§5.2).
    uffd_forwards: int = 0
    #: Fault-injection recovery accounting (zero on a healthy fabric).
    #: Error CQEs delivered to this cgroup by the NIC.
    error_cqes: int = 0
    #: Demand reads reissued after an error CQE.
    demand_retries: int = 0
    #: Writebacks reissued after an error CQE.
    writeback_retries: int = 0
    #: Speculative prefetches cancelled on an error CQE (never retried:
    #: a later fault demand-fetches the page instead).
    prefetches_cancelled: int = 0
    #: Thread time attributable to transport retransmission timeouts,
    #: summed over this cgroup's requests; subtracting it from
    #: ``fault_stall_us`` separates retry stalls from queueing stalls.
    retry_stall_us: float = 0.0

    @property
    def fault_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.faults / self.accesses

    @property
    def prefetch_contribution(self) -> float:
        """Faults served by prefetched pages over all faults (§6.4.2)."""
        if self.faults == 0:
            return 0.0
        return self.prefetch_cache_hits / self.faults

    @property
    def cache_hit_ratio(self) -> float:
        """All swap-cache hits (demand in-flight included) over faults."""
        if self.faults == 0:
            return 0.0
        return self.cache_hits / self.faults


class AppContext:
    """Everything the kernel tracks for one running application."""

    def __init__(self, engine: Engine, config: CgroupConfig, flat_state: bool = False):
        self.engine = engine
        self.config = config
        self.name = config.name
        self.space = AddressSpace(config.name)
        self.cores = CoreSet(engine, config.n_cores, name=f"{config.name}.cores")
        self.pool = FramePool(config.local_memory_pages, name=f"{config.name}.frames")
        #: Flat-state apps age pages with generation stamps over the
        #: space's VPN-indexed arrays (enables the vectorized resident
        #: fast path); the default keeps the linked active/inactive lists.
        if flat_state:
            self.lru = GenerationLRU(self.space, name=config.name)
        else:
            self.lru = ActiveInactiveLRU(name=config.name)
        self.stats = AppSwapStats()
        #: Set by the harness when the workload finishes; the app's
        #: completion time is the headline metric in Figs. 2, 9-12.
        self.finished_at_us: Optional[float] = None
        self.started_at_us: float = 0.0
        #: Writebacks in flight for this app; kswapd throttles on it so a
        #: slow write path cannot pin every frame in unfinished
        #: writebacks.  Invariants: never negative, and back to zero once
        #: the swap system drains (see tests/test_swap_invariants.py).
        self.outstanding_writebacks: int = 0
        #: Prefetch reads in flight, maintained incrementally so the
        #: issue path does not rescan every in-flight request.  Same
        #: invariants as ``outstanding_writebacks``.
        self.inflight_prefetches: int = 0
        #: Slot for runtime models (e.g. the JVM of §5.2) to attach to.
        self.runtime: Optional[object] = None

    @property
    def completion_time_us(self) -> Optional[float]:
        if self.finished_at_us is None:
            return None
        return self.finished_at_us - self.started_at_us

    def __repr__(self) -> str:  # pragma: no cover
        return f"AppContext({self.name!r}, cores={self.config.n_cores})"
