"""The swap system: fault handling, reclaim, writeback, prefetch issuing.

:class:`BaseSwapSystem` implements the remote-access data path of §2:

* page fault → swap-cache lookup → demand swap-in over RDMA,
* prefetch issuing driven by a pluggable prefetcher,
* cgroup frame accounting with direct reclaim and a kswapd analogue,
* eviction → swap-entry allocation (the contended step) → RDMA writeback.

Subclasses configure *policy* through hooks: which swap cache and
allocator serve an app (shared in Linux, per-cgroup in Canvas), how RDMA
requests are routed (single QP, Fastswap's sync/async split, Canvas's
VQP + two-dimensional scheduler), what happens on map-in/eviction (entry
keeping vs Canvas's reservation FSM), and how a thread waits on an
in-flight prefetch (Canvas's stale-prefetch drop).

Frame-accounting invariant: every physically present page — resident or
sitting in a swap cache — holds exactly one charged frame in its owner's
pool.  Charges happen when a swap-in is issued or a page is faulted in;
uncharges happen when a swap-cache page is released or a writeback
completes and drops the page.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from time import perf_counter
from typing import Dict, Generator, List, Optional

import numpy as np

from repro.kernel.cgroup import AppContext
from repro.kernel.telemetry import Telemetry
from repro.mem.page import Page
from repro.obs.trace import (
    APP_REGISTER,
    APP_UNREGISTER,
    BATCH_ENTER,
    BATCH_EXIT,
    CLEAN_DROP,
    DEMAND_ISSUE,
    DEMAND_RETRY,
    EVICT,
    FAULT_BEGIN,
    FAULT_END,
    FAULT_GROUP_BEGIN,
    FAULT_GROUP_END,
    FAULT_PARK,
    FAULT_WAKE,
    PF_CANCEL,
    RECLAIM_GROUP_BEGIN,
    RECLAIM_GROUP_END,
    RECLAIM_LANE,
    PF_HIT,
    PF_ISSUE,
    PF_LATE,
    PF_PROPOSE,
    REQ_ACQUIRE,
    WB_COMPLETE,
    WB_ISSUE,
    WB_RESCUE,
    WB_RETRY,
)
from repro.prefetch.base import Prefetcher
from repro.rdma.message import RdmaOp, RdmaRequest, RequestKind
from repro.rdma.nic import RNIC, PhysicalQP
from repro.sim.engine import DEBUG_EVENT_NAMES, Engine, Event
from repro.swap.allocator import EntryAllocator, FreeListAllocator
from repro.swap.entry import SwapEntry
from repro.swap.partition import SwapPartition
from repro.swap.swap_cache import SwapCache

__all__ = [
    "SwapSystemConfig",
    "BaseSwapSystem",
    "LinuxSwapSystem",
    "BATCH_FLUSH",
    "BATCH_FAULT",
    "BATCH_END",
]

#: ``consume_batch`` outcomes: the consumed run ended because the CPU
#: accumulator crossed the flush threshold, because the next access
#: faults, or because the batch is exhausted.
BATCH_FLUSH, BATCH_FAULT, BATCH_END = 0, 1, 2


@dataclass
class SwapSystemConfig:
    """Timing and policy knobs shared by all swap-system variants."""

    #: Trap + PTE walk + swap-cache lookup cost per fault.
    fault_overhead_us: float = 1.5
    #: Cost of mapping a cached page into the page table.
    map_in_cost_us: float = 0.8
    #: Linux 5.5 keeps swap entries of clean pages so they can be dropped
    #: without writeback (Appendix B).
    entry_keeping: bool = True
    #: Entries are only kept while partition occupancy is below this
    #: threshold (Appendix B: "entry keeping starts when the percentage
    #: of available swap entries exceeds this threshold").
    entry_keep_max_occupancy: float = 0.5
    #: Background reclaim batch (pages evicted per kswapd round).  Small
    #: batches keep eviction windows short: large batches pile up on the
    #: allocator lock and lengthen the window in which a warm page can be
    #: re-faulted mid-writeback.
    kswapd_batch: int = 4
    #: Upper bound on outstanding prefetch reads per application.
    max_inflight_prefetches: int = 64
    #: Swap cache capacity for the shared baseline cache (pages).
    shared_cache_pages: int = 16384
    #: Kernel-level reissues of one logical transfer after error CQEs
    #: (each reissue gets a fresh transport retry budget).  Past this the
    #: fault is surfaced as a hard error — the fabric is persistently
    #: failing and graceful degradation is no longer meaningful.
    max_kernel_retries: int = 16
    #: Coalesced fault admission: when a batch truncates at a miss, the
    #: whole run of consecutive non-resident accesses for that thread is
    #: admitted as one *fault group* (``handle_fault_group``) instead of
    #: bouncing through the driver per fault.  Pure host-cost
    #: optimization — yield sequences, timestamps, and digests are
    #: bit-identical with it off (the ungrouped oracle).
    grouped_faults: bool = True
    #: Grouped reclaim: kswapd hands each round's batch to one
    #: ``_evict_many`` call (one revalidated victim-selection pass per
    #: sub-batch, one generator for the whole batch, doorbell-deferred
    #: writeback egress) instead of one ``_evict_one`` sub-generator per
    #: page.  Applies to flat-state (generation-LRU) apps; the
    #: write-side twin of ``grouped_faults`` and, like it, a pure
    #: host-cost optimization — digest-identical to the serial oracle
    #: kept behind ``False``.
    grouped_reclaim: bool = True


def _needs_writeback(page: Page) -> bool:
    """Batch-cut predicate for grouped reclaim victim selection.

    A clean victim with a kept swap entry is dropped instantaneously (no
    yields), so any run of them plus the *first* writeback-needing
    victim — dirty, or never swapped out — can be selected up front
    without changing what the serial loop would have picked.  That first
    writeback member yields in entry allocation, after which the LRU may
    have been mutated by concurrent faults, so victims beyond it must be
    selected after the yield: ``select_victims`` cuts the batch here.
    """
    return page.dirty or page.swap_entry is None


class BaseSwapSystem:
    """Mechanism layer of the swap path; policies come from subclasses."""

    def __init__(
        self,
        engine: Engine,
        nic: RNIC,
        telemetry: Optional[Telemetry] = None,
        config: Optional[SwapSystemConfig] = None,
        name: str = "swap",
    ):
        self.engine = engine
        self.nic = nic
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.config = config if config is not None else SwapSystemConfig()
        self.name = name
        self.apps: Dict[str, AppContext] = {}
        self._inflight: Dict[Page, Event] = {}
        self._inflight_req: Dict[Page, RdmaRequest] = {}
        self._kswapd_kick: Dict[str, Optional[Event]] = {}
        #: Reusable kswapd park event per app (reset after each wakeup).
        self._kswapd_park: Dict[str, Event] = {}
        #: kswapd Process handles, so teardown can wait for a clean exit.
        self._kswapd_proc: Dict[str, object] = {}
        #: Teardown flags: ``_kswapd_loop`` re-checks its app's flag at
        #: the top of every round and exits once it turns True.  A plain
        #: host-side dict read, so runs that never unregister stay
        #: bit-identical to the flagless loop.
        self._kswapd_stop: Dict[str, bool] = {}
        #: Free list of recycled RdmaRequests (and their completion
        #: events); refilled via the engine's immediate lane strictly
        #: after each completion dispatch or dropped-request unwind.
        self._request_pool: List[RdmaRequest] = []
        #: Observers called as fn(app_name, thread_id, vpn, start_us,
        #: end_us) when a fault finishes (tracing / analysis hooks).
        self.fault_hooks: list = []
        #: Optional :class:`repro.faults.FaultPlan`, attached by the
        #: harness alongside ``nic.fault_plan``; subsystems the kernel
        #: builds later (e.g. demand-driven remote memory) read it here.
        self.fault_plan = None
        #: Optional :class:`repro.cluster.Rack` (multi-server fabric),
        #: attached by the harness.  The error-CQE hooks consult it to
        #: rebind reads/writebacks whose home server died; None keeps
        #: the single-endpoint code paths untouched.
        self.rack = None
        #: Optional :class:`repro.obs.TraceBuffer`; attach via
        #: :meth:`attach_tracer`.  Every tracepoint in the swap path is
        #: one ``is not None`` check while this stays unset, and no
        #: tracepoint touches engine scheduling or RNG state, so tracing
        #: never changes simulated results.
        self.trace = None
        self.nic.completion_hooks.append(self.telemetry.on_rdma_completion)

    def attach_tracer(self, tracer) -> None:
        """Wire a :class:`repro.obs.TraceBuffer` through the stack.

        Covers the NIC, the swap-entry allocator(s), and the per-app
        LRUs; apps registered after this call pick the tracer up in
        :meth:`register_app`.
        """
        self.trace = tracer
        self.nic.tracer = tracer
        self._attach_tracer_extra(tracer)
        if self.rack is not None:
            self.rack.tracer = tracer
            self.rack.trace = tracer
        for app in self.apps.values():
            app.lru.tracer = tracer

    def _attach_tracer_extra(self, tracer) -> None:
        """Subclass hook: propagate the tracer into subsystem objects."""

    # ------------------------------------------------------------------
    # Policy hooks (overridden by Linux / Fastswap / Canvas variants)
    # ------------------------------------------------------------------

    def _setup_app(self, app: AppContext) -> None:
        """Create/bind per-app swap resources.  Subclass responsibility."""
        raise NotImplementedError

    def _cache_for(self, app: AppContext, page: Page) -> SwapCache:
        raise NotImplementedError

    def _allocator_for(self, app: AppContext, page: Page) -> EntryAllocator:
        raise NotImplementedError

    def _prefetcher_for(self, app: AppContext) -> Prefetcher:
        raise NotImplementedError

    def _submit_read(self, app: AppContext, request: RdmaRequest) -> None:
        raise NotImplementedError

    def _submit_read_many(
        self, app: AppContext, requests: List[RdmaRequest]
    ) -> None:
        """Doorbell hook: submit a batch of reads queued at one instant.

        Base behaviour is one submit per request; systems with a batched
        enqueue (Linux → ``RNIC.submit_many``, Canvas → the scheduler's
        ``submit_many``) override this to ring one doorbell.  Callers
        must only batch requests acquired within one atomic section (no
        intervening yields), which is what makes the deferral invisible.
        """
        for request in requests:
            self._submit_read(app, request)

    def _submit_write(self, app: AppContext, request: RdmaRequest) -> None:
        raise NotImplementedError

    def _submit_write_many(
        self, app: AppContext, requests: List[RdmaRequest]
    ) -> None:
        """Doorbell hook: submit a batch of writes queued at one instant.

        The egress twin of :meth:`_submit_read_many`, used by grouped
        reclaim to flush each round's deferred writebacks with one NIC
        kick.  The same atomic-section contract applies: all requests
        must have been acquired with no intervening yields, and the
        flush must happen before the caller's next yield so the kick
        keeps its FIFO position in the engine's immediate lane.  Fault
        verdicts stay per-request inside the NIC/scheduler, so grouped
        submission cannot blur writeback-error handling.
        """
        for request in requests:
            self._submit_write(app, request)

    # ------------------------------------------------------------------
    # Request pooling
    # ------------------------------------------------------------------

    def _acquire_request(
        self,
        op: RdmaOp,
        kind: RequestKind,
        app_name: str,
        entry: SwapEntry,
        page: Page,
    ) -> RdmaRequest:
        """A pooled request with its completion event armed for dispatch.

        The request object itself is the completion callback (bound
        dispatch, no per-request lambda); it occupies the same callback
        slot the old closure did, so waiters subscribing later still run
        after the kernel-side completion handler.
        """
        pool = self._request_pool
        if pool:
            request = pool.pop()
            request.reuse(op, kind, app_name, entry, page)
        else:
            request = RdmaRequest(
                op, kind, app_name, entry, page, completion=Event(self.engine)
            )
            request.owner = self
        request.completion.add_callback(request)
        if self.trace is not None:
            self.trace.emit(
                REQ_ACQUIRE, app_name, 0, request.pool_serial, request.request_id
            )
        return request

    def _request_completed(self, request: RdmaRequest) -> None:
        """Bound completion dispatch (invoked via ``request.__call__``)."""
        app = self.apps[request.app_name]
        if request.retry_stall_us > 0.0:
            # Transport retransmissions delayed this completion; fold the
            # backoff time into the cgroup's retry-stall account so
            # reports can separate it from queueing stalls.
            app.stats.retry_stall_us += request.retry_stall_us
        if request.error:
            app.stats.error_cqes += 1
            if request.op is RdmaOp.WRITE:
                self._on_writeback_error(app, request)
            else:
                self._on_read_error(app, request)
            return
        if request.op is RdmaOp.WRITE:
            self._on_writeback_complete(app, request)
        else:
            self._on_read_complete(app, request)

    def _alloc_entry(
        self, app: AppContext, page: Page, core_id: int
    ) -> Generator:
        """Obtain a swap entry for a swap-out (the contended step)."""
        allocator = self._allocator_for(app, page)
        start = self.engine.now
        entry = yield from allocator.allocate(core_id)
        app.stats.alloc_stall_us += self.engine.now - start
        self.telemetry.alloc_rate(app.name).record(self.engine.now)
        return entry

    def _obtain_writeback_entry(
        self, app: AppContext, page: Page, core_id: int
    ) -> Generator:
        """Entry used to write ``page`` out.

        Base behaviour: a dirty page with a stale kept entry releases it
        first ("once a page becomes dirty, its swap entry must be
        immediately released", Appendix B), then allocates a fresh one
        through the lock-protected path.  Canvas overrides this to reuse
        the page's reserved entry lock-free (§5.1).
        """
        if page.swap_entry is not None:
            self._release_entry(app, page, page.swap_entry)
            page.swap_entry = None
        entry = yield from self._alloc_entry(app, page, core_id)
        return entry

    def _release_entry(self, app: AppContext, page: Page, entry: SwapEntry) -> None:
        self._allocator_for(app, page).free(entry)

    def _on_mapped(self, app: AppContext, page: Page) -> None:
        """Entry policy when a page is mapped in from the swap cache."""
        entry = page.swap_entry
        if entry is None:
            return
        if self.config.entry_keeping:
            allocator = self._allocator_for(app, page)
            if allocator.occupancy < self.config.entry_keep_max_occupancy:
                return  # keep the entry: a clean re-eviction is free
        self._release_entry(app, page, entry)
        page.swap_entry = None

    def _on_evicted(self, app: AppContext, page: Page) -> None:
        """State hook at eviction time (Canvas FSM uses this)."""

    def _post_prefetch_hook(
        self,
        app: AppContext,
        thread_id: int,
        vpn: int,
        issued: int,
        prefetched_hit: bool = False,
    ) -> None:
        """Called after kernel-tier prefetching (Canvas two-tier uses it)."""

    def _wait_inflight(
        self, app: AppContext, page: Page, thread_id: int, event: Event
    ) -> Generator:
        """Block until the page's outstanding I/O finishes."""
        yield event

    # ------------------------------------------------------------------
    # Registration and setup
    # ------------------------------------------------------------------

    def register_app(self, app: AppContext) -> None:
        if app.name in self.apps:
            raise ValueError(f"app {app.name!r} already registered")
        self.apps[app.name] = app
        self._setup_app(app)
        if self.trace is not None:
            app.lru.tracer = self.trace
        # Teach the app's prefetcher the valid address ranges so stride
        # proposals can be clamped to the faulting VMA (readahead never
        # crosses a mapping boundary).
        prefetcher = self._prefetcher_for(app)
        if prefetcher is not None:
            for vma in app.space.vmas:
                prefetcher.note_region(app.name, vma.start_vpn, vma.end_vpn)
        self._kswapd_kick[app.name] = None
        self._kswapd_park[app.name] = Event(self.engine, f"kswapd.{app.name}.kick")
        self._kswapd_stop[app.name] = False
        self._kswapd_proc[app.name] = self.engine.spawn(
            self._kswapd_loop(app), name=f"kswapd.{app.name}"
        )
        if self.trace is not None:
            self.trace.emit(APP_REGISTER, app.name, 0, len(app.space.pages), 0)

    def prepopulate(self, app: AppContext, resident_fraction: float) -> None:
        """Install the initial memory layout: the first ``resident_fraction``
        of each app's pages are local; the rest start swapped out with
        entries already holding their data (setup costs no simulated time).
        """
        pages = [app.space.pages[vpn] for vpn in sorted(app.space.pages)]
        n_resident = int(len(pages) * resident_fraction)
        n_resident = min(n_resident, app.pool.capacity_pages)
        for index, page in enumerate(pages):
            if index < n_resident:
                if not app.pool.try_charge(1):
                    raise RuntimeError(f"{app.name}: local memory too small")
                page.resident = True
                app.lru.insert(page)
            else:
                page.resident = False
                allocator = self._allocator_for(app, page)
                entry = allocator.take_free_untimed()
                entry.stored_vpn = page.vpn
                page.swap_entry = entry

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------

    def unregister_app(self, app: AppContext) -> Generator:
        """Tear an application down; drive with ``yield from`` in a process.

        The mirror of :meth:`register_app`, run after the app's threads
        have finished: stop its kswapd, drain every in-flight transfer
        it still owns, then sweep its pages — releasing swap-cache
        slots, uncharging frames, and freeing swap entries back through
        the allocator (rack-aware: condemned entries retire inside
        ``free``).  Subclasses extend the synchronous sweep via
        :meth:`_teardown_app`.  kswapd is never interrupted mid-round —
        it may hold the allocator lock — so shutdown raises the stop
        flag, kicks the park, and waits for the loop's clean exit.

        On return the app has no residual frame charge, no live swap
        entries, and no waiter parked on its pages; a leak raises
        ``RuntimeError`` rather than lingering silently.
        """
        name = app.name
        if self.apps.get(name) is not app:
            raise ValueError(f"app {name!r} is not registered")
        self._kswapd_stop[name] = True
        kick = self._kswapd_kick.get(name)
        if kick is not None and not kick.fired:
            kick.succeed()
        proc = self._kswapd_proc.get(name)
        if proc is not None and not proc.fired:
            yield proc
        # Drain barrier: every writeback, prefetch, and demand read the
        # app still owns must complete (or error out and unwind) before
        # the sweep frees the entries they reference.
        while (
            app.outstanding_writebacks > 0
            or app.inflight_prefetches > 0
            or any(page.owner_name == name for page in self._inflight)
        ):
            yield self.engine.sleep(10.0)
        freed = self._teardown_app(app)
        self._kswapd_stop.pop(name, None)
        self._kswapd_proc.pop(name, None)
        self._kswapd_kick.pop(name, None)
        self._kswapd_park.pop(name, None)
        del self.apps[name]
        if self.trace is not None:
            self.trace.emit(
                APP_UNREGISTER, name, 0, len(app.space.pages), freed
            )
        if app.pool.used != 0:
            raise RuntimeError(
                f"{name}: {app.pool.used} frame(s) still charged after teardown"
            )

    def _teardown_app(self, app: AppContext) -> int:
        """Synchronous teardown sweep (runs after the drain barrier).

        Returns the number of swap entries freed.  Subclasses extend it
        (Canvas: reservation release, scheduler/rebalancer/rack
        unregistration) and must call ``super()._teardown_app(app)``
        while their per-app policy state is still reachable, because
        the sweep dispatches through ``_cache_for``/``_release_entry``.

        Pages owned by another app (shared mappings faulted here) are
        left untouched: their charges and entries belong to the owner,
        which releases them at its own teardown.
        """
        name = app.name
        prefetcher = self._prefetcher_for(app)
        if prefetcher is not None:
            prefetcher.forget_app(name)
        freed = 0
        for page in app.space.pages.values():
            if page.owner_name != name:
                continue
            event = self._inflight.pop(page, None)
            if event is not None and not event.fired:
                event.succeed()  # wake stale waiters; I/O already drained
            self._inflight_req.pop(page, None)
            if page.in_swap_cache and page.swap_entry is not None:
                cache = self._cache_for(app, page)
                if cache.discard(page.swap_entry) is not None:
                    app.pool.uncharge(1)
            if page.resident:
                app.lru.discard(page)
                page.resident = False
                app.pool.uncharge(1)
            entry = page.swap_entry
            if entry is not None:
                if entry.allocated:
                    self._release_entry(app, page, entry)
                    freed += 1
                page.swap_entry = None
            page.locked = False
            page.prefetched = False
            page.prefetch_timestamp_us = None
        return freed

    # ------------------------------------------------------------------
    # Access fast path
    # ------------------------------------------------------------------

    def access_is_fast(self, app: AppContext, page: Page) -> bool:
        """True when the access needs no fault handling at all."""
        return page.resident

    def note_access(self, app: AppContext, page: Page, write: bool) -> None:
        page.touch(self.engine.now, write)
        app.lru.note_access(page)

    def consume_batch(
        self,
        app: AppContext,
        batch,
        start: int,
        pending_cpu: float,
        flush_us: float,
    ):
        """Consume a run of resident accesses from ``batch[start:]``.

        Returns ``(next_index, pending_cpu, outcome)``.  The engine is
        frozen between the driver's yields, so every access in the run
        sees the same simulated instant; the consume core performs
        exactly the per-access side effects the scalar path would
        (access counting, referenced/dirty bits, access timestamps, LRU
        promotion) without a generator round-trip per access, and its
        CPU accumulation is bit-identical to left-to-right Python float
        adds.

        * ``BATCH_FLUSH``: the access at ``next_index - 1`` pushed
          ``pending_cpu`` past ``flush_us``; the caller must execute it.
        * ``BATCH_FAULT``: the access at ``next_index`` is not resident.
          It is already counted and its CPU is in ``pending_cpu`` (the
          scalar path flushes the faulting access's CPU before the fault);
          the caller runs ``handle_fault`` for it.
        * ``BATCH_END``: the batch is exhausted.

        Apps on the generation-stamp LRU (``lru.flat``) whose flag
        arrays cover every mapped page take the vectorized core —
        classification, CPU accumulation, and run side effects as a
        handful of numpy ops; everything else takes the per-page scan.
        """
        if app.lru.flat and not app.space.has_foreign_pages:
            return self._consume_batch_flat(app, batch, start, pending_cpu, flush_us, None)
        return self._consume_batch_scan(app, batch, start, pending_cpu, flush_us, None)

    def consume_batch_profiled(
        self,
        app: AppContext,
        batch,
        start: int,
        pending_cpu: float,
        flush_us: float,
        profiler,
    ):
        """Profiling twin of :meth:`consume_batch`: identical returns and
        side effects (same consume cores), but classification/clock
        advance and LRU/page maintenance are timed separately so the
        profiler can attribute them individually.
        """
        if app.lru.flat and not app.space.has_foreign_pages:
            return self._consume_batch_flat(app, batch, start, pending_cpu, flush_us, profiler)
        return self._consume_batch_scan(app, batch, start, pending_cpu, flush_us, profiler)

    def _consume_batch_flat(
        self,
        app: AppContext,
        batch,
        start: int,
        pending_cpu: float,
        flush_us: float,
        profiler,
    ):
        """Vectorized consume core over the space's flat VPN-indexed arrays.

        One residency gather classifies the whole tail; ``np.add.accumulate``
        reproduces the scalar path's left-to-right float adds bit-for-bit
        (verified: binary summation is not used for accumulate), so
        ``pending_cpu``, the flush crossing, and the fault/flush tie-break
        all match the per-page scan exactly.  Run side effects are three
        scatters plus one stamped LRU bulk-promote.
        """
        if profiler is not None:
            t0 = perf_counter()
        space = app.space
        n = len(batch)
        if start >= n:  # defensive: driver never calls on an exhausted batch
            return n, pending_cpu, BATCH_END
        tr = self.trace
        if tr is not None:
            tr.emit(BATCH_ENTER, app.name, 0, start, n)
        varr = batch.vpn_array
        cpu = batch.constant_cpu
        resident_bits = space.resident_bits
        # Fault-storm shortcut: when the very first access misses — the
        # common case while a pressured app thrashes — classification
        # degenerates to one scalar residency read and one float add
        # (which even a same-index flush crossing loses on the
        # tie-break), with no run side effects at all.
        if not resident_bits[varr[start]]:
            if tr is not None:
                tr.emit(BATCH_EXIT, app.name, 0, 0, BATCH_FAULT)
            first_cpu = cpu if cpu is not None else float(batch.cpu_array[start])
            pending_cpu = pending_cpu + first_cpu
            app.stats.accesses += 1
            if profiler is not None:
                profiler.add("fast_path", perf_counter() - t0)
            return start, pending_cpu, BATCH_FAULT
        v = varr[start:]
        res = resident_bits[v]
        m = int(res.argmin())
        fault_rel = -1 if res[m] else m
        remaining = n - start
        # Only accesses up to (and including) the fault can matter: a
        # flush crossing past the fault never wins the tie-break, and
        # accumulate over a prefix is bit-identical to the same prefix of
        # the full accumulate.  This keeps a fault 3 accesses in from
        # paying for a 1,024-element scan.
        limit = remaining if fault_rel < 0 else fault_rel + 1
        if cpu is not None:
            seq = np.full(limit + 1, cpu, dtype=np.float64)
        else:
            seq = np.empty(limit + 1, dtype=np.float64)
            seq[1:] = batch.cpu_array[start : start + limit]
        seq[0] = pending_cpu
        acc = np.add.accumulate(seq)
        ge = acc[1:] >= flush_us
        flush_rel = int(ge.argmax()) if ge.any() else -1
        # Tie-break parity with the scalar scan: the faulting access wins
        # when it sits at or before the flush crossing.
        if fault_rel >= 0 and (flush_rel < 0 or fault_rel <= flush_rel):
            run_len = fault_rel
            end = start + fault_rel
            # The faulting access's CPU is flushed before the fault.
            pending_cpu = float(acc[fault_rel + 1])
            outcome = BATCH_FAULT
        elif flush_rel >= 0:
            run_len = flush_rel + 1
            end = start + run_len
            pending_cpu = float(acc[run_len])
            outcome = BATCH_FLUSH
        else:
            run_len = remaining
            end = n
            pending_cpu = float(acc[-1])
            outcome = BATCH_END
        if profiler is not None:
            t1 = perf_counter()
            profiler.add("fast_path", t1 - t0)
        # Side effects for the resident run [start, end): referenced +
        # timestamp scatters, bulk LRU promote (duplicate VPNs resolve
        # last-write-wins, matching sequential per-access stamping), and
        # dirty bits for the run's write positions.  The faulting access,
        # if any, sits at ``end`` and is dirtied by the driver after the
        # fault resolves.
        if run_len:
            rv = v[:run_len]
            space.referenced_bits[rv] = True
            space.last_access_arr[rv] = self.engine.now
            app.lru.note_access_run(rv)
            wp = batch.write_pos_array
            if len(wp):
                lo = int(np.searchsorted(wp, start, side="left"))
                hi = int(np.searchsorted(wp, end, side="left"))
                if hi > lo:
                    space.dirty_bits[varr[wp[lo:hi]]] = True
        app.stats.accesses += run_len + (1 if outcome == BATCH_FAULT else 0)
        if tr is not None:
            tr.emit(BATCH_EXIT, app.name, 0, run_len, outcome)
        if profiler is not None:
            profiler.add("lru", perf_counter() - t1)
        return end, pending_cpu, outcome

    def _consume_batch_scan(
        self,
        app: AppContext,
        batch,
        start: int,
        pending_cpu: float,
        flush_us: float,
        profiler,
    ):
        """Per-page consume core: classification pass, then side effects.

        Serves linked-LRU apps and flat apps with foreign pages (shared
        mappings whose flag home is another space).  The classification
        pass uses the exact float-add sequence the one-pass scalar loop
        would, so ``pending_cpu`` stays bit-identical; the side-effect
        pass applies the same per-page updates afterwards (ordering
        between the passes is immaterial — residency is frozen within a
        consume call and flags never feed back into classification).
        """
        if profiler is not None:
            t0 = perf_counter()
        vpn_list = batch.vpn_list
        # resident_map holds the page object (or None): classification
        # and page fetch are one flat list index.
        resident = app.space.resident_map
        n = len(vpn_list)
        end = n
        outcome = BATCH_END
        cpu = batch.constant_cpu
        if cpu is not None:
            # Uniform per-access cost (the common case).  The flush
            # crossing depends only on (pending_cpu, cpu, flush_us), so
            # it is found up front with bare sequential float adds —
            # bit-identical to accumulating inside the loop.
            steps = 0
            remaining = n - start
            tmp = pending_cpu
            while steps < remaining:
                tmp += cpu
                steps += 1
                if tmp >= flush_us:
                    end = start + steps
                    outcome = BATCH_FLUSH
                    break
            fault_vpn = -1
            for vpn in vpn_list[start : start + steps]:
                if resident[vpn] is None:
                    fault_vpn = vpn
                    break
            if fault_vpn < 0:
                pending_cpu = tmp
            else:
                # Residency is frozen within a consume call, so the
                # faulting access is the first occurrence of its VPN at
                # or after ``start``.  Replay the adds up to and
                # including it so pending_cpu keeps the scalar path's
                # exact accumulation sequence.
                end = vpn_list.index(fault_vpn, start)
                outcome = BATCH_FAULT
                for _ in range(end - start + 1):
                    pending_cpu += cpu
        else:
            cpu_list = batch.cpu_list
            for i in range(start, n):
                if resident[vpn_list[i]] is None:
                    pending_cpu += cpu_list[i]
                    end = i
                    outcome = BATCH_FAULT
                    break
                pending_cpu += cpu_list[i]
                if pending_cpu >= flush_us:
                    end = i + 1
                    outcome = BATCH_FLUSH
                    break
        if profiler is not None:
            t1 = perf_counter()
            profiler.add("fast_path", t1 - t0)
        # Side effects for the resident run [start, end).
        now = self.engine.now
        lru = app.lru
        note = lru.note_access
        if lru.flat:
            for vpn in vpn_list[start:end]:
                page = resident[vpn]
                page.referenced = True
                page.last_access_us = now
                note(page)
        else:
            # The common linked-LRU case (page already active: refresh
            # its position) is inlined as a single dict pop + re-insert;
            # only the rare inactive->active promotion pays for the
            # note_access call.
            active = lru.active._pages
            active_pop = active.pop
            for vpn in vpn_list[start:end]:
                page = resident[vpn]
                page.referenced = True
                page.last_access_us = now
                try:
                    active[page] = active_pop(page)
                except KeyError:
                    note(page)
        # Dirty bits for the consumed resident run, applied from the
        # batch's precomputed write positions instead of a per-access
        # check (the faulting access, if any, sits at ``end`` and is
        # dirtied by the driver after the fault resolves).
        writes = batch.write_positions
        if writes:
            for k in writes[bisect_left(writes, start):]:
                if k >= end:
                    break
                resident[vpn_list[k]].dirty = True
        app.stats.accesses += end - start + (1 if outcome == BATCH_FAULT else 0)
        if profiler is not None:
            profiler.add("lru", perf_counter() - t1)
        return end, pending_cpu, outcome

    # ------------------------------------------------------------------
    # Fault handling
    # ------------------------------------------------------------------

    def handle_fault(
        self, app: AppContext, thread_id: int, vpn: int, write: bool
    ) -> Generator:
        """The §2 fault path.  Yields until the page is mapped.

        This is the scalar oracle: :meth:`handle_fault_group` inlines an
        exact copy of the resolution loop below (every yield of a fault
        resumes through one less generator frame that way, and faults
        dominate the resumes of a pressured co-run).  Any change to the
        loop must be mirrored there; the grouped-vs-ungrouped digest
        parity tests hold the two copies to bit-identical behavior.
        """
        engine = self.engine
        stats = app.stats
        page = app.space.page(vpn)
        stats.faults += 1
        start = engine.now
        tr = self.trace
        if tr is not None:
            tr.emit(FAULT_BEGIN, app.name, thread_id, vpn, 1 if write else 0)
        yield engine.sleep(self.config.fault_overhead_us)
        cache = self._cache_for(app, page)
        first_check = True
        while not page.resident:
            entry = page.swap_entry
            if first_check:
                if entry is None:
                    cached = None
                elif not page.in_swap_cache:
                    # The flag mirrors cache membership exactly, so a
                    # miss needs no dict probe; count it as lookup()
                    # would have.
                    cache.stats.lookups += 1
                    cached = None
                else:
                    cached = cache.lookup(entry)
                if cached is not None:
                    stats.cache_hits += 1
                    if page.prefetched:
                        # A prefetched page only *contributes* if it is
                        # ready (unlocked) when the fault arrives; a late
                        # prefetch still blocks the thread (§3, Fig. 6).
                        # The flag is consumed here so one prefetched page
                        # counts at most one contribution hit, and its
                        # arrival-to-use gap feeds the §5.3 timeliness
                        # distribution.
                        if not page.locked:
                            stats.prefetch_cache_hits += 1
                            if tr is not None:
                                tr.emit(PF_HIT, app.name, thread_id, vpn)
                            self.telemetry.timeliness_hist(app.name).record(
                                engine.now - page.prefetched_at_us
                            )
                            page.prefetched = False
                        # swap_ra hit: the *prediction* was right either
                        # way, so feed positive effectiveness back and
                        # keep the readahead window going (Linux issues
                        # async readahead on ra hits).
                        self._issue_prefetches(
                            app, thread_id, vpn, prefetched_hit=True
                        )
                first_check = False
            else:
                cached = cache.peek(entry) if entry is not None else None

            inflight_req = self._inflight_req.get(page)
            writeback_rescue = (
                cached is not None
                and page.locked
                and inflight_req is not None
                and inflight_req.kind is RequestKind.SWAPOUT
            )
            if (cached is not None and not page.locked) or writeback_rescue:
                # Plain cache hit, or a page whose writeback is still in
                # flight: the data is local either way, so map it back in
                # (the write completes harmlessly; Linux reuses swap-cache
                # pages under writeback the same way).
                yield engine.sleep(self.config.map_in_cost_us)
                if page.resident:
                    break  # another waiter mapped it during the timeout
                if not page.in_swap_cache:
                    continue  # released during the timeout; re-fetch
                # Re-evaluate in-flight state: it may have changed during
                # the timeout (e.g. a new demand read was issued).
                current = self._inflight_req.get(page)
                rescuing = (
                    page.locked
                    and current is not None
                    and current.kind is RequestKind.SWAPOUT
                )
                if page.locked and not rescuing:
                    continue
                self._map_in(app, page, write)
                if rescuing:
                    stats.writeback_rescues += 1
                    if tr is not None:
                        tr.emit(WB_RESCUE, app.name, thread_id, vpn)
                    # Detach the in-flight writeback from the page so a
                    # later re-eviction can track its own I/O; its
                    # completion sees itself superseded and does nothing.
                    del self._inflight_req[page]
                    stale_event = self._inflight.pop(page, None)
                    if stale_event is not None and not stale_event.fired:
                        stale_event.succeed()
                break

            event = self._inflight.get(page)
            if event is not None:
                if page.prefetched:
                    stats.blocked_on_prefetch += 1
                    if tr is not None:
                        tr.emit(PF_LATE, app.name, thread_id, vpn)
                if tr is not None:
                    tr.emit(FAULT_PARK, app.name, thread_id, vpn)
                yield from self._wait_inflight(app, page, thread_id, event)
                if tr is not None:
                    tr.emit(FAULT_WAKE, app.name, thread_id, vpn)
                continue  # re-evaluate: mapped by writeback drop, cached, ...

            # Demand swap-in.
            stats.demand_swapins += 1
            if entry is None:
                raise RuntimeError(
                    f"{app.name}: vpn {vpn:#x} non-resident without swap entry"
                )
            event = Event(
                engine, f"read.{app.name}.{vpn:#x}" if DEBUG_EVENT_NAMES else ""
            )
            self._inflight[page] = event
            page.locked = True
            # Uncontended charge fast path: ``_charge_frames`` begins
            # with exactly this try_charge and ends with exactly this
            # watermark kick, so inlining the success case skips only
            # the throwaway generator.
            if app.pool.try_charge(1):
                if app.pool.above_low_watermark:
                    self._kick_kswapd(app)
            else:
                yield from self._charge_frames(app, 1, thread_id)
            cache.insert(entry, page, prefetched=False)
            request = self._acquire_request(
                RdmaOp.READ, RequestKind.DEMAND, app.name, entry, page
            )
            self._inflight_req[page] = request
            # §5.3: a demand request clears the entry's prefetch timestamp
            # so later faulting threads block instead of re-issuing.
            entry.timestamp_us = None
            if tr is not None:
                tr.emit(DEMAND_ISSUE, app.name, thread_id, vpn, request.request_id)
            self._submit_read(app, request)
            self._issue_prefetches(app, thread_id, vpn)
            if tr is not None:
                tr.emit(FAULT_PARK, app.name, thread_id, vpn)
            yield from self._wait_inflight(app, page, thread_id, event)
            if tr is not None:
                tr.emit(FAULT_WAKE, app.name, thread_id, vpn)
            # Loop: the completion unlocked the page; next pass maps it.
        stats.fault_stall_us += engine.now - start
        if tr is not None:
            tr.emit(FAULT_END, app.name, thread_id, vpn, engine.now - start)
        for hook in self.fault_hooks:
            hook(app.name, thread_id, vpn, start, engine.now)

    def handle_fault_group(
        self, app: AppContext, thread_id: int, batch, index: int, pending_cpu: float
    ) -> Generator:
        """Admit a run of consecutive non-resident accesses as one group.

        Called by the batched driver when ``consume_batch`` truncates at
        ``batch[index]``.  The group is an *admission* optimization, not
        an issue-order change: members resolve strictly one after
        another through an exact inline copy of :meth:`handle_fault`'s
        resolution loop (kept in lockstep with that scalar oracle), so
        every yield, timestamp, and counter matches the ungrouped driver
        loop (consume → flush → fault, per member) bit-for-bit.  What
        the group saves is the per-member trip back through the driver
        and the vectorized consume core: membership is one flat
        ``resident_map`` read per member against hoisted locals.

        Membership is dynamic — re-checked between members because a
        prefetch landing mid-group makes the next access resident (the
        group ends there; the driver's vectorized consume takes over),
        and a page evicted after admission simply faults as the serial
        path would.  Returns the next batch index via ``StopIteration``.
        """
        engine = self.engine
        stats = app.stats
        space = app.space
        resident_map = space.resident_map
        page_map = space.page_map
        execute = app.cores.execute
        tr = self.trace
        fault_hooks = self.fault_hooks
        overhead = self.config.fault_overhead_us
        vpn_list = batch.vpn_list
        write_list = batch.write_list
        cpu = batch.constant_cpu
        cpu_array = None if cpu is not None else batch.cpu_array
        n = len(batch)
        first_vpn = vpn_list[index]
        if tr is not None:
            # Planned run length: one vectorized residency gather over
            # the batch tail (trace-only; actual membership is dynamic).
            res = space.resident_bits[batch.vpn_array[index:]]
            m = int(res.argmax())
            planned = m if res[m] else n - index
            tr.emit(FAULT_GROUP_BEGIN, app.name, thread_id, first_vpn, planned)
        members = 0
        i = index
        while i < n:
            vpn = vpn_list[i]
            if members:
                if resident_map[vpn] is not None:
                    break  # a prefetch landed: back to the resident path
                stats.accesses += 1
                pending_cpu = pending_cpu + (
                    cpu if cpu_array is None else float(cpu_array[i])
                )
            if pending_cpu > 0.0:
                yield from execute(pending_cpu)
                pending_cpu = 0.0
            write = write_list[i]
            page = page_map[vpn]
            # Inline copy of handle_fault (the scalar oracle) — identical
            # side-effect and yield sequence, one generator frame closer
            # to the engine.  Mirror any change made there.
            stats.faults += 1
            start = engine.now
            if tr is not None:
                tr.emit(FAULT_BEGIN, app.name, thread_id, vpn, 1 if write else 0)
            yield engine.sleep(overhead)
            cache = self._cache_for(app, page)
            first_check = True
            while not page.resident:
                entry = page.swap_entry
                if first_check:
                    if entry is None:
                        cached = None
                    elif not page.in_swap_cache:
                        cache.stats.lookups += 1
                        cached = None
                    else:
                        cached = cache.lookup(entry)
                    if cached is not None:
                        stats.cache_hits += 1
                        if page.prefetched:
                            if not page.locked:
                                stats.prefetch_cache_hits += 1
                                if tr is not None:
                                    tr.emit(PF_HIT, app.name, thread_id, vpn)
                                self.telemetry.timeliness_hist(app.name).record(
                                    engine.now - page.prefetched_at_us
                                )
                                page.prefetched = False
                            self._issue_prefetches(
                                app, thread_id, vpn, prefetched_hit=True
                            )
                    first_check = False
                else:
                    cached = cache.peek(entry) if entry is not None else None

                inflight_req = self._inflight_req.get(page)
                writeback_rescue = (
                    cached is not None
                    and page.locked
                    and inflight_req is not None
                    and inflight_req.kind is RequestKind.SWAPOUT
                )
                if (cached is not None and not page.locked) or writeback_rescue:
                    yield engine.sleep(self.config.map_in_cost_us)
                    if page.resident:
                        break
                    if not page.in_swap_cache:
                        continue
                    current = self._inflight_req.get(page)
                    rescuing = (
                        page.locked
                        and current is not None
                        and current.kind is RequestKind.SWAPOUT
                    )
                    if page.locked and not rescuing:
                        continue
                    self._map_in(app, page, write)
                    if rescuing:
                        stats.writeback_rescues += 1
                        if tr is not None:
                            tr.emit(WB_RESCUE, app.name, thread_id, vpn)
                        del self._inflight_req[page]
                        stale_event = self._inflight.pop(page, None)
                        if stale_event is not None and not stale_event.fired:
                            stale_event.succeed()
                    break

                event = self._inflight.get(page)
                if event is not None:
                    if page.prefetched:
                        stats.blocked_on_prefetch += 1
                        if tr is not None:
                            tr.emit(PF_LATE, app.name, thread_id, vpn)
                    if tr is not None:
                        tr.emit(FAULT_PARK, app.name, thread_id, vpn)
                    yield from self._wait_inflight(app, page, thread_id, event)
                    if tr is not None:
                        tr.emit(FAULT_WAKE, app.name, thread_id, vpn)
                    continue

                # Demand swap-in.
                stats.demand_swapins += 1
                if entry is None:
                    raise RuntimeError(
                        f"{app.name}: vpn {vpn:#x} non-resident without swap entry"
                    )
                event = Event(
                    engine,
                    f"read.{app.name}.{vpn:#x}" if DEBUG_EVENT_NAMES else "",
                )
                self._inflight[page] = event
                page.locked = True
                if app.pool.try_charge(1):
                    if app.pool.above_low_watermark:
                        self._kick_kswapd(app)
                else:
                    yield from self._charge_frames(app, 1, thread_id)
                cache.insert(entry, page, prefetched=False)
                request = self._acquire_request(
                    RdmaOp.READ, RequestKind.DEMAND, app.name, entry, page
                )
                self._inflight_req[page] = request
                entry.timestamp_us = None
                if tr is not None:
                    tr.emit(
                        DEMAND_ISSUE, app.name, thread_id, vpn, request.request_id
                    )
                self._submit_read(app, request)
                self._issue_prefetches(app, thread_id, vpn)
                if tr is not None:
                    tr.emit(FAULT_PARK, app.name, thread_id, vpn)
                yield from self._wait_inflight(app, page, thread_id, event)
                if tr is not None:
                    tr.emit(FAULT_WAKE, app.name, thread_id, vpn)
            stats.fault_stall_us += engine.now - start
            if tr is not None:
                tr.emit(FAULT_END, app.name, thread_id, vpn, engine.now - start)
            for hook in fault_hooks:
                hook(app.name, thread_id, vpn, start, engine.now)
            if write:
                page.dirty = True
            members += 1
            i += 1
        if tr is not None:
            tr.emit(FAULT_GROUP_END, app.name, thread_id, first_vpn, members)
        return i

    def _map_in(self, app: AppContext, page: Page, write: bool) -> None:
        """Move a swap-cache page into the process address space."""
        cache = self._cache_for(app, page)
        if page.in_swap_cache and page.swap_entry is not None:
            cache.remove(page.swap_entry)
        if page.prefetched:
            # A late prefetch (the thread blocked on it): clear the flag
            # without feeding the timeliness distribution — its
            # arrival-to-use gap is ~0 by construction and would shrink
            # the §5.3 threshold spuriously.
            page.prefetched = False
        page.resident = True
        page.locked = False
        self._on_mapped(app, page)
        app.lru.insert(page)
        page.touch(self.engine.now, write)

    def _on_read_complete(self, app: AppContext, request: RdmaRequest) -> None:
        page = request.page
        if self._inflight_req.get(page) is not request:
            # A stale (dropped-in-service) prefetch: discard its data.
            request.entry.valid = True
            return
        del self._inflight_req[page]
        page.locked = False
        if request.kind is RequestKind.PREFETCH:
            self._dec_inflight_prefetch(request.app_name)
            page.prefetched_at_us = self.engine.now
            page.prefetch_timestamp_us = None
            request.entry.timestamp_us = None
        event = self._inflight.pop(page, None)
        if event is not None and not event.fired:
            event.succeed()

    # ------------------------------------------------------------------
    # Error-CQE recovery (graceful degradation under fault injection)
    # ------------------------------------------------------------------

    def _on_read_error(self, app: AppContext, request: RdmaRequest) -> None:
        """A swap-in failed past the transport retry budget.

        Demand reads are retried with a fresh request (the faulting
        threads stay parked on the page's in-flight event, so a retry is
        invisible to them beyond the added stall); speculative prefetches
        are cancelled instead — the cheapest load to shed — and a later
        fault demand-fetches the page.
        """
        page = request.page
        if self._inflight_req.get(page) is not request:
            # Superseded (e.g. dropped by the scheduler and reissued as a
            # demand read): nothing depends on this request anymore.
            request.entry.valid = True
            return
        if request.kind is RequestKind.PREFETCH:
            self._cancel_prefetch(app, request)
            return
        retries = request.kernel_retries + 1
        if retries > self.config.max_kernel_retries:
            raise RuntimeError(
                f"{app.name}: demand read for vpn {page.vpn:#x} failed "
                f"{retries} times past the transport budget — fabric is "
                f"persistently failing"
            )
        app.stats.demand_retries += 1
        if self.trace is not None:
            self.trace.emit(DEMAND_RETRY, app.name, 0, page.vpn, retries)
        entry = request.entry
        rack = self.rack
        if rack is not None and rack.dead_target(request):
            # The home server died under this read: rebind the page to a
            # live entry and retry against it (modelling the re-read from
            # a surviving replica); the rack re-establishes the new home
            # copy in the background.
            entry = rack.rebind_for_read_retry(self, app, page, entry)
        retry = self._acquire_request(
            RdmaOp.READ, RequestKind.DEMAND, app.name, entry, page
        )
        retry.kernel_retries = retries
        self._inflight_req[page] = retry
        # The page keeps its frame charge, cache slot, and lock; waiters
        # stay parked on the same in-flight event until the retry lands.
        entry.timestamp_us = None
        self._submit_read(app, retry)

    def _cancel_prefetch(self, app: AppContext, request: RdmaRequest) -> None:
        """Unwind a failed prefetch completely (mirrors a scheduler drop)."""
        page = request.page
        app.stats.prefetches_cancelled += 1
        if self.trace is not None:
            self.trace.emit(PF_CANCEL, app.name, 0, page.vpn, request.request_id)
        self._dec_inflight_prefetch(request.app_name)
        del self._inflight_req[page]
        event = self._inflight.pop(page, None)
        if page.in_swap_cache and page.swap_entry is not None:
            self._cache_for(app, page).discard(page.swap_entry)
            app.pool.uncharge(1)
        page.locked = False
        page.prefetched = False
        page.prefetch_timestamp_us = None
        request.entry.timestamp_us = None
        request.entry.valid = True
        if event is not None and not event.fired:
            event.succeed()  # waiters re-evaluate and demand-fetch

    def _on_writeback_error(self, app: AppContext, request: RdmaRequest) -> None:
        """A swap-out failed past the transport retry budget.

        The dirty page still sits in the swap cache holding its frame, so
        the writeback is simply reissued; the logical writeback stays
        outstanding until one reissue completes.  A rescued (re-faulted)
        page needs no retry — its data is local again.
        """
        page = request.page
        if self._inflight_req.get(page) is not request:
            # Rescued mid-flight: the failed write is moot, and the
            # logical writeback ends here.
            app.outstanding_writebacks = max(0, app.outstanding_writebacks - 1)
            return
        retries = request.kernel_retries + 1
        if retries > self.config.max_kernel_retries:
            raise RuntimeError(
                f"{app.name}: writeback for vpn {page.vpn:#x} failed "
                f"{retries} times past the transport budget — fabric is "
                f"persistently failing"
            )
        app.stats.writeback_retries += 1
        if self.trace is not None:
            self.trace.emit(WB_RETRY, app.name, 0, page.vpn, retries)
        entry = request.entry
        rack = self.rack
        if rack is not None and rack.dead_target(request):
            # The target server died under this writeback: the data is
            # still local, so just retarget the write at a live entry.
            entry = rack.rebind_for_writeback_retry(self, app, page, entry)
        retry = self._acquire_request(
            RdmaOp.WRITE, RequestKind.SWAPOUT, app.name, entry, page
        )
        retry.kernel_retries = retries
        self._inflight_req[page] = retry
        self._submit_write(app, retry)

    # ------------------------------------------------------------------
    # Prefetching
    # ------------------------------------------------------------------

    def _issue_prefetches(
        self,
        app: AppContext,
        thread_id: int,
        vpn: int,
        prefetched_hit: bool = False,
    ) -> None:
        prefetcher = self._prefetcher_for(app)
        proposals = prefetcher.on_fault(
            app.name, thread_id, vpn, self.engine.now, prefetched_hit=prefetched_hit
        )
        if self.trace is not None and proposals:
            self.trace.emit(PF_PROPOSE, app.name, thread_id, vpn, len(proposals))
        issued = self.issue_prefetch_vpns(app, proposals)
        self._post_prefetch_hook(app, thread_id, vpn, issued, prefetched_hit)

    def issue_prefetch_vpns(
        self, app: AppContext, vpns: List[int], recycle: bool = True
    ) -> int:
        """Issue prefetch reads for valid, absent, not-in-flight pages.

        Returns the number actually issued.  Prefetches never trigger
        reclaim: when the cgroup has no free frames, proposals may recycle
        old clean swap-cache pages (``recycle=True``, the kernel tier's
        behaviour per §2) or are simply dropped (application-tier
        proposals, which must not cannibalize the kernel tier's cache).
        """
        if not vpns:
            # Nothing proposed (silent readahead, empty window): skip the
            # budget math but keep the trailing cache-pressure check —
            # it can release over-budget clean pages regardless.
            self._shrink_cache_if_needed(app)
            return 0
        issued = 0
        # The in-flight window must fit comfortably in the cache that will
        # buffer the arrivals, or prefetches evict each other before use.
        cache_cap = self._private_cache(app).capacity_pages
        limit = min(self.config.max_inflight_prefetches, max(8, cache_cap // 2))
        budget = limit - self._inflight_prefetches(app)
        to_submit: List[RdmaRequest] = []
        page_or_none = app.space.page_or_none
        for vpn in vpns:
            if budget <= 0:
                break
            page = page_or_none(vpn)
            if page is None or page.resident or page.locked:
                continue
            entry = page.swap_entry
            if entry is None or page.in_swap_cache:
                continue
            cache = self._cache_for(app, page)
            if not app.pool.try_charge(1):
                if not recycle:
                    app.stats.prefetch_frames_denied += 1
                    break
                # "When memory runs low, the kernel releases existing
                # pages from the swap cache to make room for newly
                # fetched pages" (§2): recycle old clean cache pages
                # (typically stale prefetches) before giving up.  The
                # pending doorbell flushes first so the NIC kick keeps
                # its serial FIFO position ahead of the kswapd kick in
                # the engine's immediate lane.
                if to_submit:
                    self._submit_read_many(app, to_submit)
                    to_submit = []
                self._shrink_cache_if_needed(app, force_min=2)
                self._kick_kswapd(app)
                if not app.pool.try_charge(1):
                    app.stats.prefetch_frames_denied += 1
                    break
            event = Event(
                self.engine,
                f"prefetch.{app.name}.{vpn:#x}" if DEBUG_EVENT_NAMES else "",
            )
            self._inflight[page] = event
            page.locked = True
            page.prefetch_timestamp_us = self.engine.now
            cache.insert(entry, page, prefetched=True)
            request = self._acquire_request(
                RdmaOp.READ, RequestKind.PREFETCH, app.name, entry, page
            )
            self._inflight_req[page] = request
            if self.trace is not None:
                self.trace.emit(PF_ISSUE, app.name, 0, vpn, request.request_id)
            # Submission is deferred to one doorbell after the loop: the
            # whole pass runs at a single instant with no yields, so the
            # NIC sees the same queue contents in the same order and the
            # wakeup it schedules lands identically.
            to_submit.append(request)
            issued += 1
            budget -= 1
            app.stats.prefetches_issued += 1
            app.inflight_prefetches += 1
        if to_submit:
            self._submit_read_many(app, to_submit)
        self._shrink_cache_if_needed(app)
        return issued

    def _inflight_prefetches(self, app: AppContext) -> int:
        return app.inflight_prefetches

    def _dec_inflight_prefetch(self, app_name: str) -> None:
        """One in-flight prefetch left the system (completed or dropped)."""
        app = self.apps.get(app_name)
        if app is not None and app.inflight_prefetches > 0:
            app.inflight_prefetches -= 1

    # ------------------------------------------------------------------
    # Reclaim
    # ------------------------------------------------------------------

    def _charge_frames(
        self, app: AppContext, n_pages: int, core_id: int
    ) -> Generator:
        """Charge the cgroup, running direct reclaim when over budget."""
        while not app.pool.try_charge(n_pages):
            app.stats.direct_reclaims += 1
            freed = self._shrink_cache_if_needed(app, force_min=n_pages)
            if freed >= n_pages:
                continue
            done = yield from self._evict_one(app, core_id, wait_writeback=True)
            if not done:
                if app.outstanding_writebacks > 0:
                    # Every frame is pinned by an in-flight writeback:
                    # congestion-wait for completions, then retry.
                    yield self.engine.sleep(20.0)
                    continue
                raise RuntimeError(f"{app.name}: out of memory, nothing evictable")
        if app.pool.above_low_watermark:
            self._kick_kswapd(app)

    def _evict_one(
        self, app: AppContext, core_id: int, wait_writeback: bool
    ) -> Generator:
        """Evict one LRU victim.  Returns True if a page was evicted."""
        victim = app.lru.select_victim()
        if victim is None:
            return False
        victim.resident = False
        victim.referenced = False
        tr = self.trace
        if tr is not None:
            tr.emit(EVICT, app.name, core_id, victim.vpn, 1 if victim.dirty else 0)
        self._on_evicted(app, victim)
        cache = self._cache_for(app, victim)

        if not victim.dirty and victim.swap_entry is not None:
            # Remote copy still valid (kept entry): drop without writeback.
            app.pool.uncharge(1)
            app.stats.clean_drops += 1
            if tr is not None:
                tr.emit(CLEAN_DROP, app.name, core_id, victim.vpn)
            # Still a swap-out for throughput purposes: the page left
            # local memory and lives remotely (its write was just free).
            self.telemetry.swapout_rate(app.name).record(self.engine.now)
            return True

        # Writeback path: obtain an entry, push through the cache.  The
        # page must be protected *before* the (possibly lock-waiting)
        # allocation: a racing fault parks on the in-flight event.
        victim.locked = True
        event = Event(
            self.engine,
            f"writeback.{app.name}.{victim.vpn:#x}" if DEBUG_EVENT_NAMES else "",
        )
        self._inflight[victim] = event
        entry = yield from self._obtain_writeback_entry(app, victim, core_id)
        entry.stored_vpn = victim.vpn
        victim.swap_entry = entry
        victim.dirty = True  # data must travel
        cache.insert(entry, victim, prefetched=False)
        request = self._acquire_request(
            RdmaOp.WRITE, RequestKind.SWAPOUT, app.name, entry, victim
        )
        self._inflight_req[victim] = request
        if tr is not None:
            tr.emit(WB_ISSUE, app.name, core_id, victim.vpn, request.request_id)
        app.outstanding_writebacks += 1
        self._submit_write(app, request)
        app.stats.swapouts += 1
        self.telemetry.swapout_rate(app.name).record(self.engine.now)
        if wait_writeback:
            # Wait on the request's own completion, not the page's
            # in-flight event: a rescue may detach the latter.
            yield request.completion
        return True

    def _evict_many(self, app: AppContext, core_id: int, n: int) -> Generator:
        """Evict up to ``n`` LRU victims in grouped reclaim rounds.

        The write-side twin of ``handle_fault_group``: one generator
        drives kswapd's whole batch instead of one ``_evict_one``
        sub-generator per page.  Each round drains victims from the LRU
        in a single revalidated ``select_victims`` pass that *stops at
        the first page needing a writeback* (:func:`_needs_writeback`).
        Everything up to and including that page's lock happens at one
        simulated instant with no yields, so selecting those victims up
        front is invisible; the writeback member then yields in entry
        allocation, and victims after it must be re-selected post-yield
        exactly as the serial loop would — hence a new round.  Per round
        at most one write request exists; its NIC submit is deferred
        past the round's remaining pure host-side accounting and flushed
        through :meth:`_submit_write_many` before the next round's
        allocation yield, so the doorbell keeps its serial FIFO position
        in the engine's immediate lane.  Digest-identical to ``n``
        serial ``_evict_one`` calls (``grouped_reclaim=False`` keeps
        that oracle); ``tests/test_grouped_reclaim.py`` pins the
        equivalence per system and under fault injection.

        Trace records for grouped rounds land on thread lane
        ``RECLAIM_LANE`` so the ``reclaim-group-pairing`` lint can count
        this group's EVICTs without catching concurrent direct-reclaim
        evictions on thread 0.  Returns the number of pages evicted
        (short only when the LRU runs dry — the serial loop's surplus
        ``select_victim()`` calls are side-effect-free no-ops).
        """
        tr = self.trace
        if tr is not None:
            tr.emit(RECLAIM_GROUP_BEGIN, app.name, RECLAIM_LANE, 0, n)
        evicted = 0
        while evicted < n:
            victims = app.lru.select_victims(n - evicted, stop=_needs_writeback)
            if not victims:
                break
            to_submit: List[RdmaRequest] = []
            for victim in victims:
                victim.resident = False
                victim.referenced = False
                if tr is not None:
                    tr.emit(
                        EVICT,
                        app.name,
                        RECLAIM_LANE,
                        victim.vpn,
                        1 if victim.dirty else 0,
                    )
                self._on_evicted(app, victim)
                cache = self._cache_for(app, victim)

                if not victim.dirty and victim.swap_entry is not None:
                    app.pool.uncharge(1)
                    app.stats.clean_drops += 1
                    if tr is not None:
                        tr.emit(CLEAN_DROP, app.name, RECLAIM_LANE, victim.vpn)
                    self.telemetry.swapout_rate(app.name).record(self.engine.now)
                    evicted += 1
                    continue

                victim.locked = True
                event = Event(
                    self.engine,
                    f"writeback.{app.name}.{victim.vpn:#x}"
                    if DEBUG_EVENT_NAMES
                    else "",
                )
                self._inflight[victim] = event
                entry = yield from self._obtain_writeback_entry(
                    app, victim, core_id
                )
                entry.stored_vpn = victim.vpn
                victim.swap_entry = entry
                victim.dirty = True  # data must travel
                cache.insert(entry, victim, prefetched=False)
                request = self._acquire_request(
                    RdmaOp.WRITE, RequestKind.SWAPOUT, app.name, entry, victim
                )
                self._inflight_req[victim] = request
                if tr is not None:
                    tr.emit(
                        WB_ISSUE,
                        app.name,
                        RECLAIM_LANE,
                        victim.vpn,
                        request.request_id,
                    )
                app.outstanding_writebacks += 1
                to_submit.append(request)
                app.stats.swapouts += 1
                self.telemetry.swapout_rate(app.name).record(self.engine.now)
                evicted += 1
            if to_submit:
                self._submit_write_many(app, to_submit)
        if tr is not None:
            tr.emit(RECLAIM_GROUP_END, app.name, RECLAIM_LANE, 0, evicted)
        return evicted

    def _on_writeback_complete(self, app: AppContext, request: RdmaRequest) -> None:
        page = request.page
        app.outstanding_writebacks = max(0, app.outstanding_writebacks - 1)
        if self._inflight_req.get(page) is not request:
            return  # superseded: the page was rescued and re-evicted
        del self._inflight_req[page]
        if self.trace is not None:
            self.trace.emit(
                WB_COMPLETE, app.name, 0, page.vpn, request.request_id
            )
        event = self._inflight.pop(page, None)
        if not page.resident:
            # A rescued (resident) page keeps its frame and dirty state;
            # otherwise the page leaves the cache and frees its frame.
            page.dirty = False
            page.locked = False
            if page.in_swap_cache and page.swap_entry is not None:
                cache = self._cache_for(app, page)
                cache.discard(page.swap_entry)
                app.pool.uncharge(1)
        if event is not None and not event.fired:
            event.succeed()

    def _shrink_cache_if_needed(self, app: AppContext, force_min: int = 0) -> int:
        """Release clean over-budget swap-cache pages; returns pages freed.

        ``force_min`` releases pages even below budget — the "when memory
        runs low, the kernel releases existing pages from the swap cache"
        path of §2, used by direct reclaim.
        """
        cache = self._private_cache(app)
        if force_min <= 0 and len(cache) <= cache.capacity_pages:
            return 0  # within budget and not forced: the common case
        target = max(cache.overflow, force_min)
        if target <= 0:
            return 0
        # One candidate scan with a vectorized dirty filter, then a
        # single batched release; the truncation to ``target`` matches
        # the old per-page loop's early break, so the released set (and
        # order) is identical.
        releasable = cache.shrink_candidates(target * 2, clean_only=True)
        releasable = releasable[:target]
        if not releasable:
            return 0
        released = cache.release_many([entry_id for entry_id, _ in releasable])
        uncharges: Dict[str, int] = {}
        for page in released:
            uncharges[page.owner_name] = uncharges.get(page.owner_name, 0) + 1
        for owner_name, count in uncharges.items():
            owner = self.apps.get(owner_name, app)
            owner.pool.uncharge(count)
        return len(released)

    def _private_cache(self, app: AppContext) -> SwapCache:
        """The swap cache holding this app's private pages."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # kswapd
    # ------------------------------------------------------------------

    def _kick_kswapd(self, app: AppContext) -> None:
        event = self._kswapd_kick.get(app.name)
        if event is not None and not event.fired:
            event.succeed()

    def _kswapd_loop(self, app: AppContext) -> Generator:
        park = self._kswapd_park[app.name]
        stop = self._kswapd_stop
        # The stop flag is a host-side dict read: runs that never
        # unregister take the identical yield sequence as the flagless
        # ``while True`` loop (digest-pinned by the teardown A/B tests).
        while not stop.get(app.name, False):
            if app.pool.reclaim_target() <= 0:
                self._kswapd_kick[app.name] = park
                yield park
                self._kswapd_kick[app.name] = None
                park.reset()
                continue
            # Scale the batch with backlog (kswapd raises its scan
            # priority under pressure) but keep it small enough that the
            # eviction window stays short, and cap outstanding writebacks
            # so a congested write path cannot pin every frame.
            outstanding = app.outstanding_writebacks
            writeback_cap = max(8, app.pool.capacity_pages // 8)
            if outstanding >= writeback_cap:
                yield self.engine.sleep(10.0)
                continue
            target = app.pool.reclaim_target()
            batch = min(4 * self.config.kswapd_batch, max(self.config.kswapd_batch, target // 4))
            batch = min(batch, target, writeback_cap - outstanding)
            app.stats.kswapd_reclaims += batch
            # kswapd is one kernel thread: it evicts its batch serially
            # (each writeback is issued asynchronously, so the wire still
            # pipelines); only faulting threads add allocation concurrency.
            # Grouped reclaim drives the batch through one generator with
            # batched selection and doorbell-deferred egress — the serial
            # loop below is the digest oracle it is pinned against.
            if self.config.grouped_reclaim and app.lru.flat:
                yield from self._evict_many(app, 0, batch)
            else:
                for _ in range(batch):
                    yield from self._evict_one(app, 0, wait_writeback=False)
            # Writebacks issued; give completions a chance to land before
            # the next round so the target reflects reality.
            yield self.engine.sleep(8.0)


class LinuxSwapSystem(BaseSwapSystem):
    """The Linux 5.5 baseline: everything shared.

    One swap partition with a lock-protected free-list allocator, one
    swap cache, one prefetcher instance fed by every application's fault
    stream, and one pair of RDMA QPs — the configuration whose
    interference §3 dissects.
    """

    def __init__(
        self,
        engine: Engine,
        nic: RNIC,
        partition_pages: int,
        prefetcher: Optional[Prefetcher] = None,
        telemetry: Optional[Telemetry] = None,
        config: Optional[SwapSystemConfig] = None,
        allocator_cls=FreeListAllocator,
        name: str = "linux",
    ):
        super().__init__(engine, nic, telemetry, config, name)
        self.partition = SwapPartition(f"{name}.swap", partition_pages)
        self.allocator = allocator_cls(engine, self.partition, name=f"{name}.alloc")
        self.cache = SwapCache(f"{name}.cache", self.config.shared_cache_pages)
        self.prefetcher = prefetcher if prefetcher is not None else Prefetcher()
        self.read_qp = nic.create_qp(f"{name}.read", RdmaOp.READ, priority=0)
        self.write_qp = nic.create_qp(f"{name}.write", RdmaOp.WRITE, priority=0)

    def _setup_app(self, app: AppContext) -> None:
        pass  # nothing per-app: that is the point of this baseline

    def _attach_tracer_extra(self, tracer) -> None:
        self.allocator.tracer = tracer

    def _cache_for(self, app: AppContext, page: Page) -> SwapCache:
        return self.cache

    def _private_cache(self, app: AppContext) -> SwapCache:
        return self.cache

    def _allocator_for(self, app: AppContext, page: Page) -> EntryAllocator:
        return self.allocator

    def _prefetcher_for(self, app: AppContext) -> Prefetcher:
        return self.prefetcher

    def _submit_read(self, app: AppContext, request: RdmaRequest) -> None:
        self.nic.submit(self.read_qp, request)

    def _submit_read_many(
        self, app: AppContext, requests: List[RdmaRequest]
    ) -> None:
        self.nic.submit_many(self.read_qp, requests)

    def _submit_write(self, app: AppContext, request: RdmaRequest) -> None:
        self.nic.submit(self.write_qp, request)

    def _submit_write_many(
        self, app: AppContext, requests: List[RdmaRequest]
    ) -> None:
        self.nic.submit_many(self.write_qp, requests)
