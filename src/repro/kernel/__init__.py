"""Kernel layer: fault handling, reclaim, cgroups, userfaultfd, telemetry."""

from repro.kernel.cgroup import AppContext, AppSwapStats, CgroupConfig
from repro.kernel.swap_system import BaseSwapSystem, LinuxSwapSystem, SwapSystemConfig
from repro.kernel.telemetry import Telemetry
from repro.kernel.userfaultfd import UserfaultfdChannel

__all__ = [
    "AppContext",
    "AppSwapStats",
    "CgroupConfig",
    "BaseSwapSystem",
    "LinuxSwapSystem",
    "SwapSystemConfig",
    "Telemetry",
    "UserfaultfdChannel",
]
