"""The modified userfaultfd channel (§5.2).

Canvas modifies the kernel's userfaultfd interface so faulting addresses
are forwarded to user space *only while the kernel-tier prefetcher keeps
failing*.  The application side (a language runtime such as the JVM) runs
a daemon prefetching thread that consumes forwarded addresses, analyzes
semantic patterns, and pushes prefetch requests back down through
``async_prefetch``.

The daemon burns the application's own CPU allocation — the reason Canvas
disables the application tier whenever the kernel tier works: "the
application-tier prefetcher needs extra compute resources to run."
"""

from __future__ import annotations

from typing import Callable, Generator, List, Optional, Tuple

from repro.kernel.cgroup import AppContext
from repro.sim.engine import Engine
from repro.sim.resources import FIFOStore

__all__ = ["UserfaultfdChannel"]

#: handler(thread_id, vpn) -> VPNs to prefetch.
FaultHandler = Callable[[int, int], List[int]]
#: async_prefetch(app, vpns) -> number issued.
AsyncPrefetch = Callable[[AppContext, List[int]], int]


class UserfaultfdChannel:
    """Kernel→user fault forwarding plus the user-side daemon thread."""

    def __init__(
        self,
        engine: Engine,
        app: AppContext,
        async_prefetch: AsyncPrefetch,
        handler_cost_us: float = 2.0,
        forward_cost_us: float = 0.3,
        max_queue: int = 256,
    ):
        self.engine = engine
        self.app = app
        self.async_prefetch = async_prefetch
        #: CPU the daemon spends analyzing one forwarded address.
        self.handler_cost_us = handler_cost_us
        #: Kernel-side cost of forwarding one address up.
        self.forward_cost_us = forward_cost_us
        self.max_queue = max_queue
        self._store = FIFOStore(engine, name=f"uffd.{app.name}")
        self._handler: Optional[FaultHandler] = None
        self.forwarded = 0
        self.handled = 0
        self.overflow_drops = 0
        self.prefetches_submitted = 0
        self._daemon = engine.spawn(self._daemon_loop(), name=f"uffd.{app.name}.daemon")

    def register_handler(self, handler: FaultHandler) -> None:
        """Install the runtime's semantic-pattern analyzer."""
        self._handler = handler

    @property
    def has_handler(self) -> bool:
        return self._handler is not None

    def forward(self, thread_id: int, vpn: int) -> None:
        """Kernel side: push a faulting address up to the application tier."""
        if self._handler is None:
            return
        if len(self._store) >= self.max_queue:
            self.overflow_drops += 1
            return
        self.forwarded += 1
        self.app.stats.uffd_forwards += 1
        self._store.put((thread_id, vpn))

    def _daemon_loop(self) -> Generator:
        engine = self.engine
        store = self._store
        while True:
            # Inline the buffered-get: with an item already queued and
            # nothing else runnable at this instant (empty immediate
            # lane, no heap entry due), the granted event's late
            # subscription would be the very next dispatch — taking the
            # item synchronously is order-identical, not merely
            # equivalent-in-practice, and saves that engine step.
            if store._items and not engine._immediate:
                heap = engine._heap
                if not heap or heap[0][0] > engine.now:
                    thread_id, vpn = store._items.popleft()
                else:
                    thread_id, vpn = yield store.get()
            else:
                thread_id, vpn = yield store.get()
            if self._handler is None:
                continue
            # The daemon occupies one of the application's cores while it
            # walks the summary graph / per-thread histories.
            yield from self.app.cores.execute(self.handler_cost_us)
            vpns = self._handler(thread_id, vpn)
            self.handled += 1
            if vpns:
                self.prefetches_submitted += self.async_prefetch(self.app, vpns)
