"""System-wide telemetry wired into the swap data path.

One :class:`Telemetry` instance per experiment collects everything the
paper's figures need: per-app swap-in/out bandwidth series (Figs. 5, 11),
RDMA latency histograms split by request kind (Figs. 6, 14), swap-out and
allocation rates (Figs. 4, 13, 16), and time spent in entry allocation
(Fig. 15).
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.metrics.collectors import BandwidthMeter, Histogram, RateMeter
from repro.rdma.message import RdmaOp, RdmaRequest, RequestKind

__all__ = ["Telemetry"]


class Telemetry:
    """Shared collectors, fed by NIC completion hooks and the swap path."""

    def __init__(self, bin_us: float = 100_000.0):
        self.bin_us = bin_us
        self.read_bandwidth = BandwidthMeter(bin_us)
        self.write_bandwidth = BandwidthMeter(bin_us)
        #: Latency histograms keyed by (app, kind-value).
        self._latency: Dict[Tuple[str, str], Histogram] = {}
        #: Same histograms keyed by (app, kind enum) — the completion
        #: hook's hot-path alias of ``_latency``, never a separate store.
        self._latency_by_kind: Dict[Tuple[str, RequestKind], Histogram] = {}
        #: Swap-out page rates per app.
        self._swapout_rate: Dict[str, RateMeter] = {}
        #: Swap-entry allocation rates per app.
        self._alloc_rate: Dict[str, RateMeter] = {}
        #: Prefetch timeliness: time from swap-cache arrival to first use.
        self._timeliness: Dict[str, Histogram] = {}

    # -- NIC hook ---------------------------------------------------------

    def on_rdma_completion(self, request: RdmaRequest) -> None:
        if request.error:
            # Error CQE: no data moved, so neither bandwidth nor the
            # latency CDFs should see it (the retry's completion will).
            return
        app_name = request.app_name
        if request.op is RdmaOp.READ:
            self.read_bandwidth.record(
                app_name, request.completed_at_us, request.size_bytes
            )
        else:
            self.write_bandwidth.record(
                app_name, request.completed_at_us, request.size_bytes
            )
        latency = request.latency_us
        if latency is not None:
            # Inline latency_hist: this hook runs once per completed
            # RDMA, so skip the enum ``.value`` descriptor on the hit
            # path by keying the hot cache on the enum member itself.
            key = (app_name, request.kind)
            hist = self._latency_by_kind.get(key)
            if hist is None:
                hist = self.latency_hist(app_name, request.kind)
                self._latency_by_kind[key] = hist
            hist.record(latency)

    # -- accessors ----------------------------------------------------------

    def latency_hist(self, app_name: str, kind: RequestKind) -> Histogram:
        key = (app_name, kind.value)
        hist = self._latency.get(key)
        if hist is None:
            hist = Histogram(name=f"{app_name}.{kind.value}.latency")
            self._latency[key] = hist
        return hist

    def merged_latency(self, kind: RequestKind) -> Histogram:
        """All apps' samples for one request kind, merged."""
        merged = Histogram(name=f"all.{kind.value}.latency")
        for (app, kind_value), hist in self._latency.items():
            if kind_value == kind.value:
                merged.add_many(hist._samples)
        return merged

    def swapout_rate(self, app_name: str) -> RateMeter:
        meter = self._swapout_rate.get(app_name)
        if meter is None:
            meter = RateMeter(self.bin_us, name=f"{app_name}.swapout")
            self._swapout_rate[app_name] = meter
        return meter

    def alloc_rate(self, app_name: str) -> RateMeter:
        meter = self._alloc_rate.get(app_name)
        if meter is None:
            meter = RateMeter(self.bin_us, name=f"{app_name}.alloc")
            self._alloc_rate[app_name] = meter
        return meter

    def timeliness_hist(self, app_name: str) -> Histogram:
        hist = self._timeliness.get(app_name)
        if hist is None:
            hist = Histogram(name=f"{app_name}.timeliness")
            self._timeliness[app_name] = hist
        return hist
