"""Observability: simulation-clock tracing and trace-driven invariants.

``repro.obs`` is zero-overhead when off: every tracepoint is a single
``is not None`` attribute check until a :class:`TraceBuffer` is
attached (``ExperimentConfig(trace=True)`` or
``system.attach_tracer``).  See :mod:`repro.obs.trace` for the record
format and exporters, :mod:`repro.obs.check` for the causality lints.
"""

from repro.obs.check import RULES, Violation, assert_trace_ok, check_trace
from repro.obs.trace import (
    KIND_NAMES,
    TraceBuffer,
    TraceRecord,
    dump_chrome_trace,
    summarize_trace,
    to_chrome_trace,
)

__all__ = [
    "TraceBuffer",
    "TraceRecord",
    "KIND_NAMES",
    "to_chrome_trace",
    "dump_chrome_trace",
    "summarize_trace",
    "check_trace",
    "assert_trace_ok",
    "Violation",
    "RULES",
]
