"""Trace-driven invariant checking: causality lints over swap traces.

Where the fault suite asserts digest equality ("the numbers didn't
change"), these lints assert *semantics* ("the events could actually
have happened in this order").  They run post-hoc over any record list
from :class:`repro.obs.trace.TraceBuffer` — in tests, in CI over the
chaos scenarios, and from ``canvas-sim trace``.

Rules (names are the ``Violation.rule`` values):

* ``completion-before-issue`` — a transfer completes only after it was
  enqueued and served, in that order.
* ``entry-double-free`` / ``entry-double-alloc`` — a swap entry's
  alloc/free records alternate: no free-after-free, no alloc-after-alloc.
* ``retransmit-without-fault`` — every retransmit is preceded by at
  least as many wire drops / completion errors for the same request.
* ``pool-live-twice`` — a pooled request object is never acquired while
  a previous life is still outstanding (and never recycled twice).
* ``park-without-wake`` — a thread parked on in-flight I/O is always
  woken before the simulation ends.
* ``fault-nesting`` — per (app, thread), fault begin/end records are
  balanced and never nest.
* ``batch-pairing`` — per app, batch fast-path enter/exit records
  alternate (consume calls are atomic), every exit reports a legal
  outcome, and its run never overruns the entered batch tail.
* ``group-pairing`` — per (app, thread), fault-group begin/end records
  alternate, every member fault completes inside an open group exactly
  once (the end record's member count matches the fault ends observed),
  and no group is left open at end of trace.
* ``reclaim-group-pairing`` — per (app, lane), reclaim-group begin/end
  records alternate, the end record's evicted count matches the EVICT
  records observed inside the group and never exceeds the planned batch,
  and no group is left open at end of trace.  Grouped reclaim emits on
  the sentinel ``RECLAIM_LANE``, so concurrent direct-reclaim evictions
  (real thread lanes) never pollute the count.
* ``app-lifecycle`` — after an ``APP_UNREGISTER`` record, no further
  record may reference that app until a fresh ``APP_REGISTER``
  (re-arrival under the same name is legal), and the unregister itself
  must find the app quiescent: no open fault, parked waiter, batch run,
  fault group, or reclaim group.  This is the teardown leak lint —
  a stray completion, prefetch, or eviction attributed to a departed
  app means its teardown failed to drain or cancel something.

On a truncated trace (the ring wrapped), missing-*predecessor* findings
are suppressed — the predecessor may simply have been overwritten — but
wrong-order and unmatched-*end-of-trace* findings still fire: a record
later than a retained one was never dropped by the ring.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from repro.obs.trace import (
    APP_REGISTER,
    APP_UNREGISTER,
    BATCH_ENTER,
    BATCH_EXIT,
    ENTRY_ALLOC,
    ENTRY_FREE,
    EVICT,
    FAULT_BEGIN,
    FAULT_END,
    FAULT_GROUP_BEGIN,
    FAULT_GROUP_END,
    FAULT_PARK,
    FAULT_WAKE,
    QP_COMPLETE,
    RECLAIM_GROUP_BEGIN,
    RECLAIM_GROUP_END,
    QP_ENQ,
    QP_ERROR_CQE,
    QP_SERVE,
    REQ_ACQUIRE,
    REQ_RECYCLE,
    RETRANSMIT,
    WIRE_DROP,
    WIRE_ERROR,
    KIND_NAMES,
    TraceRecord,
)

__all__ = ["Violation", "check_trace", "assert_trace_ok", "RULES"]

RULES = [
    "completion-before-issue",
    "entry-double-free",
    "entry-double-alloc",
    "retransmit-without-fault",
    "pool-live-twice",
    "park-without-wake",
    "fault-nesting",
    "batch-pairing",
    "group-pairing",
    "reclaim-group-pairing",
    "app-lifecycle",
]


@dataclass
class Violation:
    """One broken invariant, anchored at the offending record's time."""

    rule: str
    t_us: float
    app: str
    message: str

    def __str__(self) -> str:  # pragma: no cover
        return f"[{self.rule}] t={self.t_us:.3f}us app={self.app or '-'}: {self.message}"


def check_trace(
    records: List[TraceRecord], truncated: bool = False
) -> List[Violation]:
    """Run every causality lint; returns all violations found (in order)."""
    violations: List[Violation] = []

    # completion-before-issue state: request id -> (enq_t, serve_t).
    enq_t: Dict[int, float] = {}
    serve_t: Dict[int, float] = {}
    # entry alloc/free alternation: (allocator, entry id) -> "allocated"
    # | "free".  Keyed by allocator name (the record's arg) as well as
    # id because per-app partitions (Canvas) each number their entries
    # from zero — the id alone collides across partitions.  Entries
    # first seen mid-life (allocated before tracing was attached) start
    # untracked and adopt whichever state appears.
    entry_state: Dict[Tuple[object, int], str] = {}
    # retransmit accounting: request id -> injected faults seen so far.
    fault_count: Dict[int, int] = {}
    rtx_count: Dict[int, int] = {}
    # pooled-request liveness: serials currently out of the pool.
    live_serials: Set[int] = set()
    seen_serials: Set[int] = set()
    # parked waiters: (app, thread) -> (vpn, t).
    parked: Dict[Tuple[str, int], Tuple[int, float]] = {}
    # open faults: (app, thread) -> (vpn, t).
    fault_open: Dict[Tuple[str, int], Tuple[int, float]] = {}
    # open batch fast-path runs: app -> (start, batch_len, t).
    batch_open: Dict[str, Tuple[int, int, float]] = {}
    # open fault groups: (app, thread) -> [first_vpn, fault_ends_seen, t].
    group_open: Dict[Tuple[str, int], List] = {}
    # open reclaim groups: (app, lane) -> [planned, evicts_seen, t].
    reclaim_open: Dict[Tuple[str, int], List] = {}
    # departed apps: app -> unregister time (cleared by re-registration).
    unregistered: Dict[str, float] = {}

    for t, kind, app, thread, key, arg in records:
        if kind == APP_REGISTER:
            unregistered.pop(app, None)
        elif kind == APP_UNREGISTER:
            for (open_app, open_thread), (vpn, _pt) in parked.items():
                if open_app == app:
                    violations.append(
                        Violation(
                            "app-lifecycle",
                            t,
                            app,
                            f"unregistered while thread {open_thread} is "
                            f"still parked on vpn {vpn:#x}",
                        )
                    )
            for (open_app, open_thread), (vpn, _ft) in fault_open.items():
                if open_app == app:
                    violations.append(
                        Violation(
                            "app-lifecycle",
                            t,
                            app,
                            f"unregistered while thread {open_thread}'s "
                            f"fault at vpn {vpn:#x} is still open",
                        )
                    )
            if app in batch_open:
                violations.append(
                    Violation(
                        "app-lifecycle",
                        t,
                        app,
                        "unregistered with a batch run still open",
                    )
                )
            for (open_app, open_thread) in group_open:
                if open_app == app:
                    violations.append(
                        Violation(
                            "app-lifecycle",
                            t,
                            app,
                            f"unregistered while thread {open_thread}'s "
                            f"fault group is still open",
                        )
                    )
            for (open_app, lane) in reclaim_open:
                if open_app == app:
                    violations.append(
                        Violation(
                            "app-lifecycle",
                            t,
                            app,
                            f"unregistered while lane {lane}'s reclaim "
                            f"group is still open",
                        )
                    )
            unregistered[app] = t
            continue
        elif app and app in unregistered:
            violations.append(
                Violation(
                    "app-lifecycle",
                    t,
                    app,
                    f"{KIND_NAMES.get(kind, kind)} record after the app "
                    f"unregistered at {unregistered[app]:.3f}us",
                )
            )
        if kind == QP_ENQ:
            enq_t[key] = t
            serve_t.pop(key, None)
        elif kind == QP_SERVE:
            begin = enq_t.get(key)
            if begin is None:
                if not truncated:
                    violations.append(
                        Violation(
                            "completion-before-issue",
                            t,
                            app,
                            f"request {key} served without an enqueue",
                        )
                    )
            elif t < begin:
                violations.append(
                    Violation(
                        "completion-before-issue",
                        t,
                        app,
                        f"request {key} served at {t} before enqueue at {begin}",
                    )
                )
            serve_t[key] = t
        elif kind in (QP_COMPLETE, QP_ERROR_CQE):
            begin = serve_t.pop(key, None)
            if begin is None:
                if not truncated:
                    violations.append(
                        Violation(
                            "completion-before-issue",
                            t,
                            app,
                            f"request {key} completed without being served",
                        )
                    )
            elif t < begin:
                violations.append(
                    Violation(
                        "completion-before-issue",
                        t,
                        app,
                        f"request {key} completed at {t} before service at {begin}",
                    )
                )
            enq_t.pop(key, None)
        elif kind == ENTRY_ALLOC:
            if entry_state.get((arg, key)) == "allocated":
                violations.append(
                    Violation(
                        "entry-double-alloc",
                        t,
                        app,
                        f"entry {key} ({arg}) allocated while already allocated",
                    )
                )
            entry_state[(arg, key)] = "allocated"
        elif kind == ENTRY_FREE:
            if entry_state.get((arg, key)) == "free":
                violations.append(
                    Violation(
                        "entry-double-free",
                        t,
                        app,
                        f"entry {key} ({arg}) freed while already free",
                    )
                )
            entry_state[(arg, key)] = "free"
        elif kind in (WIRE_DROP, WIRE_ERROR):
            fault_count[key] = fault_count.get(key, 0) + 1
        elif kind == RETRANSMIT:
            rtx = rtx_count.get(key, 0) + 1
            rtx_count[key] = rtx
            if not truncated and rtx > fault_count.get(key, 0):
                violations.append(
                    Violation(
                        "retransmit-without-fault",
                        t,
                        app,
                        f"request {key} retransmitted {rtx}x with only "
                        f"{fault_count.get(key, 0)} injected fault(s)",
                    )
                )
        elif kind == REQ_ACQUIRE:
            if key in live_serials:
                violations.append(
                    Violation(
                        "pool-live-twice",
                        t,
                        app,
                        f"pooled request serial {key} acquired while live "
                        f"(request_id {arg})",
                    )
                )
            live_serials.add(key)
            seen_serials.add(key)
        elif kind == REQ_RECYCLE:
            if key not in live_serials and key in seen_serials:
                violations.append(
                    Violation(
                        "pool-live-twice",
                        t,
                        app,
                        f"pooled request serial {key} recycled while already "
                        f"in the pool",
                    )
                )
            live_serials.discard(key)
        elif kind == FAULT_PARK:
            parked[(app, thread)] = (key, t)
        elif kind == FAULT_WAKE:
            if (app, thread) not in parked and not truncated:
                violations.append(
                    Violation(
                        "park-without-wake",
                        t,
                        app,
                        f"thread {thread} woken at vpn {key:#x} without a park",
                    )
                )
            parked.pop((app, thread), None)
        elif kind == FAULT_BEGIN:
            open_fault = fault_open.get((app, thread))
            if open_fault is not None:
                violations.append(
                    Violation(
                        "fault-nesting",
                        t,
                        app,
                        f"thread {thread} faulted at vpn {key:#x} while a "
                        f"fault at vpn {open_fault[0]:#x} is still open",
                    )
                )
            fault_open[(app, thread)] = (key, t)
        elif kind == FAULT_END:
            if fault_open.pop((app, thread), None) is None and not truncated:
                violations.append(
                    Violation(
                        "fault-nesting",
                        t,
                        app,
                        f"thread {thread} ended a fault at vpn {key:#x} "
                        f"that never began",
                    )
                )
            open_group = group_open.get((app, thread))
            if open_group is not None:
                open_group[1] += 1
        elif kind == FAULT_GROUP_BEGIN:
            open_group = group_open.get((app, thread))
            if open_group is not None:
                violations.append(
                    Violation(
                        "group-pairing",
                        t,
                        app,
                        f"thread {thread} admitted a fault group at vpn "
                        f"{key:#x} while the group at vpn "
                        f"{open_group[0]:#x} is still open",
                    )
                )
            group_open[(app, thread)] = [key, 0, t]
        elif kind == FAULT_GROUP_END:
            open_group = group_open.pop((app, thread), None)
            if open_group is None:
                if not truncated:
                    violations.append(
                        Violation(
                            "group-pairing",
                            t,
                            app,
                            f"thread {thread} ended a fault group at vpn "
                            f"{key:#x} that never began",
                        )
                    )
            elif open_group[1] != arg:
                violations.append(
                    Violation(
                        "group-pairing",
                        t,
                        app,
                        f"thread {thread}'s fault group at vpn "
                        f"{open_group[0]:#x} reported {arg} member(s) but "
                        f"{open_group[1]} fault end(s) occurred inside it",
                    )
                )
        elif kind == EVICT:
            open_reclaim = reclaim_open.get((app, thread))
            if open_reclaim is not None:
                open_reclaim[1] += 1
        elif kind == RECLAIM_GROUP_BEGIN:
            open_reclaim = reclaim_open.get((app, thread))
            if open_reclaim is not None:
                violations.append(
                    Violation(
                        "reclaim-group-pairing",
                        t,
                        app,
                        f"lane {thread} began a reclaim group of {arg} while "
                        f"a group of {open_reclaim[0]} is still open",
                    )
                )
            reclaim_open[(app, thread)] = [arg, 0, t]
        elif kind == RECLAIM_GROUP_END:
            open_reclaim = reclaim_open.pop((app, thread), None)
            if open_reclaim is None:
                if not truncated:
                    violations.append(
                        Violation(
                            "reclaim-group-pairing",
                            t,
                            app,
                            f"lane {thread} ended a reclaim group of {arg} "
                            f"that never began",
                        )
                    )
            else:
                if open_reclaim[1] != arg:
                    violations.append(
                        Violation(
                            "reclaim-group-pairing",
                            t,
                            app,
                            f"lane {thread}'s reclaim group reported {arg} "
                            f"eviction(s) but {open_reclaim[1]} EVICT "
                            f"record(s) occurred inside it",
                        )
                    )
                if arg > open_reclaim[0]:
                    violations.append(
                        Violation(
                            "reclaim-group-pairing",
                            t,
                            app,
                            f"lane {thread}'s reclaim group evicted {arg} "
                            f"page(s), more than the {open_reclaim[0]} "
                            f"planned",
                        )
                    )
        elif kind == BATCH_ENTER:
            open_batch = batch_open.get(app)
            if open_batch is not None:
                violations.append(
                    Violation(
                        "batch-pairing",
                        t,
                        app,
                        f"batch run entered at index {key} while the run "
                        f"entered at index {open_batch[0]} is still open",
                    )
                )
            batch_open[app] = (key, arg, t)
        elif kind == BATCH_EXIT:
            open_batch = batch_open.pop(app, None)
            if open_batch is None:
                if not truncated:
                    violations.append(
                        Violation(
                            "batch-pairing",
                            t,
                            app,
                            "batch run exited without a matching enter",
                        )
                    )
            elif key > open_batch[1] - open_batch[0]:
                violations.append(
                    Violation(
                        "batch-pairing",
                        t,
                        app,
                        f"batch run consumed {key} accesses but only "
                        f"{open_batch[1] - open_batch[0]} were available",
                    )
                )
            if arg not in (0, 1, 2):
                violations.append(
                    Violation(
                        "batch-pairing",
                        t,
                        app,
                        f"batch run exited with unknown outcome {arg}",
                    )
                )

    # End-of-trace: a completed simulation leaves no thread parked and
    # no fault open (the ring never drops a record newer than one it
    # kept, so these fire on truncated traces too).
    for (app, thread), (vpn, t) in parked.items():
        violations.append(
            Violation(
                "park-without-wake",
                t,
                app,
                f"thread {thread} parked on vpn {vpn:#x} was never woken",
            )
        )
    for (app, thread), (vpn, t) in fault_open.items():
        violations.append(
            Violation(
                "fault-nesting",
                t,
                app,
                f"thread {thread}'s fault at vpn {vpn:#x} never ended",
            )
        )
    for app, (start, _batch_len, t) in batch_open.items():
        violations.append(
            Violation(
                "batch-pairing",
                t,
                app,
                f"batch run entered at index {start} never exited",
            )
        )
    for (app, thread), (vpn, _members, t) in group_open.items():
        violations.append(
            Violation(
                "group-pairing",
                t,
                app,
                f"thread {thread}'s fault group at vpn {vpn:#x} never ended",
            )
        )
    for (app, thread), (planned, _evicts, t) in reclaim_open.items():
        violations.append(
            Violation(
                "reclaim-group-pairing",
                t,
                app,
                f"lane {thread}'s reclaim group of {planned} never ended",
            )
        )
    return violations


def assert_trace_ok(records: List[TraceRecord], truncated: bool = False) -> None:
    """Raise ``AssertionError`` listing every violation, if any."""
    violations = check_trace(records, truncated=truncated)
    if violations:
        lines = "\n".join(str(v) for v in violations[:20])
        more = len(violations) - 20
        if more > 0:
            lines += f"\n... and {more} more"
        raise AssertionError(
            f"{len(violations)} trace invariant violation(s):\n{lines}"
        )
