"""Simulation-clock tracing: a bounded ring buffer of typed records.

Tracepoints sit at the existing seams of the swap path — fault
begin/end, RDMA enqueue/serve/complete, prefetch propose/issue/hit/
cancel, reclaim/writeback, swap-entry alloc/free — and cost a single
``is not None`` check when tracing is off (the default).  When on, each
record is one tuple ``(t_us, kind, app, thread, key, arg)`` appended to
a ring buffer: no string formatting, no engine interaction, no RNG, so
tracing never perturbs simulated results.

Exports:

* :func:`to_chrome_trace` — Chrome/Perfetto ``trace_event`` JSON (load
  the dump in https://ui.perfetto.dev or ``chrome://tracing``).
* :func:`summarize_trace` — per-cgroup timeline summaries (fault
  stalls, RDMA queueing/service, prefetch and reclaim activity).

The companion :mod:`repro.obs.check` runs causality lints over the raw
records.
"""

from __future__ import annotations

import json
from typing import Dict, List, Tuple

__all__ = [
    "TraceBuffer",
    "TraceRecord",
    "KIND_NAMES",
    "to_chrome_trace",
    "dump_chrome_trace",
    "summarize_trace",
]

#: One trace record: (t_us, kind, app, thread, key, arg).  ``key`` is a
#: VPN for fault/prefetch/reclaim records, a request id for RDMA
#: records, an entry id for swap-entry records, and a pool serial for
#: request-pool records; ``arg`` is per-kind extra payload.
TraceRecord = Tuple[float, int, str, int, int, object]

# -- record kinds ----------------------------------------------------------
# Fault path (kernel/swap_system.py); key = vpn.
FAULT_BEGIN = 0  # arg: 1 if write access else 0
FAULT_END = 1  # arg: stall_us for this fault
FAULT_PARK = 2  # thread blocks on in-flight I/O for key=vpn
FAULT_WAKE = 3  # the parked thread resumed
DEMAND_ISSUE = 4  # demand swap-in submitted; arg: request_id
DEMAND_RETRY = 5  # demand read reissued after an error CQE; arg: retry no.
WB_RETRY = 6  # writeback reissued after an error CQE; arg: retry no.

# Prefetch (prefetch/*, kernel/swap_system.py, core/canvas.py); key = vpn.
PF_PROPOSE = 7  # arg: number of VPNs proposed for this fault
PF_ISSUE = 8  # prefetch read submitted; arg: request_id
PF_HIT = 9  # fault landed on a ready prefetched page
PF_LATE = 10  # fault blocked on a still-in-flight prefetch
PF_CANCEL = 11  # prefetch cancelled after an error CQE
PF_DROP = 12  # prefetch dropped; arg: "stale" (waiter) or "sched" (queue)

# Reclaim / writeback (kernel/swap_system.py, mem/lru.py); key = vpn.
EVICT = 13  # LRU victim selected and unmapped
CLEAN_DROP = 14  # clean page dropped without writeback (kept entry)
WB_ISSUE = 15  # writeback submitted; arg: request_id
WB_COMPLETE = 16  # writeback completion processed by the kernel
WB_RESCUE = 17  # page re-faulted mid-writeback and mapped back in
LRU_DEMOTE = 18  # active->inactive demotions; arg: count (key = 0)

# Swap entries (swap/allocator.py, kernel/swap_system.py); key = entry_id.
ENTRY_ALLOC = 19  # entry bound to a page for writeback
ENTRY_FREE = 20  # entry returned to its partition's free pool

# RDMA / NIC (rdma/nic.py); key = request_id, arg = request kind value.
QP_ENQ = 21  # request pushed into a queue pair
QP_SERVE = 22  # NIC starts serving the request (wire reserved)
QP_COMPLETE = 23  # data landed, completion dispatched
QP_ERROR_CQE = 24  # completion delivered as an error CQE
QP_DROP_SKIP = 25  # dropped request skipped at dispatch
WIRE_DROP = 26  # injected silent wire drop (fault plan)
WIRE_ERROR = 27  # injected completion error (fault plan)
RETRANSMIT = 28  # request re-enqueued on the rtx QP; arg: attempt no.

# Request pool (kernel/swap_system.py, rdma/message.py); key = pool serial.
REQ_ACQUIRE = 29  # pooled request leaves the pool; arg: request_id
REQ_RECYCLE = 30  # pooled request returned to the pool; arg: request_id

# Batched resident fast path (kernel/swap_system.py, mem/lru.py).
BATCH_ENTER = 31  # consume_batch entered; key = start index, arg = batch len
BATCH_EXIT = 32  # consume_batch returned; key = run length, arg = outcome
LRU_EPOCH = 33  # generation-stamp epoch renormalized; key = pages, arg = old gen

# Coalesced fault admission (kernel/swap_system.py); key = first vpn.
FAULT_GROUP_BEGIN = 34  # group admitted; arg: planned run length
FAULT_GROUP_END = 35  # group done; arg: members actually faulted

# Grouped reclaim (kernel/swap_system.py _evict_many); key unused (0).
RECLAIM_GROUP_BEGIN = 36  # batch started; arg: planned batch size
RECLAIM_GROUP_END = 37  # batch done; arg: pages actually evicted

# Rack-scale disaggregation (cluster.py); key = server_id unless noted.
RACK_SERVER_DEAD = 38  # memory server failed; arg: entries homed there
RACK_SERVER_DRAIN = 39  # drain started; arg: entries homed there
RACK_REHOME = 40  # page re-homed; key = old entry id, arg = new server id
RACK_MIGRATE = 41  # migration transfer resolved; key = entry id, arg = op
RACK_RETIRE = 42  # entry withdrawn; key = entry id, arg = server id

# App lifecycle (kernel/swap_system.py); key = mapped pages at the event.
APP_REGISTER = 43  # app registered with the swap system
APP_UNREGISTER = 44  # teardown complete; arg: entries freed by the sweep

#: Thread lane for grouped-reclaim trace records.  kswapd shares core 0
#: with direct-reclaiming fault threads, so its grouped rounds emit on
#: this sentinel lane instead — the reclaim-group-pairing lint can then
#: count a group's EVICTs without catching concurrent direct-reclaim
#: evictions interleaved at the same instants.
RECLAIM_LANE = -1

#: Perfetto tid the sentinel lane renders on.  Chrome trace viewers sort
#: and colour threads by tid and a negative tid renders as a bogus
#: pseudo-thread, so the exporter remaps RECLAIM_LANE records onto this
#: dedicated positive lane (kept below the RDMA lanes at 1000+) with a
#: proper thread name instead of passing -1 through.
KSWAPD_LANE = 900

KIND_NAMES = {
    FAULT_BEGIN: "fault_begin",
    FAULT_END: "fault_end",
    FAULT_PARK: "fault_park",
    FAULT_WAKE: "fault_wake",
    DEMAND_ISSUE: "demand_issue",
    DEMAND_RETRY: "demand_retry",
    WB_RETRY: "wb_retry",
    PF_PROPOSE: "pf_propose",
    PF_ISSUE: "pf_issue",
    PF_HIT: "pf_hit",
    PF_LATE: "pf_late",
    PF_CANCEL: "pf_cancel",
    PF_DROP: "pf_drop",
    EVICT: "evict",
    CLEAN_DROP: "clean_drop",
    WB_ISSUE: "wb_issue",
    WB_COMPLETE: "wb_complete",
    WB_RESCUE: "wb_rescue",
    LRU_DEMOTE: "lru_demote",
    ENTRY_ALLOC: "entry_alloc",
    ENTRY_FREE: "entry_free",
    QP_ENQ: "qp_enq",
    QP_SERVE: "qp_serve",
    QP_COMPLETE: "qp_complete",
    QP_ERROR_CQE: "qp_error_cqe",
    QP_DROP_SKIP: "qp_drop_skip",
    WIRE_DROP: "wire_drop",
    WIRE_ERROR: "wire_error",
    RETRANSMIT: "retransmit",
    REQ_ACQUIRE: "req_acquire",
    REQ_RECYCLE: "req_recycle",
    BATCH_ENTER: "batch_enter",
    BATCH_EXIT: "batch_exit",
    LRU_EPOCH: "lru_epoch",
    FAULT_GROUP_BEGIN: "fault_group_begin",
    FAULT_GROUP_END: "fault_group_end",
    RECLAIM_GROUP_BEGIN: "reclaim_group_begin",
    RECLAIM_GROUP_END: "reclaim_group_end",
    RACK_SERVER_DEAD: "rack_server_dead",
    RACK_SERVER_DRAIN: "rack_server_drain",
    RACK_REHOME: "rack_rehome",
    RACK_MIGRATE: "rack_migrate",
    RACK_RETIRE: "rack_retire",
    APP_REGISTER: "app_register",
    APP_UNREGISTER: "app_unregister",
}


class TraceBuffer:
    """A bounded ring of :data:`TraceRecord` tuples on the sim clock.

    ``emit`` is the only method on the hot path; it reads the engine
    clock and appends one tuple.  Once ``capacity`` records exist the
    ring wraps, dropping the oldest records (``truncated`` turns True);
    the invariant checker relaxes its missing-predecessor rules on
    truncated traces.
    """

    def __init__(self, engine, capacity: int = 1_000_000):
        if capacity <= 0:
            raise ValueError("trace capacity must be positive")
        self.engine = engine
        self.capacity = capacity
        self._records: List[TraceRecord] = []
        self._cursor = 0
        self.emitted = 0

    def emit(self, kind: int, app: str, thread: int, key: int, arg=0) -> None:
        record = (self.engine.now, kind, app, thread, key, arg)
        records = self._records
        if len(records) < self.capacity:
            records.append(record)
        else:
            records[self._cursor] = record
            self._cursor += 1
            if self._cursor == self.capacity:
                self._cursor = 0
        self.emitted += 1

    def __len__(self) -> int:
        return len(self._records)

    @property
    def truncated(self) -> bool:
        """True when the ring wrapped and old records were dropped."""
        return self.emitted > len(self._records)

    def records(self) -> List[TraceRecord]:
        """All retained records in chronological (emission) order."""
        records = self._records
        if self.emitted <= self.capacity:
            return list(records)
        return records[self._cursor :] + records[: self._cursor]

    # A trace rides inside pickled ExperimentResults (parallel runner,
    # disk cache); the engine reference cannot cross the boundary.
    def __getstate__(self) -> dict:
        return {
            "capacity": self.capacity,
            "records": self.records(),
            "emitted": self.emitted,
        }

    def __setstate__(self, state: dict) -> None:
        self.engine = None
        self.capacity = state["capacity"]
        self._records = state["records"]
        self._cursor = 0  # records() unrolled the ring before pickling
        self.emitted = state["emitted"]

    def to_chrome(self) -> dict:
        return to_chrome_trace(self.records())

    def summarize(self) -> Dict[str, Dict[str, float]]:
        return summarize_trace(self.records())


# -- Chrome/Perfetto export ------------------------------------------------

#: Synthetic tid lanes for RDMA slices (spread by request id so
#: overlapping transfers render side by side instead of stacking).
_RDMA_LANE_BASE = 1000
_RDMA_LANES = 32

_INSTANT_KINDS = {
    FAULT_PARK,
    FAULT_WAKE,
    DEMAND_ISSUE,
    DEMAND_RETRY,
    WB_RETRY,
    PF_PROPOSE,
    PF_ISSUE,
    PF_HIT,
    PF_LATE,
    PF_CANCEL,
    PF_DROP,
    EVICT,
    CLEAN_DROP,
    WB_ISSUE,
    WB_COMPLETE,
    WB_RESCUE,
    LRU_DEMOTE,
    QP_DROP_SKIP,
    WIRE_DROP,
    WIRE_ERROR,
    RETRANSMIT,
    BATCH_ENTER,
    BATCH_EXIT,
    LRU_EPOCH,
    FAULT_GROUP_BEGIN,
    FAULT_GROUP_END,
    RECLAIM_GROUP_BEGIN,
    RECLAIM_GROUP_END,
    APP_REGISTER,
    APP_UNREGISTER,
}


def to_chrome_trace(records: List[TraceRecord]) -> dict:
    """Records → a Chrome ``trace_event`` JSON object (dict).

    Mapping: each app becomes a process (pid); faults render as B/E
    duration slices on their faulting thread's track; RDMA transfers
    render as complete ("X") slices — queueing from enqueue to serve,
    service from serve to completion — on synthetic per-request lanes;
    everything else is a thread-scoped instant event.
    """
    pids: Dict[str, int] = {}
    events: List[dict] = []
    kswapd_named: set = set()

    def pid_of(app: str) -> int:
        pid = pids.get(app)
        if pid is None:
            pid = pids[app] = len(pids) + 1
            events.append(
                {
                    "ph": "M",
                    "name": "process_name",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": app or "global"},
                }
            )
        return pid

    def kswapd_lane(pid: int) -> int:
        if pid not in kswapd_named:
            kswapd_named.add(pid)
            events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": pid,
                    "tid": KSWAPD_LANE,
                    "args": {"name": "kswapd (grouped reclaim)"},
                }
            )
        return KSWAPD_LANE

    # RDMA lifecycle state: request id -> (enqueue_t, serve_t).
    enq_t: Dict[int, float] = {}
    serve_t: Dict[int, float] = {}

    for t, kind, app, thread, key, arg in records:
        pid = pid_of(app)
        if kind == FAULT_BEGIN:
            events.append(
                {
                    "ph": "B",
                    "name": "fault",
                    "cat": "fault",
                    "pid": pid,
                    "tid": thread,
                    "ts": t,
                    "args": {"vpn": key, "write": arg},
                }
            )
        elif kind == FAULT_END:
            events.append(
                {
                    "ph": "E",
                    "name": "fault",
                    "cat": "fault",
                    "pid": pid,
                    "tid": thread,
                    "ts": t,
                    "args": {"vpn": key},
                }
            )
        elif kind == QP_ENQ:
            enq_t[key] = t
        elif kind == QP_SERVE:
            lane = _RDMA_LANE_BASE + key % _RDMA_LANES
            queued_since = enq_t.pop(key, None)
            if queued_since is not None and t > queued_since:
                events.append(
                    {
                        "ph": "X",
                        "name": f"queued:{arg}",
                        "cat": "rdma",
                        "pid": pid,
                        "tid": lane,
                        "ts": queued_since,
                        "dur": t - queued_since,
                        "args": {"req": key},
                    }
                )
            serve_t[key] = t
        elif kind in (QP_COMPLETE, QP_ERROR_CQE):
            lane = _RDMA_LANE_BASE + key % _RDMA_LANES
            served_since = serve_t.pop(key, None)
            if served_since is not None:
                events.append(
                    {
                        "ph": "X",
                        "name": f"rdma:{arg}"
                        + (":error" if kind == QP_ERROR_CQE else ""),
                        "cat": "rdma",
                        "pid": pid,
                        "tid": lane,
                        "ts": served_since,
                        "dur": max(t - served_since, 0.001),
                        "args": {"req": key},
                    }
                )
        elif kind in _INSTANT_KINDS:
            if kind in (WIRE_DROP, WIRE_ERROR, RETRANSMIT, QP_DROP_SKIP):
                lane = _RDMA_LANE_BASE + key % _RDMA_LANES
            elif thread == RECLAIM_LANE:
                # Grouped-reclaim sentinel: render on the named kswapd
                # lane instead of a bogus tid=-1 pseudo-thread.
                lane = kswapd_lane(pid)
            else:
                lane = thread
            events.append(
                {
                    "ph": "i",
                    "name": KIND_NAMES[kind],
                    "cat": "swap",
                    "pid": pid,
                    "tid": lane,
                    "ts": t,
                    "s": "t",
                    "args": {"key": key, "arg": arg},
                }
            )
        # REQ_ACQUIRE/REQ_RECYCLE and ENTRY_ALLOC/ENTRY_FREE are checker
        # fodder; they would only add noise to the visual timeline.
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def dump_chrome_trace(path: str, records: List[TraceRecord]) -> None:
    """Write the Chrome ``trace_event`` JSON for ``records`` to ``path``."""
    with open(path, "w") as fh:
        json.dump(to_chrome_trace(records), fh)


# -- per-cgroup timeline summaries ----------------------------------------


def summarize_trace(records: List[TraceRecord]) -> Dict[str, Dict[str, float]]:
    """Per-app timeline summary: counts plus derived stall/service sums.

    Returns ``{app: {metric: value}}``.  Fault stalls come from paired
    begin/end records; RDMA queueing and service times from paired
    enqueue/serve/complete records, attributed to the requesting app.
    """
    summaries: Dict[str, Dict[str, float]] = {}
    fault_open: Dict[Tuple[str, int], float] = {}
    enq_t: Dict[int, float] = {}
    serve_t: Dict[int, float] = {}

    def summary(app: str) -> Dict[str, float]:
        entry = summaries.get(app)
        if entry is None:
            entry = summaries[app] = {
                "first_us": None,
                "last_us": 0.0,
                "faults": 0,
                "fault_stall_us": 0.0,
                "demand_issued": 0,
                "demand_retries": 0,
                "prefetch_issued": 0,
                "prefetch_hits": 0,
                "prefetch_late": 0,
                "prefetch_drops": 0,
                "prefetch_cancelled": 0,
                "evictions": 0,
                "clean_drops": 0,
                "writebacks": 0,
                "writeback_retries": 0,
                "rescues": 0,
                "rdma_queue_us": 0.0,
                "rdma_service_us": 0.0,
                "rdma_completed": 0,
                "error_cqes": 0,
                "retransmits": 0,
                "wire_faults": 0,
                "batch_runs": 0,
                "lru_epochs": 0,
                "fault_groups": 0,
                "reclaim_groups": 0,
                # Background-reclaim share of the totals above: records
                # emitted on the grouped-reclaim sentinel lane, kept out
                # of any per-thread attribution.  evictions/clean_drops/
                # writebacks stay whole-app totals; these break out how
                # much of each came from kswapd's grouped rounds.
                "kswapd_evictions": 0,
                "kswapd_clean_drops": 0,
                "kswapd_writebacks": 0,
                "app_registers": 0,
                "app_unregisters": 0,
            }
        return entry

    counters = {
        DEMAND_ISSUE: "demand_issued",
        DEMAND_RETRY: "demand_retries",
        PF_ISSUE: "prefetch_issued",
        PF_HIT: "prefetch_hits",
        PF_LATE: "prefetch_late",
        PF_DROP: "prefetch_drops",
        PF_CANCEL: "prefetch_cancelled",
        EVICT: "evictions",
        CLEAN_DROP: "clean_drops",
        WB_ISSUE: "writebacks",
        WB_RETRY: "writeback_retries",
        WB_RESCUE: "rescues",
        QP_ERROR_CQE: "error_cqes",
        RETRANSMIT: "retransmits",
        WIRE_DROP: "wire_faults",
        WIRE_ERROR: "wire_faults",
        BATCH_EXIT: "batch_runs",
        LRU_EPOCH: "lru_epochs",
        FAULT_GROUP_BEGIN: "fault_groups",
        RECLAIM_GROUP_BEGIN: "reclaim_groups",
        APP_REGISTER: "app_registers",
        APP_UNREGISTER: "app_unregisters",
    }

    kswapd_counters = {
        EVICT: "kswapd_evictions",
        CLEAN_DROP: "kswapd_clean_drops",
        WB_ISSUE: "kswapd_writebacks",
    }

    for t, kind, app, thread, key, arg in records:
        entry = summary(app)
        if entry["first_us"] is None:
            entry["first_us"] = t
        entry["last_us"] = t
        if thread == RECLAIM_LANE:
            name = kswapd_counters.get(kind)
            if name is not None:
                entry[name] += 1
        if kind == FAULT_BEGIN:
            entry["faults"] += 1
            fault_open[(app, thread)] = t
        elif kind == FAULT_END:
            begin = fault_open.pop((app, thread), None)
            if begin is not None:
                entry["fault_stall_us"] += t - begin
        elif kind == QP_ENQ:
            enq_t[key] = t
        elif kind == QP_SERVE:
            begin = enq_t.pop(key, None)
            if begin is not None:
                entry["rdma_queue_us"] += t - begin
            serve_t[key] = t
        elif kind == QP_COMPLETE:
            begin = serve_t.pop(key, None)
            if begin is not None:
                entry["rdma_service_us"] += t - begin
            entry["rdma_completed"] += 1
        else:
            name = counters.get(kind)
            if name is not None:
                entry[name] += 1
            if kind == QP_ERROR_CQE:
                serve_t.pop(key, None)
    for entry in summaries.values():
        if entry["first_us"] is None:
            entry["first_us"] = 0.0
    return summaries
