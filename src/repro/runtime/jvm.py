"""Language-runtime models backing application-tier prefetching (§5.2).

Canvas develops its application-tier prefetcher inside the JVM because
the runtime already owns the semantic information the kernel lacks:

* the **write barrier** records references between objects on different
  page groups into a summary graph (pattern 1, reference-based);
* the **user→kernel thread map** lets faulting addresses be segregated by
  Java thread, filtering out GC/JIT threads (pattern 2, thread-based);
* a **search tree of large arrays** (allocations above 1 MB) decides
  which pattern to apply: many threads + fault inside a large array →
  per-thread stride analysis, otherwise the reference graph.

:class:`JvmRuntime` packages all three plus the uffd fault handler the
Canvas kernel forwards into.  :class:`NativeRuntime` is the pthread
equivalent: thread IDs are kernel-visible already, and the paper enables
only per-thread pattern analysis for native programs.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import List, Optional, Set, Tuple

from repro.prefetch.reference_graph import PageGroupGraph, ReferenceGraphPrefetcher
from repro.prefetch.thread_pattern import ThreadPatternPrefetcher

__all__ = ["RuntimeStats", "JvmRuntime", "NativeRuntime"]

#: §5.2: the JVM records arrays whose size exceeds 1 MB (= 256 pages).
LARGE_ARRAY_PAGES = 256
#: "Many threads" threshold for choosing the thread-based pattern.
MANY_THREADS = 4


@dataclass
class RuntimeStats:
    faults_handled: int = 0
    gc_faults_ignored: int = 0
    thread_pattern_used: int = 0
    reference_pattern_used: int = 0
    barrier_edges_recorded: int = 0


class JvmRuntime:
    """A managed runtime: GC threads, write barrier, semantic prefetching."""

    def __init__(
        self,
        app_name: str,
        group_pages: int = 16,
        max_hops: int = 3,
        prefetch_cap: int = 16,
        min_hops: int = 2,
    ):
        self.app_name = app_name
        self.reference_graph = PageGroupGraph(group_pages)
        self.thread_patterns = ThreadPatternPrefetcher(
            name=f"{app_name}.thread-pattern"
        )
        self.reference_prefetcher = ReferenceGraphPrefetcher(
            self.reference_graph,
            max_hops=max_hops,
            max_pages=prefetch_cap,
            # Hop-1 pages are usually faulted before a read could land;
            # deeper hops are what prefetching can actually win.
            min_hops=min_hops,
        )
        self.stats = RuntimeStats()
        #: The user→kernel thread map: which kernel tids are Java
        #: application threads vs auxiliary (GC, JIT) threads.
        self.app_thread_ids: Set[int] = set()
        self.aux_thread_ids: Set[int] = set()
        #: Sorted (start_vpn, end_vpn) of registered large arrays.
        self._large_arrays: List[Tuple[int, int]] = []
        self._array_starts: List[int] = []

    # -- registration (done by the workload at build time) ---------------

    def register_threads(self, app_tids: List[int], aux_tids: List[int]) -> None:
        self.app_thread_ids.update(app_tids)
        self.aux_thread_ids.update(aux_tids)

    def record_large_array(self, start_vpn: int, n_pages: int) -> None:
        """Array-allocation hook: track arrays above the 1 MB threshold."""
        if n_pages < LARGE_ARRAY_PAGES:
            return
        self._large_arrays.append((start_vpn, start_vpn + n_pages))
        self._large_arrays.sort()
        self._array_starts = [start for start, _end in self._large_arrays]

    def record_reference(self, src_vpn: int, dst_vpn: int) -> None:
        """Write-barrier hook for ``a.f = b`` crossing page groups."""
        before = self.reference_graph.edge_count
        self.reference_graph.record_reference(src_vpn, dst_vpn)
        self.stats.barrier_edges_recorded += self.reference_graph.edge_count - before

    # -- queries --------------------------------------------------------

    def in_large_array(self, vpn: int) -> bool:
        index = bisect_right(self._array_starts, vpn) - 1
        if index < 0:
            return False
        start, end = self._large_arrays[index]
        return start <= vpn < end

    @property
    def many_threads(self) -> bool:
        return len(self.app_thread_ids) >= MANY_THREADS

    # -- the uffd fault handler -------------------------------------------

    def handle_forwarded_fault(self, thread_id: int, vpn: int) -> List[int]:
        """§5.2 policy: pick the semantic pattern and propose prefetches."""
        if thread_id in self.aux_thread_ids:
            # "prefetching for a GC thread has zero benefit".
            self.stats.gc_faults_ignored += 1
            return []
        self.stats.faults_handled += 1
        if self.many_threads and self.in_large_array(vpn):
            self.stats.thread_pattern_used += 1
            return self.thread_patterns.on_fault(self.app_name, thread_id, vpn, 0.0)
        # Keep the per-thread history warm even on the reference branch so
        # a later switch to the thread pattern starts with context.
        self.thread_patterns.observe(self.app_name, thread_id, vpn)
        self.stats.reference_pattern_used += 1
        return self.reference_prefetcher.on_fault(self.app_name, thread_id, vpn, 0.0)


class NativeRuntime:
    """pthread programs: thread-based pattern analysis only (§5.2)."""

    def __init__(self, app_name: str):
        self.app_name = app_name
        self.thread_patterns = ThreadPatternPrefetcher(
            name=f"{app_name}.thread-pattern"
        )
        self.stats = RuntimeStats()

    def register_threads(self, app_tids: List[int], aux_tids: List[int]) -> None:
        pass  # kernel threads are directly visible for native programs

    def record_large_array(self, start_vpn: int, n_pages: int) -> None:
        pass

    def record_reference(self, src_vpn: int, dst_vpn: int) -> None:
        pass

    def handle_forwarded_fault(self, thread_id: int, vpn: int) -> List[int]:
        self.stats.faults_handled += 1
        self.stats.thread_pattern_used += 1
        return self.thread_patterns.on_fault(self.app_name, thread_id, vpn, 0.0)
