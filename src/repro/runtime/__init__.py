"""Runtime models: the JVM (write barrier, thread map) and native programs."""

from repro.runtime.jvm import (
    LARGE_ARRAY_PAGES,
    MANY_THREADS,
    JvmRuntime,
    NativeRuntime,
    RuntimeStats,
)

__all__ = [
    "JvmRuntime",
    "NativeRuntime",
    "RuntimeStats",
    "LARGE_ARRAY_PAGES",
    "MANY_THREADS",
]
