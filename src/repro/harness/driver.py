"""Application thread driver.

Turns a workload's access stream into simulated thread behaviour: fast
in-place accesses for resident pages (CPU time batched onto the app's
core set) and full fault handling through the swap system otherwise.

Faulting threads release their core while blocked on I/O — the simulated
equivalent of the kernel scheduling another runnable thread during a
swap-in.

Two drivers share the same semantics:

* :func:`app_thread` — scalar protocol, one generator round-trip per
  access (compatibility path, ``ExperimentConfig.batched_streams=False``);
* :func:`app_thread_batched` — consumes
  :class:`~repro.workloads.batch.AccessBatch` chunks through
  ``BaseSwapSystem.consume_batch``, which classifies and retires whole
  runs of resident accesses per call.  Yield sequences (and therefore
  all simulated timestamps and statistics) are bit-identical between
  the two.
"""

from __future__ import annotations

from typing import Generator, Iterable, Iterator, Tuple

from repro.kernel.cgroup import AppContext
from repro.kernel.swap_system import (
    BATCH_FAULT,
    BATCH_FLUSH,
    BaseSwapSystem,
)

__all__ = ["Access", "app_thread", "app_thread_batched", "spawn_app"]

#: (vpn, is_write, cpu_us) — one memory access and its attached compute.
Access = Tuple[int, bool, float]


def app_thread(
    system: BaseSwapSystem,
    app: AppContext,
    thread_id: int,
    accesses: Iterable[Access],
    cpu_flush_us: float = 25.0,
    profiler=None,
) -> Generator:
    """Run one application thread's access stream to completion.

    Resident-page accesses accumulate their CPU cost and flush it to the
    app's core set in ``cpu_flush_us`` slices, keeping the event count per
    access O(1/batch) instead of O(1).
    """
    pending_cpu = 0.0
    pages = app.space.pages
    stats = app.stats
    # Bound methods hoisted out of the loop: this is the single hottest
    # Python loop in the unbatched simulator (one iteration per access).
    note_access = system.note_access
    handle_fault = system.handle_fault
    execute = app.cores.execute
    if profiler is not None:
        accesses = profiler.timed_iter("stream_gen", iter(accesses))
        handle_fault = profiler.timed_generator_fn("fault_path", handle_fault)
    for vpn, write, cpu_us in accesses:
        stats.accesses += 1
        pending_cpu += cpu_us
        page = pages[vpn]
        if page.resident:
            note_access(app, page, write)
            if pending_cpu >= cpu_flush_us:
                yield from execute(pending_cpu)
                pending_cpu = 0.0
        else:
            if pending_cpu > 0.0:
                yield from execute(pending_cpu)
                pending_cpu = 0.0
            yield from handle_fault(app, thread_id, vpn, write)
            if write:
                page.dirty = True
    if pending_cpu > 0.0:
        yield from execute(pending_cpu)


def app_thread_batched(
    system: BaseSwapSystem,
    app: AppContext,
    thread_id: int,
    batches,
    cpu_flush_us: float = 25.0,
    profiler=None,
) -> Generator:
    """Batched twin of :func:`app_thread`.

    ``consume_batch`` retires runs of resident accesses in one call; the
    driver only surfaces at flush boundaries, faults, and batch ends —
    performing exactly the yields the scalar driver would.
    """
    pending_cpu = 0.0
    pages = app.space.pages
    handle_fault = system.handle_fault
    fault_group = system.handle_fault_group
    execute = app.cores.execute
    # Grouped admission rides the same gate as the vectorized consume
    # core (flat LRU state, no foreign pages); profiled runs keep the
    # scalar-member path so fault-path attribution stays comparable.
    grouped = (
        profiler is None
        and system.config.grouped_faults
        and app.lru.flat
        and not app.space.has_foreign_pages
    )
    if profiler is None:
        consume = system.consume_batch
    else:
        batches = profiler.timed_iter("stream_gen", iter(batches))
        handle_fault = profiler.timed_generator_fn("fault_path", handle_fault)

        def consume(app, batch, i, pending, flush):
            return system.consume_batch_profiled(
                app, batch, i, pending, flush, profiler
            )

    for batch in batches:
        n = len(batch)
        i = 0
        while i < n:
            i, pending_cpu, outcome = consume(app, batch, i, pending_cpu, cpu_flush_us)
            if outcome == BATCH_FLUSH:
                yield from execute(pending_cpu)
                pending_cpu = 0.0
            elif outcome == BATCH_FAULT:
                if grouped:
                    # Coalesced admission: the whole run of consecutive
                    # non-resident accesses resolves inside one call
                    # (bit-identical member by member to the scalar
                    # branch below); the returned index is the first
                    # access the group did not consume.
                    i = yield from fault_group(app, thread_id, batch, i, pending_cpu)
                    pending_cpu = 0.0
                    continue
                vpn = batch.vpn_list[i]
                write = batch.write_list[i]
                if pending_cpu > 0.0:
                    yield from execute(pending_cpu)
                    pending_cpu = 0.0
                yield from handle_fault(app, thread_id, vpn, write)
                if write:
                    pages[vpn].dirty = True
                i += 1
    if pending_cpu > 0.0:
        yield from execute(pending_cpu)


def run_to_completion(engine, processes, limit_us: float = 60_000_000_000.0) -> float:
    """Run the engine until every given process finishes.

    Daemon processes (kswapd, schedulers, hot-page scanners) never exit,
    so ``engine.run()`` would spin on their periodic timers forever; this
    waits exactly for the application processes instead.  Returns the
    finish time.  ``limit_us`` guards against hangs.
    """
    from repro.sim.engine import AllOf

    gate = AllOf(engine, processes)
    engine.run_until_fired(gate, limit=limit_us)
    return engine.now


def spawn_app(
    system: BaseSwapSystem,
    app: AppContext,
    thread_streams: Iterable[Iterator],
    cpu_flush_us: float = 25.0,
    batched: bool = False,
    profiler=None,
):
    """Spawn one process per thread stream; returns the joined process.

    ``batched=True`` treats each stream as AccessBatch chunks and drives
    it through :func:`app_thread_batched`.  Marks ``app.started_at_us`` /
    ``app.finished_at_us`` around the whole application, which is what
    the completion-time figures report.
    """
    engine = system.engine
    thread_fn = app_thread_batched if batched else app_thread

    def run_all():
        app.started_at_us = engine.now
        threads = [
            engine.spawn(
                thread_fn(system, app, thread_id, stream, cpu_flush_us, profiler),
                name=f"{app.name}.t{thread_id}",
            )
            for thread_id, stream in enumerate(thread_streams)
        ]
        yield engine.all_of(threads)
        app.finished_at_us = engine.now

    return engine.spawn(run_all(), name=f"{app.name}.main")
