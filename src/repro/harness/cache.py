"""Persistent on-disk cache of experiment results.

Simulated runs are deterministic: the same (workload set, config, source
tree) triple always produces the same :class:`ExperimentResult`.  This
module memoizes that function on disk, so repeated benchmark invocations
— and figures that share co-runs (Figs. 4/5, 10/11/12) — skip
simulation entirely across processes.

Keys are SHA-256 over three components:

* the workload name tuple,
* the frozen :class:`ExperimentConfig` (every field, dicts canonicalized),
* a fingerprint of the ``repro`` source tree, so *any* code change
  invalidates every cached result.  Caching can therefore never mask a
  behavioral change — a stale hit is structurally impossible.

The cache lives under ``$REPRO_CACHE_DIR`` (unset ⇒ disabled).  Writes
are atomic (temp file + rename) so concurrent worker processes can share
one directory.  Hit/miss/store counters are kept in
:data:`CACHE_STATS` and surfaced by the benchmark harness.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import time
from dataclasses import dataclass, fields
from pathlib import Path
from typing import Iterable, List, Optional, Tuple

__all__ = [
    "CACHE_DIR_ENV",
    "CacheStats",
    "CACHE_STATS",
    "DiskResultCache",
    "freeze",
    "config_key",
    "job_key",
    "source_fingerprint",
    "default_disk_cache",
    "cached_run",
]

#: Environment variable selecting the cache directory (unset ⇒ disabled).
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Bump to invalidate every cached result after a format change.
CACHE_FORMAT_VERSION = 1


@dataclass
class CacheStats:
    """Counters for one process's cache traffic."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    stores: int = 0
    #: Wall-clock seconds spent actually simulating (cache misses).
    simulate_seconds: float = 0.0
    #: Wall-clock seconds spent loading results from disk.
    load_seconds: float = 0.0

    @property
    def total_lookups(self) -> int:
        return self.memory_hits + self.disk_hits + self.misses

    def reset(self) -> None:
        self.memory_hits = 0
        self.disk_hits = 0
        self.misses = 0
        self.stores = 0
        self.simulate_seconds = 0.0
        self.load_seconds = 0.0


#: Process-global tally, reported by benchmarks and the CLI.
CACHE_STATS = CacheStats()


def freeze(value):
    """Recursively convert a config value into a hashable, ordered form.

    Nested config dataclasses (``FaultConfig``, ``ClusterConfig``,
    ``TrafficConfig``, ``SloConfig``, ...) are expanded field by field —
    with the class name as discriminator — so every knob lands in the
    key explicitly rather than through ``repr`` happening to cover it,
    and two different config types with equal fields can never collide.
    """
    import dataclasses

    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return (type(value).__name__,) + tuple(
            (f.name, freeze(getattr(value, f.name)))
            for f in dataclasses.fields(value)
        )
    if isinstance(value, dict):
        return tuple(sorted((k, freeze(v)) for k, v in value.items()))
    if isinstance(value, (list, set, tuple)):
        return tuple(freeze(v) for v in value)
    return value


def config_key(config) -> tuple:
    """Every field of an ``ExperimentConfig``, frozen, in declaration order."""
    return tuple((f.name, freeze(getattr(config, f.name))) for f in fields(config))


_FINGERPRINT: Optional[str] = None


def source_fingerprint() -> str:
    """SHA-256 over the ``repro`` package sources (cached per process).

    Any edit to any ``.py`` file under ``src/repro`` changes the
    fingerprint, invalidating all previously cached results.
    """
    global _FINGERPRINT
    if _FINGERPRINT is None:
        import repro

        root = Path(repro.__file__).parent
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            digest.update(str(path.relative_to(root)).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _FINGERPRINT = digest.hexdigest()
    return _FINGERPRINT


def job_key(workload_names: Iterable[str], config) -> str:
    """Stable hex key for one (workloads, config, source tree) job."""
    payload = repr(
        (
            CACHE_FORMAT_VERSION,
            tuple(workload_names),
            config_key(config),
            source_fingerprint(),
        )
    )
    return hashlib.sha256(payload.encode()).hexdigest()


class DiskResultCache:
    """Pickled ``ExperimentResult`` snapshots in one flat directory."""

    def __init__(self, root: Path):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def path_for(self, key: str) -> Path:
        return self.root / f"{key}.pkl"

    def get(self, key: str):
        """Load a cached result, or None.  Corrupt entries are dropped."""
        path = self.path_for(key)
        if not path.exists():
            return None
        try:
            with path.open("rb") as handle:
                return pickle.load(handle)
        except Exception:  # corrupt / truncated / incompatible entry
            try:
                path.unlink()
            except OSError:
                pass
            return None

    def put(self, key: str, result) -> None:
        """Atomically store a result so concurrent writers never collide."""
        path = self.path_for(key)
        fd, tmp_name = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(result, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def entries(self) -> List[Path]:
        return sorted(self.root.glob("*.pkl"))

    def clear(self) -> int:
        removed = 0
        for path in self.entries():
            path.unlink()
            removed += 1
        return removed


def default_disk_cache() -> Optional[DiskResultCache]:
    """The cache selected by ``$REPRO_CACHE_DIR``, or None when unset."""
    cache_dir = os.environ.get(CACHE_DIR_ENV)
    if not cache_dir:
        return None
    return DiskResultCache(Path(cache_dir))


def cached_run(
    workload_names: List[str], config
) -> Tuple[object, str]:
    """Run one experiment through the disk layer.

    Returns ``(result, source)`` where source is ``"disk"`` or
    ``"simulated"``.  Misses are simulated and stored back (when the
    cache is enabled); counters in :data:`CACHE_STATS` track both paths.
    """
    from repro.harness.experiment import run_experiment

    key = job_key(workload_names, config)
    disk = default_disk_cache()
    if disk is not None:
        start = time.perf_counter()
        result = disk.get(key)
        if result is not None:
            CACHE_STATS.disk_hits += 1
            CACHE_STATS.load_seconds += time.perf_counter() - start
            return result, "disk"
    CACHE_STATS.misses += 1
    start = time.perf_counter()
    result = run_experiment(list(workload_names), config)
    CACHE_STATS.simulate_seconds += time.perf_counter() - start
    if disk is not None:
        disk.put(key, result)
        CACHE_STATS.stores += 1
    return result, "simulated"
