"""The simulated host machine.

Mirrors the paper's testbed topology: one application server whose
remote memory sits behind a single 40 Gbps InfiniBand adapter.  A
:class:`Machine` bundles the event engine, the NIC, telemetry, and the
RNG registry so experiments construct everything from one seed.
"""

from __future__ import annotations

from typing import Optional

from repro.kernel.telemetry import Telemetry
from repro.rdma.nic import (
    DEFAULT_BANDWIDTH_BYTES_PER_US,
    DEFAULT_BASE_LATENCY_US,
    DEFAULT_VERB_OVERHEAD_US,
    RNIC,
)
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry

__all__ = ["Machine"]


class Machine:
    """One application host plus its remote-memory fabric."""

    def __init__(
        self,
        seed: int = 0,
        read_bandwidth_bytes_per_us: float = DEFAULT_BANDWIDTH_BYTES_PER_US,
        write_bandwidth_bytes_per_us: float = DEFAULT_BANDWIDTH_BYTES_PER_US,
        base_latency_us: float = DEFAULT_BASE_LATENCY_US,
        verb_overhead_us: float = DEFAULT_VERB_OVERHEAD_US,
        telemetry_bin_us: float = 100_000.0,
    ):
        self.engine = Engine()
        self.rng = RngRegistry(seed)
        self.telemetry = Telemetry(bin_us=telemetry_bin_us)
        self.nic = RNIC(
            self.engine,
            read_bandwidth_bytes_per_us=read_bandwidth_bytes_per_us,
            write_bandwidth_bytes_per_us=write_bandwidth_bytes_per_us,
            base_latency_us=base_latency_us,
            verb_overhead_us=verb_overhead_us,
        )
