"""Fault-trace recording and replay.

Attach a :class:`FaultTracer` to any swap system to capture every page
fault as ``(time, app, thread, vpn, stall)``; dump the trace to JSON
lines for offline analysis, or turn it back into a workload with
:func:`replay_streams` — the recorded inter-fault gaps become compute
time, so a trace taken on one system configuration can be replayed
against another (e.g. record on Linux, replay on Canvas) to compare how
each serves the *same* fault sequence.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple

from repro.kernel.swap_system import BaseSwapSystem

__all__ = ["FaultRecord", "FaultTracer", "load_trace", "replay_streams"]


@dataclass
class FaultRecord:
    """One recorded page fault."""

    time_us: float
    app: str
    thread_id: int
    vpn: int
    stall_us: float


class FaultTracer:
    """Record every fault a swap system serves."""

    def __init__(self, system: BaseSwapSystem, apps: Optional[List[str]] = None):
        self.records: List[FaultRecord] = []
        self._filter = set(apps) if apps is not None else None
        system.fault_hooks.append(self._on_fault)

    def _on_fault(
        self, app_name: str, thread_id: int, vpn: int, start_us: float, end_us: float
    ) -> None:
        if self._filter is not None and app_name not in self._filter:
            return
        self.records.append(
            FaultRecord(start_us, app_name, thread_id, vpn, end_us - start_us)
        )

    def __len__(self) -> int:
        return len(self.records)

    def by_app(self) -> Dict[str, List[FaultRecord]]:
        grouped: Dict[str, List[FaultRecord]] = {}
        for record in self.records:
            grouped.setdefault(record.app, []).append(record)
        return grouped

    def dump(self, path) -> int:
        """Write JSON lines; returns the number of records written."""
        path = Path(path)
        with path.open("w") as handle:
            for record in self.records:
                handle.write(json.dumps(asdict(record)) + "\n")
        return len(self.records)


def load_trace(path) -> List[FaultRecord]:
    records = []
    with Path(path).open() as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(FaultRecord(**json.loads(line)))
    return records


def replay_streams(
    records: List[FaultRecord], write: bool = False
) -> List[Iterator[Tuple[int, bool, float]]]:
    """Turn a recorded trace back into per-thread access streams.

    Each recorded fault becomes one access; the gap between consecutive
    faults of the same thread (minus the recorded stall) becomes that
    access's compute time, so replaying against a faster swap system
    genuinely finishes sooner.
    """
    per_thread: Dict[Tuple[str, int], List[FaultRecord]] = {}
    for record in records:
        per_thread.setdefault((record.app, record.thread_id), []).append(record)

    def make_stream(thread_records: List[FaultRecord]):
        thread_records = sorted(thread_records, key=lambda r: r.time_us)
        previous_end = thread_records[0].time_us
        for record in thread_records:
            compute = max(0.0, record.time_us - previous_end)
            previous_end = record.time_us + record.stall_us
            yield (record.vpn, write, compute)

    return [make_stream(chunk) for chunk in per_thread.values()]
