"""Experiment harness: build, run, and measure individual/co-run setups.

Encodes the paper's §6 methodology:

* each application runs in a cgroup with fixed cores (managed 24,
  XGBoost 16, Memcached 4, Snappy 1) and local memory equal to 25% or
  50% of its working set;
* for Canvas, each app's swap partition is sized so local + remote is
  *slightly larger* than its working set, forcing reservation
  cancellation (§5.1); RDMA weights are proportional to partition sizes;
* baselines share one partition sized to the same total remote memory,
  one swap cache, and one prefetcher instance.

``run_experiment`` handles any system kind × any set of workloads, solo
or co-run; every benchmark file drives it with different knobs.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional

from repro.baselines.fastswap import FastswapSystem
from repro.baselines.infiniswap import InfiniswapSystem
from repro.cluster import ClusterConfig, Rack
from repro.core.canvas import CanvasConfig, CanvasSwapSystem
from repro.core.slo import SloConfig, SloController
from repro.faults import FaultConfig, make_plan
from repro.harness.driver import run_to_completion, spawn_app
from repro.harness.machine import Machine
from repro.kernel.cgroup import AppContext, AppSwapStats, CgroupConfig
from repro.kernel.swap_system import (
    BaseSwapSystem,
    LinuxSwapSystem,
    SwapSystemConfig,
)
from repro.obs.trace import TraceBuffer
from repro.prefetch.base import Prefetcher
from repro.prefetch.leap import LeapPrefetcher
from repro.prefetch.readahead import KernelReadahead
from repro.swap.allocator import FreeListAllocator, Linux514Allocator
from repro.workloads.base import Workload
from repro.workloads.registry import make_workload
from repro.workloads.traffic import TrafficConfig, TrafficSession, make_traffic_plan

__all__ = [
    "ExperimentConfig",
    "AppResult",
    "ExperimentResult",
    "run_experiment",
    "ChurnResult",
    "run_churn",
    "churn_digest",
]

#: Paper §6: per-application core limits in co-run experiments.
DEFAULT_CORES = {
    "memcached": 4,
    "snappy": 1,
    "xgboost": 16,
}
MANAGED_CORES = 24


@dataclass
class ExperimentConfig:
    """One experiment's knobs (defaults follow the paper's §6 setup)."""

    system: str = "linux"
    seed: int = 0
    scale: float = 0.25
    local_memory_fraction: float = 0.25
    #: Extra remote memory beyond (working set - local), as a fraction of
    #: the working set.  Covers entries pinned by in-flight writebacks and
    #: swap-cache pages while keeping occupancy above the §5.1 reservation
    #: -cancellation trigger ("local + remote slightly larger than the
    #: working set").
    partition_headroom: float = 0.25
    #: Baseline prefetcher: "readahead", "leap", or "none".
    prefetcher: str = "readahead"
    #: Drive threads with batched access streams (the resident fast
    #: path).  ``False`` keeps the scalar one-tuple-per-access protocol;
    #: results are bit-identical either way.
    batched_streams: bool = True
    #: Accumulated CPU is charged to the simulated core once it reaches
    #: this many microseconds (timing granularity of CPU bursts between
    #: faults).  Both stream protocols honour the same threshold, so it
    #: never affects batched-vs-unbatched equivalence.
    cpu_flush_us: float = 25.0
    #: Swap cache budget as a fraction of local memory (per app under
    #: Canvas; summed for the shared baseline cache).
    swap_cache_fraction: float = 0.25
    #: Canvas ablations.
    adaptive_allocation: bool = True
    two_tier_prefetch: bool = True
    horizontal_scheduling: bool = True
    #: Fig. 14 ablation: toggle timeliness drops independently of the
    #: priority split; None follows ``horizontal_scheduling``.
    timeliness_drops: Optional[bool] = None
    #: Extension: max-min dynamic swap-cache rebalancing between cgroups.
    dynamic_cache_rebalance: bool = False
    #: Override cores per workload name (falls back to paper defaults).
    cores_override: Dict[str, int] = field(default_factory=dict)
    #: Simulated-time safety limit.
    limit_us: float = 60_000_000_000.0
    #: Telemetry bin width for rate/bandwidth series.
    telemetry_bin_us: float = 5_000.0
    #: Fabric bandwidth multiplier over the 40 Gbps default.  The paper's
    #: runs keep RDMA bandwidth unsaturated (§3); our scaled-down
    #: workloads fault more intensely per byte of working set, so the
    #: simulated fabric gets matching headroom.
    bandwidth_scale: float = 2.5
    #: Attribute overrides applied to the SwapSystemConfig (e.g.
    #: {"kswapd_batch": 8, "entry_keeping": False}).
    system_config_overrides: Dict[str, object] = field(default_factory=dict)
    #: Per-workload attribute overrides applied after construction, e.g.
    #: {"memcached": {"n_threads": 48}} for the Fig. 13 core sweep.
    workload_overrides: Dict[str, Dict[str, object]] = field(default_factory=dict)
    #: RDMA scheduling weights per app.  The paper sets them proportional
    #: to each application's *individually measured* bandwidth (§6.4.3);
    #: default (empty) falls back to partition-size proportionality.
    rdma_weights: Dict[str, float] = field(default_factory=dict)
    #: Optional fault scenario (see :mod:`repro.faults`).  ``None`` runs
    #: the pre-fault code path exactly; a zero-rate config is attached
    #: but injects nothing, producing bit-identical results either way.
    fault_config: Optional[FaultConfig] = None
    #: Optional rack model (see :mod:`repro.cluster`): N memory servers
    #: behind the shared uplink, with a placement policy homing each
    #: partition's entries.  ``None`` runs the single-endpoint path; a
    #: default one-server rack is attached but bit-identical to it (the
    #: ``n_servers=1`` oracle the digest suite pins).
    cluster: Optional[ClusterConfig] = None
    #: Record a simulation-time event trace (:mod:`repro.obs`).  Tracing
    #: never touches the engine schedule or RNG, so a traced run produces
    #: bit-identical results; with ``False`` the tracepoint branches are
    #: single ``is None`` tests and no buffer exists at all.
    trace: bool = False
    #: Trace ring-buffer capacity in records; the oldest records are
    #: overwritten once full (``result.trace.truncated`` reports it).
    trace_capacity: int = 2_000_000
    #: Open-loop traffic model (see :mod:`repro.workloads.traffic`):
    #: sessions arrive, run, and unregister on a seeded curve.  Only
    #: :func:`run_churn` reads it; ``None`` (or ``run_experiment``)
    #: keeps the fixed-roster path byte-identical to before.
    traffic: Optional[TrafficConfig] = None
    #: SLO feedback loop (see :mod:`repro.core.slo`): p99 demand-fault
    #: latency steered back into scheduler weights and the adaptive
    #: allocator.  ``None`` runs without a controller.
    slo: Optional[SloConfig] = None

    def cores_for(self, workload: Workload) -> int:
        if workload.name in self.cores_override:
            return self.cores_override[workload.name]
        if workload.name in DEFAULT_CORES:
            return DEFAULT_CORES[workload.name]
        return MANAGED_CORES


@dataclass
class AppResult:
    """Summary of one application's run."""

    name: str
    completion_time_us: float
    stats: AppSwapStats
    prefetch_contribution: float
    prefetch_accuracy: float


class ExperimentResult:
    """Everything a benchmark needs after a run."""

    def __init__(
        self,
        machine: Machine,
        system: BaseSwapSystem,
        apps: Dict[str, AppContext],
        elapsed_us: float,
        trace: Optional[TraceBuffer] = None,
        rack: Optional[Rack] = None,
    ):
        self.machine = machine
        self.system = system
        self.apps = apps
        self.elapsed_us = elapsed_us
        self.trace = trace
        #: Live rack (when a cluster config was attached) and its stats;
        #: the live object does not survive pickling, the stats do.
        self.rack = rack
        self.rack_stats = rack.stats if rack is not None else None
        self.telemetry = machine.telemetry
        self.results: Dict[str, AppResult] = {}
        for name, app in apps.items():
            cache_stats = self._cache_stats_for(system, app)
            issued = app.stats.prefetches_issued
            self.results[name] = AppResult(
                name=name,
                completion_time_us=app.completion_time_us or float("nan"),
                stats=app.stats,
                prefetch_contribution=app.stats.prefetch_contribution,
                prefetch_accuracy=(
                    app.stats.prefetch_cache_hits / issued if issued > 0 else 0.0
                ),
            )

    @staticmethod
    def _cache_stats_for(system: BaseSwapSystem, app: AppContext):
        try:
            return system._private_cache(app).stats
        except (KeyError, NotImplementedError):  # pragma: no cover
            return None

    def completion_time(self, name: str) -> float:
        return self.results[name].completion_time_us

    # -- pickling ---------------------------------------------------------
    # A live result references the whole simulated machine (engine heap,
    # generators), which cannot cross process boundaries.  Pickling swaps
    # those for portable snapshots (see repro.harness.results); everything
    # benchmarks/analysis read back survives the round-trip.

    def __getstate__(self) -> dict:
        from repro.harness.results import snapshot_result_state

        return snapshot_result_state(self)

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)


def _build_system(
    machine: Machine, config: ExperimentConfig, total_remote_pages: int
) -> BaseSwapSystem:
    sys_config = SwapSystemConfig()
    for key, value in config.system_config_overrides.items():
        if not hasattr(sys_config, key):
            raise AttributeError(f"SwapSystemConfig has no field {key!r}")
        setattr(sys_config, key, value)
    prefetcher = _make_prefetcher(config)
    kind = config.system
    if kind == "linux":
        return LinuxSwapSystem(
            machine.engine,
            machine.nic,
            partition_pages=total_remote_pages,
            prefetcher=prefetcher,
            telemetry=machine.telemetry,
            config=sys_config,
        )
    if kind == "linux514":
        return LinuxSwapSystem(
            machine.engine,
            machine.nic,
            partition_pages=total_remote_pages,
            prefetcher=prefetcher,
            telemetry=machine.telemetry,
            config=sys_config,
            allocator_cls=Linux514Allocator,
            name="linux514",
        )
    if kind == "fastswap":
        return FastswapSystem(
            machine.engine,
            machine.nic,
            partition_pages=total_remote_pages,
            prefetcher=prefetcher,
            telemetry=machine.telemetry,
            config=sys_config,
        )
    if kind == "infiniswap":
        return InfiniswapSystem(
            machine.engine,
            machine.nic,
            partition_pages=total_remote_pages,
            prefetcher=prefetcher,
            telemetry=machine.telemetry,
            config=sys_config,
        )
    if kind in ("canvas", "canvas-iso"):
        isolation_only = kind == "canvas-iso"
        canvas_config = CanvasConfig(
            adaptive_allocation=config.adaptive_allocation and not isolation_only,
            two_tier_prefetch=config.two_tier_prefetch and not isolation_only,
            horizontal_scheduling=(
                config.horizontal_scheduling and not isolation_only
            ),
            timeliness_drops=(False if isolation_only else config.timeliness_drops),
            dynamic_cache_rebalance=config.dynamic_cache_rebalance,
        )
        return CanvasSwapSystem(
            machine.engine,
            machine.nic,
            telemetry=machine.telemetry,
            config=sys_config,
            canvas_config=canvas_config,
        )
    raise ValueError(f"unknown system kind {config.system!r}")


def _make_prefetcher(config: ExperimentConfig) -> Optional[Prefetcher]:
    if config.prefetcher == "readahead":
        return KernelReadahead()
    if config.prefetcher == "leap":
        return LeapPrefetcher()
    if config.prefetcher == "leap-isolated":
        return LeapPrefetcher(per_app_history=True)
    if config.prefetcher == "none":
        return None
    raise ValueError(f"unknown prefetcher {config.prefetcher!r}")


def run_experiment(
    workload_names: List[str],
    config: ExperimentConfig,
    profiler=None,
) -> ExperimentResult:
    """Build the machine + system + apps, run to completion, summarize.

    ``profiler`` (a :class:`repro.metrics.SimProfiler`) opts into
    wall-clock attribution; it never changes simulated results.
    """
    from time import perf_counter

    from repro.rdma.nic import DEFAULT_BANDWIDTH_BYTES_PER_US

    bandwidth = DEFAULT_BANDWIDTH_BYTES_PER_US * config.bandwidth_scale
    machine = Machine(
        seed=config.seed,
        telemetry_bin_us=config.telemetry_bin_us,
        read_bandwidth_bytes_per_us=bandwidth,
        write_bandwidth_bytes_per_us=bandwidth,
    )
    workloads = []
    for name in workload_names:
        workload = make_workload(name, scale=config.scale)
        for attr, value in config.workload_overrides.get(name, {}).items():
            if not hasattr(workload, attr):
                raise AttributeError(f"{name} workload has no attribute {attr!r}")
            setattr(workload, attr, value)
        workloads.append(workload)

    sizing = []
    total_remote = 0
    for workload in workloads:
        ws = workload.working_set_pages
        local_pages = max(64, int(ws * config.local_memory_fraction))
        headroom = max(160, int(ws * config.partition_headroom))
        remote_pages = max(256, ws - local_pages + headroom)
        total_remote += remote_pages
        sizing.append((workload, local_pages, remote_pages))

    system = _build_system(machine, config, total_remote)
    is_canvas = isinstance(system, CanvasSwapSystem)
    if profiler is not None:
        machine.nic.profiler = profiler
    # The rack attaches before any app registers: Canvas adopts each
    # per-cgroup partition in _setup_app, and the linux-family shared
    # partition is adopted here.  It also precedes the tracer attach so
    # attach_tracer can propagate into the rack.
    rack = None
    if config.cluster is not None:
        rack = Rack(machine.engine, machine.nic, config.cluster, seed=config.seed)
        system.rack = rack
        shared_partition = getattr(system, "partition", None)
        if shared_partition is not None:
            rack.adopt(system, shared_partition, getattr(system, "allocator", None))
    # Fault plan attaches before any app registers: Canvas reads
    # ``system.fault_plan`` while provisioning per-cgroup resources.
    fault_plan = make_plan(config.fault_config, config.seed)
    if fault_plan is not None:
        machine.nic.fault_plan = fault_plan
        system.fault_plan = fault_plan
        if rack is not None:
            rack.schedule_plan(fault_plan)

    # The tracer attaches before any app registers so per-app structures
    # (LRU lists, allocators) pick it up as they are created.
    tracer = None
    if config.trace:
        tracer = TraceBuffer(machine.engine, capacity=config.trace_capacity)
        system.attach_tracer(tracer)

    apps: Dict[str, AppContext] = {}
    processes = []
    for workload, local_pages, remote_pages in sizing:
        cgroup = CgroupConfig(
            name=workload.name,
            n_cores=config.cores_for(workload),
            local_memory_pages=local_pages,
            swap_partition_pages=remote_pages if is_canvas else None,
            swap_cache_pages=max(
                96, int(local_pages * config.swap_cache_fraction)
            ),
            rdma_weight=config.rdma_weights.get(
                workload.name, float(remote_pages)
            ),
        )
        # Batched runs age pages with the flat generation-stamp LRU
        # (enabling the vectorized resident path); scalar runs keep the
        # linked lists.  The batched-vs-scalar digest guard therefore
        # doubles as an end-to-end LRU-equivalence check.
        app = AppContext(machine.engine, cgroup, flat_state=config.batched_streams)
        build_rng = machine.rng.child(workload.name).stream("build")
        workload.build(app, build_rng)
        system.register_app(app)
        # Resident fraction leaves kswapd headroom below the low watermark.
        resident_fraction = min(
            0.999 * local_pages / workload.working_set_pages * 0.85,
            1.0,
        )
        system.prepopulate(app, resident_fraction)
        stream_rng = machine.rng.child(workload.name).stream("streams")
        if config.batched_streams:
            streams = workload.thread_batch_streams(app, stream_rng)
        else:
            streams = workload.thread_streams(app, stream_rng)
        processes.append(
            spawn_app(
                system,
                app,
                streams,
                cpu_flush_us=config.cpu_flush_us,
                batched=config.batched_streams,
                profiler=profiler,
            )
        )
        apps[workload.name] = app

    # The baseline swap cache is global and effectively unbounded (real
    # kernels bound it by memory pressure, which our per-app frame
    # charging plus forced shrinking models); only Canvas imposes
    # explicit per-cgroup budgets.  Cross-app interference appears in the
    # baseline when one app's pressure releases another app's cached
    # pages from the shared LRU.
    if not is_canvas:
        system.cache.capacity_pages = max(
            64, sum(app.pool.capacity_pages for app in apps.values())
        )

    wall_start = perf_counter()
    elapsed = run_to_completion(machine.engine, processes, limit_us=config.limit_us)
    if profiler is not None:
        profiler.record_run(
            perf_counter() - wall_start,
            sum(app.stats.accesses for app in apps.values()),
        )
    return ExperimentResult(machine, system, apps, elapsed, trace=tracer, rack=rack)


def run_individual(
    workload_name: str, config: ExperimentConfig
) -> ExperimentResult:
    """Run one application alone (the paper's 'individual run')."""
    return run_experiment([workload_name], config)


# ----------------------------------------------------------------------
# Traffic-driven churn: sessions arrive, run, and unregister.
# ----------------------------------------------------------------------


class ChurnResult:
    """Everything a churn benchmark needs after a traffic-driven run.

    ``apps`` holds every session's :class:`AppContext` — the contexts
    outlive their unregistration (the system forgets them; the result
    keeps them), so per-session stats stay readable after teardown.
    """

    def __init__(
        self,
        machine: Machine,
        system: BaseSwapSystem,
        plan,
        apps: Dict[str, AppContext],
        elapsed_us: float,
        trace: Optional[TraceBuffer] = None,
        rack: Optional[Rack] = None,
        slo: Optional[SloController] = None,
    ):
        self.machine = machine
        self.system = system
        self.plan = plan
        self.apps = apps
        self.elapsed_us = elapsed_us
        self.trace = trace
        self.rack = rack
        self.rack_stats = rack.stats if rack is not None else None
        self.slo = slo
        self.slo_stats = slo.stats if slo is not None else None
        self.telemetry = machine.telemetry

    def digest(self) -> str:
        """Stable fingerprint of every simulated per-session outcome."""
        import hashlib

        payload = repr(
            [
                (
                    name,
                    app.stats.accesses,
                    app.stats.faults,
                    app.stats.swapouts,
                    app.started_at_us,
                    app.finished_at_us,
                )
                for name, app in sorted(self.apps.items())
            ]
            + [("elapsed", self.elapsed_us)]
        )
        return hashlib.sha256(payload.encode()).hexdigest()


def _session_stream(plan, session: TrafficSession, vma, batched: bool, cpu_us: float):
    """One session's access stream (batched or scalar), VMA-offset."""
    vpns, writes = plan.session_accesses(session)
    vpns = vpns + vma.start_vpn
    if batched:
        from repro.workloads.batch import emit_batches

        return emit_batches(vpns, writes, cpu_us)
    return iter(
        [(int(vpn), bool(write), cpu_us) for vpn, write in zip(vpns, writes)]
    )


def run_churn(config: ExperimentConfig) -> ChurnResult:
    """Run one traffic-driven churn day: arrive → run → unregister.

    Every session is one single-core cgroup whose lifetime is one engine
    process: sleep until its seeded arrival, build + register + warm the
    cgroup, run its access stream, then tear the cgroup down through
    ``unregister_app``.  With every session departing, the end state
    must be leak-free — the churn invariant tests assert it on the live
    system this returns.
    """
    if config.traffic is None:
        raise ValueError("run_churn needs config.traffic (a TrafficConfig)")
    plan = make_traffic_plan(config.traffic, config.seed)
    traffic = config.traffic

    from repro.rdma.nic import DEFAULT_BANDWIDTH_BYTES_PER_US

    bandwidth = DEFAULT_BANDWIDTH_BYTES_PER_US * config.bandwidth_scale
    machine = Machine(
        seed=config.seed,
        telemetry_bin_us=config.telemetry_bin_us,
        read_bandwidth_bytes_per_us=bandwidth,
        write_bandwidth_bytes_per_us=bandwidth,
    )
    engine = machine.engine

    sizing = []
    total_remote = 0
    for session in plan.sessions:
        ws = session.working_set_pages
        local = session.local_memory_pages
        headroom = max(32, int(ws * config.partition_headroom))
        remote = max(64, ws - local + headroom)
        total_remote += remote
        sizing.append(remote)

    system = _build_system(machine, config, max(4096, total_remote))
    is_canvas = isinstance(system, CanvasSwapSystem)

    rack = None
    if config.cluster is not None:
        rack = Rack(engine, machine.nic, config.cluster, seed=config.seed)
        system.rack = rack
        shared_partition = getattr(system, "partition", None)
        if shared_partition is not None:
            rack.adopt(system, shared_partition, getattr(system, "allocator", None))
    fault_plan = make_plan(config.fault_config, config.seed)
    if fault_plan is not None:
        machine.nic.fault_plan = fault_plan
        system.fault_plan = fault_plan
        if rack is not None:
            rack.schedule_plan(fault_plan)

    tracer = None
    if config.trace:
        tracer = TraceBuffer(engine, capacity=config.trace_capacity)
        system.attach_tracer(tracer)

    slo = None
    if config.slo is not None:
        slo = SloController(engine, system, machine.telemetry, config.slo)

    # The baseline shared swap cache cannot follow per-app pool sums the
    # way the fixed-roster harness does (the population changes); size it
    # for the whole day's peak instead.
    if not is_canvas:
        system.cache.capacity_pages = max(
            256, sum(s.local_memory_pages for s in plan.sessions) // 4
        )

    apps: Dict[str, AppContext] = {}
    session_procs = []

    def session_lifecycle(session: TrafficSession, remote_pages: int):
        yield engine.sleep(session.arrive_us)
        cgroup = CgroupConfig(
            name=session.name,
            n_cores=1,
            local_memory_pages=session.local_memory_pages,
            swap_partition_pages=remote_pages if is_canvas else None,
            swap_cache_pages=max(
                16,
                int(session.local_memory_pages * config.swap_cache_fraction),
            ),
            rdma_weight=float(remote_pages),
        )
        app = AppContext(engine, cgroup, flat_state=config.batched_streams)
        vma = app.space.map_region(session.working_set_pages, name="heap")
        system.register_app(app)
        apps[session.name] = app
        resident_fraction = min(
            0.999
            * session.local_memory_pages
            / session.working_set_pages
            * 0.85,
            1.0,
        )
        system.prepopulate(app, resident_fraction)
        stream = _session_stream(
            plan,
            session,
            vma,
            config.batched_streams,
            traffic.cpu_us_per_access,
        )
        proc = spawn_app(
            system,
            app,
            [stream],
            cpu_flush_us=config.cpu_flush_us,
            batched=config.batched_streams,
        )
        yield proc
        yield from system.unregister_app(app)

    for session, remote_pages in zip(plan.sessions, sizing):
        session_procs.append(
            engine.spawn(
                session_lifecycle(session, remote_pages),
                name=f"{session.name}.lifecycle",
            )
        )

    elapsed = run_to_completion(engine, session_procs, limit_us=config.limit_us)
    return ChurnResult(
        machine,
        system,
        plan,
        apps,
        elapsed,
        trace=tracer,
        rack=rack,
        slo=slo,
    )


def churn_digest(config: ExperimentConfig) -> str:
    """Run one churn day and return only its digest (pickles trivially,
    so parallel determinism tests fan it out over worker processes)."""
    return run_churn(config).digest()
