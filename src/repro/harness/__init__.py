"""Experiment harness: machine model, thread driver, experiment runner."""

from repro.harness.driver import app_thread, run_to_completion, spawn_app
from repro.harness.experiment import (
    AppResult,
    ExperimentConfig,
    ExperimentResult,
    run_experiment,
    run_individual,
)
from repro.harness.machine import Machine
from repro.harness.trace import FaultRecord, FaultTracer, load_trace, replay_streams

__all__ = [
    "app_thread",
    "run_to_completion",
    "spawn_app",
    "AppResult",
    "ExperimentConfig",
    "ExperimentResult",
    "run_experiment",
    "run_individual",
    "Machine",
    "FaultRecord",
    "FaultTracer",
    "load_trace",
    "replay_streams",
]
