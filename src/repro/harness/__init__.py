"""Experiment harness: machine model, thread driver, experiment runner,
parallel fan-out, and persistent result caching."""

from repro.harness.cache import (
    CACHE_STATS,
    CacheStats,
    DiskResultCache,
    cached_run,
    default_disk_cache,
    job_key,
    source_fingerprint,
)
from repro.harness.driver import app_thread, run_to_completion, spawn_app
from repro.harness.experiment import (
    AppResult,
    ExperimentConfig,
    ExperimentResult,
    run_experiment,
    run_individual,
)
from repro.harness.machine import Machine
from repro.harness.parallel import (
    ExperimentJob,
    default_worker_count,
    run_experiments_parallel,
)
from repro.harness.results import result_digest
from repro.harness.trace import FaultRecord, FaultTracer, load_trace, replay_streams

__all__ = [
    "app_thread",
    "run_to_completion",
    "spawn_app",
    "AppResult",
    "ExperimentConfig",
    "ExperimentResult",
    "run_experiment",
    "run_individual",
    "Machine",
    "FaultRecord",
    "FaultTracer",
    "load_trace",
    "replay_streams",
    "CACHE_STATS",
    "CacheStats",
    "DiskResultCache",
    "cached_run",
    "default_disk_cache",
    "job_key",
    "source_fingerprint",
    "ExperimentJob",
    "default_worker_count",
    "run_experiments_parallel",
    "result_digest",
]
