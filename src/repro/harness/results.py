"""Portable experiment results: snapshots that survive pickling.

A live :class:`~repro.harness.experiment.ExperimentResult` references the
whole simulated machine — the event engine (whose heap holds generator
bound-methods), the NIC, daemon processes — none of which can cross a
process boundary or be stored on disk.  The parallel runner and the
persistent result cache both need exactly that, so pickling an
``ExperimentResult`` swaps those references for light snapshots carrying
the state benchmarks and analysis actually read back:

* per-app completion times, cgroup config, and swap statistics,
* the full telemetry object (histograms/meters are plain data),
* headline system attributes (kind, scheduler flags, rebalancer stats,
  per-app swap-cache stats).

Snapshotting is idempotent: a result that was already unpickled (and
therefore holds snapshots) round-trips unchanged, so disk-cached results
can be re-pickled freely between processes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.kernel.cgroup import AppSwapStats, CgroupConfig

__all__ = [
    "AppSnapshot",
    "SchedulerSnapshot",
    "RebalancerSnapshot",
    "SystemSnapshot",
    "snapshot_app",
    "snapshot_system",
    "snapshot_result_state",
    "result_digest",
]


def result_digest(result) -> str:
    """A hex digest over every simulated number a benchmark reads back.

    Two runs are considered bit-identical iff their digests match:
    per-app completion times, the full per-app swap-stats counters
    (floats included — ``repr`` round-trips them exactly), and the
    machine-level elapsed time all feed the hash.  Works on live
    results and on snapshots that crossed a pickle/process boundary.
    """
    import hashlib
    from dataclasses import asdict

    parts = []
    for name in sorted(result.results):
        app_result = result.results[name]
        parts.append(
            (name, app_result.completion_time_us, sorted(asdict(app_result.stats).items()))
        )
    parts.append(("elapsed_us", result.elapsed_us))
    return hashlib.sha256(repr(parts).encode()).hexdigest()


@dataclass
class AppSnapshot:
    """The portable subset of :class:`~repro.kernel.cgroup.AppContext`."""

    name: str
    config: CgroupConfig
    stats: AppSwapStats
    started_at_us: float = 0.0
    finished_at_us: Optional[float] = None

    @property
    def completion_time_us(self) -> Optional[float]:
        if self.finished_at_us is None:
            return None
        return self.finished_at_us - self.started_at_us


@dataclass
class SchedulerSnapshot:
    """Headline flags/stats of Canvas's two-dimensional RDMA scheduler."""

    horizontal: bool = False
    timeliness_drops: bool = False
    stats: object = None


@dataclass
class RebalancerSnapshot:
    """Stats of the dynamic swap-cache rebalancer (extension)."""

    stats: object = None


@dataclass
class SystemSnapshot:
    """The portable subset of a swap system benchmarks read back."""

    name: str
    kind: str
    scheduler: Optional[SchedulerSnapshot] = None
    rebalancer: Optional[RebalancerSnapshot] = None
    #: Per-app private swap-cache stats (shared cache under one key per app).
    cache_stats: Dict[str, object] = field(default_factory=dict)
    #: Per-app adaptive-allocation stats (Canvas only).
    adaptive: Dict[str, object] = field(default_factory=dict)

    def adaptive_stats(self, app_name: str):
        """Mirror of ``CanvasSwapSystem.adaptive_stats`` on cached results."""
        return self.adaptive.get(app_name)


def snapshot_app(app) -> AppSnapshot:
    """Snapshot a live ``AppContext`` (identity if already a snapshot)."""
    if isinstance(app, AppSnapshot):
        return app
    return AppSnapshot(
        name=app.name,
        config=app.config,
        stats=app.stats,
        started_at_us=app.started_at_us,
        finished_at_us=app.finished_at_us,
    )


def snapshot_system(system, apps) -> SystemSnapshot:
    """Snapshot a live swap system (identity if already a snapshot)."""
    if isinstance(system, SystemSnapshot):
        return system
    scheduler = getattr(system, "scheduler", None)
    scheduler_snap = None
    if scheduler is not None:
        scheduler_snap = SchedulerSnapshot(
            horizontal=bool(getattr(scheduler, "horizontal", False)),
            timeliness_drops=bool(getattr(scheduler, "timeliness_drops", False)),
            stats=getattr(scheduler, "stats", None),
        )
    rebalancer = getattr(system, "rebalancer", None)
    rebalancer_snap = (
        RebalancerSnapshot(stats=rebalancer.stats) if rebalancer is not None else None
    )
    cache_stats: Dict[str, object] = {}
    adaptive: Dict[str, object] = {}
    get_adaptive = getattr(system, "adaptive_stats", None)
    for name, app in apps.items():
        try:
            cache_stats[name] = system._private_cache(app).stats
        except (KeyError, NotImplementedError):  # pragma: no cover
            pass
        if get_adaptive is not None:
            adaptive[name] = get_adaptive(name)
    return SystemSnapshot(
        name=getattr(system, "name", type(system).__name__),
        kind=type(system).__name__,
        scheduler=scheduler_snap,
        rebalancer=rebalancer_snap,
        cache_stats=cache_stats,
        adaptive=adaptive,
    )


def snapshot_result_state(result) -> dict:
    """``__getstate__`` payload for an ``ExperimentResult``.

    Shares the live ``AppSwapStats``/telemetry objects rather than
    copying them, so pickling preserves object identity between
    ``result.apps[name].stats`` and ``result.results[name].stats``.
    """
    return {
        "machine": None,
        "system": snapshot_system(result.system, result.apps),
        "apps": {name: snapshot_app(app) for name, app in result.apps.items()},
        "elapsed_us": result.elapsed_us,
        "telemetry": result.telemetry,
        "results": result.results,
        # TraceBuffer drops its engine reference when pickled; the
        # records themselves are plain tuples.
        "trace": getattr(result, "trace", None),
        # The live Rack holds engine references; only its stats (a plain
        # dataclass) cross the pickle boundary.
        "rack": None,
        "rack_stats": getattr(result, "rack_stats", None),
    }
