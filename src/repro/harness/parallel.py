"""Parallel experiment fan-out over a process pool.

Independent ``(workloads, config)`` jobs — different figures' co-runs,
solo baselines, config sweeps — dominate the benchmark suite's wall
clock.  Each simulation is single-threaded and deterministic, so fanning
jobs out over a :class:`~concurrent.futures.ProcessPoolExecutor` cuts
end-to-end time by roughly the worker count without changing a single
simulated number: workers run exactly the serial code path and ship back
a portable :class:`ExperimentResult` snapshot (see
``repro.harness.results``).

Result ordering is deterministic: ``run_experiments_parallel`` returns
results in job-submission order regardless of completion order.  Workers
share the persistent disk cache (``$REPRO_CACHE_DIR``), so a parallel
prewarm also leaves warm on-disk results behind for later serial runs.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple, Union

from repro.harness.experiment import ExperimentConfig, ExperimentResult

__all__ = ["ExperimentJob", "default_worker_count", "run_experiments_parallel"]

#: Environment override for the default worker count.
WORKERS_ENV = "REPRO_WORKERS"


@dataclass
class ExperimentJob:
    """One unit of fan-out: a workload set plus its experiment config."""

    workloads: Tuple[str, ...]
    config: ExperimentConfig

    @classmethod
    def of(cls, job: Union["ExperimentJob", Tuple[Iterable[str], ExperimentConfig]]):
        if isinstance(job, ExperimentJob):
            return job
        workloads, config = job
        return cls(tuple(workloads), config)


def default_worker_count() -> int:
    """``$REPRO_WORKERS`` if set, else the machine's CPU count."""
    override = os.environ.get(WORKERS_ENV)
    if override:
        return max(1, int(override))
    return os.cpu_count() or 1


def _run_job(job: ExperimentJob) -> ExperimentResult:
    """Worker entry point (module-level so it pickles by reference)."""
    from repro.harness.cache import cached_run

    result, _source = cached_run(list(job.workloads), job.config)
    return result


def run_experiments_parallel(
    jobs: Sequence[Union[ExperimentJob, Tuple[Iterable[str], ExperimentConfig]]],
    max_workers: Optional[int] = None,
) -> List[ExperimentResult]:
    """Run independent experiments across processes; results in job order.

    ``max_workers=None`` uses :func:`default_worker_count`;
    ``max_workers=1`` (or a single job) degrades to the serial in-process
    path, which also keeps the function usable inside daemonic workers.
    Every job still goes through the disk cache, so warm entries return
    without simulating regardless of the execution mode.
    """
    normalized = [ExperimentJob.of(job) for job in jobs]
    if max_workers is None:
        max_workers = default_worker_count()
    max_workers = max(1, min(max_workers, len(normalized)))
    if max_workers == 1 or len(normalized) <= 1:
        return [_run_job(job) for job in normalized]

    from concurrent.futures import ProcessPoolExecutor

    with ProcessPoolExecutor(max_workers=max_workers) as pool:
        # Executor.map preserves submission order: deterministic results.
        return list(pool.map(_run_job, normalized))
