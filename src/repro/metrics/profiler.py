"""Opt-in simulation profiler: wall-clock attribution per subsystem.

Answers "where does the *simulator's* time go" (host ``perf_counter``
seconds, not simulated microseconds), so fast-path changes are measured
rather than asserted.  Sections:

* ``stream_gen``  — producing workload access streams/batches,
* ``fast_path``   — resident classification + CPU clock advance
  (``consume_batch``),
* ``lru``         — per-access page/LRU maintenance,
* ``fault_path``  — the swap system's fault handler (its own execution
  slices only; time blocked on simulated I/O is not wall time),
* ``rdma``        — the RNIC model (dispatch selection + completions),
* ``engine/other``— everything unattributed (event heap, callbacks,
  kswapd, schedulers), computed as total wall minus the above.

Attribution granularity depends on the driver: the batched driver
separates ``fast_path`` from ``lru``; the scalar driver lumps both into
``engine/other``.  Profiling never changes simulated results — only
wall-clock readings are taken.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, Iterator, List, Tuple

from repro.metrics.report import format_table

__all__ = ["SimProfiler"]

#: Display order for known sections (unknown ones follow alphabetically).
_SECTION_ORDER = ["stream_gen", "fast_path", "lru", "fault_path", "rdma"]


class SimProfiler:
    """Accumulates wall-clock seconds per simulator subsystem."""

    def __init__(self) -> None:
        self.sections: Dict[str, float] = {}
        self.counts: Dict[str, int] = {}
        #: Total wall seconds of profiled simulation runs.
        self.wall_seconds = 0.0
        #: Total simulated accesses across profiled runs.
        self.accesses = 0
        #: Profiled experiment runs folded into this profile.
        self.runs = 0

    # -- recording -------------------------------------------------------

    def add(self, section: str, seconds: float, count: int = 1) -> None:
        self.sections[section] = self.sections.get(section, 0.0) + seconds
        self.counts[section] = self.counts.get(section, 0) + count

    def timed_iter(self, section: str, iterator: Iterator) -> Iterator:
        """Wrap an iterator, attributing time spent inside ``next()``."""
        while True:
            t0 = perf_counter()
            try:
                item = next(iterator)
            except StopIteration:
                self.add(section, perf_counter() - t0)
                return
            self.add(section, perf_counter() - t0)
            yield item

    def timed_generator_fn(self, section: str, fn):
        """Wrap a generator function, timing only its execution slices.

        The wrapped generator is resumed and suspended exactly like the
        original, so yield sequences (and simulated results) are
        untouched; time the generator spends *suspended* (blocked on
        simulated I/O) is not attributed.
        """

        def wrapper(*args, **kwargs):
            gen = fn(*args, **kwargs)
            t0 = perf_counter()
            try:
                item = gen.send(None)
                self.add(section, perf_counter() - t0)
                while True:
                    try:
                        received = yield item
                    except BaseException as exc:  # forward throws faithfully
                        t0 = perf_counter()
                        item = gen.throw(exc)
                    else:
                        t0 = perf_counter()
                        item = gen.send(received)
                    self.add(section, perf_counter() - t0)
            except StopIteration as stop:
                self.add(section, perf_counter() - t0)
                return stop.value

        return wrapper

    def record_run(self, wall_seconds: float, accesses: int) -> None:
        """Fold one profiled experiment run into the totals."""
        self.wall_seconds += wall_seconds
        self.accesses += accesses
        self.runs += 1

    # -- reporting -------------------------------------------------------

    @property
    def attributed_seconds(self) -> float:
        return sum(self.sections.values())

    @property
    def other_seconds(self) -> float:
        return max(0.0, self.wall_seconds - self.attributed_seconds)

    def rows(self) -> List[Tuple[str, float, int]]:
        """(section, seconds, count) rows, known sections first."""
        ordered = [s for s in _SECTION_ORDER if s in self.sections]
        ordered += sorted(set(self.sections) - set(_SECTION_ORDER))
        rows = [(s, self.sections[s], self.counts.get(s, 0)) for s in ordered]
        rows.append(("engine/other", self.other_seconds, 0))
        return rows

    def format(self) -> str:
        total = self.wall_seconds or self.attributed_seconds
        table_rows = []
        for section, seconds, count in self.rows():
            share = 100.0 * seconds / total if total > 0 else 0.0
            table_rows.append(
                [section, f"{seconds:.3f}", f"{share:.1f}%", count or ""]
            )
        table = format_table(["section", "wall (s)", "share", "calls"], table_rows)
        lines = [table]
        if self.wall_seconds > 0:
            rate = self.accesses / self.wall_seconds if self.accesses else 0.0
            lines.append(
                f"total: {self.wall_seconds:.3f}s wall over {self.runs} run(s), "
                f"{self.accesses} accesses ({rate / 1e3:.1f}k accesses/s)"
            )
        return "\n".join(lines)

    def as_dict(self) -> Dict[str, object]:
        return {
            "sections": dict(self.sections),
            "wall_seconds": self.wall_seconds,
            "accesses": self.accesses,
            "runs": self.runs,
        }
