"""Measurement collectors used across the simulation.

The paper's evaluation reports throughput time-series (Figs. 4, 5),
latency CDFs (Figs. 6, 14), rates (Figs. 13, 16) and fairness metrics
(§6.4.3).  These collectors gather the raw samples with minimal overhead
on the simulation's hot paths.
"""

from __future__ import annotations

import math
import random
from bisect import bisect_left, insort
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.sim.rng import derive_seed

__all__ = ["Histogram", "RateMeter", "BandwidthMeter", "weighted_min_max_ratio"]


class Histogram:
    """A sample reservoir with exact quantiles (samples kept in memory).

    Simulated experiments produce 1e4-1e6 samples, which comfortably fit;
    ``max_samples`` caps memory.  Past the cap the reservoir follows
    Vitter's Algorithm R, so the kept set stays a uniform sample of
    everything recorded; the RNG is seeded from the histogram's name,
    keeping identically-driven runs bit-identical.
    """

    def __init__(self, name: str = "", max_samples: int = 2_000_000):
        self.name = name
        self.max_samples = max_samples
        self._samples: List[float] = []
        self._sorted: Optional[np.ndarray] = None
        #: Memoized percentile queries; hot paths (the scheduler's
        #: timeliness threshold) ask for the same q between samples.
        self._pcache: Dict[float, float] = {}
        #: Lazily maintained sorted copy of ``_samples`` for quantile
        #: queries.  ``np.percentile`` costs ~70µs per call in wrapper
        #: overhead alone, which the scheduler's timeliness threshold
        #: pays on every new sample; an insort-maintained list plus the
        #: same linear interpolation (see :meth:`percentile`) returns
        #: bit-identical values at a fraction of the cost.  Built on the
        #: first percentile miss, so histograms that are never queried
        #: pay nothing on the record path.
        self._slist: Optional[List[float]] = None
        #: Created lazily on the first post-cap record, so histograms
        #: that never overflow (the common case) pay nothing.
        self._reservoir_rng: Optional[random.Random] = None
        self.count = 0
        self.total = 0.0
        self.max_value = -math.inf
        self.min_value = math.inf

    def record(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value > self.max_value:
            self.max_value = value
        if value < self.min_value:
            self.min_value = value
        if len(self._samples) < self.max_samples:
            self._samples.append(value)
            if self._slist is not None:
                insort(self._slist, value)
            self._sorted = None
            self._pcache.clear()
            return
        # Algorithm R: the new value replaces a uniformly chosen slot
        # with probability max_samples / count, so every recorded value
        # (early or late) ends up retained with equal probability.
        rng = self._reservoir_rng
        if rng is None:
            rng = self._reservoir_rng = random.Random(
                derive_seed(0, self.name or "histogram")
            )
        slot = rng.randrange(self.count)
        if slot < self.max_samples:
            old = self._samples[slot]
            self._samples[slot] = value
            if self._slist is not None:
                del self._slist[bisect_left(self._slist, old)]
                insort(self._slist, value)
            self._sorted = None
            self._pcache.clear()

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.record(value)

    def add_many(self, values: Sequence[float]) -> None:
        """Bulk ``record`` for batched ingestion (fault groups, merges).

        Below the reservoir cap the whole batch is appended in one pass;
        the running total folds left-to-right exactly like per-value
        ``record`` calls would.  A batch that would overflow the cap
        falls back to ``record`` so Algorithm R keeps its uniformity.
        Either path invalidates the sorted view *and* the percentile
        memo — a stale memo would serve pre-batch quantiles forever.
        """
        n = len(values)
        if n == 0:
            return
        if len(self._samples) + n <= self.max_samples:
            self._samples.extend(values)
            if self._slist is not None:
                slist = self._slist
                for value in values:
                    insort(slist, value)
            self.count += n
            total = self.total
            for value in values:
                total += value
            self.total = total
            high = max(values)
            low = min(values)
            if high > self.max_value:
                self.max_value = high
            if low < self.min_value:
                self.min_value = low
            self._sorted = None
            self._pcache.clear()
            return
        for value in values:
            self.record(value)

    @property
    def mean(self) -> float:
        if self.count == 0:
            return 0.0
        return self.total / self.count

    def _ensure_sorted(self) -> np.ndarray:
        if self._sorted is None:
            self._sorted = np.sort(np.asarray(self._samples, dtype=float))
        return self._sorted

    def percentile(self, q: float) -> float:
        """q in [0, 100].

        Linear interpolation between closest ranks — the same method
        (and the same ``_lerp`` formulation, including the ``gamma >=
        0.5`` rewrite for numerical symmetry) as ``np.percentile``'s
        default, so results are bit-identical to calling numpy over the
        sample array while skipping its per-call wrapper overhead.
        """
        if not self._samples:
            return 0.0
        cached = self._pcache.get(q)
        if cached is None:
            slist = self._slist
            if slist is None or len(slist) != len(self._samples):
                slist = self._slist = sorted(self._samples)
            pos = (q / 100.0) * (len(slist) - 1)
            lo = math.floor(pos)
            gamma = pos - lo
            a = slist[int(lo)]
            b = slist[int(math.ceil(pos))]
            if gamma >= 0.5:
                cached = b - (1 - gamma) * (b - a)
            else:
                cached = a + gamma * (b - a)
            cached = float(cached)
            self._pcache[q] = cached
        return cached

    def cdf(self, points: Optional[Sequence[float]] = None) -> List[Tuple[float, float]]:
        """(value, P[X <= value]) pairs, at sample values or given points."""
        data = self._ensure_sorted()
        if data.size == 0:
            return []
        if points is None:
            points = np.unique(data)
        n = data.size
        return [(float(p), float(np.searchsorted(data, p, side="right")) / n) for p in points]

    def fraction_above(self, threshold: float) -> float:
        data = self._ensure_sorted()
        if data.size == 0:
            return 0.0
        index = int(np.searchsorted(data, threshold, side="right"))
        return 1.0 - index / data.size

    @property
    def stddev(self) -> float:
        if self.count < 2 or not self._samples:
            return 0.0
        return float(np.std(np.asarray(self._samples, dtype=float), ddof=1))


class RateMeter:
    """Counts events into fixed time bins → an events/second series."""

    def __init__(self, bin_us: float = 100_000.0, name: str = ""):
        if bin_us <= 0:
            raise ValueError("bin width must be positive")
        self.name = name
        self.bin_us = bin_us
        self._bins: Dict[int, float] = {}
        self.total = 0.0

    def record(self, now_us: float, count: float = 1.0) -> None:
        index = int(now_us // self.bin_us)
        self._bins[index] = self._bins.get(index, 0.0) + count
        self.total += count

    def series(self) -> List[Tuple[float, float]]:
        """(bin start time in µs, events per second) pairs."""
        per_second = 1e6 / self.bin_us
        return [
            (index * self.bin_us, count * per_second)
            for index, count in sorted(self._bins.items())
        ]

    def mean_rate_per_second(self, elapsed_us: float) -> float:
        if elapsed_us <= 0:
            return 0.0
        return self.total / (elapsed_us / 1e6)

    def peak_rate_per_second(self) -> float:
        if not self._bins:
            return 0.0
        return max(count for count in self._bins.values()) * (1e6 / self.bin_us)


class BandwidthMeter:
    """Byte counts per (stream, time-bin) → MB/s series per stream.

    Streams are usually application names; the Fig. 5 "total" line is the
    sum across streams.
    """

    def __init__(self, bin_us: float = 100_000.0):
        if bin_us <= 0:
            raise ValueError("bin width must be positive")
        self.bin_us = bin_us
        self._bins: Dict[str, Dict[int, float]] = {}
        self.totals: Dict[str, float] = {}

    def record(self, stream: str, now_us: float, n_bytes: int) -> None:
        bins = self._bins.get(stream)
        if bins is None:  # avoid setdefault's throwaway dict per call
            bins = self._bins[stream] = {}
        index = int(now_us // self.bin_us)
        bins[index] = bins.get(index, 0.0) + n_bytes
        self.totals[stream] = self.totals.get(stream, 0.0) + n_bytes

    def streams(self) -> List[str]:
        return sorted(self._bins)

    def series_mbps(self, stream: str) -> List[Tuple[float, float]]:
        bins = self._bins.get(stream, {})
        scale = 1e6 / self.bin_us / 1e6  # bytes/bin -> bytes/s -> MB/s
        return [(i * self.bin_us, b * scale) for i, b in sorted(bins.items())]

    def mean_mbps(self, stream: str, elapsed_us: float) -> float:
        if elapsed_us <= 0:
            return 0.0
        return self.totals.get(stream, 0.0) / elapsed_us  # bytes/µs == MB/s

    def total_until(self, stream: str, until_us: float) -> float:
        """Bytes transferred by ``stream`` in [0, until_us).

        Used for fairness metrics that must only cover the window where
        every application was still running.
        """
        bins = self._bins.get(stream, {})
        limit = int(until_us // self.bin_us)
        total = sum(b for i, b in bins.items() if i < limit)
        # The bin containing ``until_us`` is partially covered; count it
        # pro-rata rather than dropping it (bytes within a bin are taken
        # as uniformly spread, the meter's finest resolution).
        fraction = (until_us - limit * self.bin_us) / self.bin_us
        if fraction > 0.0:
            total += bins.get(limit, 0.0) * fraction
        return total

    def total_mean_mbps(self, elapsed_us: float) -> float:
        if elapsed_us <= 0:
            return 0.0
        return sum(self.totals.values()) / elapsed_us

    def peak_total_mbps(self) -> float:
        combined: Dict[int, float] = {}
        for bins in self._bins.values():
            for index, n_bytes in bins.items():
                combined[index] = combined.get(index, 0.0) + n_bytes
        if not combined:
            return 0.0
        return max(combined.values()) / self.bin_us  # bytes/µs == MB/s


def weighted_min_max_ratio(
    consumptions: Dict[str, float], weights: Dict[str, float]
) -> float:
    """The paper's bandwidth-fairness metric: min(x_i/w_i) / max(x_i/w_i).

    1.0 means perfectly weighted-fair; 0 means some application was starved.
    """
    normalized = []
    for name, consumption in consumptions.items():
        weight = weights.get(name, 1.0)
        if weight <= 0:
            raise ValueError(f"non-positive weight for {name!r}")
        normalized.append(consumption / weight)
    if not normalized:
        return 1.0
    top = max(normalized)
    if top == 0:
        return 1.0
    return min(normalized) / top
