"""Plain-text table/series formatting for benchmark output.

The benchmark harness prints the same rows and series the paper's tables
and figures report; these helpers keep that output aligned and uniform.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

__all__ = [
    "format_table",
    "format_series",
    "format_cdf",
    "format_cache_summary",
    "format_run_log",
    "FAULT_STALL_HEADERS",
    "fault_stall_rows",
    "format_fault_summary",
    "TRACE_SUMMARY_HEADERS",
    "trace_summary_rows",
    "format_trace_summary",
]


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Render an aligned monospace table."""
    cells = [[_fmt(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in cells:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(
    title: str, series: Dict[str, List[Tuple[float, float]]], unit: str = ""
) -> str:
    """Render named (x, y) series as labelled rows (one line per point set)."""
    lines = [title]
    for name in sorted(series):
        points = series[name]
        rendered = ", ".join(f"({x:,.0f}, {y:,.1f})" for x, y in points)
        suffix = f" {unit}" if unit else ""
        lines.append(f"  {name}{suffix}: {rendered}")
    return "\n".join(lines)


def format_cdf(title: str, percentiles: Dict[str, Dict[str, float]]) -> str:
    """Render per-series percentile summaries of a latency CDF."""
    headers = ["series"] + sorted(next(iter(percentiles.values())).keys()) if percentiles else []
    rows = []
    for name in sorted(percentiles):
        row = [name] + [percentiles[name][k] for k in headers[1:]]
        rows.append(row)
    return title + "\n" + format_table(headers, rows)


def format_cache_summary(stats) -> str:
    """One-line report of a :class:`~repro.harness.cache.CacheStats` tally.

    Printed by the benchmark harness and CLI so cache effectiveness (and
    therefore the win from ``$REPRO_CACHE_DIR``) is visible in logs.
    """
    return (
        f"experiment cache: {stats.memory_hits} memory hits, "
        f"{stats.disk_hits} disk hits, {stats.misses} misses, "
        f"{stats.stores} stored; "
        f"{stats.simulate_seconds:.2f}s simulating, "
        f"{stats.load_seconds:.2f}s loading"
    )


def format_run_log(entries: Sequence[Tuple[str, str, float]]) -> str:
    """Per-job wall-clock table: (label, source, seconds) triples."""
    rows = [[label, source, f"{seconds:.3f}"] for label, source, seconds in entries]
    return format_table(["job", "source", "wall (s)"], rows)


#: Column set produced by :func:`fault_stall_rows` (chaos CLI/benchmark).
FAULT_STALL_HEADERS = [
    "app",
    "retry stall (ms)",
    "queue+svc stall (ms)",
    "error CQEs",
    "demand retries",
    "wb retries",
    "pf cancelled",
]


def fault_stall_rows(results: Dict[str, object]) -> List[List]:
    """Per-cgroup fault-recovery rows from ``ExperimentResult.results``.

    Splits each app's total fault stall into the part attributable to
    transport retransmission timeouts (``retry_stall_us``) and the
    remainder (queueing plus service), the separation the degradation
    report is built around.
    """
    rows = []
    for name in sorted(results):
        stats = results[name].stats
        retry_ms = stats.retry_stall_us / 1000
        other_ms = max(0.0, stats.fault_stall_us - stats.retry_stall_us) / 1000
        rows.append(
            [
                name,
                retry_ms,
                other_ms,
                stats.error_cqes,
                stats.demand_retries,
                stats.writeback_retries,
                stats.prefetches_cancelled,
            ]
        )
    return rows


#: Column set produced by :func:`trace_summary_rows` (trace CLI).
TRACE_SUMMARY_HEADERS = [
    "app",
    "span (ms)",
    "faults",
    "stall (ms)",
    "demand",
    "pf issued",
    "pf hits",
    "pf late",
    "evictions",
    "writebacks",
    "rdma q (ms)",
    "rdma svc (ms)",
    "rtx",
]


def trace_summary_rows(summary: Dict[str, Dict[str, float]]) -> List[List]:
    """Per-cgroup timeline rows from :func:`repro.obs.summarize_trace`."""
    rows = []
    for name in sorted(summary):
        if not name:  # allocator records carry no cgroup attribution
            continue
        s = summary[name]
        rows.append(
            [
                name,
                (s["last_us"] - s["first_us"]) / 1000,
                s["faults"],
                s["fault_stall_us"] / 1000,
                s["demand_issued"],
                s["prefetch_issued"],
                s["prefetch_hits"],
                s["prefetch_late"],
                s["evictions"],
                s["writebacks"],
                s["rdma_queue_us"] / 1000,
                s["rdma_service_us"] / 1000,
                s["retransmits"],
            ]
        )
    return rows


def format_trace_summary(summary: Dict[str, Dict[str, float]]) -> str:
    """Aligned per-cgroup timeline table for a recorded trace."""
    return format_table(TRACE_SUMMARY_HEADERS, trace_summary_rows(summary))


def format_fault_summary(nic_stats) -> str:
    """One-line fabric-side fault tally from a :class:`NicStats`."""
    return (
        f"fabric faults: {nic_stats.wire_drops} wire drops, "
        f"{nic_stats.completion_errors} completion errors, "
        f"{nic_stats.retransmits} retransmits, "
        f"{nic_stats.transport_failures} transport failures "
        f"({nic_stats.error_cqes_delivered} error CQEs), "
        f"{nic_stats.flap_stall_us / 1000:.2f} ms flap stall, "
        f"{nic_stats.degraded_transfers} degraded transfers, "
        f"{nic_stats.server_delayed} server-delayed completions"
    )
