"""Telemetry: histograms, rate/bandwidth meters, fairness, report formatting."""

from repro.metrics.collectors import (
    BandwidthMeter,
    Histogram,
    RateMeter,
    weighted_min_max_ratio,
)
from repro.metrics.profiler import SimProfiler
from repro.metrics.report import (
    FAULT_STALL_HEADERS,
    TRACE_SUMMARY_HEADERS,
    fault_stall_rows,
    format_cache_summary,
    format_cdf,
    format_fault_summary,
    format_run_log,
    format_series,
    format_table,
    format_trace_summary,
    trace_summary_rows,
)

__all__ = [
    "SimProfiler",
    "BandwidthMeter",
    "Histogram",
    "RateMeter",
    "weighted_min_max_ratio",
    "FAULT_STALL_HEADERS",
    "TRACE_SUMMARY_HEADERS",
    "fault_stall_rows",
    "format_cache_summary",
    "format_cdf",
    "format_fault_summary",
    "format_run_log",
    "format_series",
    "format_table",
    "format_trace_summary",
    "trace_summary_rows",
]
