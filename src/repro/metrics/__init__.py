"""Telemetry: histograms, rate/bandwidth meters, fairness, report formatting."""

from repro.metrics.collectors import (
    BandwidthMeter,
    Histogram,
    RateMeter,
    weighted_min_max_ratio,
)
from repro.metrics.profiler import SimProfiler
from repro.metrics.report import (
    format_cache_summary,
    format_cdf,
    format_run_log,
    format_series,
    format_table,
)

__all__ = [
    "SimProfiler",
    "BandwidthMeter",
    "Histogram",
    "RateMeter",
    "weighted_min_max_ratio",
    "format_cache_summary",
    "format_cdf",
    "format_run_log",
    "format_series",
    "format_table",
]
