"""Post-experiment analysis: summaries, comparisons, figure-data export."""

from repro.analysis.export import (
    export_bandwidth_series,
    export_cdf,
    export_rate_series,
    export_rows,
    export_summaries,
)
from repro.analysis.summary import AppSummary, slowdown_matrix, summarize

__all__ = [
    "AppSummary",
    "slowdown_matrix",
    "summarize",
    "export_bandwidth_series",
    "export_cdf",
    "export_rate_series",
    "export_rows",
    "export_summaries",
]
