"""Post-experiment analysis: per-app summaries and cross-run comparison.

Turns raw :class:`~repro.harness.experiment.ExperimentResult` objects
into flat records suitable for tables, CSV export, or assertions —
the same digestion every benchmark does by hand, packaged once.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, List, Optional

from repro.harness.experiment import ExperimentResult
from repro.rdma.message import RequestKind

__all__ = ["AppSummary", "summarize", "slowdown_matrix"]


@dataclass
class AppSummary:
    """Everything worth reporting about one application's run."""

    app: str
    completion_time_ms: float
    accesses: int
    faults: int
    fault_rate: float
    demand_swapins: int
    prefetches_issued: int
    prefetch_contribution: float
    prefetch_accuracy: float
    swapouts: int
    clean_drops: int
    reserved_swapouts: int
    direct_reclaims: int
    alloc_stall_ms: float
    fault_stall_ms: float
    mean_fault_stall_us: float
    demand_p50_us: float
    demand_p99_us: float
    read_bandwidth_mbps: float
    write_bandwidth_mbps: float

    def as_dict(self) -> dict:
        return asdict(self)


def summarize(result: ExperimentResult) -> Dict[str, AppSummary]:
    """One :class:`AppSummary` per application in the experiment."""
    summaries: Dict[str, AppSummary] = {}
    for name, app in result.apps.items():
        stats = app.stats
        elapsed = app.completion_time_us or result.elapsed_us
        demand_hist = result.telemetry.latency_hist(name, RequestKind.DEMAND)
        app_result = result.results[name]
        summaries[name] = AppSummary(
            app=name,
            completion_time_ms=elapsed / 1000.0,
            accesses=stats.accesses,
            faults=stats.faults,
            fault_rate=stats.fault_rate,
            demand_swapins=stats.demand_swapins,
            prefetches_issued=stats.prefetches_issued,
            prefetch_contribution=app_result.prefetch_contribution,
            prefetch_accuracy=app_result.prefetch_accuracy,
            swapouts=stats.swapouts,
            clean_drops=stats.clean_drops,
            reserved_swapouts=stats.reserved_swapouts,
            direct_reclaims=stats.direct_reclaims,
            alloc_stall_ms=stats.alloc_stall_us / 1000.0,
            fault_stall_ms=stats.fault_stall_us / 1000.0,
            mean_fault_stall_us=(
                stats.fault_stall_us / stats.faults if stats.faults else 0.0
            ),
            demand_p50_us=demand_hist.percentile(50),
            demand_p99_us=demand_hist.percentile(99),
            read_bandwidth_mbps=result.telemetry.read_bandwidth.mean_mbps(
                name, elapsed
            ),
            write_bandwidth_mbps=result.telemetry.write_bandwidth.mean_mbps(
                name, elapsed
            ),
        )
    return summaries


def slowdown_matrix(
    runs: Dict[str, ExperimentResult],
    baseline: Dict[str, float],
    apps: Optional[List[str]] = None,
) -> Dict[str, Dict[str, float]]:
    """Slowdown of each app under each labelled run vs a baseline time.

    ``baseline`` maps app name → completion time in µs (typically solo
    runs).  Returns {run label: {app: slowdown}}.
    """
    matrix: Dict[str, Dict[str, float]] = {}
    for label, result in runs.items():
        row: Dict[str, float] = {}
        for name in apps if apps is not None else result.results:
            if name not in baseline:
                continue
            row[name] = result.completion_time(name) / baseline[name]
        matrix[label] = row
    return matrix
