"""Figure-data export: CSV files for external plotting.

Each benchmark prints its table; these helpers write the same data as
CSV so users can regenerate the paper's figures with their plotting tool
of choice (the repository itself stays matplotlib-free).
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.metrics.collectors import BandwidthMeter, Histogram, RateMeter

__all__ = [
    "export_rows",
    "export_cdf",
    "export_rate_series",
    "export_bandwidth_series",
    "export_summaries",
]


def export_rows(path, headers: Sequence[str], rows: Iterable[Sequence]) -> int:
    """Write generic tabular data; returns the number of rows written."""
    path = Path(path)
    count = 0
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(list(headers))
        for row in rows:
            writer.writerow(list(row))
            count += 1
    return count


def export_cdf(path, hist: Histogram, points: int = 200) -> int:
    """Write a latency CDF as (value_us, cumulative_probability) pairs."""
    if hist.count == 0:
        return export_rows(path, ["value_us", "cdf"], [])
    lo, hi = hist.min_value, hist.max_value
    if hi <= lo:
        sample_points = [lo]
    else:
        step = (hi - lo) / (points - 1)
        sample_points = [lo + i * step for i in range(points)]
    pairs = hist.cdf(points=sample_points)
    return export_rows(path, ["value_us", "cdf"], pairs)


def export_rate_series(path, meter: RateMeter) -> int:
    """Write a rate time series as (time_us, events_per_second) pairs."""
    return export_rows(path, ["time_us", "per_second"], meter.series())


def export_bandwidth_series(path, meter: BandwidthMeter) -> int:
    """Write all streams' bandwidth series: (stream, time_us, mbps)."""
    rows: List[Tuple[str, float, float]] = []
    for stream in meter.streams():
        for time_us, mbps in meter.series_mbps(stream):
            rows.append((stream, time_us, mbps))
    return export_rows(path, ["stream", "time_us", "mbps"], rows)


def export_summaries(path, summaries: Dict[str, "AppSummary"]) -> int:  # noqa: F821
    """Write per-app experiment summaries (see repro.analysis.summary)."""
    rows = [summary.as_dict() for summary in summaries.values()]
    if not rows:
        return export_rows(path, [], [])
    headers = list(rows[0].keys())
    return export_rows(path, headers, ([row[h] for h in headers] for row in rows))
