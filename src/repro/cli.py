"""Command-line interface: run simulated swap experiments from a shell.

Examples
--------
Run one application alone on Canvas::

    canvas-sim run --system canvas --apps memcached

Co-run the paper's headline group on every system and compare, one
worker process per system::

    canvas-sim compare --apps snappy memcached xgboost spark_lr --workers 4

Attribute the simulator's own wall-clock time to subsystems::

    canvas-sim profile --system canvas --apps memcached neo4j

Record a Perfetto-loadable trace of a faulted co-run and lint it::

    canvas-sim trace --apps snappy memcached --scenario degraded

Inspect or clear the persistent result cache (``$REPRO_CACHE_DIR``)::

    canvas-sim cache info
    canvas-sim cache clear

List available workloads and systems::

    canvas-sim list
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.cluster import PLACEMENTS
from repro.faults import RACK_SCENARIOS, SCENARIOS
from repro.harness.cache import CACHE_DIR_ENV, CACHE_STATS, default_disk_cache
from repro.harness.experiment import ExperimentConfig, run_experiment
from repro.harness.parallel import default_worker_count, run_experiments_parallel
from repro.metrics.report import (
    FAULT_STALL_HEADERS,
    fault_stall_rows,
    format_cache_summary,
    format_fault_summary,
    format_table,
)
from repro.workloads.registry import WORKLOADS
from repro.workloads.traffic import TRAFFIC_SCENARIOS

SYSTEMS = ["linux", "linux514", "fastswap", "infiniswap", "canvas-iso", "canvas"]

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="canvas-sim",
        description="Canvas (NSDI 2023) swap-system simulator",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_cmd = sub.add_parser("run", help="run one experiment and print per-app stats")
    _add_common(run_cmd)

    compare_cmd = sub.add_parser(
        "compare", help="run the same workload group on several systems"
    )
    _add_common(compare_cmd, with_system=False)
    compare_cmd.add_argument(
        "--systems",
        nargs="+",
        default=["linux", "fastswap", "canvas-iso", "canvas"],
        choices=SYSTEMS,
    )
    compare_cmd.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="worker processes to fan the systems out over; default is "
        "the machine's CPU count ($REPRO_WORKERS overrides the "
        "default, 1 = serial)",
    )

    profile_cmd = sub.add_parser(
        "profile",
        help="run one experiment with the simulation profiler and print "
        "per-subsystem wall-clock attribution",
    )
    _add_common(profile_cmd)
    profile_cmd.add_argument(
        "--no-batch",
        action="store_true",
        help="profile the scalar (unbatched) stream protocol instead of "
        "the batched fast path",
    )
    profile_cmd.add_argument(
        "--flush-us",
        type=float,
        default=None,
        metavar="US",
        help="CPU-charge granularity in simulated µs (default 25)",
    )

    chaos_cmd = sub.add_parser(
        "chaos",
        help="co-run under a named fault scenario and report degradation "
        "and per-cgroup retry-vs-queueing stalls",
    )
    _add_common(chaos_cmd)
    chaos_cmd.add_argument(
        "--scenario",
        default="degraded",
        choices=sorted(SCENARIOS),
        help="named fault scenario (see repro.faults.SCENARIOS)",
    )
    chaos_cmd.add_argument(
        "--fault-seed",
        type=int,
        default=None,
        metavar="N",
        help="override the fault plan's RNG seed (default derives from --seed)",
    )
    chaos_cmd.add_argument(
        "--drop-prob",
        type=float,
        default=None,
        metavar="P",
        help="override the scenario's silent wire-drop probability",
    )
    chaos_cmd.add_argument(
        "--no-baseline",
        action="store_true",
        help="skip the fault-free reference run (no slowdown column)",
    )

    trace_cmd = sub.add_parser(
        "trace",
        help="run with the simulation-time tracer, dump a Perfetto/Chrome "
        "trace, print per-cgroup timelines, and lint the trace for "
        "causality violations",
    )
    _add_common(trace_cmd)
    trace_cmd.add_argument(
        "--scenario",
        default=None,
        choices=sorted(SCENARIOS),
        help="optionally run under a named fault scenario",
    )
    trace_cmd.add_argument(
        "--out",
        default="canvas-trace.json",
        metavar="PATH",
        help="Chrome trace_event JSON output (load in ui.perfetto.dev)",
    )
    trace_cmd.add_argument(
        "--capacity",
        type=int,
        default=2_000_000,
        metavar="N",
        help="trace ring-buffer capacity in records",
    )

    rack_cmd = sub.add_parser(
        "rack",
        help="sweep a multi-server rack (fig13-style scalability) and "
        "optionally inject server-death/drain episodes",
    )
    _add_common(rack_cmd)
    rack_cmd.add_argument(
        "--servers",
        nargs="+",
        type=int,
        default=[1, 2, 4, 8],
        metavar="N",
        help="memory-server counts to sweep (default: 1 2 4 8)",
    )
    rack_cmd.add_argument(
        "--placement",
        default="stripe",
        choices=sorted(PLACEMENTS),
        help="cluster placement policy homing swap entries on servers",
    )
    rack_cmd.add_argument(
        "--scenario",
        default=None,
        choices=sorted(RACK_SCENARIOS),
        help="rack fault scenario (see repro.faults.RACK_SCENARIOS); "
        "server ids are taken modulo the rack size, and a scenario "
        "that would kill every server is skipped for that point",
    )

    churn_cmd = sub.add_parser(
        "churn",
        help="run an open-loop traffic day (sessions arrive, run, and "
        "unregister on a seeded curve) and report lifecycle/SLO stats",
    )
    churn_cmd.add_argument("--system", default="canvas", choices=SYSTEMS)
    churn_cmd.add_argument(
        "--scenario",
        default="diurnal",
        choices=sorted(TRAFFIC_SCENARIOS),
        help="traffic curve (see repro.workloads.traffic.TRAFFIC_SCENARIOS)",
    )
    churn_cmd.add_argument(
        "--sessions",
        type=int,
        default=None,
        metavar="N",
        help="override the scenario's session count",
    )
    churn_cmd.add_argument(
        "--day-us",
        type=float,
        default=None,
        metavar="US",
        help="override the simulated day length",
    )
    churn_cmd.add_argument("--seed", type=int, default=0)
    churn_cmd.add_argument(
        "--slo-target-us",
        type=float,
        default=None,
        metavar="US",
        help="enable the SLO controller with this p99 demand-latency target",
    )
    churn_cmd.add_argument(
        "--fault-scenario",
        default=None,
        choices=sorted(SCENARIOS),
        help="run the day under a named fault scenario",
    )

    cache_cmd = sub.add_parser(
        "cache", help=f"inspect or clear the ${CACHE_DIR_ENV} result cache"
    )
    cache_cmd.add_argument("action", choices=["info", "clear"])

    sub.add_parser("list", help="list workloads and system kinds")
    return parser


def _add_common(cmd: argparse.ArgumentParser, with_system: bool = True) -> None:
    cmd.add_argument("--apps", nargs="+", required=True, choices=sorted(WORKLOADS))
    if with_system:
        cmd.add_argument("--system", default="canvas", choices=SYSTEMS)
    cmd.add_argument("--scale", type=float, default=0.15)
    cmd.add_argument("--local", type=float, default=0.25, help="local-memory fraction")
    cmd.add_argument("--seed", type=int, default=0)
    cmd.add_argument(
        "--prefetcher",
        default="readahead",
        choices=["readahead", "leap", "leap-isolated", "none"],
        help="baseline-system prefetcher (Canvas manages its own)",
    )
    cmd.add_argument(
        "--csv",
        default=None,
        metavar="PATH",
        help="also write per-app summaries as CSV",
    )


def _config(args, system: Optional[str] = None) -> ExperimentConfig:
    return ExperimentConfig(
        system=system if system is not None else args.system,
        scale=args.scale,
        local_memory_fraction=args.local,
        seed=args.seed,
        prefetcher=args.prefetcher,
    )


def _cmd_run(args) -> int:
    result = run_experiment(args.apps, _config(args))
    if args.csv:
        from repro.analysis import export_summaries, summarize

        export_summaries(args.csv, summarize(result))
        print(f"wrote {args.csv}", file=sys.stderr)
    rows = []
    for name in args.apps:
        app_result = result.results[name]
        stats = app_result.stats
        rows.append(
            [
                name,
                app_result.completion_time_us / 1000,
                stats.faults,
                f"{100 * stats.fault_rate:.1f}%",
                f"{100 * app_result.prefetch_contribution:.1f}%",
                stats.swapouts + stats.clean_drops,
            ]
        )
    print(
        format_table(
            ["app", "time (ms)", "faults", "fault rate", "prefetch contrib", "evictions"],
            rows,
        )
    )
    return 0


def _cmd_compare(args) -> int:
    jobs = [(args.apps, _config(args, system=system)) for system in args.systems]
    workers = (
        default_worker_count() if args.workers is None else max(1, args.workers)
    )
    print(
        f"running {args.apps} on {len(args.systems)} systems "
        f"({workers} workers) ...",
        file=sys.stderr,
    )
    results = run_experiments_parallel(jobs, max_workers=workers)
    times = {}
    csv_rows = []
    for system, result in zip(args.systems, results):
        times[system] = {
            name: result.completion_time(name) / 1000 for name in args.apps
        }
        if args.csv:
            from repro.analysis import summarize

            for summary in summarize(result).values():
                csv_rows.append({"system": system, **summary.as_dict()})
    if args.csv and csv_rows:
        from repro.analysis import export_rows

        headers = list(csv_rows[0].keys())
        export_rows(args.csv, headers, ([r[h] for h in headers] for r in csv_rows))
        print(f"wrote {args.csv}", file=sys.stderr)
    rows = [[system] + [times[system][name] for name in args.apps]
            for system in args.systems]
    print(format_table(["system (ms)"] + args.apps, rows))
    if CACHE_STATS.total_lookups:
        print(format_cache_summary(CACHE_STATS), file=sys.stderr)
    return 0


def _cmd_profile(args) -> int:
    from repro.metrics.profiler import SimProfiler

    config = _config(args)
    config.batched_streams = not args.no_batch
    if args.flush_us is not None:
        config.cpu_flush_us = args.flush_us
    profiler = SimProfiler()
    result = run_experiment(args.apps, config, profiler=profiler)
    mode = "scalar" if args.no_batch else "batched"
    print(f"profile: {args.system} / {', '.join(args.apps)} ({mode} streams)")
    print(profiler.format())
    rows = [
        [name, result.completion_time(name) / 1000, result.results[name].stats.faults]
        for name in args.apps
    ]
    print()
    print(format_table(["app", "time (ms)", "faults"], rows))
    return 0


def _cmd_chaos(args) -> int:
    from dataclasses import replace

    fault_config = SCENARIOS[args.scenario]
    overrides = {}
    if args.fault_seed is not None:
        overrides["fault_seed"] = args.fault_seed
    if args.drop_prob is not None:
        overrides["drop_prob"] = args.drop_prob
    if overrides:
        fault_config = replace(fault_config, **overrides)
    base = _config(args)
    faulted = replace(base, fault_config=fault_config)
    baseline = None
    if not args.no_baseline:
        print("running fault-free baseline ...", file=sys.stderr)
        baseline = run_experiment(args.apps, base)
    print(f"running scenario {args.scenario!r} ...", file=sys.stderr)
    result = run_experiment(args.apps, faulted)

    headers = ["app", "time (ms)", "faults"]
    if baseline is not None:
        headers.append("slowdown (x)")
    rows = []
    for name in args.apps:
        app_result = result.results[name]
        row = [name, app_result.completion_time_us / 1000, app_result.stats.faults]
        if baseline is not None:
            reference = baseline.completion_time(name)
            row.append(
                app_result.completion_time_us / reference
                if reference
                else float("nan")
            )
        rows.append(row)
    print(f"chaos scenario {args.scenario!r} on {args.system}")
    print(format_table(headers, rows))
    print()
    print(format_table(FAULT_STALL_HEADERS, fault_stall_rows(result.results)))
    print()
    print(format_fault_summary(result.machine.nic.stats))
    if args.csv:
        from repro.analysis import export_summaries, summarize

        export_summaries(args.csv, summarize(result))
        print(f"wrote {args.csv}", file=sys.stderr)
    return 0


def _cmd_trace(args) -> int:
    from dataclasses import replace

    from repro.metrics.report import format_trace_summary
    from repro.obs import check_trace, dump_chrome_trace

    config = replace(_config(args), trace=True, trace_capacity=args.capacity)
    if args.scenario is not None:
        config = replace(config, fault_config=SCENARIOS[args.scenario])
        print(f"running scenario {args.scenario!r} with tracing ...", file=sys.stderr)
    else:
        print("running with tracing ...", file=sys.stderr)
    result = run_experiment(args.apps, config)
    trace = result.trace
    records = trace.records()
    dump_chrome_trace(args.out, records)
    print(
        f"wrote {args.out} ({len(records)} records"
        + (", ring truncated" if trace.truncated else "")
        + ")",
        file=sys.stderr,
    )
    print(f"trace: {args.system} / {', '.join(args.apps)}")
    print(format_trace_summary(trace.summarize()))
    violations = check_trace(records, truncated=trace.truncated)
    if violations:
        print()
        print(f"invariant checker: {len(violations)} violation(s)")
        for violation in violations[:20]:
            print(f"  {violation}")
        return 1
    print()
    print("invariant checker: ok")
    return 0


def _cmd_rack(args) -> int:
    from dataclasses import replace

    from repro.cluster import ClusterConfig

    base = _config(args)
    rows = []
    for n in args.servers:
        config = replace(
            base,
            cluster=ClusterConfig(n_servers=n, placement=args.placement),
        )
        note = ""
        if args.scenario is not None:
            fc = RACK_SCENARIOS[args.scenario]
            deaths = tuple((sid % n, at) for sid, at in fc.server_deaths)
            drains = tuple((sid % n, at) for sid, at in fc.server_drains)
            if len({sid for sid, _ in deaths}) >= n:
                note = "scenario skipped (would kill every server)"
            else:
                config = replace(
                    config,
                    fault_config=replace(
                        fc, server_deaths=deaths, server_drains=drains
                    ),
                )
        print(f"running {n}-server rack ...", file=sys.stderr)
        result = run_experiment(args.apps, config)
        stats = result.rack_stats
        worst_ms = max(result.completion_time(name) for name in args.apps) / 1000
        if not note:
            note = (
                "ledger ok"
                if result.rack.ledger_balanced()
                else "LEDGER IMBALANCE"
            )
        rows.append(
            [
                n,
                worst_ms,
                stats.pages_rehomed,
                stats.pages_lost_from_dead,
                stats.pages_drained,
                stats.entries_retired,
                note,
            ]
        )
    print(
        f"rack sweep ({args.placement}): {args.system} / {', '.join(args.apps)}"
        + (f" under {args.scenario!r}" if args.scenario else "")
    )
    print(
        format_table(
            ["servers", "worst time (ms)", "rehomed", "lost", "drained",
             "retired", "status"],
            rows,
        )
    )
    return 0


def _cmd_churn(args) -> int:
    from dataclasses import replace as dc_replace

    from repro.core.slo import SloConfig
    from repro.harness.experiment import run_churn

    traffic = TRAFFIC_SCENARIOS[args.scenario]
    overrides = {}
    if args.sessions is not None:
        overrides["n_sessions"] = args.sessions
    if args.day_us is not None:
        overrides["day_us"] = args.day_us
    if overrides:
        traffic = dc_replace(traffic, **overrides)
    config = ExperimentConfig(
        system=args.system,
        seed=args.seed,
        traffic=traffic,
        slo=(
            SloConfig(target_p99_us=args.slo_target_us)
            if args.slo_target_us is not None
            else None
        ),
        fault_config=(
            SCENARIOS[args.fault_scenario]
            if args.fault_scenario is not None
            else None
        ),
    )
    print(
        f"running {traffic.n_sessions}-session "
        f"{args.scenario!r} day on {args.system} ...",
        file=sys.stderr,
    )
    result = run_churn(config)
    leaked = len(result.system.apps)
    pressured = sum(1 for s in result.plan.sessions if s.pressured)
    faults = sum(app.stats.faults for app in result.apps.values())
    accesses = sum(app.stats.accesses for app in result.apps.values())
    print(f"churn day: {args.scenario} x{len(result.plan.sessions)} on {args.system}")
    rows = [
        ["sessions", len(result.plan.sessions)],
        ["pressured", pressured],
        ["accesses", accesses],
        ["faults", faults],
        ["elapsed (ms)", result.elapsed_us / 1000],
        ["still registered", leaked],
    ]
    if result.slo_stats is not None:
        rows.append(["slo rounds", result.slo_stats.rounds])
        rows.append(["slo breaches", result.slo_stats.breaches])
    print(format_table(["metric", "value"], rows))
    if leaked:
        print(f"ERROR: {leaked} cgroup(s) never unregistered", file=sys.stderr)
        return 1
    print(f"digest: {result.digest()}")
    return 0


def _cmd_cache(args) -> int:
    cache = default_disk_cache()
    if cache is None:
        print(f"result cache disabled (set ${CACHE_DIR_ENV} to enable)")
        return 0
    if args.action == "clear":
        removed = cache.clear()
        print(f"removed {removed} cached results from {cache.root}")
        return 0
    entries = cache.entries()
    total_bytes = sum(path.stat().st_size for path in entries)
    print(f"cache dir: {cache.root}")
    print(f"entries:   {len(entries)}")
    print(f"size:      {total_bytes / 1024:.1f} KiB")
    return 0


def _cmd_list(_args) -> int:
    rows = [
        [cls.name, cls.display_name, "managed" if cls.managed else "native",
         cls.n_threads]
        for cls in sorted(WORKLOADS.values(), key=lambda c: c.name)
    ]
    print(format_table(["name", "description", "runtime", "threads"], rows))
    print()
    print("systems: " + ", ".join(SYSTEMS))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "compare":
        return _cmd_compare(args)
    if args.command == "profile":
        return _cmd_profile(args)
    if args.command == "chaos":
        return _cmd_chaos(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "rack":
        return _cmd_rack(args)
    if args.command == "churn":
        return _cmd_churn(args)
    if args.command == "cache":
        return _cmd_cache(args)
    return _cmd_list(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
