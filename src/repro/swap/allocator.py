"""Swap-entry allocation policies.

Allocation is on the swap-out critical path: every evicted dirty page needs
a fresh entry, and in stock Linux that means taking a shared lock and
scanning a free list.  This module implements the allocator family the
paper measures:

* :class:`FreeListAllocator` — Linux 5.5's lock-protected free-list scan
  (the baseline whose contention is Figs. 4, 13, 15, 16).
* :class:`PerCoreClusterAllocator` — the Linux 5.8 patch [48] that gives
  each core a random cluster of entries, with collisions when cores land on
  the same cluster (Appendix B).
* :class:`BatchAllocator` — the Linux 5.8 patch [46] that amortizes the
  lock by grabbing several entries per acquisition (Appendix B).
* :class:`Linux514Allocator` — both patches combined, the Linux 5.14
  comparator in Fig. 16.

All allocators expose the same generator-based API: ``allocate(core_id)``
is yielded from inside a simulation process and returns a
:class:`~repro.swap.entry.SwapEntry`; ``free(entry)`` is immediate (the
kernel batches frees outside the hot path via the swap-slots cache, so we
do not charge lock time for them).

Canvas's *adaptive* allocator (§5.1) builds on these and lives in
:mod:`repro.core.adaptive_alloc`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional

import numpy as np

from repro.obs.trace import ENTRY_ALLOC, ENTRY_FREE
from repro.sim.engine import Engine
from repro.sim.resources import SimLock
from repro.swap.entry import SwapEntry
from repro.swap.partition import SwapPartition

__all__ = [
    "AllocatorStats",
    "EntryAllocator",
    "FreeListAllocator",
    "PerCoreClusterAllocator",
    "BatchAllocator",
    "Linux514Allocator",
]


@dataclass
class AllocatorStats:
    """Per-allocator timing statistics (feeds Figs. 4, 13, 15, 16)."""

    allocations: int = 0
    frees: int = 0
    total_alloc_time_us: float = 0.0
    max_alloc_time_us: float = 0.0
    lock_acquisitions: int = 0
    #: Wall-clock window edges for rate computations, set by the harness.
    first_alloc_at_us: Optional[float] = None
    last_alloc_at_us: Optional[float] = None

    def record(self, start_us: float, end_us: float) -> None:
        elapsed = end_us - start_us
        self.allocations += 1
        self.total_alloc_time_us += elapsed
        self.max_alloc_time_us = max(self.max_alloc_time_us, elapsed)
        if self.first_alloc_at_us is None:
            self.first_alloc_at_us = start_us
        self.last_alloc_at_us = end_us

    @property
    def mean_alloc_time_us(self) -> float:
        if self.allocations == 0:
            return 0.0
        return self.total_alloc_time_us / self.allocations

    def rate_per_second(self) -> float:
        """Mean allocation throughput over the active window."""
        if (
            self.first_alloc_at_us is None
            or self.last_alloc_at_us is None
            or self.last_alloc_at_us <= self.first_alloc_at_us
        ):
            return 0.0
        window_us = self.last_alloc_at_us - self.first_alloc_at_us
        return self.allocations / (window_us / 1e6)


class EntryAllocator:
    """Abstract base: an allocation policy bound to one partition."""

    def __init__(self, engine: Engine, partition: SwapPartition, name: str = ""):
        self.engine = engine
        self.partition = partition
        self.name = name or f"{partition.name}.alloc"
        self.stats = AllocatorStats()
        #: Optional :class:`repro.obs.TraceBuffer`.  Every path that
        #: hands an entry out — ``allocate`` and ``take_free_untimed``
        #: alike — emits ENTRY_ALLOC, and ``free`` emits ENTRY_FREE, so
        #: alloc/free alternation per entry is checkable post-hoc.
        #: (``take_free_untimed`` charges no simulated time, but under
        #: churn a late-arriving app prepopulates mid-trace and may be
        #: handed a just-freed entry; leaving setup untraced would make
        #: its eventual free look like a double free.)
        self.tracer = None
        #: Optional :class:`repro.cluster.Rack`.  When set, ``free``
        #: consults the rack so entries homed on a dead or draining
        #: server retire instead of re-entering any free pool.
        self.rack = None

    def _trace_alloc(self, entry: SwapEntry) -> None:
        if self.tracer is not None:
            self.tracer.emit(ENTRY_ALLOC, "", 0, entry.entry_id, self.name)

    @property
    def occupancy(self) -> float:
        """Fraction of entries in use (policy-aware; see cluster variant)."""
        return self.partition.occupancy

    def allocate(self, core_id: int = 0) -> Generator:
        """Simulation sub-generator: yields until an entry is obtained."""
        raise NotImplementedError

    def allocate_many(self, n: int, core_id: int = 0) -> Generator:
        """Batched allocate: ``n`` entries through one sub-generator.

        Serial-exact by contract: the batch charges exactly the sum of
        the per-entry simulated scan/lock times, performs the same lock
        acquisitions in the same order, and returns the same entries in
        the same order as ``n`` back-to-back :meth:`allocate` calls —
        including per-entry ``stats.record`` timestamps, so allocator
        statistics are bit-identical (pinned by the seeded A/B property
        suite in ``tests/test_allocator_batch.py``).  What the batch
        saves is host-side generator plumbing: the caller enters one
        sub-generator per batch instead of one per entry.  Policies
        override with an inlined loop; this base fallback delegates so
        any allocator is batch-callable.  Partition exhaustion raises
        mid-batch exactly where the serial loop would.
        """
        entries: List[SwapEntry] = []
        for _ in range(n):
            entry = yield from self.allocate(core_id)
            entries.append(entry)
        return entries

    def take_free_untimed(self) -> SwapEntry:
        """Grab an entry outside simulated time (experiment setup only)."""
        entry = self.partition.pop_free()
        self._trace_alloc(entry)
        return entry

    def free(self, entry: SwapEntry) -> None:
        """Return an entry to its partition's free pool (not timed)."""
        if self.tracer is not None:
            self.tracer.emit(ENTRY_FREE, "", 0, entry.entry_id, self.name)
        rack = self.rack
        if rack is not None and rack.entry_condemned(entry):
            rack.retire_freed(entry)
            self.stats.frees += 1
            return
        self.partition.push_free(entry)
        self.stats.frees += 1

    def retire_matching(self, server_id: int) -> List[SwapEntry]:
        """Pull every pooled free entry homed on ``server_id``.

        Called by the rack when a memory server dies or drains, so a
        condemned entry can never be handed out again.  Returns the
        victims (the rack retires them).  Policies with private caches
        or cluster free lists override and extend this.
        """
        free = self.partition._free
        victims = [e for e in free if e.server_id == server_id]
        if victims:
            keep = [e for e in free if e.server_id != server_id]
            free.clear()
            free.extend(keep)
        return victims


def _scan_cost_us(
    base_us: float, occupancy: float, scan_factor: float, max_multiplier: float = 4.0
) -> float:
    """Critical-section length of one allocation's free-space scan.

    Allocation cost rises moderately as the partition fills (cluster
    scanning skips more used slots), but it is bounded: the free list
    itself is O(1) to pop.  The paper's super-linear per-entry cost growth
    (Figs. 13/16) comes from *lock contention* — queueing delay on the
    allocator lock — which the surrounding :class:`SimLock` supplies.
    """
    headroom = max(1e-3, 1.0 - occupancy)
    multiplier = 1.0 + min(scan_factor * occupancy / headroom, max_multiplier - 1.0)
    return base_us * multiplier


class FreeListAllocator(EntryAllocator):
    """Linux 5.5: one lock, one free list, scan under the lock."""

    def __init__(
        self,
        engine: Engine,
        partition: SwapPartition,
        name: str = "",
        base_scan_us: float = 2.5,
        scan_factor: float = 0.10,
    ):
        super().__init__(engine, partition, name)
        self.base_scan_us = base_scan_us
        self.scan_factor = scan_factor
        self.lock = SimLock(engine, f"{self.name}.lock")

    def allocate(self, core_id: int = 0) -> Generator:
        start = self.engine.now
        yield self.lock.acquire()
        self.stats.lock_acquisitions += 1
        try:
            cost = _scan_cost_us(self.base_scan_us, self.partition.occupancy, self.scan_factor)
            yield self.engine.timeout(cost)
            entry = self.partition.pop_free()
        finally:
            self.lock.release()
        self.stats.record(start, self.engine.now)
        self._trace_alloc(entry)
        return entry

    def allocate_many(self, n: int, core_id: int = 0) -> Generator:
        entries: List[SwapEntry] = []
        engine = self.engine
        for _ in range(n):
            start = engine.now
            yield self.lock.acquire()
            self.stats.lock_acquisitions += 1
            try:
                cost = _scan_cost_us(
                    self.base_scan_us, self.partition.occupancy, self.scan_factor
                )
                yield engine.timeout(cost)
                entry = self.partition.pop_free()
            finally:
                self.lock.release()
            self.stats.record(start, engine.now)
            self._trace_alloc(entry)
            entries.append(entry)
        return entries


class _Cluster:
    """A slice of a partition's entries with its own lock and free list."""

    __slots__ = ("index", "lock", "free")

    def __init__(self, index: int, lock: SimLock, free: List[SwapEntry]):
        self.index = index
        self.lock = lock
        self.free = free


class PerCoreClusterAllocator(EntryAllocator):
    """Linux 5.8 patch: per-core random cluster assignment.

    Each core allocates from "its" cluster; when the cluster drains, the
    core is assigned a new random non-empty one.  Two cores sharing a
    cluster contend on that cluster's lock — the "core collision" whose
    probability grows super-linearly with cores (Appendix B, Fig. 16).
    """

    def __init__(
        self,
        engine: Engine,
        partition: SwapPartition,
        name: str = "",
        cluster_entries: int = 256,
        base_scan_us: float = 1.2,
        scan_factor: float = 0.25,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__(engine, partition, name)
        self.base_scan_us = base_scan_us
        self.scan_factor = scan_factor
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self.clusters: List[_Cluster] = []
        entries = partition.entries
        for index, start in enumerate(range(0, len(entries), cluster_entries)):
            chunk = [e for e in entries[start : start + cluster_entries]]
            self.clusters.append(
                _Cluster(index, SimLock(engine, f"{self.name}.c{index}"), chunk)
            )
        self._core_cluster: Dict[int, _Cluster] = {}
        #: Entries already popped from clusters are marked allocated by the
        #: partition; we bypass the partition free deque entirely and track
        #: frees back into clusters.
        self._entry_cluster: Dict[int, _Cluster] = {}
        for cluster in self.clusters:
            for entry in cluster.free:
                self._entry_cluster[entry.entry_id] = cluster
        # The partition's own deque is unused by this policy; drain it so
        # occupancy still reads correctly via our own accounting.
        self._allocated = 0

    @property
    def occupancy(self) -> float:
        return self._allocated / self.partition.n_entries

    def _assign_cluster(self, core_id: int) -> Optional[_Cluster]:
        nonempty = [c for c in self.clusters if c.free]
        if not nonempty:
            return None
        cluster = nonempty[int(self._rng.integers(0, len(nonempty)))]
        self._core_cluster[core_id] = cluster
        return cluster

    def collision_degree(self) -> float:
        """Mean number of cores sharing each in-use cluster (>=1)."""
        if not self._core_cluster:
            return 0.0
        counts: Dict[int, int] = {}
        for cluster in self._core_cluster.values():
            counts[cluster.index] = counts.get(cluster.index, 0) + 1
        return sum(counts.values()) / len(counts)

    def allocate(self, core_id: int = 0) -> Generator:
        start = self.engine.now
        while True:
            cluster = self._core_cluster.get(core_id)
            if cluster is None or not cluster.free:
                cluster = self._assign_cluster(core_id)
                if cluster is None:
                    raise RuntimeError(f"{self.name}: all clusters exhausted")
            yield cluster.lock.acquire()
            self.stats.lock_acquisitions += 1
            try:
                if not cluster.free:
                    continue  # raced with a collider; pick a new cluster
                cost = _scan_cost_us(self.base_scan_us, self.occupancy, self.scan_factor)
                yield self.engine.timeout(cost)
                entry = cluster.free.pop()
                entry.allocated = True
                self._allocated += 1
            finally:
                cluster.lock.release()
            self.stats.record(start, self.engine.now)
            self._trace_alloc(entry)
            return entry

    def allocate_many(self, n: int, core_id: int = 0) -> Generator:
        entries: List[SwapEntry] = []
        engine = self.engine
        for _ in range(n):
            start = engine.now
            while True:
                cluster = self._core_cluster.get(core_id)
                if cluster is None or not cluster.free:
                    cluster = self._assign_cluster(core_id)
                    if cluster is None:
                        raise RuntimeError(f"{self.name}: all clusters exhausted")
                yield cluster.lock.acquire()
                self.stats.lock_acquisitions += 1
                try:
                    if not cluster.free:
                        continue  # raced with a collider; pick a new cluster
                    cost = _scan_cost_us(
                        self.base_scan_us, self.occupancy, self.scan_factor
                    )
                    yield engine.timeout(cost)
                    entry = cluster.free.pop()
                    entry.allocated = True
                    self._allocated += 1
                finally:
                    cluster.lock.release()
                self.stats.record(start, engine.now)
                self._trace_alloc(entry)
                entries.append(entry)
                break
        return entries

    def free(self, entry: SwapEntry) -> None:
        if self.tracer is not None:
            self.tracer.emit(ENTRY_FREE, "", 0, entry.entry_id, self.name)
        rack = self.rack
        if rack is not None and rack.entry_condemned(entry):
            rack.retire_freed(entry)
            self._allocated -= 1
            self.stats.frees += 1
            return
        entry.allocated = False
        entry.reserved = False
        entry.stored_vpn = None
        entry.timestamp_us = None
        entry.valid = True
        self._entry_cluster[entry.entry_id].free.append(entry)
        self._allocated -= 1
        self.stats.frees += 1

    def retire_matching(self, server_id: int) -> List[SwapEntry]:
        # This policy never pops the partition's own deque (it still
        # holds every initial entry, in-use ones included), so only the
        # cluster free lists are purged — touching the base deque here
        # would condemn entries that are actually live.
        victims: List[SwapEntry] = []
        for cluster in self.clusters:
            matching = [e for e in cluster.free if e.server_id == server_id]
            if matching:
                cluster.free[:] = [
                    e for e in cluster.free if e.server_id != server_id
                ]
                victims.extend(matching)
        return victims

    def take_free_untimed(self) -> SwapEntry:
        for cluster in self.clusters:
            if cluster.free:
                entry = cluster.free.pop()
                entry.allocated = True
                self._allocated += 1
                self._trace_alloc(entry)
                return entry
        raise RuntimeError(f"{self.name}: all clusters exhausted")


class BatchAllocator(EntryAllocator):
    """Linux 5.8 patch: scan several entries per lock acquisition.

    Each core keeps a small private cache refilled ``batch_size`` entries
    at a time; the critical section is longer (the scan covers the whole
    batch) but runs once per ``batch_size`` allocations.
    """

    def __init__(
        self,
        engine: Engine,
        partition: SwapPartition,
        name: str = "",
        batch_size: int = 16,
        base_scan_us: float = 1.5,
        scan_factor: float = 0.10,
        per_entry_batch_us: float = 0.35,
    ):
        super().__init__(engine, partition, name)
        self.batch_size = batch_size
        self.base_scan_us = base_scan_us
        self.scan_factor = scan_factor
        self.per_entry_batch_us = per_entry_batch_us
        self.lock = SimLock(engine, f"{self.name}.lock")
        self._core_cache: Dict[int, List[SwapEntry]] = {}

    def allocate(self, core_id: int = 0) -> Generator:
        start = self.engine.now
        cache = self._core_cache.setdefault(core_id, [])
        if not cache:
            yield self.lock.acquire()
            self.stats.lock_acquisitions += 1
            try:
                scan = _scan_cost_us(
                    self.base_scan_us, self.partition.occupancy, self.scan_factor
                )
                scan += self.per_entry_batch_us * (self.batch_size - 1)
                yield self.engine.timeout(scan)
                cache.extend(self.partition.pop_free_batch(self.batch_size))
            finally:
                self.lock.release()
            if not cache:
                raise RuntimeError(f"{self.name}: partition exhausted")
        entry = cache.pop()
        self.stats.record(start, self.engine.now)
        self._trace_alloc(entry)
        return entry

    def allocate_many(self, n: int, core_id: int = 0) -> Generator:
        entries: List[SwapEntry] = []
        engine = self.engine
        cache = self._core_cache.setdefault(core_id, [])
        for _ in range(n):
            start = engine.now
            if not cache:
                yield self.lock.acquire()
                self.stats.lock_acquisitions += 1
                try:
                    scan = _scan_cost_us(
                        self.base_scan_us, self.partition.occupancy, self.scan_factor
                    )
                    scan += self.per_entry_batch_us * (self.batch_size - 1)
                    yield engine.timeout(scan)
                    cache.extend(self.partition.pop_free_batch(self.batch_size))
                finally:
                    self.lock.release()
                if not cache:
                    raise RuntimeError(f"{self.name}: partition exhausted")
            entry = cache.pop()
            self.stats.record(start, engine.now)
            self._trace_alloc(entry)
            entries.append(entry)
        return entries

    def retire_matching(self, server_id: int) -> List[SwapEntry]:
        victims = super().retire_matching(server_id)
        for cache in self._core_cache.values():
            matching = [e for e in cache if e.server_id == server_id]
            if matching:
                cache[:] = [e for e in cache if e.server_id != server_id]
                victims.extend(matching)
        return victims


class Linux514Allocator(PerCoreClusterAllocator):
    """Linux 5.14: per-core clusters *and* batched scans combined.

    Models the state of the mainline allocator the paper compares against
    in Fig. 16: cheaper than 5.5 at low core counts, but still super-linear
    beyond ~24 cores once core collisions dominate.
    """

    def __init__(
        self,
        engine: Engine,
        partition: SwapPartition,
        name: str = "",
        cluster_entries: int = 256,
        batch_size: int = 8,
        base_scan_us: float = 0.9,
        scan_factor: float = 0.20,
        per_entry_batch_us: float = 0.25,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__(
            engine,
            partition,
            name,
            cluster_entries=cluster_entries,
            base_scan_us=base_scan_us,
            scan_factor=scan_factor,
            rng=rng,
        )
        self.batch_size = batch_size
        self.per_entry_batch_us = per_entry_batch_us
        self._core_batch: Dict[int, List[SwapEntry]] = {}

    def allocate(self, core_id: int = 0) -> Generator:
        start = self.engine.now
        batch = self._core_batch.setdefault(core_id, [])
        if not batch:
            while True:
                cluster = self._core_cluster.get(core_id)
                if cluster is None or not cluster.free:
                    cluster = self._assign_cluster(core_id)
                    if cluster is None:
                        raise RuntimeError(f"{self.name}: all clusters exhausted")
                yield cluster.lock.acquire()
                self.stats.lock_acquisitions += 1
                try:
                    if not cluster.free:
                        continue
                    take = min(self.batch_size, len(cluster.free))
                    cost = _scan_cost_us(self.base_scan_us, self.occupancy, self.scan_factor)
                    cost += self.per_entry_batch_us * (take - 1)
                    yield self.engine.timeout(cost)
                    for _ in range(take):
                        entry = cluster.free.pop()
                        entry.allocated = True
                        self._allocated += 1
                        batch.append(entry)
                finally:
                    cluster.lock.release()
                break
        entry = batch.pop()
        self.stats.record(start, self.engine.now)
        self._trace_alloc(entry)
        return entry

    def allocate_many(self, n: int, core_id: int = 0) -> Generator:
        entries: List[SwapEntry] = []
        engine = self.engine
        batch = self._core_batch.setdefault(core_id, [])
        for _ in range(n):
            start = engine.now
            if not batch:
                while True:
                    cluster = self._core_cluster.get(core_id)
                    if cluster is None or not cluster.free:
                        cluster = self._assign_cluster(core_id)
                        if cluster is None:
                            raise RuntimeError(
                                f"{self.name}: all clusters exhausted"
                            )
                    yield cluster.lock.acquire()
                    self.stats.lock_acquisitions += 1
                    try:
                        if not cluster.free:
                            continue
                        take = min(self.batch_size, len(cluster.free))
                        cost = _scan_cost_us(
                            self.base_scan_us, self.occupancy, self.scan_factor
                        )
                        cost += self.per_entry_batch_us * (take - 1)
                        yield engine.timeout(cost)
                        for _ in range(take):
                            entry = cluster.free.pop()
                            entry.allocated = True
                            self._allocated += 1
                            batch.append(entry)
                    finally:
                        cluster.lock.release()
                    break
            entry = batch.pop()
            self.stats.record(start, engine.now)
            self._trace_alloc(entry)
            entries.append(entry)
        return entries

    def retire_matching(self, server_id: int) -> List[SwapEntry]:
        victims = super().retire_matching(server_id)  # cluster free lists
        for batch in self._core_batch.values():
            matching = [e for e in batch if e.server_id == server_id]
            if matching:
                batch[:] = [e for e in batch if e.server_id != server_id]
                victims.extend(matching)
        return victims
