"""The swap cache: unmapped pages between local memory and remote memory.

Pages land here when they are swapped in (demand or prefetch) and when
they are evicted but not yet written back.  In stock Linux the cache is a
set of radix trees shared by everyone; Canvas gives each cgroup a private
cache (default 32 MB) charged to its own memory budget, plus one global
cache for shared pages (§4).

The cache is keyed by swap-entry ID because that is what the faulting
path has in hand: the PTE of a swapped-out page stores the entry ID.

The hit/miss/prefetch counters recorded here are the raw material for the
paper's *prefetching contribution* (faults served by the cache over all
faults) and *accuracy* (prefetched pages that get used over all pages
prefetched) metrics in Table 5 and Fig. 14.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.mem.page import Page
from repro.swap.entry import SwapEntry

__all__ = ["SwapCacheStats", "SwapCache"]


@dataclass
class SwapCacheStats:
    lookups: int = 0
    hits: int = 0
    prefetch_hits: int = 0
    insertions: int = 0
    prefetch_insertions: int = 0
    removals: int = 0
    shrink_evictions: int = 0
    evicted_unused_prefetches: int = 0

    @property
    def misses(self) -> int:
        return self.lookups - self.hits

    @property
    def hit_ratio(self) -> float:
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups


class SwapCache:
    """An LRU-ordered cache of unmapped pages, keyed by swap entry ID."""

    def __init__(self, name: str, capacity_pages: int):
        if capacity_pages <= 0:
            raise ValueError(f"swap cache needs capacity > 0, got {capacity_pages}")
        self.name = name
        self.capacity_pages = capacity_pages
        self.stats = SwapCacheStats()
        # Insertion-ordered dict, LRU-first; a hit's promotion is a
        # single pop + re-insert.
        self._pages: Dict[int, Page] = {}

    def __len__(self) -> int:
        return len(self._pages)

    def __contains__(self, entry: SwapEntry) -> bool:
        return entry.entry_id in self._pages

    @property
    def full(self) -> bool:
        return len(self._pages) >= self.capacity_pages

    @property
    def overflow(self) -> int:
        """Number of pages beyond capacity (shrink target)."""
        return max(0, len(self._pages) - self.capacity_pages)

    def lookup(self, entry: SwapEntry) -> Optional[Page]:
        """Fault-path lookup.  Counts hit/miss and prefetch contribution.

        One hash probe: the pop both answers the membership question and
        detaches the page, which a hit re-inserts at the MRU end.
        """
        self.stats.lookups += 1
        pages = self._pages
        page = pages.pop(entry.entry_id, None)
        if page is None:
            return None
        pages[entry.entry_id] = page
        self.stats.hits += 1
        if page.prefetched:
            self.stats.prefetch_hits += 1
        return page

    def peek(self, entry: SwapEntry) -> Optional[Page]:
        """Lookup without touching statistics or LRU order."""
        return self._pages.get(entry.entry_id)

    def insert(self, entry: SwapEntry, page: Page, prefetched: bool = False) -> None:
        if entry.entry_id in self._pages:
            raise ValueError(
                f"{self.name}: entry {entry.entry_id} already cached"
            )
        page.in_swap_cache = True
        page.prefetched = prefetched
        self._pages[entry.entry_id] = page
        self.stats.insertions += 1
        if prefetched:
            self.stats.prefetch_insertions += 1

    def remove(self, entry: SwapEntry) -> Page:
        """Remove a page (it is being mapped into a process, or dropped)."""
        page = self._pages.pop(entry.entry_id)
        page.in_swap_cache = False
        self.stats.removals += 1
        return page

    def discard(self, entry: SwapEntry) -> Optional[Page]:
        page = self._pages.pop(entry.entry_id, None)
        if page is not None:
            page.in_swap_cache = False
            self.stats.removals += 1
        return page

    def shrink_candidates(
        self, n_pages: int, clean_only: bool = False
    ) -> List[Tuple[int, Page]]:
        """Pick up to ``n_pages`` LRU, unlocked pages for release.

        Locked pages (swap I/O in flight) are skipped, as the kernel does.
        With ``clean_only`` the dirty pages among those ``n_pages``
        candidates are filtered out too — the filter runs *after* the
        count cut, so the surviving set is exactly the pages a caller
        walking the unfiltered list and skipping dirty ones would have
        released.  When every candidate's flag bits live in one address
        space's flat arrays, the dirty filter is a single vectorized
        gather instead of one property read per page.  Pages are *not*
        removed here; pair with :meth:`release_many`.
        """
        candidates: List[Tuple[int, Page]] = []
        for entry_id, page in self._pages.items():
            if len(candidates) >= n_pages:
                break
            if page.locked:
                continue
            candidates.append((entry_id, page))
        if not clean_only or not candidates:
            return candidates
        home = candidates[0][1].flag_space
        if home is not None and all(
            page.flag_space is home for _, page in candidates
        ):
            vpns = np.fromiter(
                (page.vpn for _, page in candidates),
                dtype=np.int64,
                count=len(candidates),
            )
            clean = ~home.dirty_bits[vpns]
            return [c for c, ok in zip(candidates, clean.tolist()) if ok]
        return [c for c in candidates if not c[1].dirty]

    def release_many(self, entry_ids: List[int]) -> List[Page]:
        """Batch :meth:`release`: one pass, identical per-page accounting."""
        pages = self._pages
        stats = self.stats
        released: List[Page] = []
        for entry_id in entry_ids:
            page = pages.pop(entry_id)
            page.in_swap_cache = False
            stats.shrink_evictions += 1
            if page.prefetched:
                stats.evicted_unused_prefetches += 1
            released.append(page)
        return released

    def release(self, entry_id: int) -> Page:
        """Drop a page during a shrink pass (accounting differs from remove)."""
        page = self._pages.pop(entry_id)
        page.in_swap_cache = False
        self.stats.shrink_evictions += 1
        if page.prefetched:
            self.stats.evicted_unused_prefetches += 1
        return page

    def pages(self) -> List[Page]:
        return list(self._pages.values())
