"""Swap entries: 4 KB remote-memory cells addressed by entry ID.

Each entry belongs to one partition and carries the two metadata fields
Canvas adds in §5.3 for stale-prefetch handling: a ``timestamp_us`` written
when a prefetch request for the entry enters a VQP, and a ``valid`` flag a
faulting thread clears to cancel an in-flight prefetch it has given up on.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["SwapEntry"]


class SwapEntry:
    """One swap slot in a (remote-memory-backed) swap partition."""

    __slots__ = (
        "entry_id",
        "partition_name",
        "allocated",
        "reserved",
        "stored_vpn",
        "timestamp_us",
        "valid",
        "server_id",
        "retired",
    )

    def __init__(self, entry_id: int, partition_name: str):
        self.entry_id = entry_id
        self.partition_name = partition_name
        self.allocated = False
        #: Canvas §5.1: held by a page's struct-page reservation.
        self.reserved = False
        #: VPN whose data the entry currently stores (None when free).
        self.stored_vpn: Optional[int] = None
        #: Canvas §5.3: set when a prefetch for this entry is enqueued.
        self.timestamp_us: Optional[float] = None
        #: Canvas §5.3: cleared to drop the in-flight prefetch.
        self.valid = True
        #: Memory server backing this entry (rack model); 0 when no rack
        #: is attached, so the single-endpoint config never branches.
        self.server_id = 0
        #: Permanently withdrawn from circulation (its server died or was
        #: drained).  A retired entry never re-enters any free pool.
        self.retired = False

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"SwapEntry(id={self.entry_id}, part={self.partition_name!r}, "
            f"allocated={self.allocated}, reserved={self.reserved})"
        )
