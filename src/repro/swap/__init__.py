"""Swap substrate: entries, partitions, allocators, and the swap cache."""

from repro.swap.allocator import (
    AllocatorStats,
    BatchAllocator,
    EntryAllocator,
    FreeListAllocator,
    Linux514Allocator,
    PerCoreClusterAllocator,
)
from repro.swap.entry import SwapEntry
from repro.swap.partition import SwapPartition
from repro.swap.swap_cache import SwapCache, SwapCacheStats

__all__ = [
    "AllocatorStats",
    "BatchAllocator",
    "EntryAllocator",
    "FreeListAllocator",
    "Linux514Allocator",
    "PerCoreClusterAllocator",
    "SwapEntry",
    "SwapPartition",
    "SwapCache",
    "SwapCacheStats",
]
