"""Swap partitions: fixed-size arrays of swap entries over remote memory.

In stock Linux a single partition (or a priority-ordered chain) is shared
by every application; Canvas gives each cgroup its own partition plus one
global partition for shared pages (§4).  The partition itself is just the
entry array and the free set — allocation *policy* lives in
:mod:`repro.swap.allocator`.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List

from repro.swap.entry import SwapEntry

__all__ = ["SwapPartition"]


class SwapPartition:
    """A swap partition of ``n_entries`` 4 KB slots."""

    def __init__(self, name: str, n_entries: int):
        if n_entries <= 0:
            raise ValueError(f"partition needs entries > 0, got {n_entries}")
        self.name = name
        self.n_entries = n_entries
        self.entries: List[SwapEntry] = [SwapEntry(i, name) for i in range(n_entries)]
        self._free: Deque[SwapEntry] = deque(self.entries)
        #: Rack hook: called as ``on_grow(partition, new_entries)`` after a
        #: demand-driven grow so freshly registered entries get homed on a
        #: memory server.  None when no rack is attached.
        self.on_grow = None

    def grow(self, n_entries: int) -> List[SwapEntry]:
        """Append freshly registered remote memory (demand-driven, §4).

        Returns the new entries (already on the free list).  Timing —
        the RDMA buffer registration cost — is the caller's business.
        """
        if n_entries <= 0:
            raise ValueError(f"grow needs entries > 0, got {n_entries}")
        new_entries = [
            SwapEntry(self.n_entries + i, self.name) for i in range(n_entries)
        ]
        self.entries.extend(new_entries)
        self.n_entries += n_entries
        self._free.extend(new_entries)
        if self.on_grow is not None:
            self.on_grow(self, new_entries)
        return new_entries

    @property
    def free_count(self) -> int:
        return len(self._free)

    @property
    def used_count(self) -> int:
        return self.n_entries - len(self._free)

    @property
    def occupancy(self) -> float:
        """Fraction of entries allocated or reserved."""
        return self.used_count / self.n_entries

    def pop_free(self) -> SwapEntry:
        """Take one entry off the free list (no timing — caller models it)."""
        if not self._free:
            raise RuntimeError(f"swap partition {self.name!r} is full")
        entry = self._free.popleft()
        entry.allocated = True
        return entry

    def pop_free_batch(self, n: int) -> List[SwapEntry]:
        """Take up to ``n`` entries; used by the batch allocator."""
        batch: List[SwapEntry] = []
        while self._free and len(batch) < n:
            entry = self._free.popleft()
            entry.allocated = True
            batch.append(entry)
        return batch

    def push_free(self, entry: SwapEntry) -> None:
        """Return an entry to the free list."""
        if entry.partition_name != self.name:
            raise ValueError(
                f"entry {entry.entry_id} belongs to {entry.partition_name!r}, "
                f"not {self.name!r}"
            )
        if not entry.allocated:
            raise ValueError(f"double free of entry {entry.entry_id}")
        entry.allocated = False
        entry.reserved = False
        entry.stored_vpn = None
        entry.timestamp_us = None
        entry.valid = True
        self._free.append(entry)

    def __repr__(self) -> str:  # pragma: no cover
        return f"SwapPartition({self.name!r}, {self.used_count}/{self.n_entries} used)"
