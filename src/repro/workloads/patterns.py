"""Access-stream combinators.

Each generator yields ``(vpn, is_write, cpu_us)`` tuples — the protocol
consumed by :func:`repro.harness.driver.app_thread`.  Workloads are built
by composing these primitives: Snappy is one sequential stream, Memcached
is a Zipf stream, Spark is epochal scans plus pointer chasing plus GC
bursts, and so on.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.mem.address_space import VMA
from repro.workloads.zipf import ZipfSampler

__all__ = [
    "sequential",
    "strided",
    "zipfian",
    "uniform_random",
    "pointer_chase",
    "gc_bursts",
    "interleave",
    "shuffled_chain",
]

Access = Tuple[int, bool, float]


def sequential(
    vma: VMA,
    n: int,
    write_ratio: float = 0.0,
    cpu_us: float = 0.05,
    start: int = 0,
    rng: Optional[np.random.Generator] = None,
) -> Iterator[Access]:
    """Wrap-around sequential scan from ``start`` (page offset)."""
    writes = _write_flags(n, write_ratio, rng)
    base, span = vma.start_vpn, vma.n_pages
    for i in range(n):
        yield (base + (start + i) % span, writes[i], cpu_us)


def strided(
    vma: VMA,
    n: int,
    stride: int,
    write_ratio: float = 0.0,
    cpu_us: float = 0.05,
    start: int = 0,
    rng: Optional[np.random.Generator] = None,
) -> Iterator[Access]:
    """Wrap-around strided scan (e.g. column access of a row-major matrix)."""
    writes = _write_flags(n, write_ratio, rng)
    base, span = vma.start_vpn, vma.n_pages
    for i in range(n):
        yield (base + (start + i * stride) % span, writes[i], cpu_us)


def zipfian(
    vma: VMA,
    n: int,
    rng: np.random.Generator,
    theta: float = 0.99,
    write_ratio: float = 0.1,
    cpu_us: float = 0.1,
) -> Iterator[Access]:
    """Zipf-popular page accesses (YCSB-style key lookups)."""
    sampler = ZipfSampler(vma.n_pages, theta, rng)
    ranks = sampler.sample_many(n)
    # Scatter ranks over the region so popular pages are not contiguous.
    permutation = rng.permutation(vma.n_pages)
    writes = _write_flags(n, write_ratio, rng)
    base = vma.start_vpn
    for i in range(n):
        yield (base + int(permutation[ranks[i]]), writes[i], cpu_us)


def uniform_random(
    vma: VMA,
    n: int,
    rng: np.random.Generator,
    write_ratio: float = 0.0,
    cpu_us: float = 0.05,
) -> Iterator[Access]:
    offsets = rng.integers(0, vma.n_pages, size=n)
    writes = _write_flags(n, write_ratio, rng)
    base = vma.start_vpn
    for i in range(n):
        yield (base + int(offsets[i]), writes[i], cpu_us)


def shuffled_chain(vma: VMA, rng: np.random.Generator) -> List[int]:
    """A fixed random permutation of the region's VPNs: the 'object graph'
    traversal order used by :func:`pointer_chase` and recorded as
    reference edges by managed workloads."""
    order = np.array(range(vma.start_vpn, vma.end_vpn))
    rng.shuffle(order)
    return [int(v) for v in order]


def grouped_chain(
    vma: VMA, rng: np.random.Generator, group_pages: int = 16
) -> List[int]:
    """An object-graph traversal order with allocation-site locality.

    Real managed heaps allocate related objects together: a traversal
    bounces *randomly within* a page group (defeating stride detectors)
    but moves *between* few groups (so the write-barrier summary graph is
    sparse and reference-based prefetching sees exactly the future).  The
    chain visits page groups in one fixed random order, shuffling pages
    inside each group.
    """
    vpns = np.array(range(vma.start_vpn, vma.end_vpn))
    groups = [
        vpns[start : start + group_pages]
        for start in range(0, len(vpns), group_pages)
    ]
    group_order = rng.permutation(len(groups))
    chain: List[int] = []
    for index in group_order:
        members = groups[index].copy()
        rng.shuffle(members)
        chain.extend(int(v) for v in members)
    return chain


def pointer_chase(
    chain: Sequence[int],
    n: int,
    write_ratio: float = 0.0,
    cpu_us: float = 0.15,
    start_index: int = 0,
    rng: Optional[np.random.Generator] = None,
) -> Iterator[Access]:
    """Follow a fixed pointer chain repeatedly.

    The chain is deterministic (the heap's object graph does not change
    between traversals), which is exactly why reference-graph prefetching
    works on it while stride detectors see noise.
    """
    writes = _write_flags(n, write_ratio, rng)
    span = len(chain)
    for i in range(n):
        yield (chain[(start_index + i) % span], writes[i], cpu_us)


def gc_bursts(
    chain: Sequence[int],
    n_bursts: int,
    burst_len: int,
    idle_cpu_us: float = 400.0,
    cpu_us: float = 0.05,
    rng: Optional[np.random.Generator] = None,
) -> Iterator[Access]:
    """A GC thread: long compute pauses, then a burst of graph traversal.

    The first access of each burst carries the accumulated idle CPU so the
    thread occupies a core between collections without generating events.
    """
    span = len(chain)
    position = 0
    for burst in range(n_bursts):
        if rng is not None:
            position = int(rng.integers(0, span))
        for i in range(burst_len):
            cost = idle_cpu_us if i == 0 else cpu_us
            yield (chain[(position + i) % span], False, cost)
        position += burst_len


def interleave(
    streams: List[Iterator[Access]], rng: np.random.Generator
) -> Iterator[Access]:
    """Randomly interleave several streams until all are exhausted."""
    live = list(streams)
    while live:
        index = int(rng.integers(0, len(live)))
        try:
            yield next(live[index])
        except StopIteration:
            live.pop(index)


def _write_flags(
    n: int, write_ratio: float, rng: Optional[np.random.Generator]
) -> np.ndarray:
    if write_ratio <= 0.0 or rng is None:
        if write_ratio >= 1.0:
            return np.ones(n, dtype=bool)
        if write_ratio > 0.0:
            # Deterministic thinning when no RNG is supplied.
            period = max(1, round(1.0 / write_ratio))
            return np.arange(n) % period == 0
        return np.zeros(n, dtype=bool)
    return rng.random(n) < write_ratio
