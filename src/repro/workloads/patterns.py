"""Access-stream combinators.

Each scalar generator yields ``(vpn, is_write, cpu_us)`` tuples — the
protocol consumed by :func:`repro.harness.driver.app_thread`.  Workloads
are built by composing these primitives: Snappy is one sequential
stream, Memcached is a Zipf stream, Spark is epochal scans plus pointer
chasing plus GC bursts, and so on.

Every primitive also has a ``*_batches`` variant producing
:class:`~repro.workloads.batch.AccessBatch` chunks with the columns
computed vectorized.  The scalar generators are defined as
``flatten_batches`` over the batched ones, so both protocols emit the
same access sequence from the same RNG draws by construction.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.mem.address_space import VMA
from repro.workloads.batch import BATCH_SIZE, AccessBatch, emit_batches, flatten_batches
from repro.workloads.zipf import ZipfSampler

__all__ = [
    "sequential",
    "strided",
    "zipfian",
    "uniform_random",
    "pointer_chase",
    "gc_bursts",
    "interleave",
    "shuffled_chain",
    "grouped_chain",
    "sequential_batches",
    "strided_batches",
    "zipfian_batches",
    "uniform_random_batches",
    "pointer_chase_batches",
    "gc_bursts_batches",
]

Access = Tuple[int, bool, float]


# -- batched producers ----------------------------------------------------


def sequential_batches(
    vma: VMA,
    n: int,
    write_ratio: float = 0.0,
    cpu_us: float = 0.05,
    start: int = 0,
    rng: Optional[np.random.Generator] = None,
    batch_size: int = BATCH_SIZE,
) -> Iterator[AccessBatch]:
    """Wrap-around sequential scan from ``start`` (page offset)."""
    writes = _write_flags(n, write_ratio, rng)
    vpns = vma.start_vpn + (start + np.arange(n)) % vma.n_pages
    yield from emit_batches(vpns, writes, cpu_us, batch_size)


def strided_batches(
    vma: VMA,
    n: int,
    stride: int,
    write_ratio: float = 0.0,
    cpu_us: float = 0.05,
    start: int = 0,
    rng: Optional[np.random.Generator] = None,
    batch_size: int = BATCH_SIZE,
) -> Iterator[AccessBatch]:
    """Wrap-around strided scan (e.g. column access of a row-major matrix)."""
    writes = _write_flags(n, write_ratio, rng)
    vpns = vma.start_vpn + (start + np.arange(n) * stride) % vma.n_pages
    yield from emit_batches(vpns, writes, cpu_us, batch_size)


def zipfian_batches(
    vma: VMA,
    n: int,
    rng: np.random.Generator,
    theta: float = 0.99,
    write_ratio: float = 0.1,
    cpu_us: float = 0.1,
    batch_size: int = BATCH_SIZE,
) -> Iterator[AccessBatch]:
    """Zipf-popular page accesses (YCSB-style key lookups)."""
    sampler = ZipfSampler(vma.n_pages, theta, rng)
    ranks = sampler.sample_many(n)
    # Scatter ranks over the region so popular pages are not contiguous.
    permutation = rng.permutation(vma.n_pages)
    writes = _write_flags(n, write_ratio, rng)
    vpns = vma.start_vpn + permutation[ranks]
    yield from emit_batches(vpns, writes, cpu_us, batch_size)


def uniform_random_batches(
    vma: VMA,
    n: int,
    rng: np.random.Generator,
    write_ratio: float = 0.0,
    cpu_us: float = 0.05,
    batch_size: int = BATCH_SIZE,
) -> Iterator[AccessBatch]:
    offsets = rng.integers(0, vma.n_pages, size=n)
    writes = _write_flags(n, write_ratio, rng)
    yield from emit_batches(vma.start_vpn + offsets, writes, cpu_us, batch_size)


def pointer_chase_batches(
    chain: Sequence[int],
    n: int,
    write_ratio: float = 0.0,
    cpu_us: float = 0.15,
    start_index: int = 0,
    rng: Optional[np.random.Generator] = None,
    batch_size: int = BATCH_SIZE,
) -> Iterator[AccessBatch]:
    """Follow a fixed pointer chain repeatedly.

    The chain is deterministic (the heap's object graph does not change
    between traversals), which is exactly why reference-graph prefetching
    works on it while stride detectors see noise.
    """
    writes = _write_flags(n, write_ratio, rng)
    vpns = np.asarray(chain)[(start_index + np.arange(n)) % len(chain)]
    yield from emit_batches(vpns, writes, cpu_us, batch_size)


def gc_bursts_batches(
    chain: Sequence[int],
    n_bursts: int,
    burst_len: int,
    idle_cpu_us: float = 400.0,
    cpu_us: float = 0.05,
    rng: Optional[np.random.Generator] = None,
    batch_size: int = BATCH_SIZE,
) -> Iterator[AccessBatch]:
    """A GC thread: long compute pauses, then a burst of graph traversal.

    The first access of each burst carries the accumulated idle CPU so the
    thread occupies a core between collections without generating events.
    """
    span = len(chain)
    vpns = np.asarray(chain)
    position = 0
    vpn_parts: List[np.ndarray] = []
    cpu_parts: List[np.ndarray] = []
    for _ in range(n_bursts):
        if rng is not None:
            position = int(rng.integers(0, span))
        if burst_len > 0:
            vpn_parts.append(vpns[(position + np.arange(burst_len)) % span])
            costs = np.full(burst_len, cpu_us, dtype=np.float64)
            costs[0] = idle_cpu_us
            cpu_parts.append(costs)
        position += burst_len
    if not vpn_parts:
        return
    yield from emit_batches(
        np.concatenate(vpn_parts), False, np.concatenate(cpu_parts), batch_size
    )


# -- scalar protocol ------------------------------------------------------


def sequential(
    vma: VMA,
    n: int,
    write_ratio: float = 0.0,
    cpu_us: float = 0.05,
    start: int = 0,
    rng: Optional[np.random.Generator] = None,
) -> Iterator[Access]:
    """Scalar view of :func:`sequential_batches`."""
    return flatten_batches(sequential_batches(vma, n, write_ratio, cpu_us, start, rng))


def strided(
    vma: VMA,
    n: int,
    stride: int,
    write_ratio: float = 0.0,
    cpu_us: float = 0.05,
    start: int = 0,
    rng: Optional[np.random.Generator] = None,
) -> Iterator[Access]:
    """Scalar view of :func:`strided_batches`."""
    return flatten_batches(
        strided_batches(vma, n, stride, write_ratio, cpu_us, start, rng)
    )


def zipfian(
    vma: VMA,
    n: int,
    rng: np.random.Generator,
    theta: float = 0.99,
    write_ratio: float = 0.1,
    cpu_us: float = 0.1,
) -> Iterator[Access]:
    """Scalar view of :func:`zipfian_batches`."""
    return flatten_batches(zipfian_batches(vma, n, rng, theta, write_ratio, cpu_us))


def uniform_random(
    vma: VMA,
    n: int,
    rng: np.random.Generator,
    write_ratio: float = 0.0,
    cpu_us: float = 0.05,
) -> Iterator[Access]:
    """Scalar view of :func:`uniform_random_batches`."""
    return flatten_batches(uniform_random_batches(vma, n, rng, write_ratio, cpu_us))


def pointer_chase(
    chain: Sequence[int],
    n: int,
    write_ratio: float = 0.0,
    cpu_us: float = 0.15,
    start_index: int = 0,
    rng: Optional[np.random.Generator] = None,
) -> Iterator[Access]:
    """Scalar view of :func:`pointer_chase_batches`."""
    return flatten_batches(
        pointer_chase_batches(chain, n, write_ratio, cpu_us, start_index, rng)
    )


def gc_bursts(
    chain: Sequence[int],
    n_bursts: int,
    burst_len: int,
    idle_cpu_us: float = 400.0,
    cpu_us: float = 0.05,
    rng: Optional[np.random.Generator] = None,
) -> Iterator[Access]:
    """Scalar view of :func:`gc_bursts_batches`."""
    return flatten_batches(
        gc_bursts_batches(chain, n_bursts, burst_len, idle_cpu_us, cpu_us, rng)
    )


# -- chains and interleaving ----------------------------------------------


def shuffled_chain(vma: VMA, rng: np.random.Generator) -> List[int]:
    """A fixed random permutation of the region's VPNs: the 'object graph'
    traversal order used by :func:`pointer_chase` and recorded as
    reference edges by managed workloads."""
    order = np.array(range(vma.start_vpn, vma.end_vpn))
    rng.shuffle(order)
    return [int(v) for v in order]


def grouped_chain(
    vma: VMA, rng: np.random.Generator, group_pages: int = 16
) -> List[int]:
    """An object-graph traversal order with allocation-site locality.

    Real managed heaps allocate related objects together: a traversal
    bounces *randomly within* a page group (defeating stride detectors)
    but moves *between* few groups (so the write-barrier summary graph is
    sparse and reference-based prefetching sees exactly the future).  The
    chain visits page groups in one fixed random order, shuffling pages
    inside each group.
    """
    vpns = np.array(range(vma.start_vpn, vma.end_vpn))
    groups = [
        vpns[start : start + group_pages]
        for start in range(0, len(vpns), group_pages)
    ]
    group_order = rng.permutation(len(groups))
    chain: List[int] = []
    for index in group_order:
        members = groups[index].copy()
        rng.shuffle(members)
        chain.extend(int(v) for v in members)
    return chain


def interleave(
    streams: List[Iterator[Access]], rng: np.random.Generator
) -> Iterator[Access]:
    """Randomly interleave several streams until all are exhausted."""
    live = list(streams)
    while live:
        index = int(rng.integers(0, len(live)))
        try:
            yield next(live[index])
        except StopIteration:
            live.pop(index)


def _write_flags(
    n: int, write_ratio: float, rng: Optional[np.random.Generator]
) -> np.ndarray:
    if write_ratio <= 0.0 or rng is None:
        if write_ratio >= 1.0:
            return np.ones(n, dtype=bool)
        if write_ratio > 0.0:
            # Deterministic thinning when no RNG is supplied.
            period = max(1, round(1.0 / write_ratio))
            return np.arange(n) % period == 0
        return np.zeros(n, dtype=bool)
    return rng.random(n) < write_ratio
