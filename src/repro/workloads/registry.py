"""Workload registry: look up Table 2 applications by name."""

from __future__ import annotations

from typing import Dict, List, Type

from repro.workloads.apps import (
    CassandraWorkload,
    GraphXCC,
    GraphXPR,
    GraphXSP,
    MemcachedWorkload,
    MLlibBayes,
    Neo4jWorkload,
    SnappyWorkload,
    SparkKM,
    SparkLR,
    SparkPR,
    SparkSSG,
    SparkTC,
    XGBoostWorkload,
)
from repro.workloads.base import Workload

__all__ = [
    "WORKLOADS",
    "MANAGED_WORKLOADS",
    "NATIVE_WORKLOADS",
    "make_workload",
]

_CLASSES: List[Type[Workload]] = [
    CassandraWorkload,
    Neo4jWorkload,
    SparkPR,
    SparkKM,
    SparkLR,
    SparkSSG,
    SparkTC,
    MLlibBayes,
    GraphXCC,
    GraphXPR,
    GraphXSP,
    XGBoostWorkload,
    SnappyWorkload,
    MemcachedWorkload,
]

#: name -> class, in Table 2 order.
WORKLOADS: Dict[str, Type[Workload]] = {cls.name: cls for cls in _CLASSES}

MANAGED_WORKLOADS: List[str] = [cls.name for cls in _CLASSES if cls.managed]
NATIVE_WORKLOADS: List[str] = [cls.name for cls in _CLASSES if not cls.managed]


def make_workload(name: str, scale: float = 1.0) -> Workload:
    """Instantiate a registered workload by its Table 2 name."""
    try:
        cls = WORKLOADS[name]
    except KeyError:
        known = ", ".join(sorted(WORKLOADS))
        raise KeyError(f"unknown workload {name!r}; known: {known}") from None
    return cls(scale=scale)
