"""Workloads: Table 2 applications, access-pattern combinators, samplers."""

from repro.workloads.base import Workload
from repro.workloads.registry import (
    MANAGED_WORKLOADS,
    NATIVE_WORKLOADS,
    WORKLOADS,
    make_workload,
)
from repro.workloads.zipf import ZipfSampler

__all__ = [
    "Workload",
    "WORKLOADS",
    "MANAGED_WORKLOADS",
    "NATIVE_WORKLOADS",
    "make_workload",
    "ZipfSampler",
]
