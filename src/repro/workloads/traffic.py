"""Open-loop traffic: apps arrive, grow, shrink, and depart on curves.

The paper evaluates a fixed roster of co-running applications; real
multi-tenant hosts see a *population* that breathes — sessions arrive on
a diurnal intensity curve, sessions launched near the peak are bigger
(the population's working set grows into the peak and shrinks out of
it), and every session eventually departs, exercising the teardown path
under load.

Like :mod:`repro.faults`, everything here is a **pure function of
``(config, seed)``**: :class:`TrafficPlan` materializes the full session
schedule up front from seeded numpy streams, so two runs with the same
seed produce bit-identical digests, and a run driven by a zero-session
plan is bit-identical to a run with no plan at all.

Model
-----
* **Arrivals** are drawn by inverse-CDF sampling from a normalized
  intensity curve over one simulated "day": sorted uniform quantiles are
  mapped through the discretized cumulative curve, so n sessions land
  with density proportional to the instantaneous intensity (an open-loop
  arrival process — nothing about the system's state feeds back into
  the schedule).
* **Curves**: ``diurnal`` (one smooth peak), ``bursty`` (diurnal with
  seeded narrow bursts superimposed), ``flash-crowd`` (a quiet baseline
  with one tall spike), ``constant`` (uniform arrivals, the control).
* **Grow/shrink**: a session's working set and access count scale with
  the curve value at its arrival instant, so the aggregate footprint
  tracks the curve up and back down.
* **Departure** is work-driven, as in an open-loop closed session: a
  session runs its access stream to completion, then unregisters.  The
  harness (``run_churn``) owns the register → run → unregister
  mechanics; this module only decides *who arrives when, how big*.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.sim.rng import derive_seed

__all__ = [
    "CURVES",
    "TrafficConfig",
    "TrafficSession",
    "TrafficPlan",
    "TRAFFIC_SCENARIOS",
    "traffic_scenario_config",
    "make_traffic_plan",
]

CURVES = ("diurnal", "bursty", "flash-crowd", "constant")

#: Resolution of the discretized intensity curve used for inverse-CDF
#: arrival sampling (bins per day).
_CURVE_BINS = 1024


@dataclass(frozen=True)
class TrafficConfig:
    """One traffic scenario's knobs.

    Frozen for the same reason :class:`~repro.faults.FaultConfig` is:
    the config sits inside an ``ExperimentConfig`` and feeds the result
    cache's repr-based job key.
    """

    #: Root seed for the plan's RNG streams; ``None`` derives one from
    #: the experiment seed so churn digests stay seed-stable.
    traffic_seed: Optional[int] = None
    #: One of :data:`CURVES`.
    curve: str = "diurnal"
    #: Sessions over one day (each is one cgroup: arrive → run → depart).
    n_sessions: int = 32
    #: Length of the simulated day the arrivals are spread over.
    day_us: float = 100_000.0
    #: Trough intensity as a fraction of peak (diurnal floor).
    base_intensity: float = 0.2
    #: Superimposed bursts (``bursty``/``flash-crowd`` place these).
    n_bursts: int = 0
    #: Burst width as a fraction of the day.
    burst_width_frac: float = 0.03
    #: Burst height relative to the diurnal peak.
    burst_gain: float = 4.0

    # -- per-session sizing -----------------------------------------------
    #: Mean working set per session, in pages.
    working_set_pages: int = 48
    #: Grow/shrink amplitude: a session arriving at the curve's peak is
    #: up to this much bigger than the mean, at the trough this much
    #: smaller (fraction of the mean).
    elasticity: float = 0.5
    #: Mean accesses per session (scales with the curve like the
    #: working set, plus per-session jitter).
    accesses_mean: int = 4_000
    #: Uniform per-session jitter on the access count (fraction).
    accesses_jitter: float = 0.5
    write_fraction: float = 0.3
    #: Every Nth session runs above its local memory, keeping demand
    #: faults and reclaim in the mix (0 disables pressure entirely).
    pressured_every: int = 4
    #: Local memory as a multiple of the working set for unpressured
    #: sessions (>1: pure resident fast path after warmup)...
    local_headroom: float = 1.3
    #: ...and as a fraction of it for pressured ones (<1: faults).
    pressured_local_fraction: float = 0.75
    #: CPU attached to each access.
    cpu_us_per_access: float = 0.05

    def __post_init__(self):
        if self.curve not in CURVES:
            raise ValueError(f"unknown curve {self.curve!r}; known: {CURVES}")
        if self.n_sessions < 0:
            raise ValueError(f"n_sessions must be >= 0, got {self.n_sessions}")
        if self.day_us <= 0:
            raise ValueError(f"day_us must be positive, got {self.day_us}")
        if not 0.0 < self.base_intensity <= 1.0:
            raise ValueError("base_intensity must be in (0, 1]")
        if self.elasticity < 0 or self.elasticity >= 1.0:
            raise ValueError("elasticity must be in [0, 1)")


@dataclass(frozen=True)
class TrafficSession:
    """One materialized session: who arrives when, how big."""

    index: int
    name: str
    arrive_us: float
    #: Curve value at the arrival instant, in [0, 1] (recorded so tests
    #: and the SLO controller can correlate size with load).
    intensity: float
    working_set_pages: int
    local_memory_pages: int
    accesses: int
    pressured: bool


class TrafficPlan:
    """A fully materialized arrival schedule: pure function of (config, seed)."""

    def __init__(self, config: TrafficConfig, seed: int = 0):
        self.config = config
        self.seed = (
            config.traffic_seed
            if config.traffic_seed is not None
            else derive_seed(seed, "traffic")
        )
        rng = np.random.default_rng(derive_seed(self.seed, "arrivals"))
        # Burst placement draws first, in a fixed order, so sizing
        # jitter never perturbs where bursts land.
        self._bursts = self._place_bursts(rng)
        curve = self._intensity_bins()
        cdf = np.cumsum(curve)
        cdf /= cdf[-1]
        quantiles = np.sort(rng.random(config.n_sessions))
        bin_of = np.searchsorted(cdf, quantiles)
        sessions = []
        for index in range(config.n_sessions):
            phase = (float(bin_of[index]) + rng.random()) / _CURVE_BINS
            arrive = phase * config.day_us
            intensity = min(1.0, self._intensity(phase))
            scale = 1.0 + config.elasticity * (2.0 * intensity - 1.0)
            jitter = 1.0 + config.accesses_jitter * (2.0 * rng.random() - 1.0)
            ws = max(16, int(round(config.working_set_pages * scale)))
            accesses = max(64, int(round(config.accesses_mean * scale * jitter)))
            pressured = (
                config.pressured_every > 0
                and index % config.pressured_every == 0
            )
            if pressured:
                local = max(8, int(ws * config.pressured_local_fraction))
            else:
                local = max(8, int(ws * config.local_headroom))
            sessions.append(
                TrafficSession(
                    index=index,
                    name=f"sess{index:04d}",
                    arrive_us=arrive,
                    intensity=intensity,
                    working_set_pages=ws,
                    local_memory_pages=local,
                    accesses=accesses,
                    pressured=pressured,
                )
            )
        self.sessions: Tuple[TrafficSession, ...] = tuple(sessions)

    # -- curve --------------------------------------------------------------

    def _place_bursts(self, rng: np.random.Generator) -> Tuple[Tuple[float, float], ...]:
        config = self.config
        if config.curve == "flash-crowd":
            n = max(1, config.n_bursts)
        elif config.curve == "bursty":
            n = config.n_bursts if config.n_bursts > 0 else 3
        else:
            n = 0
        return tuple(
            (float(rng.random()), config.burst_width_frac) for _ in range(n)
        )

    def _intensity(self, phase: float) -> float:
        """Arrival intensity at ``phase`` in [0, 1), normalized to [0, 1]."""
        config = self.config
        base = config.base_intensity
        if config.curve == "constant":
            return 1.0
        if config.curve == "flash-crowd":
            diurnal = base
        else:
            # One smooth peak centered mid-day.
            diurnal = base + (1.0 - base) * 0.5 * (
                1.0 - math.cos(2.0 * math.pi * phase)
            )
        spike = 0.0
        for center, width in self._bursts:
            distance = abs(phase - center)
            distance = min(distance, 1.0 - distance)  # day wraps
            if distance < width:
                spike = max(
                    spike, config.burst_gain * (1.0 - distance / width)
                )
        # Unclamped: a burst's arrival *density* may exceed the diurnal
        # peak (that is what makes it a burst); per-session sizing clamps
        # to [0, 1] separately.
        return diurnal + spike

    def _intensity_bins(self) -> np.ndarray:
        phases = (np.arange(_CURVE_BINS) + 0.5) / _CURVE_BINS
        return np.asarray([self._intensity(p) for p in phases], dtype=float)

    # -- per-session access streams -----------------------------------------

    def session_accesses(
        self, session: TrafficSession
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Seeded (vpns, writes) arrays for one session's stream.

        Keyed by session name under the plan's root seed, so a session's
        stream never depends on how many other sessions exist.
        """
        rng = np.random.default_rng(derive_seed(self.seed, session.name))
        vpns = rng.integers(0, session.working_set_pages, size=session.accesses)
        writes = rng.random(session.accesses) < self.config.write_fraction
        return vpns, writes

    # -- introspection -------------------------------------------------------

    @property
    def peak_window_us(self) -> Tuple[float, float]:
        """The busiest decile of the day (where fault storms belong)."""
        curve = self._intensity_bins()
        peak_bin = int(np.argmax(curve))
        width = self.config.day_us / 10.0
        center = (peak_bin + 0.5) / _CURVE_BINS * self.config.day_us
        start = max(0.0, center - width / 2.0)
        return (start, start + width)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"TrafficPlan(seed={self.seed}, curve={self.config.curve!r}, "
            f"sessions={len(self.sessions)})"
        )


#: Named scenarios for ``canvas-sim churn`` and the churn test suite.
TRAFFIC_SCENARIOS: Dict[str, TrafficConfig] = {
    "diurnal": TrafficConfig(curve="diurnal", n_sessions=32),
    "bursty": TrafficConfig(curve="bursty", n_sessions=32, n_bursts=3),
    "flash-crowd": TrafficConfig(
        curve="flash-crowd", n_sessions=32, n_bursts=1, burst_gain=6.0
    ),
    "constant": TrafficConfig(curve="constant", n_sessions=32),
}


def traffic_scenario_config(name: str) -> TrafficConfig:
    try:
        return TRAFFIC_SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown traffic scenario {name!r}; known: "
            f"{sorted(TRAFFIC_SCENARIOS)}"
        ) from None


def make_traffic_plan(
    config: Optional[TrafficConfig], seed: int = 0
) -> Optional[TrafficPlan]:
    """The harness entry point: ``None`` config means no plan at all."""
    if config is None:
        return None
    return TrafficPlan(config, seed)
