"""Workload interface.

A :class:`Workload` describes one Table 2 application: how many threads
it runs, how big its working set is, whether it is managed (JVM) or
native, and — through :meth:`build` and :meth:`thread_streams` — the page
regions it maps and the access stream each thread produces.

``scale`` shrinks working sets and access counts together so experiments
run at laptop scale; all paper-relevant ratios (local-memory fraction,
fault rates, thread counts) are scale-invariant.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

import numpy as np

from repro.kernel.cgroup import AppContext
from repro.runtime.jvm import JvmRuntime, NativeRuntime
from repro.workloads.batch import AccessBatch, chunk_stream, flatten_batches

__all__ = ["Workload"]

Access = Tuple[int, bool, float]


class Workload:
    """Base class; concrete applications live in :mod:`repro.workloads.apps`."""

    #: Registry key (e.g. ``"spark_lr"``).
    name: str = ""
    #: Paper label (e.g. ``"Spark-LR (SLR)"``).
    display_name: str = ""
    #: Managed (JVM) applications get a JvmRuntime with GC threads.
    managed: bool = False
    n_threads: int = 1
    n_aux_threads: int = 0
    working_set_pages: int = 1024
    accesses_per_thread: int = 2000

    def __init__(self, scale: float = 1.0):
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        self.scale = scale
        self.working_set_pages = max(64, int(self.working_set_pages * scale))
        self.accesses_per_thread = max(100, int(self.accesses_per_thread * scale))

    # -- interface ----------------------------------------------------------

    def build(self, app: AppContext, rng: np.random.Generator) -> None:
        """Map regions into ``app.space`` and attach the runtime model."""
        raise NotImplementedError

    def thread_streams(
        self, app: AppContext, rng: np.random.Generator
    ) -> List[Iterator[Access]]:
        """One scalar access stream per thread (app threads first, then aux).

        Subclasses override either this or :meth:`thread_batch_streams`
        (or both); each default derives from the other, so the two
        protocols always describe the same access sequence.
        """
        if type(self).thread_batch_streams is not Workload.thread_batch_streams:
            return [
                flatten_batches(stream)
                for stream in self.thread_batch_streams(app, rng)
            ]
        raise NotImplementedError

    def thread_batch_streams(
        self, app: AppContext, rng: np.random.Generator
    ) -> List[Iterator[AccessBatch]]:
        """One batched access stream per thread (the driver fast path).

        The default re-chunks :meth:`thread_streams`; workloads whose
        patterns vectorize override this natively.
        """
        if type(self).thread_streams is not Workload.thread_streams:
            return [chunk_stream(stream) for stream in self.thread_streams(app, rng)]
        raise NotImplementedError

    # -- helpers ----------------------------------------------------------

    @property
    def total_threads(self) -> int:
        return self.n_threads + self.n_aux_threads

    def attach_runtime(self, app: AppContext) -> None:
        """Create the runtime model and register the thread map."""
        if self.managed:
            runtime = JvmRuntime(app.name)
        else:
            runtime = NativeRuntime(app.name)
        runtime.register_threads(
            list(range(self.n_threads)),
            list(range(self.n_threads, self.total_threads)),
        )
        app.runtime = runtime

    def __repr__(self) -> str:  # pragma: no cover
        return f"{type(self).__name__}(scale={self.scale})"
