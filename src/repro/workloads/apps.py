"""The Table 2 applications as synthetic page-access workloads.

Each class reproduces the characteristics the paper keys on:

=============  =======  ========  =====================================
application    threads  runtime   dominant access pattern
=============  =======  ========  =====================================
Spark LR/KM     16+4    managed   epochal partition scans over a large
                                  RDD array + GC pointer chasing
Spark PR/TC,    16+4    managed   pointer chasing over the object graph
GraphX CC/PR/SP
MLlib Bayes     16+4    managed   partition scans (instance matrix)
Spark SSG       16+4    managed   zipf-skewed shuffle writes
Cassandra       12+2    managed   zipf record reads/inserts + log append
Neo4j            8+2    managed   graph traversal with a hot core
                                  (holds data locally, swaps little)
Memcached          4    native    zipf get/set
XGBoost           16    native    per-thread feature-block scans
Snappy             1    native    pure streaming (compression)
=============  =======  ========  =====================================

Thread counts are scaled ~4-6x down from the paper's (>90 for Spark);
relative ordering — Spark ≫ XGBoost > Memcached > Snappy — is preserved,
which is what drives the interference asymmetry of Fig. 2.
"""

from __future__ import annotations

from typing import Iterator, List

import numpy as np

from repro.kernel.cgroup import AppContext
from repro.workloads import patterns
from repro.workloads.base import Access, Workload
from repro.workloads.batch import BATCH_SIZE, AccessBatch, emit_batches

__all__ = [
    "SparkScanWorkload",
    "SparkLR",
    "SparkKM",
    "MLlibBayes",
    "SparkGraphWorkload",
    "SparkPR",
    "SparkTC",
    "GraphXCC",
    "GraphXPR",
    "GraphXSP",
    "SparkSSG",
    "CassandraWorkload",
    "Neo4jWorkload",
    "MemcachedWorkload",
    "XGBoostWorkload",
    "SnappyWorkload",
]


class _ManagedWorkload(Workload):
    """Shared scaffolding for JVM applications: heap + GC threads."""

    managed = True
    n_aux_threads = 4
    #: Fraction of the working set that is the 'data' region (RDD /
    #: records / graph); the rest is general heap.
    data_fraction = 0.8
    gc_bursts = 6
    gc_burst_len = 60

    def build(self, app: AppContext, rng: np.random.Generator) -> None:
        data_pages = int(self.working_set_pages * self.data_fraction)
        heap_pages = max(64, self.working_set_pages - data_pages)
        self.data_vma = app.space.map_region(data_pages, name="data")
        self.heap_vma = app.space.map_region(heap_pages, name="heap")
        self.attach_runtime(app)
        # The object graph over the heap: a fixed traversal order with
        # allocation-site locality, whose page-group crossings the write
        # barrier records.
        self.heap_chain = patterns.grouped_chain(self.heap_vma, rng)
        runtime = app.runtime
        for src, dst in zip(self.heap_chain, self.heap_chain[1:]):
            runtime.record_reference(src, dst)
        self._register_data(app, rng)

    def _register_data(self, app: AppContext, rng: np.random.Generator) -> None:
        """Hook: how the data region appears to the runtime."""
        raise NotImplementedError

    def _gc_streams(
        self, app: AppContext, rng: np.random.Generator
    ) -> List[Iterator[AccessBatch]]:
        return [
            patterns.gc_bursts_batches(
                self.heap_chain,
                n_bursts=self.gc_bursts,
                burst_len=self.gc_burst_len,
                rng=np.random.default_rng(rng.integers(1 << 31)),
            )
            for _ in range(self.n_aux_threads)
        ]


class SparkScanWorkload(_ManagedWorkload):
    """Spark ML jobs (LR, KMeans, Bayes): epochal scans of a cached RDD.

    Each executor thread owns a partition of the RDD and scans it
    sequentially every epoch; model-state accesses hit the heap.  The RDD
    is one huge array, so Canvas's JVM registers it in the large-array
    tree and the thread-based pattern applies (§5.2 policy).
    """

    n_threads = 16
    working_set_pages = 6144
    accesses_per_thread = 2600
    epochs = 4
    write_ratio = 0.35
    #: Per-page record-processing cost; sized so an 8-page readahead
    #: window (~10µs of compute) can hide an unloaded remote fetch.
    cpu_us = 1.2

    def _register_data(self, app: AppContext, rng: np.random.Generator) -> None:
        app.runtime.record_large_array(self.data_vma.start_vpn, self.data_vma.n_pages)

    def thread_batch_streams(
        self, app: AppContext, rng: np.random.Generator
    ) -> List[Iterator[AccessBatch]]:
        streams: List[Iterator[AccessBatch]] = []
        partition = self.data_vma.n_pages // self.n_threads
        for tid in range(self.n_threads):
            child = np.random.default_rng(rng.integers(1 << 31))
            scan = patterns.sequential_batches(
                self.data_vma,
                self.accesses_per_thread,
                write_ratio=self.write_ratio,
                cpu_us=self.cpu_us,
                start=tid * partition,
                rng=child,
            )
            streams.append(scan)
        streams.extend(self._gc_streams(app, rng))
        return streams


class SparkLR(SparkScanWorkload):
    name = "spark_lr"
    display_name = "Spark-LR (SLR)"


class SparkKM(SparkScanWorkload):
    name = "spark_km"
    display_name = "Spark-KM (SKM)"
    write_ratio = 0.45  # centroid updates write more
    epochs = 5


class MLlibBayes(SparkScanWorkload):
    name = "mllib_bc"
    display_name = "MLlib-Bayes (MBC)"
    n_threads = 12
    working_set_pages = 4096
    accesses_per_thread = 2200
    write_ratio = 0.2


class SparkGraphWorkload(_ManagedWorkload):
    """Graph analytics on Spark/GraphX: pointer chasing, few big arrays.

    Each thread traverses the shared object graph from its own start
    offset.  The faulting stream shows no stride pattern, so only the
    reference-graph prefetcher (§5.2 pattern 1) has traction.
    """

    n_threads = 16
    working_set_pages = 6144
    accesses_per_thread = 2200
    data_fraction = 0.25  # mostly heap objects, small edge arrays
    write_ratio = 0.2
    cpu_us = 1.5

    def _register_data(self, app: AppContext, rng: np.random.Generator) -> None:
        pass  # adjacency data is reference-linked, not one large array

    def thread_batch_streams(
        self, app: AppContext, rng: np.random.Generator
    ) -> List[Iterator[AccessBatch]]:
        streams: List[Iterator[AccessBatch]] = []
        span = len(self.heap_chain)
        for tid in range(self.n_threads):
            child = np.random.default_rng(rng.integers(1 << 31))
            streams.append(
                patterns.pointer_chase_batches(
                    self.heap_chain,
                    self.accesses_per_thread,
                    write_ratio=self.write_ratio,
                    cpu_us=self.cpu_us,
                    start_index=(tid * span) // self.n_threads,
                    rng=child,
                )
            )
        streams.extend(self._gc_streams(app, rng))
        return streams

    def build(self, app: AppContext, rng: np.random.Generator) -> None:
        super().build(app, rng)
        # Graph workloads chase through the data region too: extend the
        # chain across both regions so traversals cover the working set.
        data_chain = patterns.grouped_chain(self.data_vma, rng)
        runtime = app.runtime
        for src, dst in zip(data_chain, data_chain[1:]):
            runtime.record_reference(src, dst)
        if self.heap_chain and data_chain:
            runtime.record_reference(self.heap_chain[-1], data_chain[0])
            runtime.record_reference(data_chain[-1], self.heap_chain[0])
        self.heap_chain = self.heap_chain + data_chain


class SparkPR(SparkGraphWorkload):
    name = "spark_pr"
    display_name = "Spark-PageRank (SPR)"


class SparkTC(SparkGraphWorkload):
    name = "spark_tc"
    display_name = "Spark-TriangleCount (GTC)"
    working_set_pages = 4096
    write_ratio = 0.1


class GraphXCC(SparkGraphWorkload):
    name = "graphx_cc"
    display_name = "GraphX-ConnectedComponents (GCC)"
    working_set_pages = 8192
    accesses_per_thread = 2000


class GraphXPR(SparkGraphWorkload):
    name = "graphx_pr"
    display_name = "GraphX-PageRank (GPR)"
    working_set_pages = 8192
    accesses_per_thread = 1800


class GraphXSP(SparkGraphWorkload):
    name = "graphx_sp"
    display_name = "GraphX-ShortestPath (GSP)"
    working_set_pages = 4096
    accesses_per_thread = 1800
    write_ratio = 0.15


class SparkSSG(_ManagedWorkload):
    """Skewed GroupBy: zipf-hot keys written during the shuffle."""

    name = "spark_sg"
    display_name = "Spark-SkewedGroupBy (SSG)"
    n_threads = 16
    working_set_pages = 4096
    accesses_per_thread = 2000
    data_fraction = 0.7

    def _register_data(self, app: AppContext, rng: np.random.Generator) -> None:
        app.runtime.record_large_array(self.data_vma.start_vpn, self.data_vma.n_pages)

    def thread_batch_streams(
        self, app: AppContext, rng: np.random.Generator
    ) -> List[Iterator[AccessBatch]]:
        streams: List[Iterator[AccessBatch]] = []
        for _tid in range(self.n_threads):
            child = np.random.default_rng(rng.integers(1 << 31))
            streams.append(
                patterns.zipfian_batches(
                    self.data_vma,
                    self.accesses_per_thread,
                    child,
                    theta=0.9,
                    write_ratio=0.6,
                    cpu_us=1.2,
                )
            )
        streams.extend(self._gc_streams(app, rng))
        return streams


class CassandraWorkload(_ManagedWorkload):
    """YCSB on Cassandra: 5M reads, 5M inserts → 50/50 zipf mix plus a
    sequential commit-log appender per thread."""

    name = "cassandra"
    display_name = "Cassandra"
    n_threads = 12
    n_aux_threads = 2
    working_set_pages = 6144
    accesses_per_thread = 2400
    data_fraction = 0.85

    def _register_data(self, app: AppContext, rng: np.random.Generator) -> None:
        # Records are reference-linked through the memtable/index: chain
        # the record region so reference prefetching sees structure.
        self.record_chain = patterns.grouped_chain(self.data_vma, rng)
        runtime = app.runtime
        for src, dst in zip(self.record_chain, self.record_chain[1:]):
            runtime.record_reference(src, dst)

    def thread_batch_streams(
        self, app: AppContext, rng: np.random.Generator
    ) -> List[Iterator[AccessBatch]]:
        streams: List[Iterator[AccessBatch]] = []
        for _tid in range(self.n_threads):
            child = np.random.default_rng(rng.integers(1 << 31))
            streams.append(
                patterns.zipfian_batches(
                    self.data_vma,
                    self.accesses_per_thread,
                    child,
                    theta=0.99,
                    write_ratio=0.5,  # half inserts
                    cpu_us=2.0,
                )
            )
        streams.extend(self._gc_streams(app, rng))
        return streams


class Neo4jWorkload(_ManagedWorkload):
    """Neo4j PageRank: graph traversal over a mostly-resident core.

    "Neo4j ... holds much of its graph data in local memory and thus does
    not swap as much as Spark" — modeled by concentrating 85% of
    traversal steps on a hot quarter of the graph.
    """

    name = "neo4j"
    display_name = "Neo4j"
    n_threads = 8
    n_aux_threads = 2
    working_set_pages = 4096
    accesses_per_thread = 2600
    data_fraction = 0.75
    hot_fraction = 0.25
    hot_probability = 0.85

    def _register_data(self, app: AppContext, rng: np.random.Generator) -> None:
        self.graph_chain = patterns.grouped_chain(self.data_vma, rng)
        runtime = app.runtime
        for src, dst in zip(self.graph_chain, self.graph_chain[1:]):
            runtime.record_reference(src, dst)

    def thread_batch_streams(
        self, app: AppContext, rng: np.random.Generator
    ) -> List[Iterator[AccessBatch]]:
        hot_len = max(16, int(len(self.graph_chain) * self.hot_fraction))
        hot_chain = np.asarray(self.graph_chain[:hot_len])
        cold_chain = np.asarray(self.graph_chain)

        def traversal(child: np.random.Generator) -> Iterator[AccessBatch]:
            # Vectorized transcription of the scalar walk: each step draws
            # one uniform; a hot step advances the hot cursor (mod the hot
            # core), a cold one the cold cursor (mod the whole chain), and
            # cursor positions are running counts of steps of that kind.
            hot = child.random(self.accesses_per_thread) < self.hot_probability
            hot_pos = np.cumsum(hot) % hot_len
            cold_pos = np.cumsum(~hot) % len(self.graph_chain)
            vpns = np.where(hot, hot_chain[hot_pos], cold_chain[cold_pos])
            yield from emit_batches(vpns, False, 1.0, BATCH_SIZE)

        streams: List[Iterator[AccessBatch]] = [
            traversal(np.random.default_rng(rng.integers(1 << 31)))
            for _ in range(self.n_threads)
        ]
        streams.extend(self._gc_streams(app, rng))
        return streams


class MemcachedWorkload(Workload):
    """YCSB on Memcached: 45M gets / 5M sets → 90/10 zipf mix, 4 threads."""

    name = "memcached"
    display_name = "Memcached"
    managed = False
    n_threads = 4
    working_set_pages = 3072
    accesses_per_thread = 4000

    def build(self, app: AppContext, rng: np.random.Generator) -> None:
        self.store_vma = app.space.map_region(self.working_set_pages, name="slabs")
        self.attach_runtime(app)

    def thread_batch_streams(
        self, app: AppContext, rng: np.random.Generator
    ) -> List[Iterator[AccessBatch]]:
        return [
            patterns.zipfian_batches(
                self.store_vma,
                self.accesses_per_thread,
                np.random.default_rng(rng.integers(1 << 31)),
                theta=0.99,
                write_ratio=0.1,
                cpu_us=2.0,
            )
            for _ in range(self.n_threads)
        ]


class XGBoostWorkload(Workload):
    """XGBoost binary classification: each worker scans its feature block
    once per boosting round; read-dominated, highly sequential per thread."""

    name = "xgboost"
    display_name = "XGBoost"
    managed = False
    n_threads = 16
    working_set_pages = 6144
    accesses_per_thread = 2400

    def build(self, app: AppContext, rng: np.random.Generator) -> None:
        self.matrix_vma = app.space.map_region(self.working_set_pages, name="dmatrix")
        self.attach_runtime(app)
        app.runtime.record_large_array(self.matrix_vma.start_vpn, self.matrix_vma.n_pages)

    def thread_batch_streams(
        self, app: AppContext, rng: np.random.Generator
    ) -> List[Iterator[AccessBatch]]:
        block = self.matrix_vma.n_pages // self.n_threads
        return [
            patterns.sequential_batches(
                self.matrix_vma,
                self.accesses_per_thread,
                write_ratio=0.05,
                cpu_us=1.0,
                start=tid * block,
                rng=np.random.default_rng(rng.integers(1 << 31)),
            )
            for tid in range(self.n_threads)
        ]


class SnappyWorkload(Workload):
    """Snappy compressing enwik9: one thread streaming input to output."""

    name = "snappy"
    display_name = "Snappy"
    managed = False
    n_threads = 1
    working_set_pages = 4096
    accesses_per_thread = 6000

    def build(self, app: AppContext, rng: np.random.Generator) -> None:
        in_pages = int(self.working_set_pages * 0.75)
        out_pages = max(64, self.working_set_pages - in_pages)
        self.input_vma = app.space.map_region(in_pages, name="input")
        self.output_vma = app.space.map_region(out_pages, name="output")
        self.attach_runtime(app)

    # Snappy's reader/writer interleaving is inherently stateful, so it
    # keeps the scalar protocol; the base class derives its batched
    # stream through the generic chunk_stream fallback.
    def thread_streams(
        self, app: AppContext, rng: np.random.Generator
    ) -> List[Iterator[Access]]:
        n_out = self.accesses_per_thread // 4
        n_in = self.accesses_per_thread - n_out
        # Snappy compresses ~1 GB/s: roughly 4 µs of CPU per 4 KB page.
        reader = patterns.sequential(self.input_vma, n_in, cpu_us=4.0)
        writer = patterns.sequential(
            self.output_vma, n_out, write_ratio=1.0, cpu_us=4.0
        )

        def compress() -> Iterator[Access]:
            # 3 input pages consumed per output page written.
            while True:
                produced = False
                for _ in range(3):
                    try:
                        yield next(reader)
                        produced = True
                    except StopIteration:
                        break
                try:
                    yield next(writer)
                    produced = True
                except StopIteration:
                    pass
                if not produced:
                    return

        return [compress()]
