"""Batched access streams: the workload side of the resident fast path.

The unbatched protocol hands the driver one ``(vpn, is_write, cpu_us)``
tuple per simulated memory access — a Python-level generator round-trip
per access, which dominates wall-clock time once the simulation itself
is cheap (resident accesses trigger no events).  The batched protocol
moves the same stream in :class:`AccessBatch` chunks of a few thousand
accesses, produced vectorized (numpy) by the pattern generators and
consumed in a tight loop by ``BaseSwapSystem.consume_batch``.

Equivalence contract: ``flatten_batches(batches)`` must yield exactly
the access sequence the unbatched stream would — same VPNs, same write
flags, same per-access CPU, same RNG draw order.  The scalar pattern
generators in :mod:`repro.workloads.patterns` are implemented as
``flatten_batches`` over their batched variants, so the two protocols
share one source of truth; workloads without a native batched stream
fall back to :func:`chunk_stream`, which re-chunks a scalar stream.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["BATCH_SIZE", "AccessBatch", "flatten_batches", "chunk_stream"]

Access = Tuple[int, bool, float]

#: Default accesses per batch.  Large enough to amortize per-batch numpy
#: and call overhead, small enough that partially-consumed batches (the
#: common case around faults) stay cache-friendly.
BATCH_SIZE = 1024

#: Sentinel for "constant-cpu not computed yet" (None is a valid answer).
_UNKNOWN = object()


class AccessBatch:
    """A chunk of one thread's access stream.

    Stores the three columns either as numpy arrays (vectorized
    producers) or plain lists (:func:`chunk_stream` fallback); the
    ``*_list`` views are what the consume loop indexes — plain Python
    ints/bools/floats, so the per-access hot loop never pays numpy
    scalar-boxing costs.
    """

    __slots__ = (
        "_vpns",
        "_writes",
        "_cpu",
        "_vpn_list",
        "_write_list",
        "_cpu_list",
        "_constant_cpu",
        "_write_positions",
        "_write_pos_arr",
        "_cpu_arr",
    )

    def __init__(
        self,
        vpns: Optional[np.ndarray] = None,
        writes: Optional[np.ndarray] = None,
        cpu_us: Optional[np.ndarray] = None,
    ):
        self._vpns = vpns
        self._writes = writes
        self._cpu = cpu_us
        self._vpn_list: Optional[List[int]] = None
        self._write_list: Optional[List[bool]] = None
        self._cpu_list: Optional[List[float]] = None
        self._constant_cpu: Optional[float] = _UNKNOWN
        self._write_positions: Optional[List[int]] = None
        self._write_pos_arr: Optional[np.ndarray] = None
        self._cpu_arr: Optional[np.ndarray] = None

    @classmethod
    def from_lists(
        cls, vpns: List[int], writes: List[bool], cpu_us: List[float]
    ) -> "AccessBatch":
        batch = cls()
        batch._vpn_list = vpns
        batch._write_list = writes
        batch._cpu_list = cpu_us
        return batch

    def __len__(self) -> int:
        if self._vpn_list is not None:
            return len(self._vpn_list)
        return len(self._vpns)

    @property
    def vpn_list(self) -> List[int]:
        if self._vpn_list is None:
            self._vpn_list = self._vpns.tolist()
        return self._vpn_list

    @property
    def write_list(self) -> List[bool]:
        if self._write_list is None:
            self._write_list = self._writes.tolist()
        return self._write_list

    @property
    def cpu_list(self) -> List[float]:
        if self._cpu_list is None:
            self._cpu_list = self._cpu.tolist()
        return self._cpu_list

    @property
    def constant_cpu(self) -> Optional[float]:
        """The per-access CPU cost if it is uniform, else None.

        Most patterns broadcast one scalar cost over the whole batch;
        the consume loop then skips a per-access list index.  Computed
        once and cached (the all-equal check is vectorized).
        """
        if self._constant_cpu is _UNKNOWN:
            cpu = self._cpu
            if cpu is None:
                cpu = np.asarray(self._cpu_list, dtype=np.float64)
            if len(cpu) and bool((cpu == cpu[0]).all()):
                self._constant_cpu = float(cpu[0])
            else:
                self._constant_cpu = None
        return self._constant_cpu

    @property
    def write_positions(self) -> List[int]:
        """Sorted batch indices of write accesses.

        Lets the consume loop skip the per-access write check: dirty
        bits for a consumed run are applied afterwards from this
        (usually short) list.
        """
        if self._write_positions is None:
            if self._writes is not None:
                self._write_positions = np.nonzero(self._writes)[0].tolist()
            else:
                self._write_positions = [
                    k for k, w in enumerate(self._write_list) if w
                ]
        return self._write_positions

    # -- columns as arrays (the vectorized consume path's views) ---------

    @property
    def vpn_array(self) -> np.ndarray:
        """The VPN column as a numpy array (built lazily for list batches)."""
        if self._vpns is None:
            self._vpns = np.asarray(self._vpn_list, dtype=np.int64)
        return self._vpns

    @property
    def cpu_array(self) -> np.ndarray:
        """The CPU column as float64 (only needed when cpu is non-constant)."""
        if self._cpu_arr is None:
            if self._cpu is not None:
                self._cpu_arr = np.asarray(self._cpu, dtype=np.float64)
            else:
                self._cpu_arr = np.asarray(self._cpu_list, dtype=np.float64)
        return self._cpu_arr

    @property
    def write_pos_array(self) -> np.ndarray:
        """``write_positions`` as an array, for searchsorted range slicing."""
        if self._write_pos_arr is None:
            if self._writes is not None:
                self._write_pos_arr = np.flatnonzero(self._writes)
            else:
                self._write_pos_arr = np.asarray(self.write_positions, dtype=np.int64)
        return self._write_pos_arr

    def accesses(self) -> Iterator[Access]:
        """The batch as scalar ``(vpn, is_write, cpu_us)`` tuples."""
        return zip(self.vpn_list, self.write_list, self.cpu_list)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"AccessBatch(n={len(self)})"


def _columns(
    vpns: Sequence[int], writes, cpu_us, n: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Normalize producer output to same-length column arrays."""
    vpns = np.asarray(vpns)
    if np.isscalar(writes) or (isinstance(writes, np.ndarray) and writes.ndim == 0):
        writes = np.full(n, bool(writes), dtype=bool)
    else:
        writes = np.asarray(writes, dtype=bool)
    if np.isscalar(cpu_us) or (isinstance(cpu_us, np.ndarray) and cpu_us.ndim == 0):
        cpu_us = np.full(n, float(cpu_us), dtype=np.float64)
    else:
        cpu_us = np.asarray(cpu_us, dtype=np.float64)
    return vpns, writes, cpu_us


def emit_batches(
    vpns: Sequence[int], writes, cpu_us, batch_size: int = BATCH_SIZE
) -> Iterator[AccessBatch]:
    """Slice full column arrays into :class:`AccessBatch` chunks.

    ``writes`` and ``cpu_us`` may be scalars (broadcast over the batch).
    """
    n = len(vpns)
    vpns, writes, cpu_us = _columns(vpns, writes, cpu_us, n)
    for start in range(0, n, batch_size):
        stop = start + batch_size
        yield AccessBatch(vpns[start:stop], writes[start:stop], cpu_us[start:stop])


def flatten_batches(batches: Iterable[AccessBatch]) -> Iterator[Access]:
    """Adapt a batched stream to the scalar one-tuple-per-access protocol."""
    for batch in batches:
        yield from zip(batch.vpn_list, batch.write_list, batch.cpu_list)


def chunk_stream(
    stream: Iterator[Access], batch_size: int = BATCH_SIZE
) -> Iterator[AccessBatch]:
    """Adapt a scalar access stream to the batched protocol.

    The generic fallback for workloads without a native batched stream
    (e.g. Snappy's stateful reader/writer interleaving): semantics are
    identical, only the transport changes.
    """
    vpns: List[int] = []
    writes: List[bool] = []
    cpu: List[float] = []
    for vpn, write, cpu_us in stream:
        vpns.append(vpn)
        writes.append(bool(write))
        cpu.append(float(cpu_us))
        if len(vpns) >= batch_size:
            yield AccessBatch.from_lists(vpns, writes, cpu)
            vpns, writes, cpu = [], [], []
    if vpns:
        yield AccessBatch.from_lists(vpns, writes, cpu)
