"""Bounded Zipf sampling for YCSB-style key popularity.

YCSB's default request distribution is Zipfian with exponent ~0.99; the
Memcached and Cassandra workloads in Table 2 are YCSB-driven.  NumPy's
``zipf`` is unbounded, so we precompute the normalized CDF over ``n``
ranks and invert it with a binary search — exact, vectorized, and
deterministic under a seeded generator.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ZipfSampler"]


class ZipfSampler:
    """Draw ranks in ``[0, n)`` with probability ∝ 1 / (rank+1)^theta."""

    def __init__(self, n: int, theta: float, rng: np.random.Generator):
        if n <= 0:
            raise ValueError(f"need n > 0, got {n}")
        if theta < 0:
            raise ValueError(f"need theta >= 0, got {theta}")
        self.n = n
        self.theta = theta
        self._rng = rng
        weights = 1.0 / np.power(np.arange(1, n + 1, dtype=float), theta)
        self._cdf = np.cumsum(weights)
        self._cdf /= self._cdf[-1]

    def sample(self) -> int:
        return int(np.searchsorted(self._cdf, self._rng.random(), side="left"))

    def sample_many(self, size: int) -> np.ndarray:
        draws = self._rng.random(size)
        return np.searchsorted(self._cdf, draws, side="left")
