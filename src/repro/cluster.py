"""Rack-scale disaggregation: multi-server fabric, placement, re-homing.

The paper's testbed terminates every swap path at one remote-memory
endpoint behind one NIC.  This module gives the simulator the "many
hosts per rack" substrate that story implies (after DRackSim's
multi-memory-node rack model): N memory servers with independent
capacity, bandwidth, and registration cost, all reached through the
host NIC's shared uplink, plus a cluster-level placement layer deciding
which server backs each swap partition's entries.

Topology model
--------------
The host uplink (the existing :class:`~repro.rdma.nic.DirectionalChannel`
pair inside :class:`~repro.rdma.nic.RNIC`) stays the primary serializing
resource.  Each :class:`MemoryServer` adds a second pair of directional
channels representing its own NIC/DRAM bandwidth; a transfer reserves
*both* its server's channel and the uplink, and completes at the later
of the two (the NIC adds the per-server *lag* to the propagation delay).
With one server at scale 1.0 the server channel sees exactly the uplink's
reservation sequence, the lag is exactly ``0.0``, and every completion
timestamp is bit-identical to the single-endpoint model — that is the
``n_servers=1`` oracle the digest suite pins.

Placement policies (pure functions of config + adoption order):

* ``stripe`` — chunks of ``chunk_entries`` round-robin across eligible
  servers (bandwidth aggregation, the default);
* ``locality`` — a whole partition homes on one server (fate sharing is
  contained; the rolling cursor spreads partitions across servers);
* ``capacity-pressure`` — each chunk goes to the least-loaded eligible
  server (ties break on the lowest server id).

Failure model
-------------
``kill_server`` marks a server dead: its pooled free entries are retired
immediately, in-flight verbs against it surface error CQEs (the kernel's
existing error hooks then rebind the page to a live entry), and a sweep
process re-homes every surviving binding — resident pages just drop the
dead binding, swap-cache pages are written to their new home, and pages
whose only copy was on the dead server are re-read from a surviving
replica and written back out.  ``drain_server`` migrates a live server's
bindings away in bounded batches instead.  The migration ledger
reconciles exactly: ``pages_rehomed + migration_aborts ==
pages_lost_from_dead + pages_drained`` (aborts are zero unless a fault
plan defeats the migration retry budget).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Tuple

from repro.obs.trace import (
    RACK_MIGRATE,
    RACK_REHOME,
    RACK_RETIRE,
    RACK_SERVER_DEAD,
    RACK_SERVER_DRAIN,
)
from repro.rdma.message import RdmaOp, RdmaRequest, RequestKind
from repro.rdma.nic import DirectionalChannel, RNIC
from repro.sim.engine import Engine, Event
from repro.swap.entry import SwapEntry
from repro.swap.partition import SwapPartition

__all__ = ["ClusterConfig", "MemoryServer", "RackStats", "Rack", "PLACEMENTS"]

PLACEMENTS = ("stripe", "locality", "capacity-pressure")


@dataclass(frozen=True)
class ClusterConfig:
    """Sizing and policy knobs for one rack of memory servers.

    Frozen for the same reason :class:`~repro.faults.FaultConfig` is: a
    config sits inside an ``ExperimentConfig`` and feeds the result
    cache's repr-based job key.
    """

    n_servers: int = 1
    #: One of :data:`PLACEMENTS`.
    placement: str = "stripe"
    #: Placement granularity: entries are homed in runs of this many.
    chunk_entries: int = 512
    #: Soft per-server cap on homed entries; ``None`` means uncapped.
    #: When every server is at its cap, placement falls back to the
    #: least-loaded eligible server rather than failing.
    server_capacity_entries: Optional[int] = None
    #: Per-server bandwidth multipliers over the uplink bandwidth;
    #: shorter tuples are padded with 1.0 (the homogeneous default).
    server_bandwidth_scale: Tuple[float, ...] = ()
    #: Per-server RDMA buffer-registration cost multipliers (same
    #: padding rule); scales demand-driven growth's registration cost.
    server_registration_scale: Tuple[float, ...] = ()
    #: Background migration: bindings moved per drain round, and the
    #: pause between rounds (also the re-scan period of death sweeps).
    migration_batch: int = 8
    migration_round_us: float = 50.0
    #: Error-CQE reissues per migration leg before the rack gives up.
    migration_retry_limit: int = 16

    def __post_init__(self):
        if self.n_servers <= 0:
            raise ValueError(f"rack needs servers > 0, got {self.n_servers}")
        if self.placement not in PLACEMENTS:
            raise ValueError(
                f"unknown placement {self.placement!r}; known: {PLACEMENTS}"
            )
        if self.chunk_entries <= 0:
            raise ValueError(f"chunk_entries must be > 0, got {self.chunk_entries}")

    def bandwidth_scale_of(self, server_id: int) -> float:
        if server_id < len(self.server_bandwidth_scale):
            return self.server_bandwidth_scale[server_id]
        return 1.0

    def registration_scale_of(self, server_id: int) -> float:
        if server_id < len(self.server_registration_scale):
            return self.server_registration_scale[server_id]
        return 1.0


class MemoryServer:
    """One memory server: its own bandwidth pair plus homing ledger."""

    __slots__ = (
        "server_id",
        "name",
        "alive",
        "draining",
        "bandwidth_scale",
        "registration_scale",
        "capacity_entries",
        "entries_homed",
        "read_channel",
        "write_channel",
    )

    def __init__(
        self,
        server_id: int,
        read_bandwidth: float,
        write_bandwidth: float,
        bandwidth_scale: float,
        registration_scale: float,
        capacity_entries: Optional[int],
    ):
        self.server_id = server_id
        self.name = f"mserver{server_id}"
        self.alive = True
        self.draining = False
        self.bandwidth_scale = bandwidth_scale
        self.registration_scale = registration_scale
        self.capacity_entries = capacity_entries
        #: Non-retired entries currently homed here (the per-server
        #: charge the placement property suite reconciles).
        self.entries_homed = 0
        self.read_channel = DirectionalChannel(
            f"{self.name}.read", read_bandwidth * bandwidth_scale
        )
        self.write_channel = DirectionalChannel(
            f"{self.name}.write", write_bandwidth * bandwidth_scale
        )

    def __repr__(self) -> str:  # pragma: no cover
        state = "dead" if not self.alive else ("draining" if self.draining else "up")
        return f"MemoryServer({self.server_id}, {state}, homed={self.entries_homed})"


@dataclass
class RackStats:
    """Migration/failure ledger.  Never part of a result digest."""

    #: Pages whose only remote copy sat on a failed server (re-homed
    #: from a surviving replica or from the locally cached copy).
    pages_lost_from_dead: int = 0
    #: Pages migrated off a draining server.
    pages_drained: int = 0
    #: Migrations whose final new-home write completed.
    pages_rehomed: int = 0
    #: Migrations abandoned past ``migration_retry_limit`` error CQEs.
    migration_aborts: int = 0
    #: Resident pages that simply dropped a dead kept/reserved binding.
    bindings_dropped: int = 0
    #: Writebacks rebound to a live entry by the kernel's error hook.
    writeback_rebinds: int = 0
    #: Demand reads rebound to a live entry by the kernel's error hook.
    demand_rebinds: int = 0
    entries_retired: int = 0
    servers_failed: int = 0
    servers_drained: int = 0
    rehome_reads: int = 0
    rehome_writes: int = 0
    migration_retries: int = 0


class Rack:
    """The cluster layer: servers, placement, and re-homing machinery.

    The rack owns its own pooled-request lane (it is a request-pool
    owner exactly like a swap system: migration completions dispatch to
    :meth:`_request_completed` and recycle into ``_request_pool``), and
    submits migration verbs straight to the NIC on low-priority QPs —
    Canvas's per-cgroup scheduler ignores requests it never forwarded,
    so background migration cannot disturb per-app window accounting.
    """

    def __init__(self, engine: Engine, nic: RNIC, config: ClusterConfig, seed: int = 0):
        self.engine = engine
        self.nic = nic
        self.config = config
        self.seed = seed
        self.stats = RackStats()
        self.servers: List[MemoryServer] = [
            MemoryServer(
                sid,
                nic.read_channel.bandwidth_bytes_per_us,
                nic.write_channel.bandwidth_bytes_per_us,
                config.bandwidth_scale_of(sid),
                config.registration_scale_of(sid),
                config.server_capacity_entries,
            )
            for sid in range(config.n_servers)
        ]
        #: (system, partition, allocator) triples under rack management.
        self._adopted: List[tuple] = []
        self._adopted_names: set = set()
        #: Rolling placement cursors (stripe chunks / locality homes).
        self._stripe_cursor = 0
        self._locality_cursor = 0
        self._homes: Dict[str, int] = {}
        #: Trace buffer; dual-named so pooled-request recycling (which
        #: reads ``owner.trace``) and rack tracepoints share one attach.
        self.tracer = None
        self.trace = None
        #: Migration request pool (the rack is the requests' owner).
        self._request_pool: List[RdmaRequest] = []
        #: request_id -> (op, entry, write_entry_or_None, retries).
        self._pending: Dict[int, tuple] = {}
        self._mig_qps = {
            RdmaOp.READ: nic.create_qp("rack.migrate.read", RdmaOp.READ, priority=1),
            RdmaOp.WRITE: nic.create_qp("rack.migrate.write", RdmaOp.WRITE, priority=1),
        }
        nic.rack = self

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------

    def _eligible(self) -> List[MemoryServer]:
        """Servers placement may target, most-preferred tier first."""
        healthy = [s for s in self.servers if s.alive and not s.draining]
        cap = self.config.server_capacity_entries
        if cap is not None and healthy:
            with_room = [s for s in healthy if s.entries_homed < cap]
            if with_room:
                return with_room
        if healthy:
            return healthy
        alive = [s for s in self.servers if s.alive]
        if alive:
            return alive
        raise RuntimeError("rack: no live memory servers")

    def _place_chunk(self, partition: SwapPartition) -> int:
        eligible = self._eligible()
        placement = self.config.placement
        if placement == "stripe":
            server = eligible[self._stripe_cursor % len(eligible)]
            self._stripe_cursor += 1
            return server.server_id
        if placement == "locality":
            home = self._homes.get(partition.name)
            if home is not None and self.servers[home] in eligible:
                return home
            server = eligible[self._locality_cursor % len(eligible)]
            self._locality_cursor += 1
            self._homes[partition.name] = server.server_id
            return server.server_id
        # capacity-pressure: least-loaded eligible server, lowest id wins.
        server = min(eligible, key=lambda s: (s.entries_homed, s.server_id))
        return server.server_id

    def _peek_chunk(self, partition: SwapPartition) -> int:
        """The server the next chunk would land on, without state change."""
        eligible = self._eligible()
        placement = self.config.placement
        if placement == "stripe":
            return eligible[self._stripe_cursor % len(eligible)].server_id
        if placement == "locality":
            home = self._homes.get(partition.name)
            if home is not None and self.servers[home] in eligible:
                return home
            return eligible[self._locality_cursor % len(eligible)].server_id
        return min(eligible, key=lambda s: (s.entries_homed, s.server_id)).server_id

    def registration_scale_for(self, partition: SwapPartition) -> float:
        """Registration-cost multiplier of the next chunk's home server."""
        return self.servers[self._peek_chunk(partition)].registration_scale

    def _assign(self, partition: SwapPartition, entries: List[SwapEntry]) -> None:
        chunk = self.config.chunk_entries
        for start in range(0, len(entries), chunk):
            run = entries[start : start + chunk]
            sid = self._place_chunk(partition)
            for entry in run:
                entry.server_id = sid
            self.servers[sid].entries_homed += len(run)

    def _on_partition_grow(
        self, partition: SwapPartition, new_entries: List[SwapEntry]
    ) -> None:
        self._assign(partition, new_entries)

    def adopt(self, system, partition: SwapPartition, allocator=None) -> None:
        """Bring one partition (and its allocator) under rack management.

        Homes every current entry, hooks demand-driven growth so new
        chunks get placed, and arms the allocator's retire-instead-of-
        pool guard.  Idempotent per partition name.
        """
        if partition.name in self._adopted_names:
            return
        self._adopted_names.add(partition.name)
        self._adopted.append((system, partition, allocator))
        self._assign(partition, partition.entries)
        partition.on_grow = self._on_partition_grow
        if allocator is not None:
            allocator.rack = self

    def withdraw(self, partition: SwapPartition) -> None:
        """Undo :meth:`adopt` for a departing app's private partition.

        Retires every non-retired entry (decrementing the per-server
        homed charges), unhooks growth, and forgets the locality home so
        the ledgers reconcile after teardown.  Entries must already be
        free — teardown sweeps the pages first.  No-op for partitions
        the rack never adopted (e.g. the shared global partition stays
        adopted for the apps still using it).
        """
        if partition.name not in self._adopted_names:
            return
        self._adopted_names.discard(partition.name)
        self._adopted = [
            triple for triple in self._adopted if triple[1] is not partition
        ]
        for entry in partition.entries:
            if not entry.retired:
                self._retire(entry)
        self._homes.pop(partition.name, None)
        partition.on_grow = None

    # ------------------------------------------------------------------
    # NIC integration
    # ------------------------------------------------------------------

    def dead_target(self, request: RdmaRequest) -> bool:
        entry = request.entry
        if entry is None:
            return False
        return not self.servers[entry.server_id].alive

    def wire_lag(
        self,
        request: RdmaRequest,
        start_us: float,
        uplink_release_us: float,
        bandwidth_scale: float = 1.0,
    ) -> float:
        """Reserve the target server's channel; return the extra delay.

        Mirrors the uplink reservation with identical arguments, so on a
        one-server rack at scale 1.0 the two channels stay in lockstep
        and the lag is exactly ``0.0`` — the digest-identity guarantee.
        """
        entry = request.entry
        if entry is None:
            return 0.0
        server = self.servers[entry.server_id]
        channel = (
            server.read_channel
            if request.op is RdmaOp.READ
            else server.write_channel
        )
        release = channel.reserve(start_us, request.size_bytes, bandwidth_scale)
        lag = release - uplink_release_us
        return lag if lag > 0.0 else 0.0

    # ------------------------------------------------------------------
    # Entry retirement (the free-pool guard)
    # ------------------------------------------------------------------

    def entry_condemned(self, entry: SwapEntry) -> bool:
        """Free-path guard: should this entry retire instead of pooling?"""
        if entry.retired:
            return True
        server = self.servers[entry.server_id]
        return not server.alive or server.draining

    def retire_freed(self, entry: SwapEntry) -> None:
        """Called by ``EntryAllocator.free`` in place of pooling."""
        self._retire(entry)
        entry.allocated = False
        entry.reserved = False
        entry.stored_vpn = None
        entry.timestamp_us = None
        entry.valid = True

    def _retire(self, entry: SwapEntry) -> None:
        if entry.retired:
            return
        entry.retired = True
        self.servers[entry.server_id].entries_homed -= 1
        self.stats.entries_retired += 1
        if self.tracer is not None:
            self.tracer.emit(RACK_RETIRE, "rack", 0, entry.entry_id, entry.server_id)

    def _purge_free_pools(self, server_id: int) -> int:
        """Retire every pooled free entry homed on ``server_id``."""
        retired = 0
        for _system, _partition, allocator in self._adopted:
            if allocator is None:
                continue
            for entry in allocator.retire_matching(server_id):
                if not entry.retired:
                    self._retire(entry)
                    entry.allocated = False
                    retired += 1
        return retired

    # ------------------------------------------------------------------
    # Failure and drain episodes
    # ------------------------------------------------------------------

    def schedule_plan(self, plan) -> None:
        """Arm a fault plan's server-death / drain episodes."""
        if plan is None:
            return
        for server_id, when_us in getattr(plan, "server_deaths", ()):
            self.engine.call_after(when_us, self.kill_server, server_id)
        for server_id, when_us in getattr(plan, "server_drains", ()):
            self.engine.call_after(when_us, self.drain_server, server_id)

    def kill_server(self, server_id: int) -> None:
        """A memory server fails: retire its pool, re-home its pages."""
        server = self.servers[server_id]
        if not server.alive:
            return
        server.alive = False
        server.draining = False
        self.stats.servers_failed += 1
        if self.tracer is not None:
            self.tracer.emit(
                RACK_SERVER_DEAD, "rack", 0, server_id, server.entries_homed
            )
        self._purge_free_pools(server_id)
        self.engine.spawn(
            self._death_sweep(server), name=f"rack.death.{server_id}"
        )

    def drain_server(self, server_id: int) -> None:
        """Take a live server out of service via background migration."""
        server = self.servers[server_id]
        if not server.alive or server.draining:
            return
        if not any(
            s.alive and not s.draining and s is not server for s in self.servers
        ):
            return  # nowhere to migrate to; refuse the drain
        server.draining = True
        if self.tracer is not None:
            self.tracer.emit(
                RACK_SERVER_DRAIN, "rack", 0, server_id, server.entries_homed
            )
        self._purge_free_pools(server_id)
        self.engine.spawn(
            self._drain_sweep(server), name=f"rack.drain.{server_id}"
        )

    def _unretired_on(self, server_id: int) -> List[Tuple[object, SwapPartition, SwapEntry]]:
        out = []
        for system, partition, _allocator in self._adopted:
            for entry in partition.entries:
                if entry.server_id == server_id and not entry.retired:
                    out.append((system, partition, entry))
        return out

    def _bindings(self, system, server_id: int) -> Dict[int, tuple]:
        """entry_id -> (app, page) for live bindings onto ``server_id``.

        Covers both the PTE binding (``page.swap_entry``) and adaptive
        allocation's reservation binding (``page.reserved_entry``).
        """
        out: Dict[int, tuple] = {}
        for app in system.apps.values():
            for page in app.space.pages.values():
                entry = page.swap_entry
                if (
                    entry is not None
                    and entry.server_id == server_id
                    and not entry.retired
                ):
                    out[entry.entry_id] = (app, page)
                reserved = page.reserved_entry
                if (
                    reserved is not None
                    and reserved is not entry
                    and reserved.server_id == server_id
                    and not reserved.retired
                ):
                    out[reserved.entry_id] = (app, page)
        return out

    def _death_sweep(self, server: MemoryServer) -> Generator:
        """Re-home every surviving binding off a failed server.

        Pages with in-flight I/O are skipped — their verbs surface error
        CQEs whose kernel hooks rebind them — and re-scanned next round.
        """
        sid = server.server_id
        if not any(s.alive for s in self.servers):
            # Total rack loss: nothing to re-home onto.  Retire every
            # entry so the ledgers stay consistent; the data is gone.
            for _system, _partition, entry in self._unretired_on(sid):
                self._retire(entry)
            return
        while True:
            for system, _partition, entry in self._unretired_on(sid):
                bindings = self._bindings(system, sid)
                bound = bindings.get(entry.entry_id)
                if bound is None:
                    # Unreferenced (idle free entry the pools missed, or
                    # a binding the kernel dropped since the last scan).
                    self._retire(entry)
                    continue
                app, page = bound
                if page in system._inflight_req:
                    continue  # error hooks own this one
                self._resolve_dead(system, app, page, entry)
            if not self._unretired_on(sid):
                break
            yield self.engine.sleep(self.config.migration_round_us)

    def _resolve_dead(self, system, app, page, entry: SwapEntry) -> None:
        if page.resident:
            # The local copy is intact: the dead kept/reserved binding
            # just goes away (a later eviction re-allocates and writes).
            if page.reserved_entry is entry:
                page.reserved_entry = None
                entry.reserved = False
            if page.swap_entry is entry:
                cache = system._cache_for(app, page)
                if cache._pages.pop(entry.entry_id, None) is not None:
                    page.in_swap_cache = False
                page.swap_entry = None
            self._retire(entry)
            self.stats.bindings_dropped += 1
            return
        in_cache = page.in_swap_cache
        new_entry = self.rebind(system, app, page, entry)
        self.stats.pages_lost_from_dead += 1
        # Cached pages still hold the data locally (write-only re-home);
        # otherwise re-read from a surviving replica, then write.
        self._issue_leg(
            RdmaOp.WRITE if in_cache else RdmaOp.READ,
            new_entry,
            write_entry=None if in_cache else new_entry,
        )

    def _drain_sweep(self, server: MemoryServer) -> Generator:
        """Migrate a draining server's bindings away in bounded batches."""
        sid = server.server_id
        batch = self.config.migration_batch
        while True:
            moved = 0
            for system, _partition, entry in self._unretired_on(sid):
                if moved >= batch:
                    break
                bindings = self._bindings(system, sid)
                bound = bindings.get(entry.entry_id)
                if bound is None:
                    self._retire(entry)
                    continue
                app, page = bound
                if page in system._inflight_req:
                    continue  # quiesce first; re-scan next round
                if page.resident:
                    # Same as a dead binding on a resident page: cheaper
                    # to drop than to copy data the host already has.
                    self._resolve_drained_resident(system, app, page, entry)
                    continue
                new_entry = self.rebind(system, app, page, entry)
                self.stats.pages_drained += 1
                # Read the page off the draining (still live) server,
                # then write it to its new home.
                self._issue_leg(RdmaOp.READ, entry, write_entry=new_entry)
                moved += 1
            if not self._unretired_on(sid):
                break
            yield self.engine.sleep(self.config.migration_round_us)
        self.stats.servers_drained += 1

    def _resolve_drained_resident(self, system, app, page, entry: SwapEntry) -> None:
        if page.reserved_entry is entry:
            page.reserved_entry = None
            entry.reserved = False
        if page.swap_entry is entry:
            cache = system._cache_for(app, page)
            if cache._pages.pop(entry.entry_id, None) is not None:
                page.in_swap_cache = False
            page.swap_entry = None
        self._retire(entry)
        self.stats.bindings_dropped += 1

    # ------------------------------------------------------------------
    # Rebinding (shared with the kernel's error hooks)
    # ------------------------------------------------------------------

    def rebind(self, system, app, page, old_entry: SwapEntry) -> SwapEntry:
        """Move a page's bindings from ``old_entry`` to a fresh live entry.

        Grabs the new entry untimed (re-homing is an emergency path, not
        the contended swap-out path), re-keys any swap-cache slot, and
        retires the old entry.  Growing the partition by one chunk is the
        fallback when re-homing itself exhausted the free list.
        """
        allocator = system._allocator_for(app, page)
        try:
            new_entry = allocator.take_free_untimed()
        except RuntimeError:
            allocator.partition.grow(self.config.chunk_entries)
            new_entry = allocator.take_free_untimed()
        new_entry.stored_vpn = page.vpn
        new_entry.timestamp_us = old_entry.timestamp_us
        new_entry.valid = old_entry.valid
        cache = system._cache_for(app, page)
        moved = cache._pages.pop(old_entry.entry_id, None)
        if moved is not None:
            cache._pages[new_entry.entry_id] = moved
        if page.swap_entry is old_entry:
            page.swap_entry = new_entry
        if page.reserved_entry is old_entry:
            page.reserved_entry = new_entry
            new_entry.reserved = True
        if self.tracer is not None:
            self.tracer.emit(
                RACK_REHOME,
                app.name,
                0,
                old_entry.entry_id,
                new_entry.server_id,
            )
        self._retire(old_entry)
        old_entry.stored_vpn = None
        return new_entry

    # -- kernel error-hook entry points --------------------------------

    def rebind_for_read_retry(self, system, app, page, old_entry: SwapEntry) -> SwapEntry:
        """A demand read hit a dead server: rebind, count, re-home.

        The kernel retries the read against the returned entry (the
        fault-back path); the rack writes the replica's copy to the new
        home in the background.
        """
        new_entry = self.rebind(system, app, page, old_entry)
        self.stats.pages_lost_from_dead += 1
        self.stats.demand_rebinds += 1
        self._issue_leg(RdmaOp.WRITE, new_entry, write_entry=None)
        return new_entry

    def rebind_for_writeback_retry(
        self, system, app, page, old_entry: SwapEntry
    ) -> SwapEntry:
        """A writeback hit a dead server: retarget it at a live entry.

        The data never left the host, so this is neither a loss nor a
        migration — just a retarget (counted separately).
        """
        new_entry = self.rebind(system, app, page, old_entry)
        self.stats.writeback_rebinds += 1
        return new_entry

    # ------------------------------------------------------------------
    # Migration transfers (the rack as a request-pool owner)
    # ------------------------------------------------------------------

    def _acquire(self, op: RdmaOp, entry: SwapEntry) -> RdmaRequest:
        pool = self._request_pool
        if pool:
            request = pool.pop()
            request.reuse(op, RequestKind.REHOME, "rack", entry, None)
        else:
            request = RdmaRequest(
                op, RequestKind.REHOME, "rack", entry, None,
                completion=Event(self.engine),
            )
            request.owner = self
        request.completion.add_callback(request)
        return request

    def _issue_leg(
        self,
        op: RdmaOp,
        entry: SwapEntry,
        write_entry: Optional[SwapEntry],
        retries: int = 0,
    ) -> None:
        request = self._acquire(op, entry)
        self._pending[request.request_id] = (op, entry, write_entry, retries)
        if op is RdmaOp.READ:
            self.stats.rehome_reads += 1
        else:
            self.stats.rehome_writes += 1
        self.nic.submit(self._mig_qps[op], request)

    def _request_completed(self, request: RdmaRequest) -> None:
        leg = self._pending.pop(request.request_id, None)
        if leg is None:
            return
        op, entry, write_entry, retries = leg
        if request.error:
            if retries >= self.config.migration_retry_limit:
                self.stats.migration_aborts += 1
                return
            self.stats.migration_retries += 1
            self._issue_leg(op, entry, write_entry, retries + 1)
            return
        if self.tracer is not None:
            self.tracer.emit(
                RACK_MIGRATE, "rack", 0, entry.entry_id, op.value
            )
        if write_entry is not None:
            self._issue_leg(RdmaOp.WRITE, write_entry, write_entry=None)
            return
        self.stats.pages_rehomed += 1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def migrations_quiesced(self) -> bool:
        return not self._pending

    def homed_counts(self) -> Dict[int, int]:
        """Actual non-retired entry count per server, from the ground up."""
        counts = {server.server_id: 0 for server in self.servers}
        for _system, partition, _allocator in self._adopted:
            for entry in partition.entries:
                if not entry.retired:
                    counts[entry.server_id] += 1
        return counts

    def ledger_balanced(self) -> bool:
        s = self.stats
        return (
            s.pages_rehomed + s.migration_aborts
            == s.pages_lost_from_dead + s.pages_drained
        )

    def __repr__(self) -> str:  # pragma: no cover
        up = sum(1 for s in self.servers if s.alive)
        return f"Rack({up}/{len(self.servers)} up, {self.config.placement})"
