"""Virtual queue pairs (VQPs).

Canvas gives each cgroup a set of VQPs — high-level, lock-free request
queues the application side pushes into, while the centralized scheduler
pops from the other end and forwards onto physical QPs (§4).  We keep one
FIFO per request kind (demand / prefetch / swap-out) per cgroup so the
per-application sub-scheduler can prioritize between them.

A timestamp is attached to each request on push; the §5.3 timeliness
logic uses it to estimate whether a prefetch can still arrive in time.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional

from repro.rdma.message import RdmaRequest, RequestKind
from repro.sim.engine import Engine

__all__ = ["VirtualQP"]


class VirtualQP:
    """Per-cgroup request queues awaiting central scheduling."""

    def __init__(self, engine: Engine, app_name: str):
        self.engine = engine
        self.app_name = app_name
        #: Direct per-kind handles: the scheduler's selection loop peeks
        #: these thousands of times per co-run, so they are attributes
        #: (no enum-hashed dict probe on the hot path).
        self.demand_q: Deque[RdmaRequest] = deque()
        self.prefetch_q: Deque[RdmaRequest] = deque()
        self.swapout_q: Deque[RdmaRequest] = deque()
        self._queues: Dict[RequestKind, Deque[RdmaRequest]] = {
            RequestKind.DEMAND: self.demand_q,
            RequestKind.PREFETCH: self.prefetch_q,
            RequestKind.SWAPOUT: self.swapout_q,
        }
        self.pushed_total = 0
        self.popped_total = 0
        self.dropped_total = 0
        #: Kernel-level retries (reissues after an error CQE) re-entering
        #: this VQP; distinguishes fault-recovery traffic from fresh work.
        self.retried_total = 0

    def __len__(self) -> int:
        return sum(len(q) for q in self._queues.values())

    def depth(self, kind: RequestKind) -> int:
        return len(self._queues[kind])

    def push(self, request: RdmaRequest) -> None:
        """Application side: enqueue and stamp the request."""
        now = self.engine.now
        request.enqueued_at_us = now
        kind = request.kind
        if kind is RequestKind.DEMAND:
            self.demand_q.append(request)
        elif kind is RequestKind.PREFETCH:
            # §5.3: remember on the swap entry that a prefetch is in flight
            # so a later faulting thread can detect and drop it if stale.
            request.entry.timestamp_us = now
            self.prefetch_q.append(request)
        else:
            self.swapout_q.append(request)
        self.pushed_total += 1
        if request.kernel_retries:
            self.retried_total += 1

    def push_many(self, requests) -> None:
        """Application side: enqueue a run of requests with one call.

        Same stamps and FIFO order as ``push`` per request; the swap
        system batches a fault group's submissions through here so the
        scheduler is kicked once per run instead of once per page.
        """
        now = self.engine.now
        demand_q = self.demand_q
        prefetch_q = self.prefetch_q
        swapout_q = self.swapout_q
        for request in requests:
            request.enqueued_at_us = now
            kind = request.kind
            if kind is RequestKind.DEMAND:
                demand_q.append(request)
            elif kind is RequestKind.PREFETCH:
                request.entry.timestamp_us = now
                prefetch_q.append(request)
            else:
                swapout_q.append(request)
            if request.kernel_retries:
                self.retried_total += 1
        self.pushed_total += len(requests)

    def pop(self, kind: RequestKind) -> Optional[RdmaRequest]:
        """Scheduler side: dequeue the oldest request of ``kind``.

        Requests marked dropped while queued are discarded here.
        """
        queue = self._queues[kind]
        while queue:
            request = queue.popleft()
            if request.dropped:
                self.dropped_total += 1
                if request.owner is not None:
                    # A discarded pooled request never reaches the NIC;
                    # recycle it now that it has left every queue.
                    self.engine._immediate.append(request._recycle_cb)
                continue
            self.popped_total += 1
            return request
        return None

    def peek(self, kind: RequestKind) -> Optional[RdmaRequest]:
        queue = self._queues[kind]
        for request in queue:
            if not request.dropped:
                return request
        return None

    def has_pending(self) -> bool:
        return any(
            any(not r.dropped for r in queue) for queue in self._queues.values()
        )
