"""RDMA substrate: requests, NIC/fabric model, physical and virtual QPs."""

from repro.rdma.message import RdmaOp, RdmaRequest, RequestKind
from repro.rdma.nic import (
    DEFAULT_BANDWIDTH_BYTES_PER_US,
    DEFAULT_BASE_LATENCY_US,
    DEFAULT_VERB_OVERHEAD_US,
    RNIC,
    DirectionalChannel,
    NicStats,
    PhysicalQP,
)
from repro.rdma.vqp import VirtualQP

__all__ = [
    "RdmaOp",
    "RdmaRequest",
    "RequestKind",
    "RNIC",
    "DirectionalChannel",
    "NicStats",
    "PhysicalQP",
    "VirtualQP",
    "DEFAULT_BANDWIDTH_BYTES_PER_US",
    "DEFAULT_BASE_LATENCY_US",
    "DEFAULT_VERB_OVERHEAD_US",
]
