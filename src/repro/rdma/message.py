"""RDMA request descriptors.

Every swap I/O becomes one :class:`RdmaRequest`: a read for swap-ins
(demand or prefetch) or a write for swap-outs.  Requests carry the
timestamps needed for the paper's latency CDFs (Fig. 6, Fig. 14):
``enqueued_at_us`` when the kernel pushes the request into a queue pair,
``issued_at_us`` when the NIC starts serving it, and ``completed_at_us``
when the data lands.
"""

from __future__ import annotations

import enum
import itertools
from typing import TYPE_CHECKING, Optional

from repro.mem.page import PAGE_SIZE
from repro.obs.trace import REQ_RECYCLE

if TYPE_CHECKING:  # pragma: no cover
    from repro.mem.page import Page
    from repro.sim.engine import Event
    from repro.swap.entry import SwapEntry

__all__ = ["RdmaOp", "RequestKind", "RdmaRequest"]

_request_ids = itertools.count()
_pool_serials = itertools.count()


class RdmaOp(enum.Enum):
    READ = "read"  # swap-in: remote -> local
    WRITE = "write"  # swap-out: local -> remote

    # Enum's default __hash__ is a Python-level call on the member name;
    # these members key the NIC's per-op dispatch tables, hashed on
    # every dispatch iteration.  Identity hashing (members are
    # singletons, and enum equality is already identity) keeps those
    # lookups in C.  Dicts iterate in insertion order either way, so no
    # observable ordering depends on the hash values.
    __hash__ = object.__hash__


class RequestKind(enum.Enum):
    DEMAND = "demand"
    PREFETCH = "prefetch"
    SWAPOUT = "swapout"
    #: Rack-level page migration (server drain / failure re-homing); the
    #: op distinguishes the replica read from the new-home write.
    REHOME = "rehome"

    __hash__ = object.__hash__  # same rationale as RdmaOp


class RdmaRequest:
    """One page-sized RDMA verb plus its bookkeeping."""

    __slots__ = (
        "request_id",
        "pool_serial",
        "op",
        "kind",
        "app_name",
        "entry",
        "page",
        "size_bytes",
        "enqueued_at_us",
        "issued_at_us",
        "completed_at_us",
        "completion",
        "dropped",
        "error",
        "retries",
        "kernel_retries",
        "retry_stall_us",
        "owner",
        "_recycle_cb",
        "_in_pool",
    )

    def __init__(
        self,
        op: RdmaOp,
        kind: RequestKind,
        app_name: str,
        entry: "SwapEntry",
        page: Optional["Page"] = None,
        size_bytes: int = PAGE_SIZE,
        completion: Optional["Event"] = None,
    ):
        self.request_id: int = next(_request_ids)
        #: Construction-order identity of the *object*.  ``request_id``
        #: is refreshed on every pooled reuse, so trace invariants about
        #: the object's lifecycle (never live twice) key on this instead.
        self.pool_serial: int = next(_pool_serials)
        self.op = op
        self.kind = kind
        self.app_name = app_name
        self.entry = entry
        self.page = page
        self.size_bytes = size_bytes
        self.enqueued_at_us: Optional[float] = None
        self.issued_at_us: Optional[float] = None
        self.completed_at_us: Optional[float] = None
        #: Fired when the transfer completes (never fired if dropped).
        self.completion: Optional["Event"] = completion
        #: Canvas §5.3: stale prefetches are dropped instead of served.
        self.dropped = False
        #: True once the NIC exhausted its retransmission budget: the
        #: completion event fires carrying an *error CQE* and the kernel
        #: must recover (retry the demand read, cancel the prefetch, ...).
        self.error = False
        #: Transport-level retransmissions this life suffered (NIC-side).
        self.retries = 0
        #: Kernel-level reissues behind this logical transfer: a retried
        #: demand read or writeback carries its predecessor's count + 1.
        self.kernel_retries = 0
        #: Total time this life spent waiting on retransmission timeouts;
        #: folded into per-cgroup retry-stall accounting at completion.
        self.retry_stall_us = 0.0
        #: The swap system this request belongs to, when it participates
        #: in request pooling; None for standalone requests (tests).
        self.owner = None
        self._recycle_cb = self._recycle
        self._in_pool = False

    def __call__(self, _event: "Event") -> None:
        """Completion-event callback: dispatch to the owning swap system.

        Registering the request object itself keeps the exact callback
        slot the old per-request lambda occupied, without the closure.
        """
        self.owner._request_completed(self)

    def reuse(
        self,
        op: RdmaOp,
        kind: RequestKind,
        app_name: str,
        entry: "SwapEntry",
        page: Optional["Page"],
    ) -> None:
        """Re-arm a pooled request for a new transfer.

        A *fresh* ``request_id`` is assigned on every reuse: schedulers
        key in-flight bookkeeping (e.g. forward timestamps) by id, so id
        reuse would alias a past life of the object.
        """
        self.request_id = next(_request_ids)
        self.op = op
        self.kind = kind
        self.app_name = app_name
        self.entry = entry
        self.page = page
        self.size_bytes = PAGE_SIZE
        self.enqueued_at_us = None
        self.issued_at_us = None
        self.completed_at_us = None
        self.dropped = False
        self.error = False
        self.retries = 0
        self.kernel_retries = 0
        self.retry_stall_us = 0.0
        self._in_pool = False

    def _recycle(self) -> None:
        """Return this request (and its completion event) to the pool.

        Scheduled on the engine's immediate lane strictly after the
        completion dispatch (or after the dropped-request unwind), so no
        live waiter can still observe the recycled state.
        """
        if self._in_pool:
            return
        self._in_pool = True
        tr = getattr(self.owner, "trace", None)
        if tr is not None:
            tr.emit(REQ_RECYCLE, self.app_name, 0, self.pool_serial, self.request_id)
        self.entry = None
        self.page = None
        if self.completion._fired:
            self.completion.reset()
        else:
            # A dropped request never fired its completion; clear the
            # bound-dispatch callback so the next life starts clean.
            self.completion._callbacks.clear()
        self.owner._request_pool.append(self)

    @property
    def latency_us(self) -> Optional[float]:
        """Queueing + service latency, None while incomplete."""
        if self.completed_at_us is None or self.enqueued_at_us is None:
            return None
        return self.completed_at_us - self.enqueued_at_us

    def __repr__(self) -> str:  # pragma: no cover
        entry_id = self.entry.entry_id if self.entry is not None else None
        return (
            f"RdmaRequest(#{self.request_id}, {self.op.value}/{self.kind.value}, "
            f"app={self.app_name!r}, entry={entry_id})"
        )
