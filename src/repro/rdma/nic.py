"""The RNIC and fabric model.

Geometry matches the paper's testbed: one 40 Gbps InfiniBand adapter per
host, so all co-running applications share a single NIC.  The model has
three pieces:

* :class:`DirectionalChannel` — the wire in one direction.  Transfers
  serialize on the wire for ``size / bandwidth``; propagation latency is
  pipelined (it delays completion but does not occupy the wire).
* :class:`PhysicalQP` — a FIFO of requests with a static priority, the
  unit the kernel posts verbs to.  Fastswap's sync/async split and
  Canvas's 3-PQPs-per-core layout are both configurations of these.
* :class:`RNIC` — one dispatch loop per direction that repeatedly picks
  the next request from the ready QPs (strict priority, round-robin
  within a priority level) and serves it.

Calibration: 40 Gbps ≈ 4800 payload bytes/µs after protocol overhead, so
a 4 KB page occupies the wire ~0.85 µs; with ~3 µs base latency and ~1 µs
verb overhead an unloaded demand read lands in ~5 µs and a loaded one in
tens of µs, matching Fig. 6's "99% of demand requests within 40 µs".
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from time import perf_counter
from typing import Callable, Deque, Dict, List, Optional

from repro.obs.trace import (
    QP_COMPLETE,
    QP_DROP_SKIP,
    QP_ENQ,
    QP_ERROR_CQE,
    QP_SERVE,
    RETRANSMIT,
    WIRE_DROP,
    WIRE_ERROR,
)
from repro.rdma.message import RdmaOp, RdmaRequest, RequestKind
from repro.sim.engine import Engine, Event

__all__ = ["DirectionalChannel", "PhysicalQP", "RNIC", "NicStats"]

#: FaultPlan verdict codes, mirrored from :mod:`repro.faults` (kept as
#: bare ints here so the NIC never imports the faults module).
_FAULT_DROP, _FAULT_ERROR = 1, 2

#: 40 Gbps = 5000 bytes/µs raw; ~4% header/protocol overhead.
DEFAULT_BANDWIDTH_BYTES_PER_US = 4800.0
DEFAULT_BASE_LATENCY_US = 3.0
DEFAULT_VERB_OVERHEAD_US = 1.0


class DirectionalChannel:
    """One direction of the wire: a serializing bandwidth server."""

    def __init__(self, name: str, bandwidth_bytes_per_us: float):
        if bandwidth_bytes_per_us <= 0:
            raise ValueError("bandwidth must be positive")
        self.name = name
        self.bandwidth_bytes_per_us = bandwidth_bytes_per_us
        self.busy_until_us = 0.0
        self.bytes_transferred = 0

    def transfer_time_us(self, size_bytes: int) -> float:
        return size_bytes / self.bandwidth_bytes_per_us

    def reserve(
        self, now_us: float, size_bytes: int, bandwidth_scale: float = 1.0
    ) -> float:
        """Occupy the wire for one transfer; returns wire-release time.

        ``bandwidth_scale`` shrinks effective bandwidth during fault-plan
        degradation windows; the default multiplies by 1.0, which is
        exact in IEEE arithmetic, so un-degraded transfers stay
        bit-identical to the two-argument call.
        """
        start = max(now_us, self.busy_until_us)
        self.busy_until_us = start + size_bytes / (
            self.bandwidth_bytes_per_us * bandwidth_scale
        )
        self.bytes_transferred += size_bytes
        return self.busy_until_us


class PhysicalQP:
    """A NIC queue pair: FIFO of requests with a dispatch priority.

    Lower ``priority`` values are served first (0 = most urgent).
    """

    def __init__(self, name: str, priority: int = 0):
        self.name = name
        self.priority = priority
        self._queue: Deque[RdmaRequest] = deque()
        self.enqueued_total = 0

    def __len__(self) -> int:
        return len(self._queue)

    def push(self, request: RdmaRequest) -> None:
        self._queue.append(request)
        self.enqueued_total += 1

    def pop(self) -> Optional[RdmaRequest]:
        if self._queue:
            return self._queue.popleft()
        return None

    def peek(self) -> Optional[RdmaRequest]:
        if self._queue:
            return self._queue[0]
        return None


@dataclass
class NicStats:
    reads_completed: int = 0
    writes_completed: int = 0
    read_bytes: int = 0
    write_bytes: int = 0
    dropped_skipped: int = 0
    #: Completion mix by request kind (demand/prefetch reads, swap-out
    #: writes); lets benchmarks report the served mix without hooks.
    demand_completed: int = 0
    prefetch_completed: int = 0
    swapout_completed: int = 0
    #: Fault-plan accounting.  Every injected verb fault is eventually
    #: either retransmitted or surfaced as an error CQE, so
    #: ``wire_drops + completion_errors == retransmits + transport_failures``
    #: once the fabric drains (the chaos suite asserts exactly this).
    wire_drops: int = 0
    completion_errors: int = 0
    retransmits: int = 0
    transport_failures: int = 0
    error_cqes_delivered: int = 0
    #: Dispatch time spent waiting out link flaps (µs) and transfers
    #: served inside a bandwidth-degradation window.
    flap_stall_us: float = 0.0
    degraded_transfers: int = 0
    #: Completions delayed by a remote-server slowdown episode.
    server_delayed: int = 0
    #: Rack model: verbs aimed at a dead memory server (immediate error
    #: CQE, no wire time) and completed migration transfers.
    dead_target_errors: int = 0
    rehome_completed: int = 0
    #: Doorbell batching: multi-request submissions (one kick per run)
    #: and drained serves (requests whose service/completion times were
    #: computed arithmetically inside one dispatch wakeup instead of a
    #: per-WQE generator re-entry).  Host-cost accounting only — never
    #: part of a result digest.
    doorbells: int = 0
    drain_batches: int = 0
    drained_serves: int = 0


class RNIC:
    """One host NIC shared by every application on the machine."""

    def __init__(
        self,
        engine: Engine,
        read_bandwidth_bytes_per_us: float = DEFAULT_BANDWIDTH_BYTES_PER_US,
        write_bandwidth_bytes_per_us: float = DEFAULT_BANDWIDTH_BYTES_PER_US,
        base_latency_us: float = DEFAULT_BASE_LATENCY_US,
        verb_overhead_us: float = DEFAULT_VERB_OVERHEAD_US,
        name: str = "rnic",
    ):
        self.engine = engine
        self.name = name
        self.read_channel = DirectionalChannel(f"{name}.read", read_bandwidth_bytes_per_us)
        self.write_channel = DirectionalChannel(f"{name}.write", write_bandwidth_bytes_per_us)
        self.base_latency_us = base_latency_us
        self.verb_overhead_us = verb_overhead_us
        self.stats = NicStats()
        #: Optional SimProfiler; when set, dispatch selection and
        #: completion callbacks are attributed to the "rdma" section.
        self.profiler = None
        #: Optional :class:`repro.faults.FaultPlan`.  When None (the
        #: default) the dispatch loop takes the exact pre-fault code
        #: path; every injection site is gated on this attribute.
        self.fault_plan = None
        #: Optional :class:`repro.obs.TraceBuffer`; every tracepoint is
        #: a single ``is not None`` check while unset.
        self.tracer = None
        #: Optional :class:`repro.cluster.Rack`.  When set, each served
        #: transfer also reserves its target memory server's channel
        #: (the later release wins), and verbs aimed at a dead server
        #: surface error CQEs without touching the wire.  Every site is
        #: gated on this attribute, and a one-server rack at scale 1.0
        #: mirrors the uplink in lockstep, so the single-endpoint
        #: timestamps are preserved bit for bit.
        self.rack = None
        #: Lazily created per-op retransmission QPs.  Priority -1 sorts
        #: ahead of every kernel QP, so a retried transfer re-enters
        #: service before new work — RC hardware replays from the send
        #: queue head the same way — and scheduler window accounting
        #: never sees the retry (the original forward still owns the
        #: outstanding slot until one completion fires).
        self._rtx_qps: Dict[RdmaOp, PhysicalQP] = {}
        self._qps: Dict[RdmaOp, List[PhysicalQP]] = {RdmaOp.READ: [], RdmaOp.WRITE: []}
        #: Priority-group dispatch tables: per op, the QPs grouped by
        #: priority level (ascending), precomputed at create_qp time so
        #: ``_select`` never regroups the sorted list per call.
        self._groups: Dict[RdmaOp, List[List[PhysicalQP]]] = {
            RdmaOp.READ: [],
            RdmaOp.WRITE: [],
        }
        self._rr_cursor: Dict[RdmaOp, int] = {RdmaOp.READ: 0, RdmaOp.WRITE: 0}
        self._dispatch_idle: Dict[RdmaOp, bool] = {RdmaOp.READ: True, RdmaOp.WRITE: True}
        self._wakeups: Dict[RdmaOp, Optional[Event]] = {RdmaOp.READ: None, RdmaOp.WRITE: None}
        #: One reusable park event per dispatch loop (reset after resume).
        self._park_events: Dict[RdmaOp, Event] = {
            op: Event(engine, f"{name}.{op.value}.wakeup")
            for op in (RdmaOp.READ, RdmaOp.WRITE)
        }
        #: Observers called as fn(request) on every completion.
        self.completion_hooks: List[Callable[[RdmaRequest], None]] = []
        #: Observers called when a dropped request is skipped at dispatch
        #: (it will never complete; schedulers must release its slot).
        self.dropped_hooks: List[Callable[[RdmaRequest], None]] = []
        for op in (RdmaOp.READ, RdmaOp.WRITE):
            engine.spawn(self._dispatch_loop(op), name=f"{name}.{op.value}.dispatch")

    # -- QP management -----------------------------------------------------

    def create_qp(self, name: str, op: RdmaOp, priority: int = 0) -> PhysicalQP:
        qp = PhysicalQP(name, priority)
        qps = self._qps[op]
        qps.append(qp)
        qps.sort(key=lambda q: q.priority)
        # Rebuild the dispatch table (cold path; sort is stable, so
        # within-level order is creation order, as _select always saw).
        groups: List[List[PhysicalQP]] = []
        for queue in qps:
            if groups and groups[-1][0].priority == queue.priority:
                groups[-1].append(queue)
            else:
                groups.append([queue])
        self._groups[op] = groups
        return qp

    def submit(self, qp: PhysicalQP, request: RdmaRequest) -> None:
        """Post a request to a QP and kick the dispatcher."""
        if request.enqueued_at_us is None:
            request.enqueued_at_us = self.engine.now
        tr = self.tracer
        if tr is not None:
            tr.emit(
                QP_ENQ, request.app_name, 0, request.request_id, request.kind.value
            )
        qp.push(request)
        self._kick(request.op)

    def submit_many(self, qp: PhysicalQP, requests: List[RdmaRequest]) -> None:
        """Doorbell batching: post a run of requests with a single kick.

        Equivalent to ``submit`` per request — same stamps, same trace
        records, same FIFO order — except the dispatcher is woken once
        for the whole run.  The per-request kicks it replaces were
        no-ops after the first anyway (the wakeup event latches), so
        the dispatch schedule is unchanged; only the Python call count
        drops.  All requests must share one op (one QP implies that).
        """
        if not requests:
            return
        now = self.engine.now
        tr = self.tracer
        queue = qp._queue
        for request in requests:
            if request.enqueued_at_us is None:
                request.enqueued_at_us = now
            if tr is not None:
                tr.emit(
                    QP_ENQ, request.app_name, 0, request.request_id,
                    request.kind.value,
                )
            queue.append(request)
        qp.enqueued_total += len(requests)
        self.stats.doorbells += 1
        self._kick(requests[0].op)

    def _kick(self, op: RdmaOp) -> None:
        wakeup = self._wakeups[op]
        if wakeup is not None and not wakeup.fired:
            wakeup.succeed()

    # -- dispatch ------------------------------------------------------------

    def _select(self, op: RdmaOp) -> Optional[RdmaRequest]:
        """Strict priority across QPs, round-robin within a priority level."""
        rr_cursor = self._rr_cursor
        for group in self._groups[op]:
            if len(group) == 1:
                queue = group[0]._queue
                if queue:
                    # Same cursor arithmetic the general path applies to a
                    # one-element nonempty list: cursor 0 is used, then 1.
                    rr_cursor[op] = 1
                    return queue.popleft()
                continue
            nonempty = [qp for qp in group if qp._queue]
            if not nonempty:
                continue
            cursor = rr_cursor[op] % len(nonempty)
            rr_cursor[op] = cursor + 1
            return nonempty[cursor]._queue.popleft()
        return None

    def _dispatch_loop(self, op: RdmaOp):
        engine = self.engine
        channel = self.read_channel if op is RdmaOp.READ else self.write_channel
        park = self._park_events[op]
        while True:
            if self.profiler is not None:
                t0 = perf_counter()
                request = self._select(op)
                self.profiler.add("rdma", perf_counter() - t0)
            else:
                request = self._select(op)
            if request is None:
                self._wakeups[op] = park
                yield park
                self._wakeups[op] = None
                park.reset()
                continue
            if request.dropped:
                self.stats.dropped_skipped += 1
                if self.tracer is not None:
                    self.tracer.emit(
                        QP_DROP_SKIP,
                        request.app_name,
                        0,
                        request.request_id,
                        request.kind.value,
                    )
                for hook in self.dropped_hooks:
                    hook(request)
                if request.owner is not None:
                    # Pooled request that will never complete: recycle it
                    # after the hooks' unwind has been dispatched.
                    engine._immediate.append(request._recycle_cb)
                continue
            rack = self.rack
            if rack is not None and rack.dead_target(request):
                # Target memory server is dead: the verb never reaches
                # the wire; an error CQE arrives after the propagation
                # delay and the kernel's error hooks take over.
                self.stats.dead_target_errors += 1
                request.error = True
                request.issued_at_us = engine.now
                engine.call_after(self.base_latency_us, self._complete, request)
                continue
            plan = self.fault_plan
            if plan is not None:
                yield from self._serve_faulted(channel, request, plan)
                continue
            # Verb processing on the NIC, then the wire, then propagation.
            # One pooled sleep covers verb + wire: the wire slot is
            # reserved up front for the instant the verb would have hit
            # it, so the release time is exactly the two-stage path's.
            now = engine.now
            request.issued_at_us = now
            if self.tracer is not None:
                self.tracer.emit(
                    QP_SERVE, request.app_name, 0, request.request_id,
                    request.kind.value,
                )
            release = channel.reserve(now + self.verb_overhead_us, request.size_bytes)
            if rack is not None:
                # Mirror the reservation on the target server's channel
                # at this exact synchronous point, so the server channel
                # sees the uplink's reservation sequence verbatim (the
                # one-server lockstep that keeps lag exactly 0.0).
                lag = rack.wire_lag(
                    request, now + self.verb_overhead_us, release
                )
                yield engine.sleep(release - now)
                engine.call_after(
                    self.base_latency_us + lag, self._complete, request
                )
                continue
            # Doorbell-batched drain: when the head priority group is a
            # single FIFO with more work queued, the serial loop's next
            # iterations are fully determined — each wake serves that
            # queue's head, nothing can preempt it (strict priority,
            # arrivals append behind), and every timestamp is pure float
            # arithmetic.  Compute the whole run here and sleep once.
            # Each step replicates the serial path bit for bit:
            # wake_j = now_j + (release_j - now_j), completion at
            # wake_j + base (call_at_exact avoids call_after's relative
            # round-trip).  Gated off under tracing (QP_SERVE must carry
            # real serve times) and profiling (attribution per serve);
            # rack-attached serves returned above (the per-server
            # channel mirror is inherently per-transfer).
            if self.tracer is None and self.profiler is None:
                groups = self._groups[op]
                head = groups[0] if groups else None
                if head is not None and len(head) == 1:
                    queue = head[0]._queue
                    if queue and not queue[0].dropped:
                        stats = self.stats
                        verb = self.verb_overhead_us
                        base = self.base_latency_us
                        reserve = channel.reserve
                        complete = self._complete
                        call_at = engine.call_at_exact
                        w = now + (release - now)
                        call_at(w + base, complete, request)
                        drained = 0
                        while queue and not queue[0].dropped:
                            nxt = queue.popleft()
                            nxt.issued_at_us = w
                            rel = reserve(w + verb, nxt.size_bytes)
                            w = w + (rel - w)
                            call_at(w + base, complete, nxt)
                            drained += 1
                        stats.drain_batches += 1
                        stats.drained_serves += drained
                        self._rr_cursor[op] = 1
                        yield engine.sleep_until(w)
                        continue
            yield engine.sleep(release - now)
            # Propagation is pipelined: schedule completion off-loop.
            # The request rides in the scheduling entry — no closure.
            engine.call_after(self.base_latency_us, self._complete, request)

    # -- fault-plan service path -------------------------------------------

    def _serve_faulted(self, channel: DirectionalChannel, request: RdmaRequest, plan):
        """Serve one transfer under a fault plan.

        With every knob at zero this path performs the exact float
        arithmetic and the exact yields of the plain path (the flap
        sleep is skipped, the bandwidth scale multiplies by 1.0, and the
        server delay adds 0.0), so a zero plan is bit-identical to no
        plan.
        """
        engine = self.engine
        now = engine.now
        down_until = plan.link_down_until(now)
        if down_until > now:
            # Link flap: the dispatch loop stalls until the link is back
            # (nothing can be serialized onto a dead wire).
            self.stats.flap_stall_us += down_until - now
            yield engine.sleep(down_until - now)
            now = engine.now
        request.issued_at_us = now
        if self.tracer is not None:
            self.tracer.emit(
                QP_SERVE, request.app_name, 0, request.request_id, request.kind.value
            )
        scale = plan.bandwidth_scale(now)
        if scale != 1.0:
            self.stats.degraded_transfers += 1
        release = channel.reserve(
            now + self.verb_overhead_us, request.size_bytes, scale
        )
        rack = self.rack
        lag = 0.0
        if rack is not None:
            # Same mirror-at-reserve-time rule as the plain path, with
            # the degradation scale applied to both channels.
            lag = rack.wire_lag(
                request, now + self.verb_overhead_us, release, scale
            )
        yield engine.sleep(release - now)
        verdict = plan.roll(request)
        if verdict:
            self._transport_fault(request, verdict, plan)
            return
        extra = plan.server_delay_us(engine.now)
        if extra > 0.0:
            self.stats.server_delayed += 1
        if lag > 0.0:
            engine.call_after(
                self.base_latency_us + extra + lag, self._complete, request
            )
        else:
            engine.call_after(self.base_latency_us + extra, self._complete, request)

    def _transport_fault(self, request: RdmaRequest, verdict: int, plan) -> None:
        """One served transfer failed: back off and retransmit, or give up.

        A silent wire drop is detected by the retransmission timeout
        (nothing ever arrives); a completion error is detected when the
        error status arrives after the normal propagation delay, so its
        retry starts sooner (``error_retry_scale``).  Past the retry
        budget the request completes as an *error CQE*: the completion
        event still fires (so schedulers free their slots and pooled
        requests recycle), with ``request.error`` telling the kernel to
        recover instead of mapping data in.
        """
        stats = self.stats
        request.retries += 1
        attempt = request.retries
        tr = self.tracer
        if verdict == _FAULT_DROP:
            stats.wire_drops += 1
            if tr is not None:
                tr.emit(
                    WIRE_DROP, request.app_name, 0, request.request_id, attempt
                )
            delay = plan.rto_us(attempt)
        else:
            stats.completion_errors += 1
            if tr is not None:
                tr.emit(
                    WIRE_ERROR, request.app_name, 0, request.request_id, attempt
                )
            delay = (
                self.base_latency_us
                + plan.rto_us(attempt) * plan.config.error_retry_scale
            )
        if attempt > plan.config.transport_retry_limit:
            stats.transport_failures += 1
            request.error = True
            self.engine.call_after(self.base_latency_us, self._complete, request)
            return
        stats.retransmits += 1
        request.retry_stall_us += delay
        self.engine.call_after(delay, self._retransmit, request)

    def _retransmit(self, request: RdmaRequest) -> None:
        """Timer callback: re-enqueue on the head-priority retransmit QP.

        A request marked dropped while waiting out its timeout still goes
        through the queue so the dispatch loop's drop path runs the hooks
        and recycles it — exactly like any other queued dropped request.
        """
        if self.tracer is not None:
            self.tracer.emit(
                RETRANSMIT, request.app_name, 0, request.request_id, request.retries
            )
        qp = self._rtx_qps.get(request.op)
        if qp is None:
            qp = self.create_qp(
                f"{self.name}.{request.op.value}.rtx", request.op, priority=-1
            )
            self._rtx_qps[request.op] = qp
        self.submit(qp, request)

    def _complete(self, request: RdmaRequest) -> None:
        if self.profiler is not None:
            t0 = perf_counter()
            self._complete_inner(request)
            self.profiler.add("rdma", perf_counter() - t0)
            return
        self._complete_inner(request)

    def _complete_inner(self, request: RdmaRequest) -> None:
        request.completed_at_us = self.engine.now
        stats = self.stats
        if self.tracer is not None:
            self.tracer.emit(
                QP_ERROR_CQE if request.error else QP_COMPLETE,
                request.app_name,
                0,
                request.request_id,
                request.kind.value,
            )
        if request.error:
            # An error CQE: no data landed, so the byte and per-kind
            # counters stay untouched.  Hooks and the completion event
            # still run — schedulers must free the outstanding slot and
            # the kernel must observe the failure.
            stats.error_cqes_delivered += 1
        else:
            if request.op is RdmaOp.READ:
                stats.reads_completed += 1
                stats.read_bytes += request.size_bytes
            else:
                stats.writes_completed += 1
                stats.write_bytes += request.size_bytes
            kind = request.kind
            if kind is RequestKind.DEMAND:
                stats.demand_completed += 1
            elif kind is RequestKind.PREFETCH:
                stats.prefetch_completed += 1
            elif kind is RequestKind.SWAPOUT:
                stats.swapout_completed += 1
            else:
                stats.rehome_completed += 1
        for hook in self.completion_hooks:
            hook(request)
        if request.completion is not None:
            request.completion.succeed(request)
        if request.owner is not None:
            # Recycle strictly after the completion dispatch: the
            # immediate lane runs the event's callbacks first, then this.
            self.engine._immediate.append(request._recycle_cb)
