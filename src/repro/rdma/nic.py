"""The RNIC and fabric model.

Geometry matches the paper's testbed: one 40 Gbps InfiniBand adapter per
host, so all co-running applications share a single NIC.  The model has
three pieces:

* :class:`DirectionalChannel` — the wire in one direction.  Transfers
  serialize on the wire for ``size / bandwidth``; propagation latency is
  pipelined (it delays completion but does not occupy the wire).
* :class:`PhysicalQP` — a FIFO of requests with a static priority, the
  unit the kernel posts verbs to.  Fastswap's sync/async split and
  Canvas's 3-PQPs-per-core layout are both configurations of these.
* :class:`RNIC` — one dispatch loop per direction that repeatedly picks
  the next request from the ready QPs (strict priority, round-robin
  within a priority level) and serves it.

Calibration: 40 Gbps ≈ 4800 payload bytes/µs after protocol overhead, so
a 4 KB page occupies the wire ~0.85 µs; with ~3 µs base latency and ~1 µs
verb overhead an unloaded demand read lands in ~5 µs and a loaded one in
tens of µs, matching Fig. 6's "99% of demand requests within 40 µs".
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from time import perf_counter
from typing import Callable, Deque, Dict, List, Optional

from repro.rdma.message import RdmaOp, RdmaRequest
from repro.sim.engine import Engine, Event

__all__ = ["DirectionalChannel", "PhysicalQP", "RNIC", "NicStats"]

#: 40 Gbps = 5000 bytes/µs raw; ~4% header/protocol overhead.
DEFAULT_BANDWIDTH_BYTES_PER_US = 4800.0
DEFAULT_BASE_LATENCY_US = 3.0
DEFAULT_VERB_OVERHEAD_US = 1.0


class DirectionalChannel:
    """One direction of the wire: a serializing bandwidth server."""

    def __init__(self, name: str, bandwidth_bytes_per_us: float):
        if bandwidth_bytes_per_us <= 0:
            raise ValueError("bandwidth must be positive")
        self.name = name
        self.bandwidth_bytes_per_us = bandwidth_bytes_per_us
        self.busy_until_us = 0.0
        self.bytes_transferred = 0

    def transfer_time_us(self, size_bytes: int) -> float:
        return size_bytes / self.bandwidth_bytes_per_us

    def reserve(self, now_us: float, size_bytes: int) -> float:
        """Occupy the wire for one transfer; returns wire-release time."""
        start = max(now_us, self.busy_until_us)
        self.busy_until_us = start + self.transfer_time_us(size_bytes)
        self.bytes_transferred += size_bytes
        return self.busy_until_us


class PhysicalQP:
    """A NIC queue pair: FIFO of requests with a dispatch priority.

    Lower ``priority`` values are served first (0 = most urgent).
    """

    def __init__(self, name: str, priority: int = 0):
        self.name = name
        self.priority = priority
        self._queue: Deque[RdmaRequest] = deque()
        self.enqueued_total = 0

    def __len__(self) -> int:
        return len(self._queue)

    def push(self, request: RdmaRequest) -> None:
        self._queue.append(request)
        self.enqueued_total += 1

    def pop(self) -> Optional[RdmaRequest]:
        if self._queue:
            return self._queue.popleft()
        return None

    def peek(self) -> Optional[RdmaRequest]:
        if self._queue:
            return self._queue[0]
        return None


@dataclass
class NicStats:
    reads_completed: int = 0
    writes_completed: int = 0
    read_bytes: int = 0
    write_bytes: int = 0
    dropped_skipped: int = 0


class RNIC:
    """One host NIC shared by every application on the machine."""

    def __init__(
        self,
        engine: Engine,
        read_bandwidth_bytes_per_us: float = DEFAULT_BANDWIDTH_BYTES_PER_US,
        write_bandwidth_bytes_per_us: float = DEFAULT_BANDWIDTH_BYTES_PER_US,
        base_latency_us: float = DEFAULT_BASE_LATENCY_US,
        verb_overhead_us: float = DEFAULT_VERB_OVERHEAD_US,
        name: str = "rnic",
    ):
        self.engine = engine
        self.name = name
        self.read_channel = DirectionalChannel(f"{name}.read", read_bandwidth_bytes_per_us)
        self.write_channel = DirectionalChannel(f"{name}.write", write_bandwidth_bytes_per_us)
        self.base_latency_us = base_latency_us
        self.verb_overhead_us = verb_overhead_us
        self.stats = NicStats()
        #: Optional SimProfiler; when set, dispatch selection and
        #: completion callbacks are attributed to the "rdma" section.
        self.profiler = None
        self._qps: Dict[RdmaOp, List[PhysicalQP]] = {RdmaOp.READ: [], RdmaOp.WRITE: []}
        self._rr_cursor: Dict[RdmaOp, int] = {RdmaOp.READ: 0, RdmaOp.WRITE: 0}
        self._dispatch_idle: Dict[RdmaOp, bool] = {RdmaOp.READ: True, RdmaOp.WRITE: True}
        self._wakeups: Dict[RdmaOp, Optional[Event]] = {RdmaOp.READ: None, RdmaOp.WRITE: None}
        #: Observers called as fn(request) on every completion.
        self.completion_hooks: List[Callable[[RdmaRequest], None]] = []
        #: Observers called when a dropped request is skipped at dispatch
        #: (it will never complete; schedulers must release its slot).
        self.dropped_hooks: List[Callable[[RdmaRequest], None]] = []
        for op in (RdmaOp.READ, RdmaOp.WRITE):
            engine.spawn(self._dispatch_loop(op), name=f"{name}.{op.value}.dispatch")

    # -- QP management -----------------------------------------------------

    def create_qp(self, name: str, op: RdmaOp, priority: int = 0) -> PhysicalQP:
        qp = PhysicalQP(name, priority)
        self._qps[op].append(qp)
        self._qps[op].sort(key=lambda q: q.priority)
        return qp

    def submit(self, qp: PhysicalQP, request: RdmaRequest) -> None:
        """Post a request to a QP and kick the dispatcher."""
        if request.enqueued_at_us is None:
            request.enqueued_at_us = self.engine.now
        qp.push(request)
        self._kick(request.op)

    def _kick(self, op: RdmaOp) -> None:
        wakeup = self._wakeups[op]
        if wakeup is not None and not wakeup.fired:
            wakeup.succeed()

    # -- dispatch ------------------------------------------------------------

    def _select(self, op: RdmaOp) -> Optional[RdmaRequest]:
        """Strict priority across QPs, round-robin within a priority level."""
        qps = self._qps[op]
        if not qps:
            return None
        # Group by priority (list is sorted).
        index = 0
        while index < len(qps):
            level = qps[index].priority
            group = []
            while index < len(qps) and qps[index].priority == level:
                group.append(qps[index])
                index += 1
            nonempty = [qp for qp in group if len(qp)]
            if not nonempty:
                continue
            cursor = self._rr_cursor[op] % len(nonempty)
            self._rr_cursor[op] = cursor + 1
            return nonempty[cursor].pop()
        return None

    def _dispatch_loop(self, op: RdmaOp):
        channel = self.read_channel if op is RdmaOp.READ else self.write_channel
        while True:
            if self.profiler is not None:
                t0 = perf_counter()
                request = self._select(op)
                self.profiler.add("rdma", perf_counter() - t0)
            else:
                request = self._select(op)
            if request is None:
                wakeup = self.engine.event(f"{self.name}.{op.value}.wakeup")
                self._wakeups[op] = wakeup
                yield wakeup
                self._wakeups[op] = None
                continue
            if request.dropped:
                self.stats.dropped_skipped += 1
                for hook in self.dropped_hooks:
                    hook(request)
                continue
            request.issued_at_us = self.engine.now
            # Verb processing on the NIC, then the wire, then propagation.
            yield self.engine.timeout(self.verb_overhead_us)
            release = channel.reserve(self.engine.now, request.size_bytes)
            wire_wait = release - self.engine.now
            yield self.engine.timeout(wire_wait)
            # Propagation is pipelined: schedule completion off-loop.
            self.engine.call_after(
                self.base_latency_us, lambda req=request: self._complete(req)
            )

    def _complete(self, request: RdmaRequest) -> None:
        if self.profiler is not None:
            t0 = perf_counter()
            self._complete_inner(request)
            self.profiler.add("rdma", perf_counter() - t0)
            return
        self._complete_inner(request)

    def _complete_inner(self, request: RdmaRequest) -> None:
        request.completed_at_us = self.engine.now
        if request.op is RdmaOp.READ:
            self.stats.reads_completed += 1
            self.stats.read_bytes += request.size_bytes
        else:
            self.stats.writes_completed += 1
            self.stats.write_bytes += request.size_bytes
        for hook in self.completion_hooks:
            hook(request)
        if request.completion is not None:
            request.completion.succeed(request)
