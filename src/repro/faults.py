"""Deterministic fault injection for the RDMA fabric and remote memory.

Canvas's evaluation assumes a healthy fabric; real disaggregated-memory
deployments do not get one.  This module gives the simulator a scripted,
*seeded* fault model so degraded-fabric behaviour is reproducible: every
schedule below is a pure function of ``(FaultConfig, seed)``, so two runs
with the same seed and plan produce bit-identical digests, and a plan
with every knob at zero is bit-identical to running with no plan at all.

Three fault classes are injected:

* **Per-request verbs faults** — silent wire drops (the completion never
  arrives; detected by the NIC's retransmission timeout) and completion
  errors (an error CQE arrives after the normal propagation delay).  The
  NIC retries both with exponential backoff up to a retry budget, then
  surfaces an error CQE to the kernel (see ``rdma/nic.py``).
* **Link-level windows** — full link flaps (the dispatch loop stalls
  until the link returns) and bandwidth-degradation windows (transfers
  serialize at a fraction of nominal bandwidth).
* **Remote-server episodes** — slowdown windows that add latency to
  every completion and multiply RDMA buffer-registration cost in
  ``core/remote_memory.py``.

Window placement is evenly spaced across ``window_horizon_us`` with
seeded jitter, or supplied explicitly via the ``*_windows`` tuples (unit
tests script exact instants that way).  Per-request verdicts come from a
dedicated numpy stream drawn in NIC dispatch order — itself
deterministic — or from an explicit ``roll_script`` prefix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.rdma.message import RdmaOp, RdmaRequest
from repro.sim.rng import derive_seed

__all__ = [
    "FAULT_OK",
    "FAULT_DROP",
    "FAULT_ERROR",
    "FaultConfig",
    "FaultPlan",
    "SCENARIOS",
    "RACK_SCENARIOS",
    "scenario_config",
    "rack_scenario_config",
    "make_plan",
]

#: Verdicts returned by :meth:`FaultPlan.roll` for one served request.
FAULT_OK, FAULT_DROP, FAULT_ERROR = 0, 1, 2


@dataclass(frozen=True)
class FaultConfig:
    """Every knob of one fault scenario (all rates default to zero).

    Frozen so a config can sit inside an ``ExperimentConfig`` and feed
    the result cache's repr-based job key without aliasing surprises.
    """

    #: Root seed for the plan's RNG streams; ``None`` derives one from
    #: the experiment seed so co-run digests stay seed-stable.
    fault_seed: Optional[int] = None

    # -- per-request verb faults ------------------------------------------
    #: Probability a served transfer is silently lost on the wire.
    drop_prob: float = 0.0
    #: Probability a served transfer completes with an error CQE.
    completion_error_prob: float = 0.0
    #: Scope the verb faults to one direction (reads = swap-ins).
    read_faults: bool = True
    write_faults: bool = True
    #: Explicit verdict prefix (FAULT_* ints) consumed in dispatch order
    #: before the probabilistic rolls take over; unit tests script exact
    #: drop-then-succeed sequences with it.
    roll_script: Tuple[int, ...] = ()

    # -- RC-style retransmission ------------------------------------------
    #: First retransmission timeout; doubles (``retransmit_backoff``)
    #: per attempt up to ``retransmit_cap_us``.
    retransmit_timeout_us: float = 150.0
    retransmit_backoff: float = 2.0
    retransmit_cap_us: float = 5_000.0
    #: An error CQE is detected at completion time (not by RTO), so its
    #: retry waits only this fraction of the current RTO.
    error_retry_scale: float = 0.25
    #: Retransmissions per request before the NIC gives up and delivers
    #: an error CQE to the kernel.
    transport_retry_limit: int = 6

    # -- link flaps --------------------------------------------------------
    n_flaps: int = 0
    flap_down_us: float = 2_000.0
    #: Explicit (start_us, duration_us) pairs; overrides ``n_flaps``.
    flap_windows: Tuple[Tuple[float, float], ...] = ()

    # -- bandwidth degradation windows ------------------------------------
    n_degrade_windows: int = 0
    degrade_factor: float = 0.5
    degrade_duration_us: float = 50_000.0
    #: Explicit (start_us, duration_us, factor) triples.
    degrade_windows: Tuple[Tuple[float, float, float], ...] = ()

    # -- remote-memory-server slowdown episodes ---------------------------
    n_server_slowdowns: int = 0
    #: Extra per-completion latency while a server episode is active.
    server_delay_us: float = 25.0
    server_slowdown_duration_us: float = 50_000.0
    #: RDMA buffer-registration cost multiplier during an episode.
    registration_slowdown_factor: float = 4.0
    #: Explicit (start_us, duration_us) pairs.
    server_windows: Tuple[Tuple[float, float], ...] = ()

    # -- rack episodes (multi-server fabric; see repro.cluster) -----------
    #: Explicit (server_id, at_us) memory-server failures.  Always
    #: scripted — killing a *specific* server at a *specific* instant is
    #: what the chaos suite needs, and there is no meaningful way to
    #: auto-place a death without knowing the rack size.
    server_deaths: Tuple[Tuple[int, float], ...] = ()
    #: Explicit (server_id, at_us) drain episodes (planned removal via
    #: background migration instead of failure).
    server_drains: Tuple[Tuple[int, float], ...] = ()

    #: Horizon over which auto-placed windows are spread.
    window_horizon_us: float = 1_000_000.0

    @property
    def any_faults(self) -> bool:
        return bool(
            self.drop_prob > 0.0
            or self.completion_error_prob > 0.0
            or self.roll_script
            or self.n_flaps > 0
            or self.flap_windows
            or self.n_degrade_windows > 0
            or self.degrade_windows
            or self.n_server_slowdowns > 0
            or self.server_windows
            or self.server_deaths
            or self.server_drains
        )


class FaultPlan:
    """A fully materialized fault schedule: pure function of (config, seed)."""

    def __init__(self, config: FaultConfig, seed: int = 0):
        self.config = config
        self.seed = (
            config.fault_seed
            if config.fault_seed is not None
            else derive_seed(seed, "faults")
        )
        window_rng = np.random.default_rng(derive_seed(self.seed, "windows"))
        # Windows are placed in a fixed draw order (flaps, degradation,
        # server) so adding one class never perturbs another's placement
        # ... within a plan; across plans the stream is seed-derived.
        self.flap_windows = self._place(
            window_rng,
            config.flap_windows,
            config.n_flaps,
            config.flap_down_us,
            config.window_horizon_us,
        )
        if config.degrade_windows:
            self.degrade_windows = tuple(
                (start, start + duration, factor)
                for start, duration, factor in config.degrade_windows
            )
        else:
            self.degrade_windows = tuple(
                (start, end, config.degrade_factor)
                for start, end in self._place(
                    window_rng,
                    (),
                    config.n_degrade_windows,
                    config.degrade_duration_us,
                    config.window_horizon_us,
                )
            )
        self.server_windows = self._place(
            window_rng,
            config.server_windows,
            config.n_server_slowdowns,
            config.server_slowdown_duration_us,
            config.window_horizon_us,
        )
        # Rack episodes are always scripted, so they pass through
        # verbatim and never touch the window RNG (adding a death to a
        # plan cannot perturb any other fault class's placement).
        self.server_deaths = config.server_deaths
        self.server_drains = config.server_drains
        self._roll_rng = np.random.default_rng(derive_seed(self.seed, "rolls"))
        self._p_drop = config.drop_prob
        self._p_total = config.drop_prob + config.completion_error_prob
        self._script = list(config.roll_script)
        self._script_next = 0
        #: Verdict tallies, mostly for tests asserting the plan fired.
        self.rolls = 0
        self.verdicts: Dict[int, int] = {FAULT_DROP: 0, FAULT_ERROR: 0}

    @staticmethod
    def _place(
        rng: np.random.Generator,
        explicit: Tuple[Tuple[float, float], ...],
        count: int,
        duration_us: float,
        horizon_us: float,
    ) -> Tuple[Tuple[float, float], ...]:
        """(start, end) windows: explicit, or jittered-even placement."""
        if explicit:
            return tuple((start, start + dur) for start, dur in explicit)
        if count <= 0:
            return ()
        spacing = horizon_us / (count + 1)
        windows: List[Tuple[float, float]] = []
        for index in range(count):
            jitter = (rng.random() - 0.5) * 0.5 * spacing
            start = spacing * (index + 1) + jitter
            windows.append((start, start + duration_us))
        return tuple(windows)

    # -- per-request verdicts ---------------------------------------------

    def roll(self, request: RdmaRequest) -> int:
        """Verdict for one served transfer (drawn in dispatch order)."""
        if request.op is RdmaOp.READ:
            if not self.config.read_faults:
                return FAULT_OK
        elif not self.config.write_faults:
            return FAULT_OK
        if self._script_next < len(self._script):
            verdict = self._script[self._script_next]
            self._script_next += 1
        elif self._p_total > 0.0:
            draw = self._roll_rng.random()
            if draw < self._p_drop:
                verdict = FAULT_DROP
            elif draw < self._p_total:
                verdict = FAULT_ERROR
            else:
                verdict = FAULT_OK
        else:
            return FAULT_OK
        self.rolls += 1
        if verdict != FAULT_OK:
            self.verdicts[verdict] += 1
        return verdict

    def rto_us(self, attempt: int) -> float:
        """Retransmission timeout for the ``attempt``-th retry (1-based)."""
        cfg = self.config
        timeout = cfg.retransmit_timeout_us * cfg.retransmit_backoff ** (attempt - 1)
        return min(timeout, cfg.retransmit_cap_us)

    # -- window queries ----------------------------------------------------

    def link_down_until(self, now_us: float) -> float:
        """End of the flap covering ``now_us``, or ``now_us`` if link is up."""
        for start, end in self.flap_windows:
            if start <= now_us < end:
                return end
            if start > now_us:
                break
        return now_us

    def bandwidth_scale(self, now_us: float) -> float:
        for start, end, factor in self.degrade_windows:
            if start <= now_us < end:
                return factor
            if start > now_us:
                break
        return 1.0

    def server_delay_us(self, now_us: float) -> float:
        for start, end in self.server_windows:
            if start <= now_us < end:
                return self.config.server_delay_us
            if start > now_us:
                break
        return 0.0

    def registration_slowdown(self, now_us: float) -> float:
        for start, end in self.server_windows:
            if start <= now_us < end:
                return self.config.registration_slowdown_factor
            if start > now_us:
                break
        return 1.0

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"FaultPlan(seed={self.seed}, flaps={len(self.flap_windows)}, "
            f"degrade={len(self.degrade_windows)}, "
            f"server={len(self.server_windows)}, "
            f"p_drop={self._p_drop}, p_total={self._p_total})"
        )


#: Named scenarios for ``canvas-sim chaos`` and the chaos test suite.
SCENARIOS: Dict[str, FaultConfig] = {
    "drops": FaultConfig(drop_prob=0.01),
    "errors": FaultConfig(completion_error_prob=0.02),
    "flaky-link": FaultConfig(drop_prob=0.01, n_flaps=2),
    #: The acceptance scenario: 1% wire drops plus one link flap.
    "degraded": FaultConfig(drop_prob=0.01, n_flaps=1),
    "brownout": FaultConfig(n_degrade_windows=2, degrade_factor=0.35),
    "server-slow": FaultConfig(
        n_server_slowdowns=2, registration_slowdown_factor=6.0
    ),
    "chaos": FaultConfig(
        drop_prob=0.02,
        completion_error_prob=0.01,
        n_flaps=2,
        n_degrade_windows=1,
        n_server_slowdowns=1,
    ),
}


#: Rack-scale scenarios (``canvas-sim rack`` and the rack chaos tests).
#: Kept separate from :data:`SCENARIOS` — these only make sense with a
#: multi-server :class:`repro.cluster.ClusterConfig` attached, and the
#: chaos suite iterates "all SCENARIOS" against the single-endpoint
#: fabric.  Server ids are modulo'd by callers against the rack size.
RACK_SCENARIOS: Dict[str, FaultConfig] = {
    #: One server dies mid-run; survivors absorb its pages.  (Scaled-down
    #: workloads complete in milliseconds of simulated time, so episodes
    #: land early enough to fire on every scale.)
    "server-death": FaultConfig(server_deaths=((0, 200.0),)),
    #: Planned removal: one server drains via background migration.
    "server-drain": FaultConfig(server_drains=((0, 200.0),)),
    #: Two servers die back to back (survivors re-home twice).
    "double-failure": FaultConfig(server_deaths=((0, 200.0), (1, 400.0))),
    #: A drain racing a flaky fabric: migration legs see verb faults.
    "drain-storm": FaultConfig(
        drop_prob=0.01,
        completion_error_prob=0.01,
        server_drains=((0, 150.0),),
    ),
}


def scenario_config(name: str) -> FaultConfig:
    try:
        return SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown fault scenario {name!r}; known: {sorted(SCENARIOS)}"
        ) from None


def rack_scenario_config(name: str) -> FaultConfig:
    try:
        return RACK_SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown rack scenario {name!r}; known: {sorted(RACK_SCENARIOS)}"
        ) from None


def make_plan(config: Optional[FaultConfig], seed: int = 0) -> Optional[FaultPlan]:
    """The harness entry point: ``None`` config means no plan at all."""
    if config is None:
        return None
    return FaultPlan(config, seed)
