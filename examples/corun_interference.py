#!/usr/bin/env python3
"""Co-run interference demo: the paper's headline experiment in one file.

Runs Spark-LR with the three native applications (Snappy, Memcached,
XGBoost), each pinned to the paper's per-app core counts and 25% local
memory, on four swap systems:

  * Linux 5.5      — everything shared (partition, cache, prefetcher, QPs)
  * Fastswap       — sync/async QP split, still shared
  * Canvas (iso)   — isolation only (per-cgroup partition/cache/bandwidth)
  * Canvas (full)  — isolation + adaptive allocation + two-tier
                     prefetching + two-dimensional RDMA scheduling

and prints each application's slowdown versus running alone.

Run:  python examples/corun_interference.py
"""

from repro.harness import ExperimentConfig, run_experiment, run_individual
from repro.metrics import format_table

GROUP = ["snappy", "memcached", "xgboost", "spark_lr"]
SYSTEMS = [
    ("Linux 5.5", "linux"),
    ("Fastswap", "fastswap"),
    ("Canvas (isolation only)", "canvas-iso"),
    ("Canvas (full)", "canvas"),
]


def main() -> None:
    scale = 0.15
    base = ExperimentConfig(system="linux", scale=scale)

    print("running individual baselines ...")
    solo = {}
    for name in GROUP:
        solo[name] = run_individual(name, base).completion_time(name)

    rows = []
    for label, system in SYSTEMS:
        print(f"running co-run on {label} ...")
        result = run_experiment(GROUP, ExperimentConfig(system=system, scale=scale))
        rows.append(
            [label]
            + [result.completion_time(name) / solo[name] for name in GROUP]
        )

    print()
    print("slowdown vs individual run (1.0 = no interference):")
    print(format_table(["system"] + GROUP, rows))
    print()
    linux_row, canvas_row = rows[0], rows[-1]
    gains = [linux_row[i] / canvas_row[i] for i in range(1, len(GROUP) + 1)]
    print(
        "Canvas speedup over Linux co-run: "
        + ", ".join(f"{name} {gain:.2f}x" for name, gain in zip(GROUP, gains))
    )


if __name__ == "__main__":
    main()
