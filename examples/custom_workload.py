#!/usr/bin/env python3
"""Defining a custom workload and running it on Canvas.

The library's workload interface is two methods: ``build`` maps regions
into the app's address space (and describes the heap to the runtime
model), ``thread_streams`` yields one ``(vpn, is_write, cpu_us)`` stream
per thread.  This example builds a "log-structured store": writers
append to a sequential log while readers look up zipf-popular keys —
and shows how Canvas's per-application prefetcher handles the mix.

Run:  python examples/custom_workload.py
"""

from typing import Iterator, List

import numpy as np

from repro.core import CanvasSwapSystem
from repro.harness import Machine, run_to_completion, spawn_app
from repro.kernel import AppContext, CgroupConfig
from repro.workloads import patterns
from repro.workloads.base import Access, Workload


class LogStructuredStore(Workload):
    """Appending writers + zipf readers over one keyspace."""

    name = "logstore"
    display_name = "Log-structured store"
    managed = False
    n_threads = 6  # 2 writers + 4 readers
    working_set_pages = 4096
    accesses_per_thread = 3000

    def build(self, app: AppContext, rng: np.random.Generator) -> None:
        log_pages = self.working_set_pages // 2
        self.log_vma = app.space.map_region(log_pages, name="log")
        self.index_vma = app.space.map_region(
            self.working_set_pages - log_pages, name="index"
        )
        self.attach_runtime(app)

    def thread_streams(
        self, app: AppContext, rng: np.random.Generator
    ) -> List[Iterator[Access]]:
        streams: List[Iterator[Access]] = []
        for writer in range(2):
            streams.append(
                patterns.sequential(
                    self.log_vma,
                    self.accesses_per_thread,
                    write_ratio=1.0,
                    cpu_us=1.0,
                    start=writer * self.log_vma.n_pages // 2,
                )
            )
        for _reader in range(4):
            child = np.random.default_rng(rng.integers(1 << 31))
            streams.append(
                patterns.zipfian(
                    self.index_vma,
                    self.accesses_per_thread,
                    child,
                    theta=0.9,
                    write_ratio=0.05,
                    cpu_us=1.5,
                )
            )
        return streams


def main() -> None:
    machine = Machine(seed=7)
    system = CanvasSwapSystem(machine.engine, machine.nic, telemetry=machine.telemetry)

    workload = LogStructuredStore(scale=0.5)
    local = workload.working_set_pages // 4
    app = AppContext(
        machine.engine,
        CgroupConfig(
            name="logstore",
            n_cores=6,
            local_memory_pages=local,
            swap_partition_pages=workload.working_set_pages,
            swap_cache_pages=max(96, local // 4),
        ),
    )
    workload.build(app, machine.rng.child("logstore").stream("build"))
    system.register_app(app)
    system.attach_runtime_handler(app)
    system.prepopulate(app, resident_fraction=0.2)

    streams = workload.thread_streams(app, machine.rng.child("logstore").stream("s"))
    run_to_completion(machine.engine, [spawn_app(system, app, streams)])

    stats = app.stats
    print(f"completed in          {app.completion_time_us / 1000:8.2f} ms")
    print(f"faults                {stats.faults:8d}")
    print(
        f"prefetch contribution {100 * stats.prefetch_contribution:7.1f}% "
        f"(the sequential log prefetches; zipf reads mostly cannot)"
    )
    print(f"swap-outs             {stats.swapouts:8d}")
    print(f"lock-free swap-outs   {stats.reserved_swapouts:8d}")
    print(f"uffd forwards         {stats.uffd_forwards:8d} (app-tier escalations)")


if __name__ == "__main__":
    main()
