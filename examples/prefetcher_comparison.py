#!/usr/bin/env python3
"""Prefetcher shoot-out on one pointer-chasing managed application.

Runs GraphX Connected Components (heavy reference chasing, the worst
case for stride detection) alone under 25% local memory with four
prefetching configurations:

  * none        — every fault is a demand fetch
  * Leap        — majority vote + aggressive contiguous fallback
  * kernel      — conservative readaround with hit feedback
  * two-tier    — kernel tier + Canvas's JVM reference-graph /
                  per-thread semantic prefetching (§5.2)

and prints completion time, contribution, and accuracy for each.

Run:  python examples/prefetcher_comparison.py
"""

from repro.harness import ExperimentConfig, run_individual
from repro.metrics import format_table

APP = "graphx_cc"


def main() -> None:
    scale = 0.2
    configs = [
        ("none", ExperimentConfig(system="linux", prefetcher="none", scale=scale)),
        ("leap", ExperimentConfig(system="linux", prefetcher="leap", scale=scale)),
        ("kernel", ExperimentConfig(system="linux", prefetcher="readahead", scale=scale)),
        (
            "two-tier",
            # Canvas with only the prefetching machinery enabled, so the
            # comparison isolates prefetching policy.
            ExperimentConfig(
                system="canvas",
                two_tier_prefetch=True,
                adaptive_allocation=False,
                horizontal_scheduling=False,
                scale=scale,
            ),
        ),
    ]
    rows = []
    for label, config in configs:
        print(f"running {APP} with {label} prefetching ...")
        result = run_individual(APP, config)
        outcome = result.results[APP]
        rows.append(
            [
                label,
                outcome.completion_time_us / 1000,
                100 * outcome.prefetch_contribution,
                100 * outcome.prefetch_accuracy,
                outcome.stats.prefetches_issued,
            ]
        )
    print()
    print(
        format_table(
            ["prefetcher", "time (ms)", "contribution %", "accuracy %", "issued"],
            rows,
        )
    )
    print()
    print(
        "Pointer chasing defeats stride detection; only the reference-graph\n"
        "application tier (two-tier) sees the object graph's structure."
    )


if __name__ == "__main__":
    main()
