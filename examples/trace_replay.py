#!/usr/bin/env python3
"""Record a fault trace on one swap system, replay it on another.

Records every page fault XGBoost takes while running on the shared
Linux 5.5 swap path, dumps the trace to JSON lines, then replays the
exact same fault sequence (with the recorded compute gaps) against
Canvas — an apples-to-apples comparison of how the two systems serve an
identical demand stream.

Run:  python examples/trace_replay.py
"""

import tempfile
from pathlib import Path

from repro.core import CanvasSwapSystem
from repro.harness import (
    FaultTracer,
    Machine,
    load_trace,
    replay_streams,
    run_to_completion,
    spawn_app,
)
from repro.kernel import AppContext, CgroupConfig, LinuxSwapSystem, SwapSystemConfig
from repro.workloads import make_workload


def build_app(machine, workload, canvas: bool):
    local = workload.working_set_pages // 4
    app = AppContext(
        machine.engine,
        CgroupConfig(
            name="xgboost",
            n_cores=16,
            local_memory_pages=local,
            swap_partition_pages=workload.working_set_pages,
            swap_cache_pages=max(96, local // 4),
        ),
    )
    workload.build(app, machine.rng.child("xgboost").stream("build"))
    if canvas:
        system = CanvasSwapSystem(
            machine.engine, machine.nic, telemetry=machine.telemetry
        )
    else:
        system = LinuxSwapSystem(
            machine.engine,
            machine.nic,
            partition_pages=workload.working_set_pages * 2,
            telemetry=machine.telemetry,
            config=SwapSystemConfig(),
        )
    system.register_app(app)
    system.prepopulate(app, resident_fraction=0.2)
    return system, app


def main() -> None:
    workload = make_workload("xgboost", scale=0.2)

    # -- record on Linux ------------------------------------------------
    machine = Machine(seed=5)
    system, app = build_app(machine, workload, canvas=False)
    tracer = FaultTracer(system)
    streams = workload.thread_streams(app, machine.rng.child("xgboost").stream("s"))
    run_to_completion(machine.engine, [spawn_app(system, app, streams)])
    linux_time = app.completion_time_us

    trace_path = Path(tempfile.gettempdir()) / "xgboost-linux.jsonl"
    n = tracer.dump(trace_path)
    print(f"recorded {n} faults on Linux 5.5 -> {trace_path}")
    print(f"linux run: {linux_time / 1000:.2f} ms, "
          f"mean fault stall {app.stats.fault_stall_us / max(1, app.stats.faults):.1f} µs")

    # -- replay on Canvas -------------------------------------------------
    machine2 = Machine(seed=5)
    workload2 = make_workload("xgboost", scale=0.2)
    system2, app2 = build_app(machine2, workload2, canvas=True)
    replay = replay_streams(load_trace(trace_path))
    run_to_completion(machine2.engine, [spawn_app(system2, app2, replay)])
    print(f"canvas replay: {app2.completion_time_us / 1000:.2f} ms, "
          f"mean fault stall "
          f"{app2.stats.fault_stall_us / max(1, app2.stats.faults):.1f} µs")
    print(f"speedup on the identical fault sequence: "
          f"{linux_time / app2.completion_time_us:.2f}x")


if __name__ == "__main__":
    main()
