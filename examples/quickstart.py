#!/usr/bin/env python3
"""Quickstart: run one application on the Canvas swap system.

Builds the simulated machine, provisions a cgroup with 25% of the
application's working set as local memory, runs a Memcached-style YCSB
workload on Canvas, and prints what the swap system did.

Run:  python examples/quickstart.py
"""

from repro.core import CanvasSwapSystem
from repro.harness import Machine, run_to_completion, spawn_app
from repro.kernel import AppContext, CgroupConfig
from repro.workloads import make_workload


def main() -> None:
    # One host: event engine + 40 Gbps RDMA fabric + telemetry.
    machine = Machine(seed=42)

    # The swap system under test: fully isolated, all three adaptive
    # optimizations enabled (§4, §5 of the paper).
    system = CanvasSwapSystem(machine.engine, machine.nic, telemetry=machine.telemetry)

    # A Table 2 workload, scaled down to laptop size.
    workload = make_workload("memcached", scale=0.25)
    working_set = workload.working_set_pages
    local = working_set // 4  # the paper's 25% local-memory configuration

    app = AppContext(
        machine.engine,
        CgroupConfig(
            name="memcached",
            n_cores=4,
            local_memory_pages=local,
            swap_partition_pages=working_set,  # local + remote > working set
            swap_cache_pages=max(96, local // 4),
        ),
    )

    # Map regions, attach the (native) runtime model, register with the
    # swap system, and lay out the initial resident set.
    workload.build(app, machine.rng.child("memcached").stream("build"))
    system.register_app(app)
    system.attach_runtime_handler(app)  # two-tier prefetch hook
    system.prepopulate(app, resident_fraction=0.2)

    # Spawn one simulated thread per workload thread and run.
    streams = workload.thread_streams(app, machine.rng.child("memcached").stream("s"))
    process = spawn_app(system, app, streams)
    run_to_completion(machine.engine, [process])

    stats = app.stats
    print(f"completed in        {app.completion_time_us / 1000:8.2f} ms (simulated)")
    print(f"memory accesses     {stats.accesses:8d}")
    print(f"page faults         {stats.faults:8d} ({100 * stats.fault_rate:.1f}%)")
    print(f"demand swap-ins     {stats.demand_swapins:8d}")
    print(f"prefetches issued   {stats.prefetches_issued:8d}")
    print(f"prefetch contribution {100 * stats.prefetch_contribution:6.1f}%")
    print(f"swap-outs           {stats.swapouts:8d} (+{stats.clean_drops} free clean drops)")
    print(f"lock-free swap-outs {stats.reserved_swapouts:8d} (§5.1 reservations)")
    adaptive = system.adaptive_stats("memcached")
    print(f"reservation hit rate {100 * adaptive.lock_free_fraction:6.1f}%")


if __name__ == "__main__":
    main()
