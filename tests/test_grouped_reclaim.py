"""Grouped reclaim vs the serial eviction oracle (the PR 8 twin of the
PR 7 grouped-fault suite).

``_evict_many`` batches kswapd's eviction → entry-allocation → writeback
egress pipeline: one generator per batch, one revalidated
``select_victims`` pass per round (cut at the first writeback-needing
victim), and one write doorbell per round.  Its contract is the same as
grouped fault admission's: a *pure host-cost optimization*, bit-identical
to the serial ``_evict_one`` loop kept behind ``grouped_reclaim=False``.

Layers:

* **Digest guards** — grouped vs scalar reclaim on every system, on a
  co-run, and under every named fault scenario.
* **Chaos unwind** — a scripted writeback error landing inside a grouped
  eviction batch reissues and reconciles exactly like the scalar path.
* **Counter invariants** — the per-app ``outstanding_writebacks`` /
  ``inflight_prefetches`` counters never go negative and reconcile to
  zero once the system drains, sampled live during a faulted co-run.
"""

import dataclasses

import pytest

from repro.faults import FAULT_ERROR, FaultConfig, FaultPlan, SCENARIOS, scenario_config
from repro.harness.driver import run_to_completion, spawn_app
from repro.harness.experiment import ExperimentConfig, run_experiment
from repro.harness.machine import Machine
from repro.harness.results import result_digest
from tests.conftest import build_system, sequential_accesses

_AB_SYSTEMS = ["linux", "linux514", "fastswap", "infiniswap", "canvas-iso", "canvas"]


def _reclaim_run(system, grouped, workloads=None, fault_config=None, seed=11):
    overrides = {} if grouped else {"grouped_reclaim": False}
    config = ExperimentConfig(
        system=system,
        scale=0.03,
        seed=seed,
        fault_config=fault_config,
        system_config_overrides=overrides,
    )
    return run_experiment(workloads or ["memcached"], config)


@pytest.mark.parametrize("system", _AB_SYSTEMS)
def test_grouped_reclaim_is_digest_invisible(system):
    """Grouped vs. scalar reclaim on a clean fabric, every system."""
    assert result_digest(_reclaim_run(system, True)) == result_digest(
        _reclaim_run(system, False)
    )


def test_grouped_reclaim_digest_invisible_on_co_run():
    """The fig. 10 shape: a canvas co-run under memory pressure."""
    pair = ["memcached", "neo4j"]
    assert result_digest(
        _reclaim_run("canvas", True, workloads=pair)
    ) == result_digest(_reclaim_run("canvas", False, workloads=pair))


@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
def test_grouped_reclaim_survives_every_fault_scenario(scenario):
    """Grouped reclaim under chaos: writeback-error verdicts stay exact
    within a batch and the run is bit-identical to serial eviction."""
    fault_config = scenario_config(scenario)
    grouped = _reclaim_run("canvas", True, fault_config=fault_config)
    scalar = _reclaim_run("canvas", False, fault_config=fault_config)
    assert result_digest(grouped) == result_digest(scalar)
    # The fault ledger reconciles on the grouped run...
    stats = grouped.machine.nic.stats
    assert (
        stats.wire_drops + stats.completion_errors
        == stats.retransmits + stats.transport_failures
    )
    # ...and nothing is left in flight.
    system = grouped.system
    assert system._inflight == {}
    assert system._inflight_req == {}
    assert all(a.outstanding_writebacks == 0 for a in system.apps.values())
    assert all(a.inflight_prefetches == 0 for a in system.apps.values())


# -- chaos unwind: a writeback error inside a grouped batch --------------


def _writeback_error_run(grouped):
    """A write-heavy run whose first swap-out fails straight to an error
    CQE — with flat-state LRU so grouped reclaim actually engages."""
    machine = Machine(seed=1)
    system, app, vma = build_system(machine, flat_state=True)
    system.config.grouped_reclaim = grouped
    plan = FaultPlan(
        FaultConfig(
            roll_script=(FAULT_ERROR,),
            transport_retry_limit=0,
            read_faults=False,
        ),
        seed=0,
    )
    machine.nic.fault_plan = plan
    system.fault_plan = plan
    proc = spawn_app(system, app, [sequential_accesses(vma, 3000, write=True)])
    run_to_completion(machine.engine, [proc])
    return machine, system, app


def test_grouped_writeback_error_unwinds_like_scalar():
    """The scripted error lands inside a grouped eviction batch; the
    reissue, ledger, and end state must match the scalar path exactly."""
    runs = {g: _writeback_error_run(g) for g in (True, False)}
    for grouped, (machine, system, app) in runs.items():
        # The error was absorbed: reissued once, then the run completed.
        assert app.finished_at_us is not None
        assert app.stats.error_cqes == 1
        assert app.stats.writeback_retries == 1
        assert system._inflight == {}
        assert system._inflight_req == {}
        assert app.outstanding_writebacks == 0
        pool = app.pool
        assert pool.stats.charges - pool.stats.uncharges == pool.used
    # Bit-identical unwind: same stats, same ledger, same final clock.
    g_machine, _, g_app = runs[True]
    s_machine, _, s_app = runs[False]
    assert dataclasses.asdict(g_app.stats) == dataclasses.asdict(s_app.stats)
    assert g_app.finished_at_us == s_app.finished_at_us
    assert g_machine.engine.now == s_machine.engine.now
    g_nic = dataclasses.asdict(g_machine.nic.stats)
    s_nic = dataclasses.asdict(s_machine.nic.stats)
    # ``doorbells`` counts batched submissions — host-cost accounting
    # that the grouped path is *supposed* to change (and the digest
    # never includes); everything wire-visible must match exactly.
    g_nic.pop("doorbells")
    s_nic.pop("doorbells")
    assert g_nic == s_nic


# -- per-app counter invariants ------------------------------------------


def test_grouped_reclaim_counters_stay_nonnegative_and_drain():
    """Sample the per-app counters live through a faulted grouped co-run:
    never negative mid-flight, exactly zero once the system drains."""
    result = _reclaim_run(
        "canvas",
        True,
        workloads=["memcached", "neo4j"],
        fault_config=scenario_config("errors"),
    )
    system = result.system
    samples = []

    # Re-drive the same shape with an in-engine monitor for live samples.
    machine = Machine(seed=1)
    mon_system, app, vma = build_system(machine, flat_state=True)

    def monitor():
        while app.finished_at_us is None:
            samples.append((app.outstanding_writebacks, app.inflight_prefetches))
            yield machine.engine.sleep(50.0)

    proc = spawn_app(mon_system, app, [sequential_accesses(vma, 4000, write=True)])
    machine.engine.spawn(monitor())
    run_to_completion(machine.engine, [proc])

    assert samples, "monitor never sampled"
    assert all(wb >= 0 and pf >= 0 for wb, pf in samples)
    assert any(wb > 0 for wb, _ in samples), "no writeback ever in flight"
    # Both the monitored machine and the faulted experiment drain to zero.
    assert app.outstanding_writebacks == 0
    assert app.inflight_prefetches == 0
    for ctx in system.apps.values():
        assert ctx.outstanding_writebacks == 0
        assert ctx.inflight_prefetches == 0
