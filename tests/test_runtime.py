"""Unit tests for the JVM and native runtime models."""

from repro.runtime import LARGE_ARRAY_PAGES, JvmRuntime, NativeRuntime


def make_jvm():
    jvm = JvmRuntime("app", group_pages=4)
    jvm.register_threads(app_tids=[0, 1, 2, 3], aux_tids=[4, 5])
    return jvm


def test_thread_map_registration():
    jvm = make_jvm()
    assert 0 in jvm.app_thread_ids
    assert 4 in jvm.aux_thread_ids
    assert jvm.many_threads


def test_gc_thread_faults_ignored():
    jvm = make_jvm()
    assert jvm.handle_forwarded_fault(4, 100) == []
    assert jvm.stats.gc_faults_ignored == 1
    assert jvm.stats.faults_handled == 0


def test_small_array_not_registered():
    jvm = make_jvm()
    jvm.record_large_array(0, LARGE_ARRAY_PAGES - 1)
    assert not jvm.in_large_array(0)


def test_large_array_registered_and_bounds():
    jvm = make_jvm()
    jvm.record_large_array(1000, LARGE_ARRAY_PAGES)
    assert jvm.in_large_array(1000)
    assert jvm.in_large_array(1000 + LARGE_ARRAY_PAGES - 1)
    assert not jvm.in_large_array(1000 + LARGE_ARRAY_PAGES)
    assert not jvm.in_large_array(999)


def test_write_barrier_records_cross_group_edges():
    jvm = make_jvm()
    jvm.record_reference(0, 100)
    assert jvm.stats.barrier_edges_recorded == 1
    jvm.record_reference(0, 1)  # same group (group_pages=4)
    assert jvm.stats.barrier_edges_recorded == 1


def test_policy_uses_thread_pattern_in_large_array():
    jvm = make_jvm()
    jvm.record_large_array(0, LARGE_ARRAY_PAGES * 2)
    # App thread 0 walks a stride inside the array.
    out = []
    for i in range(8):
        out = jvm.handle_forwarded_fault(0, 10 + 2 * i)
    assert jvm.stats.thread_pattern_used > 0
    assert jvm.stats.reference_pattern_used == 0
    assert out and out[0] == 10 + 14 + 2


def test_policy_uses_reference_pattern_outside_arrays():
    jvm = make_jvm()
    # Two-hop chain: the prefetcher skips hop-1 (too close to be timely)
    # and proposes hop-2 onward.
    jvm.record_reference(100, 200)
    jvm.record_reference(200, 300)
    out = jvm.handle_forwarded_fault(0, 101)
    assert jvm.stats.reference_pattern_used == 1
    assert 300 in out
    assert 200 not in out  # hop-1 filtered for timeliness


def test_policy_uses_reference_pattern_with_few_threads():
    jvm = JvmRuntime("app", group_pages=4)
    jvm.register_threads(app_tids=[0], aux_tids=[])
    jvm.record_large_array(0, LARGE_ARRAY_PAGES * 2)
    jvm.handle_forwarded_fault(0, 10)
    assert jvm.stats.reference_pattern_used == 1


def test_native_runtime_thread_pattern_only():
    native = NativeRuntime("app")
    out = []
    for i in range(8):
        out = native.handle_forwarded_fault(0, 100 + 3 * i)
    assert native.stats.thread_pattern_used == 8
    assert out and out[1] - out[0] == 3


def test_native_runtime_ignores_registration_calls():
    native = NativeRuntime("app")
    native.record_large_array(0, 10000)
    native.record_reference(0, 100)
    native.register_threads([0], [])
    assert native.stats.barrier_edges_recorded == 0
