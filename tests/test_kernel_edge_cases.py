"""Edge-case tests for the swap data path."""

import pytest

from repro.harness.driver import run_to_completion, spawn_app
from repro.harness.machine import Machine
from repro.kernel import AppContext, CgroupConfig, LinuxSwapSystem, SwapSystemConfig
from repro.rdma.message import RequestKind


def build(machine, local=128, total=512, cores=4, cache=96, prefetcher=None):
    system = LinuxSwapSystem(
        machine.engine,
        machine.nic,
        partition_pages=4096,
        prefetcher=prefetcher,
        telemetry=machine.telemetry,
        config=SwapSystemConfig(shared_cache_pages=cache),
    )
    app = AppContext(
        machine.engine,
        CgroupConfig(name="a", n_cores=cores, local_memory_pages=local),
    )
    app.space.map_region(total, name="heap")
    system.register_app(app)
    system.prepopulate(app, resident_fraction=local / total * 0.8)
    return system, app


def test_writeback_rescue_remaps_page_under_writeback():
    """A fault landing mid-writeback re-maps the page from the swap
    cache instead of waiting for (or re-fetching after) the write."""
    # Slow write path: the writeback stays in flight for ~41 µs.
    machine = Machine(seed=11, write_bandwidth_bytes_per_us=100.0)
    system, app = build(machine, local=96, total=384)
    victim = next(p for p in app.space.pages.values() if p.resident)
    victim.dirty = True
    app.lru.remove(victim)  # our synthetic eviction, not the LRU's pick

    def evict_then_fault():
        # Evict exactly this page (mirrors _evict_one's writeback body).
        victim.resident = False
        victim.locked = True
        event = machine.engine.event("wb")
        system._inflight[victim] = event
        entry = yield from system._obtain_writeback_entry(app, victim, 0)
        entry.stored_vpn = victim.vpn
        victim.swap_entry = entry
        system.cache.insert(entry, victim)
        from repro.rdma.message import RdmaOp, RdmaRequest

        request = RdmaRequest(
            RdmaOp.WRITE, RequestKind.SWAPOUT, app.name, entry, victim,
            completion=machine.engine.event(),
        )
        system._inflight_req[victim] = request
        request.completion.add_callback(
            lambda _evt, req=request: system._on_writeback_complete(app, req)
        )
        system._submit_write(app, request)
        # Fault it back while the ~41 µs write is still on the wire.
        yield machine.engine.timeout(2.0)
        yield from system.handle_fault(app, 0, victim.vpn, True)

    proc = machine.engine.spawn(evict_then_fault())
    machine.engine.run_until_fired(proc, limit=1_000_000)
    assert app.stats.writeback_rescues == 1
    assert victim.resident
    assert not victim.in_swap_cache
    machine.engine.run(until=machine.engine.now + 1_000)  # write completes
    assert not victim.locked
    assert app.pool.stats.peak_used <= app.pool.capacity_pages


def test_two_threads_faulting_same_page_single_fetch():
    machine = Machine(seed=12)
    system, app = build(machine)
    cold = next(v for v, p in sorted(app.space.pages.items()) if not p.resident)

    def fault_once():
        yield from system.handle_fault(app, 0, cold, False)

    def fault_again():
        yield from system.handle_fault(app, 1, cold, False)

    machine.engine.spawn(fault_once())
    machine.engine.spawn(fault_again())
    machine.engine.run(until=10_000)
    assert app.stats.faults == 2
    assert app.stats.demand_swapins == 1  # second thread piggybacked
    assert app.space.pages[cold].resident


def test_prefetch_filter_skips_resident_and_inflight():
    machine = Machine(seed=13)
    system, app = build(machine)
    vpns = sorted(app.space.pages)
    resident = [v for v in vpns if app.space.pages[v].resident]
    cold = [v for v in vpns if not app.space.pages[v].resident]
    issued = system.issue_prefetch_vpns(app, resident[:4] + cold[:2] + cold[:2])
    # Residents skipped; duplicate cold proposals issued once.
    assert issued == 2
    assert app.stats.prefetches_issued == 2


def test_prefetch_of_unmapped_vpn_ignored():
    machine = Machine(seed=14)
    system, app = build(machine)
    issued = system.issue_prefetch_vpns(app, [10**9, 10**9 + 1])
    assert issued == 0


def test_inflight_prefetch_budget_respects_cache_capacity():
    machine = Machine(seed=15)
    system, app = build(machine, cache=32)
    cold = [v for v, p in sorted(app.space.pages.items()) if not p.resident]
    issued = system.issue_prefetch_vpns(app, cold[:200])
    assert issued <= max(8, 32 // 2)


def test_demand_read_clears_prefetch_timestamp():
    """§5.3: a demand request clears the entry timestamp so later
    faulting threads block instead of re-issuing."""
    machine = Machine(seed=16)
    system, app = build(machine)
    cold = next(v for v, p in sorted(app.space.pages.items()) if not p.resident)
    page = app.space.pages[cold]
    page.swap_entry.timestamp_us = 123.0  # stale marker

    def fault():
        yield from system.handle_fault(app, 0, cold, False)

    machine.engine.spawn(fault())
    machine.engine.run(until=10_000)
    assert page.swap_entry is None or page.swap_entry.timestamp_us is None


def test_oom_waits_for_outstanding_writebacks():
    """When every frame is pinned by in-flight writebacks, faulting
    threads congestion-wait instead of crashing."""
    machine = Machine(seed=17)
    system, app = build(machine, local=64, total=256)
    vpns = sorted(app.space.pages)

    def stream():
        for i in range(1500):
            yield (vpns[(i * 5) % len(vpns)], True, 0.02)

    procs = [spawn_app(system, app, [stream(), stream(), stream()])]
    run_to_completion(machine.engine, procs)  # must not raise
    assert app.finished_at_us is not None


def test_shared_cache_shrink_uncharges_page_owner():
    """In the shared baseline, one app's pressure can release another
    app's cached pages — the §3 swap-cache interference channel."""
    machine = Machine(seed=18)
    system = LinuxSwapSystem(
        machine.engine,
        machine.nic,
        partition_pages=4096,
        telemetry=machine.telemetry,
        config=SwapSystemConfig(shared_cache_pages=64),
    )
    apps = []
    for name in ("a", "b"):
        app = AppContext(
            machine.engine,
            CgroupConfig(name=name, n_cores=2, local_memory_pages=128),
        )
        app.space.map_region(256, name="heap")
        system.register_app(app)
        system.prepopulate(app, 0.3)
        apps.append(app)
    a, b = apps
    # Fill the shared cache with B's prefetched pages.
    cold_b = [v for v, p in sorted(b.space.pages.items()) if not p.resident]
    system.issue_prefetch_vpns(b, cold_b[:20])
    machine.engine.run(until=5_000)
    used_b = b.pool.used
    # A's forced shrink releases B's (clean, LRU) cached pages.
    freed = system._shrink_cache_if_needed(a, force_min=4)
    assert freed > 0
    assert b.pool.used < used_b
