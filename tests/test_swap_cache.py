"""Unit tests for the swap cache."""

import pytest

from repro.mem import Page
from repro.swap import SwapCache, SwapPartition


def make_cache(capacity=8):
    part = SwapPartition("p", 64)
    cache = SwapCache("c", capacity)
    return part, cache


def test_insert_and_lookup_hit():
    part, cache = make_cache()
    entry = part.pop_free()
    page = Page(0x10)
    cache.insert(entry, page)
    assert page.in_swap_cache
    assert cache.lookup(entry) is page
    assert cache.stats.hits == 1
    assert cache.stats.lookups == 1


def test_lookup_miss():
    part, cache = make_cache()
    entry = part.pop_free()
    assert cache.lookup(entry) is None
    assert cache.stats.misses == 1


def test_prefetch_hit_counted():
    part, cache = make_cache()
    entry = part.pop_free()
    cache.insert(entry, Page(1), prefetched=True)
    cache.lookup(entry)
    assert cache.stats.prefetch_hits == 1
    assert cache.stats.prefetch_insertions == 1


def test_demand_hit_not_counted_as_prefetch():
    part, cache = make_cache()
    entry = part.pop_free()
    cache.insert(entry, Page(1), prefetched=False)
    cache.lookup(entry)
    assert cache.stats.prefetch_hits == 0


def test_duplicate_insert_rejected():
    part, cache = make_cache()
    entry = part.pop_free()
    cache.insert(entry, Page(1))
    with pytest.raises(ValueError):
        cache.insert(entry, Page(2))


def test_remove_clears_flag():
    part, cache = make_cache()
    entry = part.pop_free()
    page = Page(1)
    cache.insert(entry, page)
    assert cache.remove(entry) is page
    assert not page.in_swap_cache
    assert len(cache) == 0


def test_discard_missing_is_none():
    part, cache = make_cache()
    entry = part.pop_free()
    assert cache.discard(entry) is None


def test_overflow_and_shrink_candidates():
    part, cache = make_cache(capacity=2)
    entries = [part.pop_free() for _ in range(4)]
    for i, entry in enumerate(entries):
        cache.insert(entry, Page(i))
    assert cache.full
    assert cache.overflow == 2
    candidates = cache.shrink_candidates(2)
    # LRU first: the two oldest insertions.
    assert [page.vpn for _, page in candidates] == [0, 1]


def test_shrink_skips_locked_pages():
    part, cache = make_cache(capacity=1)
    e0, e1 = part.pop_free(), part.pop_free()
    locked = Page(0)
    locked.locked = True
    cache.insert(e0, locked)
    cache.insert(e1, Page(1))
    candidates = cache.shrink_candidates(1)
    assert [page.vpn for _, page in candidates] == [1]


def test_release_counts_unused_prefetch():
    part, cache = make_cache()
    entry = part.pop_free()
    cache.insert(entry, Page(0), prefetched=True)
    cache.release(entry.entry_id)
    assert cache.stats.shrink_evictions == 1
    assert cache.stats.evicted_unused_prefetches == 1


def test_lookup_refreshes_lru_order():
    part, cache = make_cache(capacity=2)
    e0, e1 = part.pop_free(), part.pop_free()
    cache.insert(e0, Page(0))
    cache.insert(e1, Page(1))
    cache.lookup(e0)  # refresh page 0
    candidates = cache.shrink_candidates(1)
    assert [page.vpn for _, page in candidates] == [1]


def test_hit_ratio():
    part, cache = make_cache()
    entry = part.pop_free()
    cache.insert(entry, Page(0))
    cache.lookup(entry)
    missing = part.pop_free()
    cache.lookup(missing)
    assert cache.stats.hit_ratio == pytest.approx(0.5)


def test_invalid_capacity():
    with pytest.raises(ValueError):
        SwapCache("c", 0)
