"""Unit tests for simulated locks, semaphores, stores, and core sets."""

import pytest

from repro.sim import Engine, FIFOStore, Semaphore, SimLock, SimulationError
from repro.sim.resources import CoreSet


def test_lock_uncontended_acquire_is_immediate():
    eng = Engine()
    lock = SimLock(eng, "l")
    log = []

    def proc(eng):
        yield lock.acquire()
        log.append(eng.now)
        lock.release()

    eng.spawn(proc(eng))
    eng.run()
    assert log == [0.0]
    assert lock.stats.acquisitions == 1
    assert lock.stats.contended_acquisitions == 0


def test_lock_serializes_critical_sections():
    eng = Engine()
    lock = SimLock(eng, "l")
    log = []

    def proc(eng, name):
        yield lock.acquire()
        log.append((name, "in", eng.now))
        yield eng.timeout(10.0)
        log.append((name, "out", eng.now))
        lock.release()

    eng.spawn(proc(eng, "a"))
    eng.spawn(proc(eng, "b"))
    eng.run()
    assert log == [
        ("a", "in", 0.0),
        ("a", "out", 10.0),
        ("b", "in", 10.0),
        ("b", "out", 20.0),
    ]
    assert lock.stats.contended_acquisitions == 1
    assert lock.stats.total_wait_us == 10.0
    assert lock.stats.total_hold_us == 20.0


def test_lock_fifo_ordering_of_waiters():
    eng = Engine()
    lock = SimLock(eng, "l")
    order = []

    def proc(eng, name):
        yield lock.acquire()
        order.append(name)
        yield eng.timeout(1.0)
        lock.release()

    for name in ("first", "second", "third"):
        eng.spawn(proc(eng, name))
    eng.run()
    assert order == ["first", "second", "third"]


def test_lock_release_unlocked_is_error():
    eng = Engine()
    lock = SimLock(eng, "l")
    with pytest.raises(SimulationError):
        lock.release()


def test_lock_mean_wait_and_contention_ratio():
    eng = Engine()
    lock = SimLock(eng, "l")

    def proc(eng):
        yield lock.acquire()
        yield eng.timeout(4.0)
        lock.release()

    for _ in range(4):
        eng.spawn(proc(eng))
    eng.run()
    assert lock.stats.acquisitions == 4
    assert lock.stats.contention_ratio == pytest.approx(3 / 4)
    # waits: 4, 8, 12 -> mean over all acquisitions = 24/4
    assert lock.stats.mean_wait_us == pytest.approx(6.0)


def test_semaphore_limits_concurrency():
    eng = Engine()
    sem = Semaphore(eng, 2, "s")
    running = []
    peak = []

    def proc(eng):
        yield sem.acquire()
        running.append(1)
        peak.append(len(running))
        yield eng.timeout(5.0)
        running.pop()
        sem.release()

    for _ in range(5):
        eng.spawn(proc(eng))
    eng.run()
    assert max(peak) == 2


def test_semaphore_invalid_capacity():
    with pytest.raises(SimulationError):
        Semaphore(Engine(), 0)


def test_fifo_store_put_then_get():
    eng = Engine()
    store = FIFOStore(eng)
    store.put("x")
    got = []

    def proc(eng):
        value = yield store.get()
        got.append(value)

    eng.spawn(proc(eng))
    eng.run()
    assert got == ["x"]


def test_fifo_store_get_blocks_until_put():
    eng = Engine()
    store = FIFOStore(eng)
    got = []

    def getter(eng):
        value = yield store.get()
        got.append((eng.now, value))

    def putter(eng):
        yield eng.timeout(9.0)
        store.put("late")

    eng.spawn(getter(eng))
    eng.spawn(putter(eng))
    eng.run()
    assert got == [(9.0, "late")]


def test_fifo_store_preserves_order():
    eng = Engine()
    store = FIFOStore(eng)
    for i in range(5):
        store.put(i)
    assert [store.try_get() for _ in range(5)] == [0, 1, 2, 3, 4]
    assert store.try_get() is None


def test_fifo_store_len_and_peek():
    eng = Engine()
    store = FIFOStore(eng)
    store.put("a")
    store.put("b")
    assert len(store) == 2
    assert store.peek_all() == ["a", "b"]
    assert len(store) == 2  # peek does not consume


def test_coreset_parallel_when_enough_cores():
    eng = Engine()
    cores = CoreSet(eng, 4)
    done = []

    def thread(eng):
        yield from cores.execute(10.0)
        done.append(eng.now)

    for _ in range(4):
        eng.spawn(thread(eng))
    eng.run()
    assert done == [10.0] * 4


def test_coreset_queues_excess_threads():
    eng = Engine()
    cores = CoreSet(eng, 1)
    done = []

    def thread(eng):
        yield from cores.execute(10.0)
        done.append(eng.now)

    for _ in range(3):
        eng.spawn(thread(eng))
    eng.run()
    assert done == [10.0, 20.0, 30.0]
    assert cores.stats.total_runqueue_wait_us == pytest.approx(10.0 + 20.0)


def test_coreset_utilization():
    eng = Engine()
    cores = CoreSet(eng, 2)

    def thread(eng):
        yield from cores.execute(10.0)

    eng.spawn(thread(eng))
    eng.run()
    assert cores.utilization(10.0) == pytest.approx(0.5)
