"""The batched stream protocol: equivalence with the scalar protocol.

The contract (see ``repro.workloads.batch``): for every workload,
flattening ``thread_batch_streams`` must reproduce ``thread_streams``
exactly — same VPNs, same write flags, same per-access CPU, same RNG
draw order — because the simulated results must be bit-identical
whichever protocol drives the threads.
"""

import numpy as np
import pytest

from repro.kernel import AppContext, CgroupConfig
from repro.sim import Engine
from repro.workloads import WORKLOADS, make_workload
from repro.workloads.base import Workload
from repro.workloads.batch import (
    AccessBatch,
    chunk_stream,
    emit_batches,
    flatten_batches,
)


def build_app(workload):
    app = AppContext(
        Engine(),
        CgroupConfig(name=workload.name, n_cores=4, local_memory_pages=4096),
    )
    workload.build(app, np.random.default_rng(0))
    return app


# -- AccessBatch ---------------------------------------------------------


def test_emit_batches_slices_and_broadcasts():
    batches = list(emit_batches(np.arange(10), False, 1.5, batch_size=4))
    assert [len(b) for b in batches] == [4, 4, 2]
    assert batches[0].vpn_list == [0, 1, 2, 3]
    assert batches[2].vpn_list == [8, 9]
    assert batches[0].write_list == [False] * 4
    assert batches[0].cpu_list == [1.5] * 4


def test_constant_cpu_detected_and_cached():
    (batch,) = emit_batches(np.arange(4), False, 2.0, batch_size=8)
    assert batch.constant_cpu == 2.0
    varying = AccessBatch.from_lists([1, 2], [False, True], [1.0, 2.0])
    assert varying.constant_cpu is None
    uniform = AccessBatch.from_lists([1, 2], [False, True], [3.0, 3.0])
    assert uniform.constant_cpu == 3.0


def test_write_positions():
    writes = np.array([False, True, False, True, True])
    (batch,) = emit_batches(np.arange(5), writes, 1.0, batch_size=8)
    assert batch.write_positions == [1, 3, 4]
    from_lists = AccessBatch.from_lists(
        [0, 1, 2], [True, False, True], [1.0, 1.0, 1.0]
    )
    assert from_lists.write_positions == [0, 2]


def test_chunk_stream_round_trip():
    accesses = [(vpn, vpn % 3 == 0, 0.5 * vpn) for vpn in range(10)]
    batches = list(chunk_stream(iter(accesses), batch_size=4))
    assert [len(b) for b in batches] == [4, 4, 2]
    assert list(flatten_batches(batches)) == [
        (vpn, write, cpu) for vpn, write, cpu in accesses
    ]


# -- the dual-default Workload API ---------------------------------------


def test_workload_base_requires_one_override():
    class Neither(Workload):
        name = "neither"
        working_set_pages = 8
        n_threads = 1

        def build(self, app, rng):  # pragma: no cover - not reached
            pass

    workload = Neither.__new__(Neither)
    with pytest.raises(NotImplementedError):
        workload.thread_streams(None, None)
    with pytest.raises(NotImplementedError):
        workload.thread_batch_streams(None, None)


def test_scalar_only_workload_gets_chunked_batches():
    class ScalarOnly(Workload):
        name = "scalar-only"
        working_set_pages = 8
        n_threads = 1

        def build(self, app, rng):  # pragma: no cover - unused
            pass

        def thread_streams(self, app, rng):
            return [iter([(1, False, 1.0), (2, True, 2.0)])]

    (batches,) = ScalarOnly.__new__(ScalarOnly).thread_batch_streams(None, None)
    accesses = [a for batch in batches for a in batch.accesses()]
    assert accesses == [(1, False, 1.0), (2, True, 2.0)]


# -- per-workload equivalence --------------------------------------------


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_batched_streams_match_scalar_streams(name):
    workload = make_workload(name, scale=0.1)
    app = build_app(workload)
    scalar_streams = workload.thread_streams(app, np.random.default_rng(1))
    batch_streams = workload.thread_batch_streams(app, np.random.default_rng(1))
    assert len(scalar_streams) == len(batch_streams) == workload.total_threads
    for tid, (scalar, batches) in enumerate(zip(scalar_streams, batch_streams)):
        flattened = flatten_batches(batches)
        for k, (expected, got) in enumerate(zip(scalar, flattened)):
            assert tuple(got) == tuple(expected), (
                f"{name} thread {tid} access {k}: {got} != {expected}"
            )
        assert next(iter(scalar), None) is None, f"{name}: batched stream short"
        assert next(iter(flattened), None) is None, f"{name}: batched stream long"
