"""The example scripts must keep running as the library evolves."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name, monkeypatch, capsys, extra_patch=None):
    """Execute an example as __main__ and return its stdout."""
    path = EXAMPLES / name
    assert path.exists(), f"missing example {name}"
    if extra_patch:
        extra_patch()
    runpy.run_path(str(path), run_name="__main__")
    return capsys.readouterr().out


def test_quickstart(monkeypatch, capsys):
    out = run_example("quickstart.py", monkeypatch, capsys)
    assert "completed in" in out
    assert "page faults" in out
    assert "lock-free swap-outs" in out


def test_custom_workload(monkeypatch, capsys):
    out = run_example("custom_workload.py", monkeypatch, capsys)
    assert "prefetch contribution" in out
    assert "uffd forwards" in out


@pytest.mark.slow
def test_corun_interference(monkeypatch, capsys):
    out = run_example("corun_interference.py", monkeypatch, capsys)
    assert "Canvas speedup over Linux co-run" in out


@pytest.mark.slow
def test_prefetcher_comparison(monkeypatch, capsys):
    out = run_example("prefetcher_comparison.py", monkeypatch, capsys)
    assert "two-tier" in out


@pytest.mark.slow
def test_trace_replay(monkeypatch, capsys):
    out = run_example("trace_replay.py", monkeypatch, capsys)
    assert "recorded" in out
    assert "speedup on the identical fault sequence" in out
