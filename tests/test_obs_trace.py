"""Tests for the simulation-time tracing subsystem (repro.obs).

Four layers:

* **Ring-buffer unit tests** — capacity, wrap-around ordering, the
  ``truncated`` flag, and pickling.
* **Export tests** — the Chrome ``trace_event`` JSON is well-formed
  (balanced B/E slices, metadata present) and the per-cgroup summary
  agrees with the kernel's own swap statistics.
* **Invariant-checker tests** — real traces from every named fault
  scenario pass every lint; deliberately corrupted traces fail the
  matching lint.
* **Zero-overhead guard** — tracing on vs. off produces bit-identical
  result digests on every system (tracepoints never touch the engine
  schedule or RNG).
"""

import json
import pickle
from dataclasses import replace

import pytest

from repro.faults import SCENARIOS, scenario_config
from repro.harness.experiment import ExperimentConfig, run_experiment
from repro.harness.results import result_digest
from repro.obs import (
    KIND_NAMES,
    RULES,
    TraceBuffer,
    assert_trace_ok,
    check_trace,
    dump_chrome_trace,
    summarize_trace,
    to_chrome_trace,
)
from repro.obs.trace import (
    ENTRY_FREE,
    FAULT_BEGIN,
    FAULT_PARK,
    QP_COMPLETE,
    QP_SERVE,
    REQ_ACQUIRE,
)


class FakeEngine:
    def __init__(self):
        self.now = 0.0


# -- ring buffer ---------------------------------------------------------------


def test_trace_buffer_records_in_order():
    engine = FakeEngine()
    buf = TraceBuffer(engine, capacity=10)
    for i in range(5):
        engine.now = float(i)
        buf.emit(FAULT_BEGIN, "app", 0, i)
    records = buf.records()
    assert len(records) == 5
    assert [r[0] for r in records] == [0.0, 1.0, 2.0, 3.0, 4.0]
    assert not buf.truncated
    assert buf.emitted == 5


def test_trace_buffer_ring_wraps_dropping_oldest():
    engine = FakeEngine()
    buf = TraceBuffer(engine, capacity=4)
    for i in range(10):
        engine.now = float(i)
        buf.emit(FAULT_BEGIN, "app", 0, i)
    assert buf.truncated
    assert buf.emitted == 10
    assert len(buf) == 4
    # The four newest records, still in chronological order.
    assert [r[4] for r in buf.records()] == [6, 7, 8, 9]


def test_trace_buffer_rejects_bad_capacity():
    with pytest.raises(ValueError):
        TraceBuffer(FakeEngine(), capacity=0)


def test_trace_buffer_pickle_round_trip():
    engine = FakeEngine()
    buf = TraceBuffer(engine, capacity=3)
    for i in range(5):
        engine.now = float(i)
        buf.emit(FAULT_BEGIN, "app", 1, i, arg="x")
    clone = pickle.loads(pickle.dumps(buf))
    assert clone.engine is None
    assert clone.records() == buf.records()
    assert clone.truncated and clone.emitted == 5


# -- traced experiment + exports -----------------------------------------------


@pytest.fixture(scope="module")
def traced_run():
    config = ExperimentConfig(system="canvas", scale=0.1, seed=7, trace=True)
    return run_experiment(["memcached"], config)


def test_traced_run_records_every_fault(traced_run):
    summary = summarize_trace(traced_run.trace.records())
    app_stats = traced_run.apps["memcached"].stats
    assert summary["memcached"]["faults"] == app_stats.faults
    assert summary["memcached"]["fault_stall_us"] == pytest.approx(
        app_stats.fault_stall_us
    )
    assert summary["memcached"]["prefetch_hits"] == app_stats.prefetch_cache_hits
    assert summary["memcached"]["writebacks"] == app_stats.swapouts
    assert summary["memcached"]["clean_drops"] == app_stats.clean_drops


def test_chrome_export_shape(traced_run, tmp_path):
    doc = to_chrome_trace(traced_run.trace.records())
    events = doc["traceEvents"]
    assert isinstance(events, list) and events
    # Process-name metadata for the app.
    metas = [e for e in events if e["ph"] == "M"]
    assert any(e["args"]["name"] == "memcached" for e in metas)
    # Fault slices balance per (pid, tid).
    depth = {}
    for event in events:
        if event["ph"] == "B":
            depth[(event["pid"], event["tid"])] = (
                depth.get((event["pid"], event["tid"]), 0) + 1
            )
        elif event["ph"] == "E":
            key = (event["pid"], event["tid"])
            depth[key] = depth.get(key, 0) - 1
            assert depth[key] >= 0
    assert all(v == 0 for v in depth.values())
    # RDMA complete slices carry positive durations.
    slices = [e for e in events if e["ph"] == "X"]
    assert slices and all(e["dur"] > 0 for e in slices)
    # The dump is plain JSON and loads back.
    path = tmp_path / "trace.json"
    dump_chrome_trace(str(path), traced_run.trace.records())
    loaded = json.loads(path.read_text())
    assert len(loaded["traceEvents"]) == len(events)


def test_traced_result_survives_pickle(traced_run):
    clone = pickle.loads(pickle.dumps(traced_run))
    assert clone.trace is not None
    assert clone.trace.records() == traced_run.trace.records()
    assert result_digest(clone) == result_digest(traced_run)


def test_every_kind_has_a_name():
    from repro.obs import trace as trace_mod

    kinds = [
        getattr(trace_mod, name)
        for name in dir(trace_mod)
        if name.isupper()
        and not name.startswith("_")
        and isinstance(getattr(trace_mod, name), int)
        # Lane constants (RECLAIM_LANE sentinel and the KSWAPD_LANE tid
        # it renders on) are thread lanes, not record kinds.
        and not name.endswith("_LANE")
    ]
    for kind in kinds:
        assert kind in KIND_NAMES


# -- invariant checker on real traces ------------------------------------------


def test_clean_trace_has_no_violations(traced_run):
    assert_trace_ok(traced_run.trace.records(), truncated=traced_run.trace.truncated)


@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
def test_checker_passes_every_fault_scenario(scenario):
    config = ExperimentConfig(
        system="canvas",
        scale=0.06,
        seed=11,
        trace=True,
        fault_config=scenario_config(scenario),
    )
    result = run_experiment(["memcached"], config)
    assert_trace_ok(result.trace.records(), truncated=result.trace.truncated)


@pytest.mark.parametrize("system", ["linux", "fastswap"])
def test_checker_passes_baselines_under_chaos(system):
    config = ExperimentConfig(
        system=system,
        scale=0.06,
        seed=11,
        trace=True,
        fault_config=scenario_config("chaos"),
    )
    result = run_experiment(["memcached"], config)
    assert_trace_ok(result.trace.records(), truncated=result.trace.truncated)


def test_checker_tolerates_truncated_ring():
    config = ExperimentConfig(
        system="canvas", scale=0.08, seed=3, trace=True, trace_capacity=512
    )
    result = run_experiment(["memcached"], config)
    assert result.trace.truncated
    assert len(result.trace.records()) == 512
    assert_trace_ok(result.trace.records(), truncated=True)


# -- invariant checker on corrupted traces -------------------------------------


def _rules_of(violations):
    return {v.rule for v in violations}


def test_checker_flags_completion_without_service(traced_run):
    records = list(traced_run.trace.records())
    # Remove the first service record: its completion is now causeless.
    index = next(i for i, r in enumerate(records) if r[1] == QP_SERVE)
    del records[index]
    violations = check_trace(records)
    assert "completion-before-issue" in _rules_of(violations)
    # ... but a truncated trace forgives the missing predecessor, unless
    # the order itself is wrong.
    req = traced_run.trace.records()[index][4]
    later = [r for r in records if not (r[1] == QP_COMPLETE and r[4] == req)]
    assert "completion-before-issue" not in _rules_of(
        check_trace(later, truncated=True)
    )


def test_checker_flags_entry_double_free(traced_run):
    # Canvas's reservation FSM reuses entries without allocator frees, so
    # corrupt the trace with an explicit free-after-free instead.
    records = list(traced_run.trace.records())
    t = records[-1][0]
    records.append((t + 1.0, ENTRY_FREE, "", 0, 0xDEAD, "part"))
    records.append((t + 2.0, ENTRY_FREE, "", 0, 0xDEAD, "part"))
    violations = check_trace(records)
    assert "entry-double-free" in _rules_of(violations)
    # A single free for an entry first seen mid-life is legitimate.
    assert not check_trace(records[:-1])


def test_checker_flags_unwoken_parked_thread(traced_run):
    records = list(traced_run.trace.records())
    records.append((records[-1][0] + 1.0, FAULT_PARK, "memcached", 99, 0x42, 0))
    violations = check_trace(records)
    assert "park-without-wake" in _rules_of(violations)
    # End-of-trace violations fire even on truncated traces.
    assert "park-without-wake" in _rules_of(check_trace(records, truncated=True))


def test_checker_flags_pooled_request_live_twice(traced_run):
    records = list(traced_run.trace.records())
    index = next(i for i, r in enumerate(records) if r[1] == REQ_ACQUIRE)
    records.insert(index + 1, records[index])
    violations = check_trace(records)
    assert "pool-live-twice" in _rules_of(violations)


def test_checker_flags_nested_fault(traced_run):
    records = list(traced_run.trace.records())
    records.append((records[-1][0] + 1.0, FAULT_BEGIN, "memcached", 0, 0x42, 0))
    records.append((records[-1][0] + 1.0, FAULT_BEGIN, "memcached", 0, 0x43, 0))
    violations = check_trace(records)
    assert "fault-nesting" in _rules_of(violations)


def test_assert_trace_ok_raises_with_rule_names(traced_run):
    records = list(traced_run.trace.records())
    t = records[-1][0]
    records.append((t + 1.0, ENTRY_FREE, "", 0, 0xDEAD, "part"))
    records.append((t + 2.0, ENTRY_FREE, "", 0, 0xDEAD, "part"))
    with pytest.raises(AssertionError, match="entry-double-free"):
        assert_trace_ok(records)


def test_rule_catalogue_is_complete(traced_run):
    assert set(RULES) == {
        "completion-before-issue",
        "entry-double-free",
        "entry-double-alloc",
        "retransmit-without-fault",
        "pool-live-twice",
        "park-without-wake",
        "fault-nesting",
        "batch-pairing",
        "group-pairing",
        "reclaim-group-pairing",
        "app-lifecycle",
    }


# -- zero-overhead-when-off guard ----------------------------------------------


@pytest.mark.parametrize("system", ["canvas", "linux", "fastswap"])
def test_tracing_is_invisible_to_results(system):
    base = ExperimentConfig(system=system, scale=0.08, seed=5)
    plain = run_experiment(["memcached"], base)
    traced = run_experiment(["memcached"], replace(base, trace=True))
    assert plain.trace is None
    assert traced.trace is not None and len(traced.trace.records()) > 0
    assert result_digest(plain) == result_digest(traced)


def test_tracing_off_attaches_no_buffer():
    result = run_experiment(
        ["memcached"], ExperimentConfig(system="canvas", scale=0.05, seed=1)
    )
    assert result.trace is None
    assert result.system.trace is None
    assert result.machine.nic.tracer is None


# -- batch fast-path tracepoints ----------------------------------------------


def test_batch_tracepoints_pair_and_count(traced_run):
    """Every vectorized consume run leaves one enter + one exit, exits
    carry legal outcomes, and the summary counts the runs."""
    from repro.obs.trace import BATCH_ENTER, BATCH_EXIT

    records = traced_run.trace.records()
    enters = [r for r in records if r[1] == BATCH_ENTER]
    exits = [r for r in records if r[1] == BATCH_EXIT]
    assert enters and len(enters) == len(exits)
    assert all(r[5] in (0, 1, 2) for r in exits)
    # Runs never overrun the batch they entered.
    for enter, leave in zip(enters, exits):
        assert leave[4] <= enter[5] - enter[4]
    summary = summarize_trace(records)
    assert summary["memcached"]["batch_runs"] == len(exits)


def test_checker_flags_unpaired_batch_records(traced_run):
    from repro.obs.trace import BATCH_ENTER, BATCH_EXIT

    records = list(traced_run.trace.records())
    t = records[-1][0]
    # Exit without enter.
    bad = records + [(t + 1.0, BATCH_EXIT, "memcached", 0, 3, 0)]
    assert any(v.rule == "batch-pairing" for v in check_trace(bad))
    # Nested enter, then a run longer than the entered tail.
    bad = records + [
        (t + 1.0, BATCH_ENTER, "memcached", 0, 0, 8),
        (t + 2.0, BATCH_ENTER, "memcached", 0, 4, 8),
        (t + 3.0, BATCH_EXIT, "memcached", 0, 99, 1),
    ]
    rules = [v.rule for v in check_trace(bad)]
    assert rules.count("batch-pairing") >= 2
    # Unknown outcome.
    bad = records + [
        (t + 1.0, BATCH_ENTER, "memcached", 0, 0, 8),
        (t + 2.0, BATCH_EXIT, "memcached", 0, 8, 7),
    ]
    assert any(v.rule == "batch-pairing" for v in check_trace(bad))


def test_group_tracepoints_pair_and_count(traced_run):
    """Every coalesced fault group leaves one begin + one end, member
    counts match the fault ends inside, and the summary counts groups."""
    from repro.obs.trace import FAULT_GROUP_BEGIN, FAULT_GROUP_END

    records = traced_run.trace.records()
    begins = [r for r in records if r[1] == FAULT_GROUP_BEGIN]
    ends = [r for r in records if r[1] == FAULT_GROUP_END]
    assert begins and len(begins) == len(ends)
    # Begin/end alternate per (app, thread) — groups from different
    # threads interleave — and every group resolves at least its first
    # member.  The planned length is a residency snapshot at admission;
    # membership is dynamic (pages evicted mid-group join it), so the
    # actual count may land on either side of the plan.
    open_by_thread = {}
    for r in records:
        if r[1] == FAULT_GROUP_BEGIN:
            assert (r[2], r[3]) not in open_by_thread
            assert r[5] >= 1
            open_by_thread[(r[2], r[3])] = r
        elif r[1] == FAULT_GROUP_END:
            open_by_thread.pop((r[2], r[3]))
            assert r[5] >= 1
    assert not open_by_thread
    summary = summarize_trace(records)
    assert summary["memcached"]["fault_groups"] == len(ends)


def test_checker_flags_unpaired_group_records(traced_run):
    from repro.obs.trace import FAULT_BEGIN, FAULT_END, FAULT_GROUP_BEGIN, FAULT_GROUP_END

    records = list(traced_run.trace.records())
    t = records[-1][0]
    # End without begin (member completion outside an open group).
    bad = records + [(t + 1.0, FAULT_GROUP_END, "memcached", 0, 0x42, 1)]
    assert any(v.rule == "group-pairing" for v in check_trace(bad))
    # ... forgiven on a truncated trace (the begin may have been dropped).
    assert not any(
        v.rule == "group-pairing" for v in check_trace(bad, truncated=True)
    )
    # Nested group begin.
    bad = records + [
        (t + 1.0, FAULT_GROUP_BEGIN, "memcached", 7, 0x42, 4),
        (t + 2.0, FAULT_GROUP_BEGIN, "memcached", 7, 0x50, 4),
    ]
    assert any(v.rule == "group-pairing" for v in check_trace(bad))
    # Double-unwind: a member's fault end recorded twice inside the group
    # makes the end record's member count disagree with the trace.
    bad = records + [
        (t + 1.0, FAULT_GROUP_BEGIN, "memcached", 7, 0x42, 2),
        (t + 2.0, FAULT_BEGIN, "memcached", 7, 0x42, 0),
        (t + 3.0, FAULT_END, "memcached", 7, 0x42, 0),
        (t + 4.0, FAULT_END, "memcached", 7, 0x42, 0),
        (t + 5.0, FAULT_GROUP_END, "memcached", 7, 0x42, 1),
    ]
    assert any(v.rule == "group-pairing" for v in check_trace(bad))
    # A group left open at end of trace fires even when truncated.
    bad = records + [(t + 1.0, FAULT_GROUP_BEGIN, "memcached", 7, 0x42, 4)]
    assert any(v.rule == "group-pairing" for v in check_trace(bad, truncated=True))


def test_lru_epoch_rollover_traced():
    """Epoch renormalization emits LRU_EPOCH and the checker stays green."""
    from repro.mem import AddressSpace, GenerationLRU
    from repro.obs.trace import LRU_EPOCH

    engine = FakeEngine()
    buf = TraceBuffer(engine, capacity=256)
    space = AddressSpace("epoch")
    vma = space.map_region(8)
    lru = GenerationLRU(space, name="epoch", epoch_limit=5)
    lru.tracer = buf
    for vpn in vma.vpns():
        lru.insert(space.pages[vpn])
    assert lru.epochs >= 1
    epochs = [r for r in buf.records() if r[1] == LRU_EPOCH]
    assert len(epochs) == lru.epochs
    # key = pages renormalized, arg = the stamp counter that was compacted.
    assert all(0 < r[4] <= 8 and r[5] >= r[4] for r in epochs)
    assert summarize_trace(buf.records())["epoch"]["lru_epochs"] == lru.epochs
    assert check_trace(buf.records()) == []
    # Order survived the rollovers.
    assert [p.vpn for p in lru.inactive] == list(vma.vpns())


def test_untraced_flat_lru_has_no_tracer_attached():
    """Zero-overhead-off: without trace=True nothing is ever emitted on
    the batch fast path or the epoch edge (tracer stays None)."""
    result = run_experiment(
        ["memcached"], ExperimentConfig(system="canvas", scale=0.05, seed=3)
    )
    assert result.trace is None
    for app in result.apps.values():
        assert app.lru.tracer is None


# -- grouped-reclaim tracepoints (PR 8) ----------------------------------------


def test_grouped_reclaim_tracepoints_pair_and_count(traced_run):
    """kswapd's grouped rounds leave paired begin/end records on the
    sentinel reclaim lane, the summary counts them, and the pairing
    lint is clean on a real trace."""
    from repro.obs.trace import (
        RECLAIM_GROUP_BEGIN,
        RECLAIM_GROUP_END,
        RECLAIM_LANE,
    )

    records = traced_run.trace.records()
    begins = [r for r in records if r[1] == RECLAIM_GROUP_BEGIN]
    ends = [r for r in records if r[1] == RECLAIM_GROUP_END]
    assert begins, "traced run produced no grouped reclaim"
    assert len(begins) == len(ends)
    assert all(r[3] == RECLAIM_LANE for r in begins + ends)
    # Each group evicted no more than it planned.
    assert all(e[5] <= b[5] for b, e in zip(begins, ends))
    summary = summarize_trace(records)
    assert summary["memcached"]["reclaim_groups"] == len(
        [r for r in begins if r[2] == "memcached"]
    )
    assert "reclaim-group-pairing" not in _rules_of(
        check_trace(records, truncated=traced_run.trace.truncated)
    )


def test_checker_flags_unended_reclaim_group(traced_run):
    from repro.obs.trace import RECLAIM_GROUP_BEGIN, RECLAIM_LANE

    records = list(traced_run.trace.records())
    records.append(
        (records[-1][0] + 1.0, RECLAIM_GROUP_BEGIN, "memcached", RECLAIM_LANE, 0, 4)
    )
    violations = check_trace(records)
    assert "reclaim-group-pairing" in _rules_of(violations)
    # End-of-trace violations fire even on truncated traces.
    assert "reclaim-group-pairing" in _rules_of(check_trace(records, truncated=True))


def test_checker_flags_reclaim_group_eviction_miscount(traced_run):
    from repro.obs.trace import (
        EVICT,
        RECLAIM_GROUP_BEGIN,
        RECLAIM_GROUP_END,
        RECLAIM_LANE,
    )

    records = list(traced_run.trace.records())
    t = records[-1][0]
    # A group claiming 2 evictions while only 1 EVICT landed inside it.
    records.append((t + 1.0, RECLAIM_GROUP_BEGIN, "memcached", RECLAIM_LANE, 0, 4))
    records.append((t + 2.0, EVICT, "memcached", RECLAIM_LANE, 0x42, 0))
    records.append((t + 3.0, RECLAIM_GROUP_END, "memcached", RECLAIM_LANE, 0, 2))
    violations = check_trace(records)
    assert "reclaim-group-pairing" in _rules_of(violations)
    # Direct-reclaim EVICTs on a real thread lane don't pollute the count.
    fixed = records[:-1]
    fixed.append((t + 2.5, EVICT, "memcached", 0, 0x43, 0))
    fixed.append((t + 3.0, RECLAIM_GROUP_END, "memcached", RECLAIM_LANE, 0, 1))
    assert "reclaim-group-pairing" not in _rules_of(check_trace(fixed))


# -- sentinel-lane rendering and summaries (PR 10) ------------------------------


def test_chrome_trace_never_emits_negative_tids(traced_run):
    """RECLAIM_LANE records must render on the named kswapd lane, not as
    a bogus tid=-1 pseudo-thread."""
    from repro.obs.trace import KSWAPD_LANE, RECLAIM_LANE

    records = traced_run.trace.records()
    assert any(r[3] == RECLAIM_LANE for r in records), "no sentinel-lane records"
    doc = to_chrome_trace(records)
    assert all(e["tid"] >= 0 for e in doc["traceEvents"])
    metas = [
        e
        for e in doc["traceEvents"]
        if e["ph"] == "M" and e["name"] == "thread_name"
    ]
    assert any(
        e["tid"] == KSWAPD_LANE and "kswapd" in e["args"]["name"] for e in metas
    )


def test_summary_breaks_out_kswapd_share(traced_run):
    """Sentinel-lane reclaim records land in both the whole-app totals and
    the kswapd_* breakout, and the breakout matches a manual count."""
    from repro.obs.trace import CLEAN_DROP, EVICT, RECLAIM_LANE, WB_ISSUE

    records = traced_run.trace.records()
    summary = summarize_trace(records)["memcached"]
    for kind, key, total_key in (
        (EVICT, "kswapd_evictions", "evictions"),
        (CLEAN_DROP, "kswapd_clean_drops", "clean_drops"),
        (WB_ISSUE, "kswapd_writebacks", "writebacks"),
    ):
        manual = len(
            [
                r
                for r in records
                if r[1] == kind and r[2] == "memcached" and r[3] == RECLAIM_LANE
            ]
        )
        assert summary[key] == manual
        assert summary[key] <= summary[total_key]
    assert summary["kswapd_evictions"] > 0, "grouped reclaim never evicted"


# -- app-lifecycle lint (PR 10) -------------------------------------------------


def test_checker_flags_activity_after_unregister(traced_run):
    from repro.obs.trace import APP_UNREGISTER, FAULT_END

    records = list(traced_run.trace.records())
    t = records[-1][0]
    records.append((t + 1.0, APP_UNREGISTER, "memcached", 0, 64, 12))
    records.append((t + 2.0, FAULT_BEGIN, "memcached", 0, 0x42, 0))
    records.append((t + 3.0, FAULT_END, "memcached", 0, 0x42, 0))
    violations = check_trace(records)
    assert "app-lifecycle" in _rules_of(violations)
    # The violation names the ghost record's kind.
    assert any("fault_begin" in v.message for v in violations)


def test_checker_flags_unregister_with_parked_thread(traced_run):
    from repro.obs.trace import APP_UNREGISTER

    records = list(traced_run.trace.records())
    t = records[-1][0]
    records.append((t + 1.0, FAULT_PARK, "memcached", 3, 0x42, 0))
    records.append((t + 2.0, APP_UNREGISTER, "memcached", 0, 64, 12))
    violations = check_trace(records)
    assert any(
        v.rule == "app-lifecycle" and "parked" in v.message for v in violations
    )


def test_reregistration_clears_lifecycle_state(traced_run):
    from repro.obs.trace import APP_REGISTER, APP_UNREGISTER, FAULT_END

    records = list(traced_run.trace.records())
    t = records[-1][0]
    records.append((t + 1.0, APP_UNREGISTER, "memcached", 0, 64, 12))
    records.append((t + 2.0, APP_REGISTER, "memcached", 0, 64, 0))
    records.append((t + 3.0, FAULT_BEGIN, "memcached", 0, 0x42, 0))
    records.append((t + 4.0, FAULT_END, "memcached", 0, 0x42, 0))
    assert "app-lifecycle" not in _rules_of(check_trace(records))


def test_entry_state_is_keyed_per_allocator(traced_run):
    """Canvas private partitions number entries from zero, so the same id
    live in two partitions at once is legal — only a same-allocator
    repeat is a double alloc/free."""
    from repro.obs.trace import ENTRY_ALLOC

    records = list(traced_run.trace.records())
    t = records[-1][0]
    records.append((t + 1.0, ENTRY_ALLOC, "", 0, 7, "a.alloc"))
    records.append((t + 2.0, ENTRY_ALLOC, "", 0, 7, "b.alloc"))
    records.append((t + 3.0, ENTRY_FREE, "", 0, 7, "a.alloc"))
    records.append((t + 4.0, ENTRY_FREE, "", 0, 7, "b.alloc"))
    rules = _rules_of(check_trace(records))
    assert "entry-double-alloc" not in rules
    assert "entry-double-free" not in rules
    # A same-allocator repeat still trips both lints.
    records.append((t + 5.0, ENTRY_FREE, "", 0, 7, "b.alloc"))
    records.append((t + 6.0, ENTRY_ALLOC, "", 0, 7, "a.alloc"))
    records.append((t + 7.0, ENTRY_ALLOC, "", 0, 7, "a.alloc"))
    rules = _rules_of(check_trace(records))
    assert "entry-double-free" in rules
    assert "entry-double-alloc" in rules


def test_checker_flags_reclaim_group_overrun(traced_run):
    from repro.obs.trace import (
        EVICT,
        RECLAIM_GROUP_BEGIN,
        RECLAIM_GROUP_END,
        RECLAIM_LANE,
    )

    records = list(traced_run.trace.records())
    t = records[-1][0]
    records.append((t + 1.0, RECLAIM_GROUP_BEGIN, "memcached", RECLAIM_LANE, 0, 1))
    records.append((t + 2.0, EVICT, "memcached", RECLAIM_LANE, 0x42, 0))
    records.append((t + 3.0, EVICT, "memcached", RECLAIM_LANE, 0x43, 0))
    records.append((t + 4.0, RECLAIM_GROUP_END, "memcached", RECLAIM_LANE, 0, 2))
    violations = check_trace(records)
    assert "reclaim-group-pairing" in _rules_of(violations)
