"""Shared test fixtures/helpers: machine and co-run construction.

The swap-system suites all build the same shapes — a ``Machine``, a
system with one or two small apps, sequential access streams, pooled
requests with a fake owner — so the constructors live here once.  They
are plain helpers (importable via ``from tests.conftest import ...``),
not pytest fixtures: most tests want to parameterize the construction
per call, which fixtures make awkward.
"""

from repro.core import CanvasSwapSystem
from repro.kernel import AppContext, CgroupConfig, LinuxSwapSystem, SwapSystemConfig
from repro.rdma import RdmaOp, RdmaRequest, RequestKind

__all__ = [
    "build_canvas",
    "seq_stream",
    "build_system",
    "sequential_accesses",
    "FakeOwner",
    "pooled_request",
]


def build_canvas(machine, canvas_config=None, apps_spec=None):
    """A Canvas system plus small apps: ``(name, total, local, cores)``."""
    system = CanvasSwapSystem(
        machine.engine,
        machine.nic,
        telemetry=machine.telemetry,
        canvas_config=canvas_config,
    )
    apps = {}
    for name, total_pages, local_pages, n_cores in apps_spec or [
        ("a", 1024, 256, 4)
    ]:
        app = AppContext(
            machine.engine,
            CgroupConfig(
                name=name,
                n_cores=n_cores,
                local_memory_pages=local_pages,
                swap_partition_pages=int((total_pages - local_pages) * 1.3),
                swap_cache_pages=max(64, local_pages // 8),
            ),
        )
        app.space.map_region(total_pages, name="heap")
        system.register_app(app)
        system.prepopulate(app, resident_fraction=local_pages / total_pages * 0.8)
        apps[name] = app
    return system, apps


def seq_stream(app, n, write=False, cpu=0.05):
    """Sequential accesses cycling over an app's whole address space."""
    vpns = sorted(app.space.pages)
    for i in range(n):
        yield (vpns[i % len(vpns)], write, cpu)


def build_system(
    machine,
    local_pages=256,
    total_pages=1024,
    partition_pages=4096,
    prefetcher=None,
    cache_pages=64,
    n_cores=4,
    flat_state=False,
):
    """A Linux-baseline system with one app; returns (system, app, vma)."""
    config = SwapSystemConfig(shared_cache_pages=cache_pages)
    system = LinuxSwapSystem(
        machine.engine,
        machine.nic,
        partition_pages=partition_pages,
        prefetcher=prefetcher,
        telemetry=machine.telemetry,
        config=config,
    )
    app = AppContext(
        machine.engine,
        CgroupConfig(name="app", n_cores=n_cores, local_memory_pages=local_pages),
        flat_state=flat_state,
    )
    vma = app.space.map_region(total_pages, name="heap")
    system.register_app(app)
    system.prepopulate(app, resident_fraction=local_pages / total_pages * 0.8)
    return system, app, vma


def sequential_accesses(vma, n, write=False, cpu_us=0.05):
    """Sequential accesses cycling over one VMA."""
    for i in range(n):
        yield (vma.start_vpn + (i % vma.n_pages), write, cpu_us)


class FakeOwner:
    """Minimal stand-in for a swap system that pools its requests."""

    def __init__(self):
        self._request_pool = []
        self.completed = []

    def _request_completed(self, request):
        self.completed.append((request.request_id, request.op))


def pooled_request(eng, part, owner, kind=RequestKind.DEMAND):
    """A pool-participating request ready for submission to a NIC/VQP."""
    op = RdmaOp.WRITE if kind is RequestKind.SWAPOUT else RdmaOp.READ
    request = RdmaRequest(op, kind, "a", part.pop_free(), completion=eng.event())
    request.owner = owner
    request.completion.add_callback(request)
    return request
