"""Tests for the analysis and export package."""

import csv

import pytest

from repro.analysis import (
    AppSummary,
    export_bandwidth_series,
    export_cdf,
    export_rate_series,
    export_rows,
    export_summaries,
    slowdown_matrix,
    summarize,
)
from repro.harness import ExperimentConfig, run_experiment, run_individual
from repro.metrics import BandwidthMeter, Histogram, RateMeter


@pytest.fixture(scope="module")
def small_result():
    return run_individual("memcached", ExperimentConfig(system="canvas", scale=0.1))


def test_summarize_produces_per_app_records(small_result):
    summaries = summarize(small_result)
    assert set(summaries) == {"memcached"}
    summary = summaries["memcached"]
    assert isinstance(summary, AppSummary)
    assert summary.completion_time_ms > 0
    assert summary.faults > 0
    assert summary.accesses >= summary.faults
    assert 0.0 <= summary.fault_rate <= 1.0
    assert summary.mean_fault_stall_us > 0
    assert summary.read_bandwidth_mbps > 0


def test_summary_as_dict_roundtrip(small_result):
    summary = summarize(small_result)["memcached"]
    record = summary.as_dict()
    assert record["app"] == "memcached"
    assert record["faults"] == summary.faults


def test_slowdown_matrix():
    solo = run_individual("snappy", ExperimentConfig(system="linux", scale=0.1))
    canvas = run_individual("snappy", ExperimentConfig(system="canvas", scale=0.1))
    baseline = {"snappy": solo.completion_time("snappy")}
    matrix = slowdown_matrix({"linux": solo, "canvas": canvas}, baseline)
    assert matrix["linux"]["snappy"] == pytest.approx(1.0)
    assert matrix["canvas"]["snappy"] > 0


def test_slowdown_matrix_skips_missing_baseline(small_result):
    matrix = slowdown_matrix({"run": small_result}, baseline={})
    assert matrix == {"run": {}}


def test_export_rows(tmp_path):
    path = tmp_path / "t.csv"
    n = export_rows(path, ["a", "b"], [[1, 2], [3, 4]])
    assert n == 2
    with path.open() as handle:
        rows = list(csv.reader(handle))
    assert rows == [["a", "b"], ["1", "2"], ["3", "4"]]


def test_export_cdf(tmp_path):
    hist = Histogram()
    hist.extend(float(i) for i in range(100))
    path = tmp_path / "cdf.csv"
    n = export_cdf(path, hist, points=50)
    assert n == 50
    with path.open() as handle:
        rows = list(csv.reader(handle))[1:]
    values = [float(r[1]) for r in rows]
    assert values == sorted(values)  # CDF is monotone
    assert values[-1] >= 0.99  # float-rounded top sample point


def test_export_cdf_empty(tmp_path):
    path = tmp_path / "cdf.csv"
    assert export_cdf(path, Histogram()) == 0


def test_export_cdf_single_value(tmp_path):
    hist = Histogram()
    hist.record(5.0)
    path = tmp_path / "cdf.csv"
    assert export_cdf(path, hist) == 1


def test_export_rate_series(tmp_path):
    meter = RateMeter(bin_us=1000.0)
    meter.record(0.0)
    meter.record(1500.0)
    path = tmp_path / "rate.csv"
    assert export_rate_series(path, meter) == 2


def test_export_bandwidth_series(tmp_path):
    meter = BandwidthMeter(bin_us=1000.0)
    meter.record("a", 0.0, 4096)
    meter.record("b", 100.0, 4096)
    path = tmp_path / "bw.csv"
    assert export_bandwidth_series(path, meter) == 2
    with path.open() as handle:
        rows = list(csv.reader(handle))
    assert rows[0] == ["stream", "time_us", "mbps"]


def test_export_summaries(tmp_path, small_result):
    summaries = summarize(small_result)
    path = tmp_path / "summary.csv"
    assert export_summaries(path, summaries) == 1
    with path.open() as handle:
        rows = list(csv.reader(handle))
    assert "app" in rows[0]
    assert rows[1][0] == "memcached"
