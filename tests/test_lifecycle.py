"""App lifecycle: first-class teardown under traffic-driven churn.

The acceptance bar for ``unregister_app``: a traffic-driven run in which
**every** app departs must end with zero leaked swap entries, zero
residual frame charges, and zero parked waiters — on all six systems,
and in at least one rack + fault-storm scenario — and a traced churn
run must pass every ``repro.obs.check`` lint, including the new
app-lifecycle rule (no event may reference an app after its
unregistration).
"""

import dataclasses

import numpy as np
import pytest

from repro.cluster import ClusterConfig
from repro.core.slo import SloConfig, SloController, SloStats
from repro.faults import scenario_config
from repro.harness.experiment import ExperimentConfig, run_churn
from repro.obs import check_trace
from repro.obs.trace import APP_REGISTER, APP_UNREGISTER, PF_ISSUE, PF_PROPOSE
from repro.workloads.traffic import TrafficConfig

SYSTEMS = ["linux", "linux514", "fastswap", "infiniswap", "canvas-iso", "canvas"]

SMALL_TRAFFIC = TrafficConfig(n_sessions=8, day_us=20_000.0, accesses_mean=1500)


def churn_config(system="canvas", **kwargs):
    kwargs.setdefault("traffic", SMALL_TRAFFIC)
    kwargs.setdefault("seed", 3)
    return ExperimentConfig(system=system, **kwargs)


def assert_leak_free(result):
    """Every session departed; nothing it owned survives anywhere."""
    system = result.system
    assert len(system.apps) == 0
    assert system._inflight == {} and system._inflight_req == {}
    assert system._kswapd_proc == {} and system._kswapd_stop == {}
    for name, app in result.apps.items():
        assert app.finished_at_us is not None, f"{name} never finished"
        assert app.pool.used == 0, f"{name} left {app.pool.used} frames charged"
        assert app.pool.stats.charges == app.pool.stats.uncharges
        assert app.outstanding_writebacks == 0
        assert app.inflight_prefetches == 0
        for page in app.space.pages.values():
            assert not page.resident
            assert page.swap_entry is None
            assert not page.locked


def shared_allocator_reconciles(system):
    """Shared-partition systems: every entry is back in a free pool."""
    allocator = getattr(system, "allocator", None)
    if allocator is None:
        return  # Canvas private partitions die with their apps.
    free = 0
    if hasattr(allocator, "clusters"):
        free += sum(len(c.free) for c in allocator.clusters)
    else:
        free += allocator.partition.free_count
    for cache in getattr(allocator, "_core_cache", {}).values():
        free += len(cache)
    for batch in getattr(allocator, "_core_batch", {}).values():
        free += len(batch)
    assert free == allocator.partition.n_entries


@pytest.mark.parametrize("system", SYSTEMS)
def test_churn_leak_free_and_lint_clean(system):
    result = run_churn(churn_config(system, trace=True))
    assert_leak_free(result)
    shared_allocator_reconciles(result.system)
    records = result.trace.records()
    assert check_trace(records, truncated=result.trace.truncated) == []
    # One register and one unregister per session, in that order per app.
    n = len(result.apps)
    assert len([r for r in records if r[1] == APP_REGISTER]) == n
    assert len([r for r in records if r[1] == APP_UNREGISTER]) == n


def test_rack_fault_storm_churn_leak_free():
    config = churn_config(
        "canvas",
        seed=5,
        trace=True,
        cluster=ClusterConfig(n_servers=3),
        fault_config=dataclasses.replace(
            scenario_config("chaos"), fault_seed=11
        ),
    )
    result = run_churn(config)
    assert_leak_free(result)
    assert result.rack is not None and result.rack.ledger_balanced()
    assert (
        check_trace(result.trace.records(), truncated=result.trace.truncated)
        == []
    )


def test_no_prefetch_records_after_unregister():
    """Satellite regression: a departed app's VPNs are never proposed
    again (end-to-end via the trace; unit-level below)."""
    result = run_churn(churn_config("canvas", trace=True))
    departed_at = {}
    for t, kind, app, _thread, _key, _arg in result.trace.records():
        if kind == APP_UNREGISTER:
            departed_at[app] = t
        elif kind in (PF_PROPOSE, PF_ISSUE):
            assert app not in departed_at, (
                f"prefetch for {app} at t={t} after departure at "
                f"{departed_at.get(app)}"
            )


def test_churn_digest_deterministic():
    a = run_churn(churn_config("canvas"))
    b = run_churn(churn_config("canvas"))
    assert a.digest() == b.digest()
    c = run_churn(churn_config("canvas", seed=4))
    assert a.digest() != c.digest()


def test_zero_session_plan_runs_empty():
    config = churn_config("linux", traffic=TrafficConfig(n_sessions=0))
    result = run_churn(config)
    assert result.apps == {} and len(result.system.apps) == 0


def test_unregister_unknown_app_rejected():
    from repro.harness.machine import Machine
    from tests.conftest import build_system

    machine = Machine(seed=1)
    system, app, vma = build_system(machine)

    class Ghost:
        name = "ghost"

    def proc():
        with pytest.raises(ValueError):
            yield from system.unregister_app(Ghost())
        yield from system.unregister_app(app)
        # Double unregistration: the app is no longer registered.
        with pytest.raises(ValueError):
            yield from system.unregister_app(app)

    machine.engine.spawn(proc())
    machine.engine.run()
    assert system.apps == {}


def test_reregistration_after_teardown():
    """A name can come back: teardown leaves no poisoned state behind."""
    from repro.harness.driver import run_to_completion, spawn_app
    from repro.harness.machine import Machine
    from tests.conftest import build_system, sequential_accesses

    machine = Machine(seed=2)
    system, app, vma = build_system(machine)
    proc = spawn_app(system, app, [sequential_accesses(vma, 2000, write=True)])
    run_to_completion(machine.engine, [proc])

    outcome = {}

    def lifecycle():
        yield from system.unregister_app(app)
        from repro.kernel.cgroup import AppContext, CgroupConfig

        fresh = AppContext(
            machine.engine,
            CgroupConfig(
                name=app.name,
                n_cores=1,
                local_memory_pages=app.pool.capacity_pages,
                swap_cache_pages=32,
            ),
        )
        vma2 = fresh.space.map_region(app.space.total_pages, name="heap")
        system.register_app(fresh)
        system.prepopulate(fresh, 0.2)
        proc2 = spawn_app(
            system, fresh, [sequential_accesses(vma2, 2000, write=True)]
        )
        yield proc2
        outcome["fresh"] = fresh

    machine.engine.spawn(lifecycle())
    machine.engine.run()
    fresh = outcome["fresh"]
    assert fresh.finished_at_us is not None
    assert fresh.stats.accesses == 2000


# -- prefetcher forget_app (satellite a, unit level) ---------------------------


def test_readahead_forget_app_clamps_everything():
    from repro.prefetch.readahead import KernelReadahead

    pf = KernelReadahead()
    pf.note_region("a", 0, 512)
    # A sequential scan earns proposals.
    proposals = []
    for vpn in range(16):
        proposals += pf.on_fault("a", 0, vpn, float(vpn))
    assert proposals
    pf.forget_app("a")
    assert "a" not in pf._regions
    assert not any(k[0] == "a" for k in pf._buckets)
    clamped_before = pf.stats.proposals_clamped
    after = []
    for vpn in range(16, 32):
        after += pf.on_fault("a", 0, vpn, float(vpn))
    assert after == []
    assert pf.stats.proposals_clamped > clamped_before
    # A fresh registration under the same name starts clean.
    pf.note_region("a", 0, 512)
    revived = []
    for vpn in range(64, 96):
        revived += pf.on_fault("a", 0, vpn, float(vpn))
    assert revived


@pytest.mark.parametrize("per_app_history", [False, True])
def test_leap_forget_app_drops_history(per_app_history):
    from repro.prefetch.leap import LeapPrefetcher

    pf = LeapPrefetcher(per_app_history=per_app_history)
    for vpn in range(32):
        pf.on_fault("a", 0, vpn, float(vpn))
        pf.on_fault("b", 0, 1000 + vpn, float(vpn))
    pf.forget_app("a")
    if per_app_history:
        for table in (pf._histories, pf._prev_vpn, pf._window):
            assert "a" not in table
            assert "b" in table
    # Either way the prefetcher keeps working for live apps.
    assert isinstance(pf.on_fault("b", 0, 1040, 99.0), list)


def test_thread_pattern_forget_app_drops_threads():
    from repro.prefetch.thread_pattern import ThreadPatternPrefetcher

    pf = ThreadPatternPrefetcher()
    for vpn in range(16):
        pf.on_fault("a", 0, vpn, float(vpn))
        pf.on_fault("a", 1, 500 + vpn, float(vpn))
        pf.on_fault("b", 0, 1000 + vpn, float(vpn))
    pf.forget_app("a")
    assert not any(k[0] == "a" for k in pf._histories)
    assert any(k[0] == "b" for k in pf._histories)


# -- SLO controller ------------------------------------------------------------


class _StubHist:
    def __init__(self):
        self.values = []

    @property
    def count(self):
        return len(self.values)

    def percentile(self, q):
        if not self.values:
            return 0.0
        return float(np.percentile(self.values, q))


class _StubScheduler:
    def __init__(self):
        self.weights = {}

    def weight_of(self, name):
        return self.weights.get(name, 1.0)

    def set_weight(self, name, weight):
        self.weights[name] = weight


class _StubTelemetry:
    def __init__(self):
        self.hists = {}

    def latency_hist(self, app, kind):
        return self.hists.setdefault(app, _StubHist())


class _StubSystem:
    def __init__(self):
        self.apps = {}
        self.scheduler = _StubScheduler()


class _StubEngine:
    now = 0.0

    def spawn(self, gen, name=""):
        return None

    def sleep(self, us):  # pragma: no cover - loop never driven
        raise NotImplementedError


def _controller():
    system = _StubSystem()
    telemetry = _StubTelemetry()
    controller = SloController.__new__(SloController)
    controller.engine = _StubEngine()
    controller.system = system
    controller.telemetry = telemetry
    controller.config = SloConfig(target_p99_us=100.0, min_samples=4)
    controller.stats = SloStats()
    controller._states = {}
    controller._scheduler = system.scheduler
    controller._proc = None
    return controller, system, telemetry


def test_slo_breach_boosts_then_decays():
    controller, system, telemetry = _controller()
    system.apps["a"] = object()
    hist = telemetry.latency_hist("a", None)
    hist.values += [500.0] * 8  # p99 far above the 100us target
    controller._control_round()
    assert controller.stats.breaches == 1
    boosted = system.scheduler.weights["a"]
    assert boosted > 1.0
    # Compliant samples decay the boost back toward the base weight
    # (enough of them that the reservoir's p99 drops under the target).
    hist.values += [10.0] * 2000
    controller._control_round()
    assert system.scheduler.weights["a"] < boosted
    assert controller.stats.decays_applied >= 1


def test_slo_boost_is_bounded():
    controller, system, telemetry = _controller()
    system.apps["a"] = object()
    hist = telemetry.latency_hist("a", None)
    for _ in range(50):
        hist.values += [500.0] * 8
        controller._control_round()
    assert system.scheduler.weights["a"] <= controller.config.max_boost


def test_slo_insufficient_samples_take_no_action():
    controller, system, telemetry = _controller()
    system.apps["a"] = object()
    hist = telemetry.latency_hist("a", None)
    hist.values += [500.0] * 2  # below min_samples
    controller._control_round()
    assert controller.stats.breaches == 0
    assert "a" not in system.scheduler.weights


def test_slo_departed_apps_are_dropped():
    controller, system, telemetry = _controller()
    system.apps["a"] = object()
    telemetry.latency_hist("a", None).values += [500.0] * 8
    controller._control_round()
    assert "a" in controller._states
    del system.apps["a"]
    controller._control_round()
    assert "a" not in controller._states


def test_slo_end_to_end_under_churn():
    """The controller runs under real churn: rounds tick, per-app p99
    observations appear, and (for Canvas) boosted weights stay bounded."""
    traffic = dataclasses.replace(
        SMALL_TRAFFIC, pressured_every=1, pressured_local_fraction=0.5
    )
    config = churn_config(
        "canvas",
        traffic=traffic,
        slo=SloConfig(target_p99_us=5.0, period_us=500.0, min_samples=4),
    )
    result = run_churn(config)
    assert_leak_free(result)
    assert result.slo_stats is not None
    assert result.slo_stats.rounds > 10
    assert result.slo_stats.breaches > 0
    assert result.slo_stats.last_p99


def test_slo_is_measurement_only_on_baselines():
    config = churn_config(
        "linux", slo=SloConfig(target_p99_us=5.0, period_us=500.0, min_samples=4)
    )
    result = run_churn(config)
    assert_leak_free(result)
    assert result.slo_stats is not None and result.slo_stats.rounds > 0


def test_slo_feedback_changes_the_run():
    """Closing the loop must actually matter: the same churn day with a
    breach-everything target diverges from the uncontrolled run."""
    traffic = dataclasses.replace(
        SMALL_TRAFFIC, pressured_every=1, pressured_local_fraction=0.5
    )
    base = run_churn(churn_config("canvas", traffic=traffic))
    tight = run_churn(
        churn_config(
            "canvas",
            traffic=traffic,
            slo=SloConfig(target_p99_us=1.0, period_us=250.0, min_samples=2),
        )
    )
    assert tight.slo_stats.boosts_applied > 0
    assert base.digest() != tight.digest()
