"""Tests for demand-driven remote-memory provisioning (§4)."""

import pytest

from repro.core import CanvasConfig, CanvasSwapSystem, DemandDrivenRemoteMemory
from repro.core.remote_memory import RemoteMemoryStats
from repro.harness.driver import run_to_completion, spawn_app
from repro.harness.machine import Machine
from repro.kernel import AppContext, CgroupConfig
from repro.sim import Engine
from repro.swap import SwapPartition


def test_partition_grow_extends_free_list():
    part = SwapPartition("p", 16)
    new = part.grow(8)
    assert part.n_entries == 24
    assert part.free_count == 24
    assert len(new) == 8
    ids = {e.entry_id for e in part.entries}
    assert len(ids) == 24  # unique IDs continue past the original range


def test_partition_grow_invalid():
    part = SwapPartition("p", 4)
    with pytest.raises(ValueError):
        part.grow(0)


def test_maybe_grow_registers_when_low():
    engine = Engine()
    part = SwapPartition("p", 128)
    remote = DemandDrivenRemoteMemory(
        engine, part, limit_entries=1024, chunk_entries=256, low_water_entries=64
    )
    for _ in range(100):  # drain below the low-water mark
        part.pop_free()

    def proc():
        yield from remote.maybe_grow()

    engine.spawn(proc())
    engine.run(until=10_000)
    assert remote.stats.growths == 1
    assert part.n_entries == 128 + 256
    assert remote.stats.registration_stall_us > 0


def test_maybe_grow_noop_with_headroom():
    engine = Engine()
    part = SwapPartition("p", 512)
    remote = DemandDrivenRemoteMemory(engine, part, limit_entries=1024)

    def proc():
        yield from remote.maybe_grow()

    engine.spawn(proc())
    engine.run(until=1_000)
    assert remote.stats.growths == 0


def test_growth_respects_cgroup_limit():
    engine = Engine()
    part = SwapPartition("p", 100)
    remote = DemandDrivenRemoteMemory(
        engine, part, limit_entries=150, chunk_entries=256, low_water_entries=64
    )
    for _ in range(90):
        part.pop_free()

    def proc():
        yield from remote.maybe_grow()
        yield from remote.maybe_grow()

    engine.spawn(proc())
    engine.run(until=10_000)
    assert part.n_entries == 150  # clamped to the limit
    assert remote.at_limit


def test_ensure_untimed():
    engine = Engine()
    part = SwapPartition("p", 64)
    remote = DemandDrivenRemoteMemory(engine, part, limit_entries=1024)
    remote.ensure_untimed(500)
    assert part.free_count >= 500
    with pytest.raises(RuntimeError):
        remote.ensure_untimed(5000)


def test_limit_below_initial_rejected():
    engine = Engine()
    part = SwapPartition("p", 64)
    with pytest.raises(ValueError):
        DemandDrivenRemoteMemory(engine, part, limit_entries=32)


def test_canvas_demand_driven_end_to_end():
    """A workload runs to completion with partitions growing on demand."""
    machine = Machine(seed=4)
    system = CanvasSwapSystem(
        machine.engine,
        machine.nic,
        telemetry=machine.telemetry,
        canvas_config=CanvasConfig(
            demand_driven_remote=True, remote_chunk_entries=128
        ),
    )
    app = AppContext(
        machine.engine,
        CgroupConfig(
            name="a",
            n_cores=4,
            local_memory_pages=128,
            swap_partition_pages=1024,
            swap_cache_pages=96,
        ),
    )
    app.space.map_region(512, name="heap")
    system.register_app(app)
    state = system._state["a"]
    assert state.remote is not None
    assert state.partition.n_entries == 128  # starts at one chunk
    system.prepopulate(app, resident_fraction=0.2)
    assert state.partition.n_entries >= 512 - 128  # setup registration
    vpns = sorted(app.space.pages)

    def stream():
        for i in range(3000):
            yield (vpns[i % len(vpns)], True, 0.2)

    proc = spawn_app(system, app, [stream()])
    run_to_completion(machine.engine, [proc])
    assert app.finished_at_us is not None
    assert state.partition.n_entries <= 1024  # never exceeds the limit
