"""Unit tests for two-tier prefetch control and the userfaultfd channel."""

from repro.core.two_tier import TwoTierController
from repro.kernel import AppContext, CgroupConfig, UserfaultfdChannel
from repro.sim import Engine


def make_uffd(engine=None, handler=None, **kwargs):
    engine = engine if engine is not None else Engine()
    app = AppContext(engine, CgroupConfig(name="a", n_cores=2, local_memory_pages=64))
    issued = []

    def async_prefetch(app_ctx, vpns):
        issued.extend(vpns)
        return len(vpns)

    uffd = UserfaultfdChannel(engine, app, async_prefetch=async_prefetch, **kwargs)
    if handler is not None:
        uffd.register_handler(handler)
    return engine, app, uffd, issued


# -- userfaultfd channel ---------------------------------------------------------


def test_forward_without_handler_is_noop():
    engine, app, uffd, issued = make_uffd()
    uffd.forward(0, 100)
    engine.run(until=100)
    assert uffd.forwarded == 0
    assert app.stats.uffd_forwards == 0


def test_forward_invokes_handler_and_issues():
    engine, app, uffd, issued = make_uffd(handler=lambda tid, vpn: [vpn + 1, vpn + 2])
    uffd.forward(3, 100)
    engine.run(until=100)
    assert uffd.forwarded == 1
    assert uffd.handled == 1
    assert issued == [101, 102]
    assert uffd.prefetches_submitted == 2


def test_daemon_charges_app_cpu():
    engine, app, uffd, issued = make_uffd(
        handler=lambda tid, vpn: [], handler_cost_us=5.0
    )
    uffd.forward(0, 1)
    uffd.forward(0, 2)
    engine.run(until=1_000)
    assert app.cores.stats.busy_us >= 10.0


def test_queue_overflow_drops():
    engine, app, uffd, issued = make_uffd(handler=lambda tid, vpn: [], max_queue=2)
    # The daemon cannot drain between same-instant submissions.
    for vpn in range(5):
        uffd.forward(0, vpn)
    assert uffd.overflow_drops == 3
    engine.run(until=1_000)
    assert uffd.handled == 2


def test_empty_handler_result_issues_nothing():
    engine, app, uffd, issued = make_uffd(handler=lambda tid, vpn: [])
    uffd.forward(0, 100)
    engine.run(until=100)
    assert issued == []
    assert uffd.prefetches_submitted == 0


# -- two-tier controller ---------------------------------------------------------


class FakeUffd:
    def __init__(self):
        self.forwards = []
        self.has_handler = True

    def forward(self, thread_id, vpn):
        self.forwards.append((thread_id, vpn))


def test_forwarding_starts_after_consecutive_failures():
    uffd = FakeUffd()
    ctl = TwoTierController(uffd, fail_threshold_pages=2, consecutive_faults=3)
    ctl.on_kernel_prefetch(0, 1, pages_issued=0)
    ctl.on_kernel_prefetch(0, 2, pages_issued=1)
    assert not ctl.forwarding
    ctl.on_kernel_prefetch(0, 3, pages_issued=0)
    assert ctl.forwarding
    assert uffd.forwards == [(0, 3)]
    assert ctl.stats.forwarding_activations == 1


def test_success_resets_streak_and_stops_forwarding():
    uffd = FakeUffd()
    ctl = TwoTierController(uffd, fail_threshold_pages=2, consecutive_faults=2)
    ctl.on_kernel_prefetch(0, 1, 0)
    ctl.on_kernel_prefetch(0, 2, 0)
    assert ctl.forwarding
    ctl.on_kernel_prefetch(0, 3, 8)  # kernel tier effective again
    assert not ctl.forwarding
    ctl.on_kernel_prefetch(0, 4, 0)  # single failure: not enough
    assert not ctl.forwarding


def test_intermittent_failures_do_not_trigger():
    uffd = FakeUffd()
    ctl = TwoTierController(uffd, fail_threshold_pages=2, consecutive_faults=3)
    for vpn in range(10):
        ctl.on_kernel_prefetch(0, vpn, 0 if vpn % 2 == 0 else 8)
    assert not ctl.forwarding
    assert uffd.forwards == []


def test_no_forward_without_handler():
    uffd = FakeUffd()
    uffd.has_handler = False
    ctl = TwoTierController(uffd, consecutive_faults=1)
    ctl.on_kernel_prefetch(0, 1, 0)
    assert ctl.forwarding
    assert uffd.forwards == []
