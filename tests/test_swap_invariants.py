"""Seeded-random property tests for swap-entry and swap-cache bookkeeping.

No hypothesis dependency: each test drives a long random interleaving of
operations from a seeded numpy generator (parametrized over seeds), with
a shadow model alongside.  The invariants under test:

* an allocator never hands the same entry to two holders, never loses an
  entry, and its free/held/stashed counts always reconcile to the
  partition size — under concurrent allocation from many cores;
* the swap cache's membership, LRU bookkeeping, and ``in_swap_cache``
  flags always match a shadow dict, and its stats reconcile
  (``insertions == removals + shrink_evictions + len(cache)``);
* a live swap system's end state reconciles — unique allocated entries,
  balanced frame-pool charges, empty in-flight tables — with and
  without injected transport faults.
"""

import numpy as np
import pytest

from repro.faults import FaultConfig, FaultPlan
from repro.harness.driver import run_to_completion, spawn_app
from repro.harness.machine import Machine
from repro.mem import Page
from repro.sim import Engine
from repro.sim.rng import derive_seed
from repro.swap import SwapPartition
from repro.swap.allocator import (
    BatchAllocator,
    FreeListAllocator,
    Linux514Allocator,
    PerCoreClusterAllocator,
)
from repro.swap.swap_cache import SwapCache
from tests.conftest import build_system, sequential_accesses

N_ENTRIES = 512
ALLOCATORS = {
    "freelist": FreeListAllocator,
    "percore-cluster": lambda eng, part: PerCoreClusterAllocator(
        eng, part, cluster_entries=64
    ),
    "batch": BatchAllocator,
    "linux514": lambda eng, part: Linux514Allocator(eng, part, cluster_entries=64),
}


def _free_and_stashed(allocator) -> int:
    """Entries not handed out: on free lists plus in per-core caches.

    Each policy parks free entries somewhere different (partition deque,
    per-cluster lists, per-core batch caches); sum them all.
    """
    total = 0
    if hasattr(allocator, "clusters"):
        total += sum(len(c.free) for c in allocator.clusters)
    else:
        total += allocator.partition.free_count
    for cache in getattr(allocator, "_core_cache", {}).values():
        total += len(cache)
    for batch in getattr(allocator, "_core_batch", {}).values():
        total += len(batch)
    return total


@pytest.mark.parametrize("name", sorted(ALLOCATORS))
@pytest.mark.parametrize("seed", [0, 1])
def test_allocator_random_interleavings_reconcile(name, seed):
    eng = Engine()
    part = SwapPartition("p", N_ENTRIES)
    allocator = ALLOCATORS[name](eng, part)
    held_ids = set()
    outstanding = [0]
    handed_out = [0]
    freed = [0]
    n_cores = 4

    def worker(core_id):
        rng = np.random.default_rng(derive_seed(seed, f"worker{core_id}"))
        held = []
        for _ in range(120):
            want_alloc = not held or rng.random() < 0.55
            if want_alloc and outstanding[0] < N_ENTRIES - 64:
                entry = yield from allocator.allocate(core_id)
                # Never hand one entry to two holders.
                assert entry.entry_id not in held_ids
                assert entry.allocated
                held_ids.add(entry.entry_id)
                held.append(entry)
                outstanding[0] += 1
                handed_out[0] += 1
            elif held:
                entry = held.pop(int(rng.integers(0, len(held))))
                allocator.free(entry)
                held_ids.remove(entry.entry_id)
                outstanding[0] -= 1
                freed[0] += 1
            if rng.random() < 0.2:
                yield eng.sleep(float(rng.random()))
        # Leave the rest held: the reconciliation below must account for
        # entries still out, not just a fully-drained end state.
        holders.append(held)

    holders = []
    for core_id in range(n_cores):
        eng.spawn(worker(core_id))
    eng.run()

    # No entry lost, none duplicated: free + stashed + held == partition.
    assert _free_and_stashed(allocator) + len(held_ids) == N_ENTRIES
    assert allocator.stats.allocations == handed_out[0]
    assert allocator.stats.frees == freed[0]
    # Drain the survivors; the partition must reconcile back to full.
    for held in holders:
        for entry in held:
            allocator.free(entry)
            held_ids.remove(entry.entry_id)
    assert not held_ids
    assert _free_and_stashed(allocator) == N_ENTRIES


def test_freelist_double_free_is_rejected():
    eng = Engine()
    part = SwapPartition("p", 8)
    allocator = FreeListAllocator(eng, part)

    def proc():
        entry = yield from allocator.allocate(0)
        allocator.free(entry)
        with pytest.raises(ValueError):
            allocator.free(entry)

    eng.spawn(proc())
    eng.run()


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_swap_cache_random_ops_match_shadow_model(seed):
    rng = np.random.default_rng(derive_seed(seed, "cache-props"))
    part = SwapPartition("p", 128)
    cache = SwapCache("c", capacity_pages=32)
    entries = [part.pop_free() for _ in range(96)]
    pages = {e.entry_id: Page(vpn=i, owner_name="a") for i, e in enumerate(entries)}
    shadow = {}

    for _ in range(2000):
        entry = entries[int(rng.integers(0, len(entries)))]
        op = rng.random()
        if op < 0.35:  # insert (only if absent, as the kernel guarantees)
            if entry.entry_id in shadow:
                with pytest.raises(ValueError):
                    cache.insert(entry, pages[entry.entry_id])
            else:
                cache.insert(
                    entry, pages[entry.entry_id], prefetched=bool(rng.random() < 0.3)
                )
                shadow[entry.entry_id] = pages[entry.entry_id]
        elif op < 0.6:  # fault-path lookup
            hit = cache.lookup(entry)
            assert (hit is not None) == (entry.entry_id in shadow)
            if hit is not None:
                assert hit is shadow[entry.entry_id]
        elif op < 0.8:  # remove/discard
            if entry.entry_id in shadow:
                page = cache.remove(entry)
                assert page is shadow.pop(entry.entry_id)
                assert not page.in_swap_cache
            else:
                assert cache.discard(entry) is None
        elif shadow and op < 0.9:  # shrink pass over LRU candidates
            for entry_id, page in cache.shrink_candidates(int(rng.integers(1, 4))):
                assert page is shadow.pop(entry_id)
                released = cache.release(entry_id)
                assert released is page
        else:  # peek never perturbs state
            lookups_before = cache.stats.lookups
            assert (cache.peek(entry) is not None) == (entry.entry_id in shadow)
            assert cache.stats.lookups == lookups_before
        # Membership and flags always agree with the model.
        assert len(cache) == len(shadow)
        assert (entry in cache) == (entry.entry_id in shadow)

    for entry in entries:
        assert pages[entry.entry_id].in_swap_cache == (entry.entry_id in shadow)
    stats = cache.stats
    assert stats.insertions == stats.removals + stats.shrink_evictions + len(cache)
    assert stats.hits + stats.misses == stats.lookups


# -- End-state reconciliation on a live system, faulted or not -----------


@pytest.mark.parametrize("faulted", [False, True])
def test_system_end_state_reconciles(faulted):
    machine = Machine(seed=2)
    system, app, vma = build_system(machine)
    if faulted:
        plan = FaultPlan(
            FaultConfig(
                drop_prob=0.02,
                completion_error_prob=0.01,
                retransmit_timeout_us=50.0,
            ),
            seed=2,
        )
        machine.nic.fault_plan = plan
        system.fault_plan = plan
    proc = spawn_app(system, app, [sequential_accesses(vma, 4000, write=True)])
    run_to_completion(machine.engine, [proc])
    machine.engine.run(until=machine.engine.now + 200_000)

    assert app.finished_at_us is not None
    # No two pages share a swap entry, and every referenced entry is
    # still marked allocated (a double-free would have recycled one).
    referenced = [
        p.swap_entry for p in app.space.pages.values() if p.swap_entry is not None
    ]
    ids = [e.entry_id for e in referenced]
    assert len(ids) == len(set(ids))
    assert all(e.allocated for e in referenced)
    # Frame-pool ledger balances and nothing is left in flight.
    pool = app.pool
    assert pool.stats.charges - pool.stats.uncharges == pool.used
    assert 0 <= pool.used <= pool.capacity_pages
    assert system._inflight == {}
    assert system._inflight_req == {}
    assert all(a.outstanding_writebacks == 0 for a in system.apps.values())
    if faulted:
        stats = machine.nic.stats
        assert (
            stats.wire_drops + stats.completion_errors
            == stats.retransmits + stats.transport_failures
        )


@pytest.mark.parametrize("flat_state", [False, True])
def test_residency_accounting_reconciles(flat_state):
    """The O(1) resident counter, the residency bitmap, the resident_map,
    and a full page-dict scan must always agree, and the frame-pool
    charge ledger must balance — on both LRU representations."""
    from repro.workloads.batch import chunk_stream

    machine = Machine(seed=5)
    system, app, vma = build_system(machine, flat_state=flat_state)
    stream = chunk_stream(sequential_accesses(vma, 6000, write=True))
    proc = spawn_app(system, app, [stream], batched=True)
    run_to_completion(machine.engine, [proc])
    machine.engine.run(until=machine.engine.now + 200_000)

    assert app.finished_at_us is not None
    space = app.space
    by_dict = sum(1 for p in space.pages.values() if p.resident)
    by_map = sum(1 for p in space.resident_map if p is not None)
    by_bits = int(space.resident_bits.sum())
    assert space.resident_pages == by_dict == by_map == by_bits
    pool = app.pool
    assert pool.stats.charges - pool.stats.uncharges == pool.used
    if flat_state:
        # Flat LRU classification covers exactly the LRU members, and
        # every page on the LRU is resident.
        on_lru = np.flatnonzero(space.lru_where != 0)
        assert len(app.lru) == len(on_lru)
        assert bool(space.resident_bits[on_lru].all())


def test_flat_and_legacy_state_agree_end_to_end():
    """Same seeded run on both representations: identical access/fault
    counts, completion time, and final residency."""
    from repro.workloads.batch import chunk_stream

    outcomes = {}
    for flat_state in (False, True):
        machine = Machine(seed=9)
        system, app, vma = build_system(machine, flat_state=flat_state)
        stream = chunk_stream(sequential_accesses(vma, 6000, write=True))
        proc = spawn_app(system, app, [stream], batched=True)
        run_to_completion(machine.engine, [proc])
        machine.engine.run(until=machine.engine.now + 200_000)
        outcomes[flat_state] = (
            app.stats.accesses,
            app.stats.faults,
            app.stats.swapouts,
            app.finished_at_us,
            app.space.resident_pages,
        )
    assert outcomes[False] == outcomes[True]


# -- Churn: every session departs, every ledger reconciles ---------------


def _churn_traffic():
    from repro.workloads.traffic import TrafficConfig

    return TrafficConfig(n_sessions=6, day_us=15_000.0, accesses_mean=1200)


@pytest.mark.parametrize("system", ["linux", "linux514", "fastswap"])
def test_churn_allocator_free_count_returns_to_capacity(system):
    """Traffic-driven arrivals and departures: once the last session has
    torn down, the shared allocator's free and stashed entries sum back
    to the full partition capacity, every cgroup's charges balance, and
    nothing is left in flight."""
    from repro.harness.experiment import ExperimentConfig, run_churn

    result = run_churn(
        ExperimentConfig(system=system, seed=2, traffic=_churn_traffic())
    )
    allocator = result.system.allocator
    assert _free_and_stashed(allocator) == allocator.partition.n_entries
    assert len(result.system.apps) == 0
    for name, app in result.apps.items():
        assert app.pool.used == 0, f"{name} left frames charged"
        assert app.pool.stats.charges == app.pool.stats.uncharges
        assert app.outstanding_writebacks == 0
        assert app.inflight_prefetches == 0


def test_churn_rack_ledgers_reconcile_after_all_departures():
    """Canvas on a rack: withdrawing each departing app's private
    partition must retire its entries, so after the last departure the
    per-server homing charges reconcile to exactly the shared global
    partition and the rehome/loss ledger balances."""
    from repro.cluster import ClusterConfig
    from repro.harness.experiment import ExperimentConfig, run_churn

    result = run_churn(
        ExperimentConfig(
            system="canvas",
            seed=4,
            cluster=ClusterConfig(n_servers=3),
            traffic=_churn_traffic(),
        )
    )
    rack = result.rack
    assert rack is not None
    assert rack.ledger_balanced()
    # Every per-app private partition withdrew with its owner; only the
    # shared global partition (never an app's) may remain adopted.
    remaining = [p.name for _sys, p, _alloc in rack._adopted]
    assert remaining == ["canvas.global"]
    # The per-server homing charges match a ground-up recount, and the
    # recount covers exactly the surviving shared partition.
    recount = rack.homed_counts()
    for server in rack.servers:
        assert server.entries_homed == recount[server.server_id]
    (shared,) = [p for _sys, p, _alloc in rack._adopted]
    assert sum(recount.values()) == sum(
        1 for entry in shared.entries if not entry.retired
    )


def test_churn_digest_serial_matches_parallel():
    """`churn_digest` is a pure function of the config: computing the
    same traffic runs in worker processes must reproduce the serial
    digests bit-for-bit (same bar the steady-state harness meets)."""
    from concurrent.futures import ProcessPoolExecutor

    from repro.harness.experiment import ExperimentConfig, churn_digest

    configs = [
        ExperimentConfig(system="linux", seed=1, traffic=_churn_traffic()),
        ExperimentConfig(system="canvas", seed=1, traffic=_churn_traffic()),
        ExperimentConfig(system="canvas", seed=2, traffic=_churn_traffic()),
    ]
    serial = [churn_digest(c) for c in configs]
    with ProcessPoolExecutor(max_workers=2) as pool:
        parallel = list(pool.map(churn_digest, configs))
    assert parallel == serial
    # Seed sensitivity: the digest is not a constant.
    assert serial[1] != serial[2]
