"""Property-based tests (hypothesis) for core data structures and invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem import ActiveInactiveLRU, FramePool, Page
from repro.metrics import Histogram
from repro.prefetch import KernelReadahead, PageGroupGraph, majority_vote
from repro.sim import Engine
from repro.swap import SwapPartition
from repro.workloads import ZipfSampler


# -- engine ordering -----------------------------------------------------------


@given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=50))
def test_engine_fires_timeouts_in_order(delays):
    eng = Engine()
    fired = []

    def proc(eng, delay):
        yield eng.timeout(delay)
        fired.append(eng.now)

    for delay in delays:
        eng.spawn(proc(eng, delay))
    eng.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


@given(st.lists(st.floats(min_value=0.0, max_value=1e5), min_size=1, max_size=30))
def test_engine_clock_never_goes_backwards(delays):
    eng = Engine()
    observed = []

    def proc(eng, delay):
        yield eng.timeout(delay)
        observed.append(eng.now)
        yield eng.timeout(delay / 2 + 1)
        observed.append(eng.now)

    for delay in delays:
        eng.spawn(proc(eng, delay))
    eng.run()
    assert observed == sorted(observed)


# -- majority vote -----------------------------------------------------------


def naive_majority(values):
    for candidate in set(values):
        if values.count(candidate) * 2 > len(values):
            return candidate
    return None


@given(st.lists(st.integers(min_value=-8, max_value=8), max_size=60))
def test_majority_vote_matches_naive(values):
    assert majority_vote(values) == naive_majority(values)


# -- histogram -----------------------------------------------------------------


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=200))
def test_histogram_percentile_monotone_and_bounded(samples):
    hist = Histogram()
    hist.extend(samples)
    previous = None
    for q in (0, 25, 50, 75, 90, 99, 100):
        value = hist.percentile(q)
        assert min(samples) <= value <= max(samples)
        if previous is not None:
            assert value >= previous
        previous = value


@given(
    st.lists(st.floats(min_value=0, max_value=1e4), min_size=1, max_size=200),
    st.floats(min_value=0, max_value=1e4),
)
def test_histogram_fraction_above_matches_count(samples, threshold):
    hist = Histogram()
    hist.extend(samples)
    expected = sum(1 for s in samples if s > threshold) / len(samples)
    assert abs(hist.fraction_above(threshold) - expected) < 1e-9


# -- frame pool ------------------------------------------------------------------


@given(
    st.integers(min_value=1, max_value=500),
    st.lists(st.integers(min_value=-30, max_value=30), max_size=100),
)
def test_frame_pool_never_overcommits(capacity, deltas):
    pool = FramePool(capacity)
    for delta in deltas:
        if delta >= 0:
            pool.try_charge(delta)
        else:
            pool.uncharge(min(-delta, pool.used))
        assert 0 <= pool.used <= pool.capacity_pages


# -- swap partition ---------------------------------------------------------------


@given(st.lists(st.booleans(), min_size=1, max_size=200))
def test_partition_alloc_free_conservation(ops):
    part = SwapPartition("p", 64)
    held = []
    for is_alloc in ops:
        if is_alloc and part.free_count > 0:
            held.append(part.pop_free())
        elif held:
            part.push_free(held.pop())
        assert part.free_count + len(held) == 64
        assert part.used_count == len(held)
    ids = [e.entry_id for e in held]
    assert len(ids) == len(set(ids))  # no entry handed out twice


# -- LRU ---------------------------------------------------------------------------


@given(st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=150))
def test_lru_membership_invariants(vpns):
    lru = ActiveInactiveLRU()
    pages = {}
    for vpn in vpns:
        if vpn not in pages:
            pages[vpn] = Page(vpn)
            lru.insert(pages[vpn])
        else:
            lru.note_access(pages[vpn])
        # A page is never on both lists.
        assert not (pages[vpn] in lru.active and pages[vpn] in lru.inactive)
    assert len(lru) == len(pages)
    # Evicting everything drains exactly all pages with no duplicates.
    victims = []
    while True:
        victim = lru.select_victim()
        if victim is None:
            break
        victims.append(victim)
    assert len(victims) == len(pages)
    assert len(set(v.vpn for v in victims)) == len(pages)


# -- zipf sampler ------------------------------------------------------------------


@given(
    st.integers(min_value=1, max_value=2000),
    st.floats(min_value=0.0, max_value=2.5),
    st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=30)
def test_zipf_sampler_always_in_range(n, theta, seed):
    sampler = ZipfSampler(n, theta, np.random.default_rng(seed))
    draws = sampler.sample_many(200)
    assert draws.min() >= 0
    assert draws.max() < n


# -- page group graph --------------------------------------------------------------


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=500),
            st.integers(min_value=0, max_value=500),
        ),
        max_size=100,
    ),
    st.integers(min_value=0, max_value=500),
    st.integers(min_value=1, max_value=4),
)
def test_graph_reachability_properties(edges, start_vpn, max_hops):
    graph = PageGroupGraph(group_pages=8)
    for src, dst in edges:
        graph.record_reference(src, dst)
    start = graph.group_of(start_vpn)
    reached = graph.reachable_groups(start, max_hops)
    # No duplicates, never includes the start, min_hops filter is a subset.
    assert len(reached) == len(set(reached))
    assert start not in reached
    deeper_only = graph.reachable_groups(start, max_hops, min_hops=2)
    assert set(deeper_only) <= set(reached)
    # Growing the hop limit never shrinks the reachable set.
    reached_more = graph.reachable_groups(start, max_hops + 1)
    assert set(reached) <= set(reached_more)


# -- readahead window bounds ----------------------------------------------------------


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=4000),
            st.booleans(),
        ),
        min_size=1,
        max_size=150,
    )
)
def test_readahead_window_always_bounded(faults):
    pf = KernelReadahead(max_window=8)
    for vpn, hit in faults:
        proposals = pf.on_fault("a", 0, vpn, 0.0, prefetched_hit=hit)
        assert 0 <= len(proposals) <= 8
        assert all(p != vpn for p in proposals)
