"""Unit tests for the two-dimensional RDMA scheduler (§5.3)."""

import pytest

from repro.core.rdma_sched import TwoDimensionalScheduler
from repro.kernel.telemetry import Telemetry
from repro.rdma import RNIC, RdmaOp, RdmaRequest, RequestKind
from repro.sim import Engine
from repro.swap import SwapPartition


def make_sched(engine=None, horizontal=True, **kwargs):
    engine = engine if engine is not None else Engine()
    nic = RNIC(engine)
    telemetry = Telemetry()
    nic.completion_hooks.append(telemetry.on_rdma_completion)
    sched = TwoDimensionalScheduler(
        engine, nic, telemetry=telemetry, horizontal=horizontal, **kwargs
    )
    return engine, nic, telemetry, sched


def make_request(part, app, kind=RequestKind.DEMAND, engine=None):
    op = RdmaOp.WRITE if kind is RequestKind.SWAPOUT else RdmaOp.READ
    req = RdmaRequest(op, kind, app, part.pop_free())
    if engine is not None:
        req.completion = engine.event()
    return req


def test_register_duplicate_rejected():
    engine, nic, telemetry, sched = make_sched()
    sched.register_app("a")
    with pytest.raises(ValueError):
        sched.register_app("a")


def test_register_invalid_weight():
    engine, nic, telemetry, sched = make_sched()
    with pytest.raises(ValueError):
        sched.register_app("a", weight=0)


def test_single_request_forwarded_and_completed():
    engine, nic, telemetry, sched = make_sched()
    sched.register_app("a")
    part = SwapPartition("p", 8)
    req = make_request(part, "a", engine=engine)
    sched.submit("a", req)
    engine.run(until=100)
    assert req.completed_at_us is not None
    assert sched.stats.demand_forwarded == 1


def test_demand_served_before_prefetch():
    engine, nic, telemetry, sched = make_sched()
    sched.register_app("a")
    part = SwapPartition("p", 64)
    prefetches = [
        make_request(part, "a", RequestKind.PREFETCH, engine) for _ in range(6)
    ]
    demand = make_request(part, "a", RequestKind.DEMAND, engine)
    for req in prefetches:
        sched.submit("a", req)
    sched.submit("a", demand)
    engine.run(until=1_000)
    # Demand overtakes all but the already-forwarded prefetches.
    earlier = [p for p in prefetches if p.issued_at_us < demand.issued_at_us]
    assert len(earlier) < len(prefetches)


def test_weighted_fair_sharing_across_apps():
    engine, nic, telemetry, sched = make_sched(read_window=4)
    sched.register_app("heavy", weight=3.0)
    sched.register_app("light", weight=1.0)
    part = SwapPartition("p", 4096)
    n = 300
    for _ in range(n):
        sched.submit("heavy", make_request(part, "heavy", engine=engine))
        sched.submit("light", make_request(part, "light", engine=engine))
    # Stop mid-backlog: service rates should track the 3:1 weights.
    engine.run(until=250.0)
    heavy = telemetry.read_bandwidth.totals.get("heavy", 0)
    light = telemetry.read_bandwidth.totals.get("light", 0)
    assert light > 0
    assert heavy / light == pytest.approx(3.0, rel=0.35)


def test_no_starvation_of_light_app():
    """A light app's request lands promptly despite a heavy backlog."""
    engine, nic, telemetry, sched = make_sched(read_window=4)
    sched.register_app("heavy", weight=10.0)
    sched.register_app("light", weight=1.0)
    part = SwapPartition("p", 4096)
    for _ in range(200):
        sched.submit("heavy", make_request(part, "heavy", engine=engine))
    engine.run(until=50.0)
    light_req = make_request(part, "light", engine=engine)
    sched.submit("light", light_req)
    engine.run(until=50_000)
    assert light_req.latency_us is not None
    assert light_req.latency_us < 100.0


def test_writes_scheduled_independently():
    engine, nic, telemetry, sched = make_sched()
    sched.register_app("a")
    part = SwapPartition("p", 16)
    write = make_request(part, "a", RequestKind.SWAPOUT, engine)
    read = make_request(part, "a", RequestKind.DEMAND, engine)
    sched.submit("a", write)
    sched.submit("a", read)
    engine.run(until=1_000)
    assert write.completed_at_us is not None
    assert read.completed_at_us is not None
    assert sched.stats.writes_forwarded == 1


def test_stale_prefetch_dropped_with_callback():
    dropped = []
    engine = Engine()
    nic = RNIC(engine)
    telemetry = Telemetry()
    sched = TwoDimensionalScheduler(
        engine,
        nic,
        telemetry=telemetry,
        horizontal=True,
        drop_callback=dropped.append,
        read_window=1,
    )
    sched.register_app("a", weight=1.0)
    state = sched._apps["a"]
    state.timeliness_floor_us = 10.0  # tight bound
    part = SwapPartition("p", 64)
    # Occupy the single window slot, then age a prefetch in the VQP.
    blocker = make_request(part, "a", RequestKind.DEMAND, engine)
    stale = make_request(part, "a", RequestKind.PREFETCH, engine)
    sched.submit("a", blocker)
    sched.submit("a", stale)
    engine.run(until=1_000)
    assert stale.dropped
    assert dropped == [stale]
    assert sched.stats.prefetches_dropped == 1


def test_horizontal_disabled_keeps_fifo_and_never_drops():
    engine, nic, telemetry, sched = make_sched(horizontal=False, read_window=1)
    sched.register_app("a")
    sched._apps["a"].timeliness_floor_us = 0.001
    part = SwapPartition("p", 64)
    prefetch = make_request(part, "a", RequestKind.PREFETCH, engine)
    demand = make_request(part, "a", RequestKind.DEMAND, engine)
    sched.submit("a", prefetch)
    sched.submit("a", demand)
    engine.run(until=1_000)
    assert not prefetch.dropped
    assert prefetch.issued_at_us < demand.issued_at_us  # FIFO order kept


def test_timeout_threshold_uses_timeliness_history():
    engine, nic, telemetry, sched = make_sched()
    sched.register_app("a")
    floor = sched.timeout_threshold_us("a")
    hist = telemetry.timeliness_hist("a")
    for _ in range(50):
        hist.record(500.0)
    assert sched.timeout_threshold_us("a") >= 500.0
    assert sched.timeout_threshold_us("a") >= floor


def test_timeout_threshold_is_capped():
    engine, nic, telemetry, sched = make_sched()
    sched.register_app("a")
    hist = telemetry.timeliness_hist("a")
    for _ in range(50):
        hist.record(50_000.0)  # pages that idled in the cache forever
    assert sched.timeout_threshold_us("a") <= sched.timeliness_ceiling_us


def test_service_ewma_updates_on_completion():
    engine, nic, telemetry, sched = make_sched()
    sched.register_app("a")
    initial = sched.estimated_service_us("a")
    part = SwapPartition("p", 8)
    req = make_request(part, "a", engine=engine)
    sched.submit("a", req)
    engine.run(until=1_000)
    assert sched.estimated_service_us("a") != initial


def test_dropped_after_forward_releases_window_slot():
    engine, nic, telemetry, sched = make_sched(read_window=1)
    sched.register_app("a")
    part = SwapPartition("p", 16)
    first = make_request(part, "a", RequestKind.PREFETCH, engine)
    sched.submit("a", first)
    # Mark dropped after it was forwarded to the NIC but (possibly)
    # before dispatch; the NIC's dropped hook must free the slot.
    first.dropped = True
    follow = make_request(part, "a", RequestKind.DEMAND, engine)
    sched.submit("a", follow)
    engine.run(until=1_000)
    assert follow.completed_at_us is not None
