"""Unit tests for virtual queue pairs."""

from repro.rdma import RdmaOp, RdmaRequest, RequestKind, VirtualQP
from repro.sim import Engine
from repro.swap import SwapPartition


def make_request(part, kind=RequestKind.DEMAND, op=RdmaOp.READ):
    return RdmaRequest(op, kind, "app", part.pop_free())


def test_push_stamps_enqueue_time():
    eng = Engine()
    eng.call_after(5.0, lambda: None)
    eng.run()
    vqp = VirtualQP(eng, "app")
    part = SwapPartition("p", 8)
    req = make_request(part)
    vqp.push(req)
    assert req.enqueued_at_us == 5.0


def test_prefetch_push_stamps_swap_entry():
    eng = Engine()
    vqp = VirtualQP(eng, "app")
    part = SwapPartition("p", 8)
    req = make_request(part, kind=RequestKind.PREFETCH)
    assert req.entry.timestamp_us is None
    vqp.push(req)
    assert req.entry.timestamp_us == 0.0


def test_demand_push_does_not_stamp_entry():
    eng = Engine()
    vqp = VirtualQP(eng, "app")
    part = SwapPartition("p", 8)
    req = make_request(part, kind=RequestKind.DEMAND)
    vqp.push(req)
    assert req.entry.timestamp_us is None


def test_pop_fifo_per_kind():
    eng = Engine()
    vqp = VirtualQP(eng, "app")
    part = SwapPartition("p", 8)
    first = make_request(part)
    second = make_request(part)
    vqp.push(first)
    vqp.push(second)
    assert vqp.pop(RequestKind.DEMAND) is first
    assert vqp.pop(RequestKind.DEMAND) is second
    assert vqp.pop(RequestKind.DEMAND) is None


def test_kinds_are_independent_queues():
    eng = Engine()
    vqp = VirtualQP(eng, "app")
    part = SwapPartition("p", 8)
    demand = make_request(part, kind=RequestKind.DEMAND)
    prefetch = make_request(part, kind=RequestKind.PREFETCH)
    vqp.push(prefetch)
    vqp.push(demand)
    assert vqp.depth(RequestKind.DEMAND) == 1
    assert vqp.depth(RequestKind.PREFETCH) == 1
    assert vqp.pop(RequestKind.DEMAND) is demand


def test_pop_discards_dropped_requests():
    eng = Engine()
    vqp = VirtualQP(eng, "app")
    part = SwapPartition("p", 8)
    stale = make_request(part, kind=RequestKind.PREFETCH)
    fresh = make_request(part, kind=RequestKind.PREFETCH)
    vqp.push(stale)
    vqp.push(fresh)
    stale.dropped = True
    assert vqp.pop(RequestKind.PREFETCH) is fresh
    assert vqp.dropped_total == 1


def test_peek_skips_dropped():
    eng = Engine()
    vqp = VirtualQP(eng, "app")
    part = SwapPartition("p", 8)
    stale = make_request(part, kind=RequestKind.PREFETCH)
    fresh = make_request(part, kind=RequestKind.PREFETCH)
    vqp.push(stale)
    vqp.push(fresh)
    stale.dropped = True
    assert vqp.peek(RequestKind.PREFETCH) is fresh
    assert vqp.depth(RequestKind.PREFETCH) == 2  # peek does not consume


def test_has_pending():
    eng = Engine()
    vqp = VirtualQP(eng, "app")
    part = SwapPartition("p", 8)
    assert not vqp.has_pending()
    req = make_request(part)
    vqp.push(req)
    assert vqp.has_pending()
    req.dropped = True
    assert not vqp.has_pending()


def test_len_counts_all_kinds():
    eng = Engine()
    vqp = VirtualQP(eng, "app")
    part = SwapPartition("p", 8)
    vqp.push(make_request(part, kind=RequestKind.DEMAND))
    vqp.push(make_request(part, kind=RequestKind.PREFETCH))
    vqp.push(make_request(part, kind=RequestKind.SWAPOUT, op=RdmaOp.WRITE))
    assert len(vqp) == 3
