"""Chaos suite for the deterministic fault-injection subsystem (PR 4).

Three layers:

* **NIC unit tests** — scripted verdicts (``roll_script``) and explicit
  fault windows drive exact drop/retransmit/error-CQE sequences through
  a bare RNIC, pinning the retry/backoff arithmetic, the stats
  reconciliation identity, and the zero-plan bit-identity guarantee.
* **Kernel recovery tests** — error CQEs delivered into a live swap
  system: demand reads are retried invisibly, prefetches are cancelled
  and fully unwound, writebacks are reissued.
* **Chaos + determinism tests** — a faulted co-run completes with no
  leaked pooled requests, no stuck waiters, and every injected fault
  resolved; fixed seed + plan gives identical digests serially and
  across parallel workers; a zero plan is bit-identical to no plan on
  every system (the A/B digest guard).
"""

import pytest

from repro.cluster import ClusterConfig
from repro.faults import (
    FAULT_DROP,
    FAULT_ERROR,
    FaultConfig,
    FaultPlan,
    RACK_SCENARIOS,
    SCENARIOS,
    make_plan,
    rack_scenario_config,
    scenario_config,
)
from repro.harness.driver import run_to_completion, spawn_app
from repro.harness.experiment import ExperimentConfig, run_experiment
from repro.harness.machine import Machine
from repro.harness.parallel import run_experiments_parallel
from repro.harness.results import result_digest
from repro.rdma import RNIC, RdmaOp
from repro.sim import Engine
from repro.swap import SwapPartition
from tests.conftest import (
    FakeOwner,
    build_canvas,
    build_system,
    pooled_request,
    seq_stream,
    sequential_accesses,
)


def _reconciled(stats) -> bool:
    """Every injected transport fault was retransmitted or surfaced."""
    return (
        stats.wire_drops + stats.completion_errors
        == stats.retransmits + stats.transport_failures
    )


def _run_single(plan=None, config=None):
    """One pooled READ through a bare RNIC; returns (eng, nic, owner, req)."""
    eng = Engine()
    nic = RNIC(eng)
    if plan is None and config is not None:
        plan = FaultPlan(config, seed=0)
    if plan is not None:
        nic.fault_plan = plan
    qp = nic.create_qp("q", RdmaOp.READ)
    part = SwapPartition("p", 8)
    owner = FakeOwner()
    request = pooled_request(eng, part, owner)
    nic.submit(qp, request)
    eng.run()
    return eng, nic, owner, request


# -- FaultPlan schedule determinism -------------------------------------


def test_zero_plan_rolls_nothing():
    plan = FaultPlan(FaultConfig(), seed=3)
    assert not plan.config.any_faults
    assert plan.flap_windows == ()
    assert plan.degrade_windows == ()
    assert plan.server_windows == ()


def test_rto_backoff_doubles_and_caps():
    plan = FaultPlan(FaultConfig(), seed=0)
    assert plan.rto_us(1) == 150.0
    assert plan.rto_us(2) == 300.0
    assert plan.rto_us(3) == 600.0
    assert plan.rto_us(7) == 5_000.0  # capped


def test_window_placement_is_a_pure_function_of_seed():
    config = FaultConfig(n_flaps=2, n_degrade_windows=1, n_server_slowdowns=1)
    a, b = FaultPlan(config, seed=7), FaultPlan(config, seed=7)
    assert a.flap_windows == b.flap_windows
    assert a.degrade_windows == b.degrade_windows
    assert a.server_windows == b.server_windows
    other = FaultPlan(config, seed=8)
    assert other.flap_windows != a.flap_windows


def test_explicit_windows_override_placement():
    plan = FaultPlan(
        FaultConfig(
            flap_windows=((100.0, 50.0),),
            degrade_windows=((200.0, 100.0, 0.25),),
            server_windows=((400.0, 10.0),),
        ),
        seed=0,
    )
    assert plan.flap_windows == ((100.0, 150.0),)
    assert plan.degrade_windows == ((200.0, 300.0, 0.25),)
    assert plan.link_down_until(120.0) == 150.0
    assert plan.link_down_until(150.0) == 150.0  # boundary: link is back
    assert plan.bandwidth_scale(250.0) == 0.25
    assert plan.bandwidth_scale(300.0) == 1.0
    assert plan.server_delay_us(405.0) == plan.config.server_delay_us
    assert plan.registration_slowdown(405.0) == 4.0


def test_scenario_lookup():
    assert scenario_config("degraded") is SCENARIOS["degraded"]
    with pytest.raises(ValueError):
        scenario_config("nope")
    assert make_plan(None) is None
    assert isinstance(make_plan(FaultConfig()), FaultPlan)


# -- NIC transport faults ------------------------------------------------


def test_scripted_drop_is_retransmitted_and_completes():
    plan = FaultPlan(FaultConfig(roll_script=(FAULT_DROP,)), seed=0)
    eng, nic, owner, request = _run_single(plan)
    assert len(owner.completed) == 1
    assert owner._request_pool == [request]
    stats = nic.stats
    assert stats.wire_drops == 1
    assert stats.retransmits == 1
    assert stats.transport_failures == 0
    assert stats.reads_completed == 1
    assert _reconciled(stats)
    # The RTO backoff wait was charged to the request's retry stall.
    base_eng, *_ = _run_single()
    assert eng.now > base_eng.now


def test_completion_error_is_retried_sooner_than_a_drop():
    error_eng, error_nic, _, _ = _run_single(
        FaultPlan(FaultConfig(roll_script=(FAULT_ERROR,)), seed=0)
    )
    drop_eng, *_ = _run_single(
        FaultPlan(FaultConfig(roll_script=(FAULT_DROP,)), seed=0)
    )
    assert error_nic.stats.completion_errors == 1
    assert error_nic.stats.retransmits == 1
    # Error CQE is detected at completion and retried after a fraction
    # of the RTO; a silent drop must wait out the whole timeout.
    assert error_eng.now < drop_eng.now


def test_retry_budget_exhausted_surfaces_error_cqe():
    plan = FaultPlan(
        FaultConfig(drop_prob=1.0, transport_retry_limit=2,
                    retransmit_timeout_us=10.0),
        seed=0,
    )
    eng = Engine()
    nic = RNIC(eng)
    nic.fault_plan = plan
    errors = []
    nic.completion_hooks.append(lambda r: errors.append(r.error))
    qp = nic.create_qp("q", RdmaOp.READ)
    part = SwapPartition("p", 8)
    owner = FakeOwner()
    request = pooled_request(eng, part, owner)
    nic.submit(qp, request)
    eng.run()
    stats = nic.stats
    assert stats.wire_drops == 3  # initial + 2 retransmits, all dropped
    assert stats.retransmits == 2
    assert stats.transport_failures == 1
    assert stats.error_cqes_delivered == 1
    assert _reconciled(stats)
    # The error CQE still completed the request: hooks saw the flag, the
    # owner got the completion, the pooled request was recycled, and no
    # data counters moved.
    assert errors == [True]
    assert len(owner.completed) == 1
    assert owner._request_pool == [request]
    assert stats.reads_completed == 0
    assert stats.read_bytes == 0


def test_flap_window_stalls_dispatch_and_is_accounted():
    plan = FaultPlan(FaultConfig(flap_windows=((0.0, 100.0),)), seed=0)
    eng, nic, owner, _ = _run_single(plan)
    base_eng, *_ = _run_single()
    assert nic.stats.flap_stall_us == pytest.approx(100.0)
    assert eng.now == pytest.approx(base_eng.now + 100.0)
    assert len(owner.completed) == 1


def test_degrade_window_slows_the_wire():
    plan = FaultPlan(
        FaultConfig(degrade_windows=((0.0, 1e9, 0.5),)), seed=0
    )
    eng, nic, _, _ = _run_single(plan)
    base_eng, *_ = _run_single()
    assert nic.stats.degraded_transfers == 1
    assert eng.now > base_eng.now


def test_server_window_delays_completions():
    plan = FaultPlan(
        FaultConfig(server_windows=((0.0, 1e9),), server_delay_us=25.0), seed=0
    )
    eng, nic, _, _ = _run_single(plan)
    base_eng, *_ = _run_single()
    assert nic.stats.server_delayed == 1
    assert eng.now == pytest.approx(base_eng.now + 25.0)


def test_zero_plan_is_timing_identical_to_no_plan():
    base_eng, *_ = _run_single()
    zero_eng, zero_nic, _, _ = _run_single(FaultPlan(FaultConfig(), seed=0))
    assert zero_eng.now == base_eng.now  # exact float identity
    stats = zero_nic.stats
    assert stats.wire_drops == 0
    assert stats.flap_stall_us == 0.0
    assert stats.degraded_transfers == 0
    assert stats.server_delayed == 0


def test_read_fault_scoping_skips_writes():
    plan = FaultPlan(
        FaultConfig(roll_script=(FAULT_DROP,), write_faults=False), seed=0
    )
    eng = Engine()
    nic = RNIC(eng)
    nic.fault_plan = plan
    qp = nic.create_qp("w", RdmaOp.WRITE)
    part = SwapPartition("p", 8)
    owner = FakeOwner()
    from repro.rdma import RequestKind

    request = pooled_request(eng, part, owner, kind=RequestKind.SWAPOUT)
    nic.submit(qp, request)
    eng.run()
    # The write never consumed the script: no fault, clean completion.
    assert nic.stats.wire_drops == 0
    assert nic.stats.writes_completed == 1
    assert plan.rolls == 0


# -- Kernel-side error-CQE recovery --------------------------------------


def _scripted_error_plan(**overrides):
    """A plan whose first in-scope transfer fails straight to an error CQE."""
    return FaultPlan(
        FaultConfig(
            roll_script=(FAULT_ERROR,), transport_retry_limit=0, **overrides
        ),
        seed=0,
    )


def _attach(machine, system, plan):
    machine.nic.fault_plan = plan
    system.fault_plan = plan


def test_demand_read_error_is_retried_invisibly():
    machine = Machine(seed=1)
    system, app, vma = build_system(machine)
    _attach(machine, system, _scripted_error_plan())
    cold_vpn = vma.end_vpn - 1
    page = app.space.page(cold_vpn)
    assert not page.resident

    def proc():
        yield from system.handle_fault(app, 0, cold_vpn, False)

    machine.engine.spawn(proc())
    machine.engine.run(until=100_000)
    # The first read died with an error CQE; the kernel reissued it and
    # the faulting thread saw nothing but added stall.
    assert page.resident
    assert app.stats.error_cqes == 1
    assert app.stats.demand_retries == 1
    assert app.stats.demand_swapins == 1
    assert system._inflight == {}
    assert system._inflight_req == {}


def test_prefetch_error_is_cancelled_and_unwound():
    machine = Machine(seed=1)
    system, app, vma = build_system(machine)
    _attach(machine, system, _scripted_error_plan())
    cold_vpn = vma.end_vpn - 1
    page = app.space.page(cold_vpn)
    frames_before = app.pool.used
    assert system.issue_prefetch_vpns(app, [cold_vpn]) == 1
    machine.engine.run(until=100_000)
    # Cancelled: the speculative read is shed entirely and every piece
    # of its state is unwound.
    assert app.stats.prefetches_cancelled == 1
    assert not page.resident
    assert not page.locked
    assert not page.in_swap_cache
    assert app.pool.used == frames_before
    assert system._inflight == {}
    assert system._inflight_req == {}
    # A later demand fault (script exhausted, fabric healthy) recovers.

    def proc():
        yield from system.handle_fault(app, 0, cold_vpn, False)

    machine.engine.spawn(proc())
    machine.engine.run(until=200_000)
    assert page.resident


def test_writeback_error_is_reissued():
    machine = Machine(seed=1)
    system, app, vma = build_system(machine)
    _attach(machine, system, _scripted_error_plan(read_faults=False))
    proc = spawn_app(system, app, [sequential_accesses(vma, 3000, write=True)])
    run_to_completion(machine.engine, [proc])
    assert app.finished_at_us is not None
    # The scripted error hit the first swap-out; it was reissued and the
    # logical writeback stayed outstanding until the reissue landed.
    assert app.stats.error_cqes == 1
    assert app.stats.writeback_retries == 1
    assert all(a.outstanding_writebacks == 0 for a in system.apps.values())
    assert system._inflight == {}
    assert system._inflight_req == {}


# -- Chaos co-run: no leaks, no stuck waiters ----------------------------


def test_chaos_corun_completes_without_leaks():
    machine = Machine(seed=3)
    system, apps = build_canvas(
        machine, apps_spec=[("a", 512, 128, 2), ("b", 512, 128, 2)]
    )
    plan = FaultPlan(
        FaultConfig(
            drop_prob=0.02,
            completion_error_prob=0.01,
            retransmit_timeout_us=50.0,
            flap_windows=((5_000.0, 1_000.0),),
            degrade_windows=((10_000.0, 20_000.0, 0.5),),
            server_windows=((15_000.0, 20_000.0),),
        ),
        seed=3,
    )
    _attach(machine, system, plan)
    procs = [
        spawn_app(system, app, [seq_stream(app, 2000, write=True)])
        for app in apps.values()
    ]
    run_to_completion(machine.engine, procs)
    # The apps are done but late prefetches may still be in flight (some
    # mid-retransmission); give the fabric time to resolve every one.
    machine.engine.run(until=machine.engine.now + 200_000)
    stats = machine.nic.stats
    # Faults actually fired, and every one was eventually resolved
    # (retransmitted to success) or surfaced (error CQE to the kernel).
    assert plan.rolls > 0
    assert stats.retransmits > 0
    assert stats.wire_drops == plan.verdicts[FAULT_DROP]
    assert stats.completion_errors == plan.verdicts[FAULT_ERROR]
    assert _reconciled(stats)
    assert stats.error_cqes_delivered == stats.transport_failures
    for app in apps.values():
        assert app.finished_at_us is not None
    # Nothing in flight, nothing parked, nothing half-recycled.
    assert system._inflight == {}
    assert system._inflight_req == {}
    assert all(a.outstanding_writebacks == 0 for a in system.apps.values())
    for request in system._request_pool:
        assert request._in_pool
        assert request.entry is None and request.page is None
        assert not request.completion.fired
    # Retry stalls were attributed to the cgroups that suffered them.
    if stats.retransmits:
        assert sum(a.stats.retry_stall_us for a in apps.values()) > 0.0


# -- Determinism and digest guards ---------------------------------------

_AB_SYSTEMS = ["linux", "linux514", "fastswap", "infiniswap", "canvas-iso", "canvas"]


def _digest(system, fault_config, seed=11):
    config = ExperimentConfig(
        system=system, scale=0.03, seed=seed, fault_config=fault_config
    )
    return result_digest(run_experiment(["memcached"], config))


def test_same_seed_and_plan_give_identical_digests():
    fault_config = SCENARIOS["degraded"]
    assert _digest("canvas", fault_config) == _digest("canvas", fault_config)


def test_faulted_digests_stable_across_parallel_workers():
    config = ExperimentConfig(
        system="canvas", scale=0.03, seed=11, fault_config=SCENARIOS["degraded"]
    )
    serial = result_digest(run_experiment(["memcached"], config))
    jobs = [(["memcached"], config), (["memcached"], config)]
    results = run_experiments_parallel(jobs, max_workers=2)
    assert [result_digest(r) for r in results] == [serial, serial]


@pytest.mark.parametrize("system", _AB_SYSTEMS)
def test_zero_fault_config_is_bit_identical_to_no_plan(system):
    """The A/B guard: a disabled plan must not perturb any system's run."""
    assert _digest(system, None) == _digest(system, FaultConfig())


# -- Grouped fault admission under chaos ---------------------------------


def _faulted_run(system, fault_config, grouped, seed=11):
    overrides = {} if grouped else {"grouped_faults": False}
    config = ExperimentConfig(
        system=system,
        scale=0.03,
        seed=seed,
        fault_config=fault_config,
        system_config_overrides=overrides,
    )
    return run_experiment(["memcached"], config)


@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
def test_grouped_admission_survives_every_fault_scenario(scenario):
    """Coalesced admission under chaos: per-request verdicts still roll
    inside a group, and the run is bit-identical to ungrouped admission."""
    fault_config = scenario_config(scenario)
    grouped = _faulted_run("canvas", fault_config, grouped=True)
    ungrouped = _faulted_run("canvas", fault_config, grouped=False)
    # (a) digest parity: grouping is an admission optimization, not a
    # semantic change, even while members drop/error/retry.
    assert result_digest(grouped) == result_digest(ungrouped)
    # (b) the fault ledger reconciles: every injected transport fault
    # was retransmitted to success or surfaced as an error CQE.
    stats = grouped.machine.nic.stats
    assert _reconciled(stats)
    assert stats.error_cqes_delivered == stats.transport_failures
    # (c) no leaked pooled requests, no stuck parked waiters.
    system = grouped.system
    assert system._inflight == {}
    assert system._inflight_req == {}
    assert all(a.outstanding_writebacks == 0 for a in system.apps.values())
    for request in system._request_pool:
        assert request._in_pool
        assert request.entry is None and request.page is None
        assert not request.completion.fired


@pytest.mark.parametrize("system", _AB_SYSTEMS)
def test_grouped_admission_is_digest_invisible(system):
    """Grouped vs. ungrouped admission on a clean fabric, every system."""
    assert result_digest(
        _faulted_run(system, None, grouped=True)
    ) == result_digest(_faulted_run(system, None, grouped=False))


# -- Rack-scale chaos: server death, drain, and re-homing (PR 9) ---------


def _rack_run(system, fault_config, n_servers=4, apps=("memcached",), seed=11):
    """A scaled run on an n-server rack, drained past app completion.

    Apps finish before background migration necessarily does; the
    post-run drain (the established chaos idiom) lets every in-flight
    verb and migration leg resolve before the cleanliness assertions.
    """
    config = ExperimentConfig(
        system=system,
        scale=0.03,
        seed=seed,
        cluster=ClusterConfig(n_servers=n_servers),
        fault_config=fault_config,
    )
    result = run_experiment(list(apps), config)
    result.machine.engine.run(until=result.machine.engine.now + 200_000)
    return result


def _assert_rack_clean(result):
    """No leaks, no stuck waiters, and an exactly reconciled ledger."""
    system, rack = result.system, result.rack
    assert system._inflight == {}
    assert system._inflight_req == {}
    assert all(a.outstanding_writebacks == 0 for a in system.apps.values())
    for pool in (system._request_pool, rack._request_pool):
        for request in pool:
            assert request._in_pool
            assert request.entry is None and request.page is None
            assert not request.completion.fired
    assert rack.migrations_quiesced  # no half-finished migration legs
    stats = rack.stats
    assert stats.migration_aborts == 0
    assert stats.pages_rehomed == stats.pages_lost_from_dead + stats.pages_drained
    assert rack.ledger_balanced()


def test_rack_scenario_lookup():
    assert rack_scenario_config("server-death") is RACK_SCENARIOS["server-death"]
    with pytest.raises(ValueError):
        rack_scenario_config("nope")


@pytest.mark.parametrize("scenario", sorted(RACK_SCENARIOS))
def test_rack_scenarios_complete_clean_on_canvas(scenario):
    """Every scripted rack episode resolves with nothing leaked."""
    result = _rack_run("canvas", rack_scenario_config(scenario))
    for app in result.apps.values():
        assert app.finished_at_us is not None
    _assert_rack_clean(result)
    stats = result.rack.stats
    # The episode actually fired and actually moved data.
    assert stats.servers_failed + stats.servers_drained > 0
    assert stats.pages_rehomed > 0


def test_rack_server_death_mid_writeback_rehomes_every_binding():
    result = _rack_run("canvas", RACK_SCENARIOS["server-death"])
    stats = result.rack.stats
    assert stats.servers_failed == 1
    # Server 0 held live bindings when it died: pages whose only copy
    # sat there were re-read from a replica and re-homed.
    assert stats.pages_lost_from_dead > 0
    assert stats.pages_rehomed == stats.pages_lost_from_dead
    # Verbs in flight against the dead server surfaced error CQEs that
    # the kernel hooks retargeted (counted separately from losses).
    nic_stats = result.machine.nic.stats
    assert nic_stats.dead_target_errors == (
        stats.writeback_rebinds + stats.demand_rebinds
    )
    # No entry survives on the dead server.
    assert result.rack.homed_counts()[0] == 0
    _assert_rack_clean(result)


def test_rack_drain_during_fault_storm_migrates_clean():
    """Background drain under transport chaos: both ledgers reconcile."""
    result = _rack_run("canvas", RACK_SCENARIOS["drain-storm"])
    rack_stats = result.rack.stats
    assert rack_stats.servers_drained == 1
    assert rack_stats.pages_drained > 0
    nic_stats = result.machine.nic.stats
    plan = result.machine.nic.fault_plan
    assert plan.rolls > 0  # the storm actually fired
    assert _reconciled(nic_stats)
    _assert_rack_clean(result)


def test_rack_double_failure_survivors_absorb_both_waves():
    result = _rack_run("canvas", RACK_SCENARIOS["double-failure"])
    stats = result.rack.stats
    assert stats.servers_failed == 2
    counts = result.rack.homed_counts()
    assert counts[0] == 0 and counts[1] == 0
    assert sum(counts.values()) > 0  # survivors hold everything
    _assert_rack_clean(result)


def test_rack_chaos_is_deterministic():
    fault_config = RACK_SCENARIOS["double-failure"]
    a = _rack_run("canvas", fault_config)
    b = _rack_run("canvas", fault_config)
    assert result_digest(a) == result_digest(b)
    assert a.rack.stats == b.rack.stats


# -- The n_servers=1 oracle: a one-server rack is digest-invisible -------


def _rack_digest(system, cluster, apps=("memcached",)):
    config = ExperimentConfig(
        system=system, scale=0.03, seed=11, cluster=cluster
    )
    return result_digest(run_experiment(list(apps), config))


@pytest.mark.parametrize("system", _AB_SYSTEMS)
def test_one_server_rack_is_bit_identical_to_no_rack(system):
    """The permanent oracle: ``n_servers=1`` must never perturb a run."""
    assert _rack_digest(system, ClusterConfig()) == _rack_digest(system, None)


def test_one_server_rack_is_bit_identical_on_a_corun():
    """The fig10-style co-run shape holds the oracle too."""
    apps = ("snappy", "memcached")
    assert _rack_digest("canvas", ClusterConfig(), apps) == _rack_digest(
        "canvas", None, apps
    )
