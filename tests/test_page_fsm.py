"""End-to-end checks of the Fig. 7 page/reservation state machine.

Drives a single page through the §5.1 lifecycle on a real Canvas system
and asserts the state labels at each step:

  NEW → (first swap-out, locked alloc + reservation) COLD_RESERVED
      → (swap-in) RESIDENT_RESERVED
      → (hot-scan cancellation) HOT_NO_RESERVATION
      → (eviction) COLD_NO_RESERVATION → (locked alloc again) ...
"""

import pytest

from repro.core import CanvasSwapSystem
from repro.harness.machine import Machine
from repro.kernel import AppContext, CgroupConfig
from repro.mem import PageState


@pytest.fixture()
def setup():
    machine = Machine(seed=21)
    system = CanvasSwapSystem(machine.engine, machine.nic, telemetry=machine.telemetry)
    app = AppContext(
        machine.engine,
        CgroupConfig(
            name="a",
            n_cores=2,
            local_memory_pages=256,
            swap_partition_pages=1024,
            swap_cache_pages=96,
        ),
    )
    app.space.map_region(128, name="heap")
    system.register_app(app)
    system.prepopulate(app, resident_fraction=1.0)  # everything local
    return machine, system, app


def drive(machine, generator):
    proc = machine.engine.spawn(generator)
    machine.engine.run_until_fired(proc, limit=10_000_000)


def test_full_lifecycle(setup):
    machine, system, app = setup
    manager = system._state["a"].adaptive
    page = next(iter(app.space.pages.values()))
    page.dirty = True
    assert page.state is PageState.NEW

    # First eviction: lock-protected allocation grants a reservation.
    app.lru.remove(page)
    app.lru.insert(page)  # move to a known list position

    def evict():
        # Use the system's real eviction on this specific victim.
        app.lru.discard(page)
        original = app.lru.select_victim
        app.lru.select_victim = lambda: page  # pin the victim
        try:
            yield from system._evict_one(app, 0, wait_writeback=True)
        finally:
            app.lru.select_victim = original

    drive(machine, evict())
    assert page.state is PageState.COLD_RESERVED
    assert page.reserved_entry is not None
    assert manager.stats.locked_allocations == 1
    first_entry = page.reserved_entry

    # Swap-in: reservation kept, entry data still valid.
    def fault():
        yield from system.handle_fault(app, 0, page.vpn, False)

    drive(machine, fault())
    assert page.state is PageState.RESIDENT_RESERVED
    assert page.reserved_entry is first_entry
    assert page.swap_entry is first_entry  # clean copy kept remotely

    # Re-eviction while clean: a free clean drop, same remote cell.
    def evict_again():
        app.lru.discard(page)
        original = app.lru.select_victim
        app.lru.select_victim = lambda: page
        try:
            yield from system._evict_one(app, 0, wait_writeback=True)
        finally:
            app.lru.select_victim = original

    drive(machine, evict_again())
    assert page.state is PageState.COLD_RESERVED
    assert app.stats.clean_drops == 1
    assert manager.stats.locked_allocations == 1  # no new allocation

    # Swap back in and dirty it; the next writeback reuses the
    # reservation lock-free.
    drive(machine, fault())
    page.dirty = True
    drive(machine, evict_again())
    assert manager.stats.reserved_swapouts == 1
    assert manager.stats.locked_allocations == 1
    assert page.swap_entry is first_entry

    # Hot-scan cancellation: bring it in, make it hot, scan twice.
    drive(machine, fault())
    for _ in range(manager.hot_threshold):
        app.lru.note_access(page)
        page.hot_score += 0  # access keeps it at the active head
        manager._scan_once()
    assert page.state is PageState.HOT_NO_RESERVATION
    assert page.reserved_entry is None
    assert not first_entry.allocated  # entry returned to the free list

    # Final eviction goes back through the lock-protected path (the
    # paper's worst case, equal to stock Linux).
    page.dirty = True
    drive(machine, evict_again())
    assert manager.stats.locked_allocations == 2
    assert page.state is PageState.COLD_RESERVED  # fresh grant (space left)


def test_cold_no_reservation_state(setup):
    machine, system, app = setup
    manager = system._state["a"].adaptive
    page = next(iter(app.space.pages.values()))
    page.dirty = True
    # Drain grant headroom so the new allocation is NOT reserved.
    part = system.partition_of("a")
    while part.free_count > manager.reserve_guard:
        part.pop_free()

    def evict():
        app.lru.discard(page)
        original = app.lru.select_victim
        app.lru.select_victim = lambda: page
        try:
            yield from system._evict_one(app, 0, wait_writeback=True)
        finally:
            app.lru.select_victim = original

    drive(machine, evict())
    assert page.state is PageState.COLD_NO_RESERVATION
    assert page.reserved_entry is None
