"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "memcached" in out
    assert "spark_lr" in out
    assert "canvas" in out


def test_run_command(capsys):
    assert main(["run", "--apps", "snappy", "--scale", "0.1"]) == 0
    out = capsys.readouterr().out
    assert "snappy" in out
    assert "faults" in out


def test_run_multiple_apps(capsys):
    assert main(["run", "--apps", "snappy", "memcached", "--scale", "0.1"]) == 0
    out = capsys.readouterr().out
    assert "snappy" in out and "memcached" in out


def test_compare_command(capsys):
    code = main(
        [
            "compare",
            "--apps",
            "snappy",
            "--scale",
            "0.1",
            "--systems",
            "linux",
            "canvas",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "linux" in out and "canvas" in out


def test_unknown_app_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "--apps", "doom"])


def test_unknown_system_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "--apps", "snappy", "--system", "bsd"])


def test_missing_command_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_run_with_csv(tmp_path, capsys):
    csv_path = tmp_path / "out.csv"
    assert main(["run", "--apps", "snappy", "--scale", "0.1", "--csv", str(csv_path)]) == 0
    assert csv_path.exists()
    header = csv_path.read_text().splitlines()[0]
    assert "completion_time_ms" in header


def test_compare_with_csv(tmp_path, capsys):
    csv_path = tmp_path / "cmp.csv"
    code = main(
        ["compare", "--apps", "snappy", "--scale", "0.1",
         "--systems", "linux", "canvas", "--csv", str(csv_path)]
    )
    assert code == 0
    lines = csv_path.read_text().splitlines()
    assert lines[0].startswith("system,")
    assert len(lines) == 3  # header + one row per system


def test_trace_command(tmp_path, capsys):
    import json

    out_path = tmp_path / "trace.json"
    code = main(
        [
            "trace",
            "--apps",
            "snappy",
            "--scale",
            "0.08",
            "--system",
            "canvas",
            "--out",
            str(out_path),
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "invariant checker: ok" in out
    assert "snappy" in out
    doc = json.loads(out_path.read_text())
    assert doc["traceEvents"]


def test_trace_command_with_scenario(tmp_path, capsys):
    out_path = tmp_path / "trace.json"
    code = main(
        [
            "trace",
            "--apps",
            "snappy",
            "--scale",
            "0.08",
            "--scenario",
            "degraded",
            "--out",
            str(out_path),
        ]
    )
    assert code == 0
    assert "invariant checker: ok" in capsys.readouterr().out
    assert out_path.exists()
