"""Unit tests for deterministic RNG streams."""

from repro.sim import RngRegistry, derive_seed


def test_same_name_same_stream_object():
    reg = RngRegistry(7)
    assert reg.stream("a") is reg.stream("a")


def test_streams_are_deterministic_across_registries():
    a = RngRegistry(7).stream("workload").integers(0, 1 << 30, size=10)
    b = RngRegistry(7).stream("workload").integers(0, 1 << 30, size=10)
    assert list(a) == list(b)


def test_different_names_differ():
    reg = RngRegistry(7)
    a = reg.stream("x").integers(0, 1 << 30, size=10)
    b = reg.stream("y").integers(0, 1 << 30, size=10)
    assert list(a) != list(b)


def test_different_root_seeds_differ():
    a = RngRegistry(1).stream("x").integers(0, 1 << 30, size=10)
    b = RngRegistry(2).stream("x").integers(0, 1 << 30, size=10)
    assert list(a) != list(b)


def test_child_registry_is_namespaced():
    reg = RngRegistry(7)
    child = reg.child("app0")
    a = child.stream("x").integers(0, 1 << 30, size=5)
    b = reg.stream("x").integers(0, 1 << 30, size=5)
    assert list(a) != list(b)


def test_child_registry_deterministic():
    a = RngRegistry(7).child("app0").stream("x").integers(0, 100, size=5)
    b = RngRegistry(7).child("app0").stream("x").integers(0, 100, size=5)
    assert list(a) == list(b)


def test_derive_seed_stable():
    assert derive_seed(42, "foo") == derive_seed(42, "foo")
    assert derive_seed(42, "foo") != derive_seed(42, "bar")


def test_contains():
    reg = RngRegistry(0)
    assert "a" not in reg
    reg.stream("a")
    assert "a" in reg
