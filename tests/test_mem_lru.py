"""Unit tests for LRU lists and the active/inactive aging structure."""

import pytest

from repro.mem import ActiveInactiveLRU, LRUList, Page


def make_pages(n):
    return [Page(vpn) for vpn in range(n)]


def test_lru_add_and_pop_order():
    lru = LRUList()
    pages = make_pages(3)
    for page in pages:
        lru.add_to_head(page)
    assert lru.pop_tail() is pages[0]
    assert lru.pop_tail() is pages[1]
    assert lru.pop_tail() is pages[2]
    assert lru.pop_tail() is None


def test_lru_move_to_head_changes_victim():
    lru = LRUList()
    pages = make_pages(3)
    for page in pages:
        lru.add_to_head(page)
    lru.move_to_head(pages[0])
    assert lru.pop_tail() is pages[1]


def test_lru_duplicate_add_rejected():
    lru = LRUList()
    page = Page(0)
    lru.add_to_head(page)
    with pytest.raises(ValueError):
        lru.add_to_head(page)


def test_lru_head_pages_mru_first():
    lru = LRUList()
    pages = make_pages(5)
    for page in pages:
        lru.add_to_head(page)
    head = lru.head_pages(3)
    assert head == [pages[4], pages[3], pages[2]]


def test_lru_head_pages_larger_than_list():
    lru = LRUList()
    pages = make_pages(2)
    for page in pages:
        lru.add_to_head(page)
    assert len(lru.head_pages(10)) == 2


def test_lru_discard():
    lru = LRUList()
    page = Page(0)
    assert not lru.discard(page)
    lru.add_to_head(page)
    assert lru.discard(page)
    assert len(lru) == 0


def test_active_inactive_insert_goes_inactive():
    lru = ActiveInactiveLRU()
    page = Page(0)
    lru.insert(page)
    assert page in lru.inactive
    assert page not in lru.active


def test_access_promotes_to_active():
    lru = ActiveInactiveLRU()
    page = Page(0)
    lru.insert(page)
    lru.note_access(page)
    assert page in lru.active


def test_access_unknown_page_raises():
    lru = ActiveInactiveLRU()
    with pytest.raises(ValueError):
        lru.note_access(Page(0))


def test_select_victim_prefers_inactive_tail():
    lru = ActiveInactiveLRU()
    pages = make_pages(3)
    for page in pages:
        lru.insert(page)
    victim = lru.select_victim()
    assert victim is pages[0]


def test_select_victim_gives_second_chance():
    lru = ActiveInactiveLRU()
    pages = make_pages(2)
    for page in pages:
        lru.insert(page)
    pages[0].referenced = True
    victim = lru.select_victim()
    assert victim is pages[1]
    assert not pages[0].referenced  # second chance consumed


def test_select_victim_falls_back_to_active():
    lru = ActiveInactiveLRU()
    pages = make_pages(4)
    for page in pages:
        lru.insert(page)
        lru.note_access(page)  # all active
    assert len(lru.inactive) == 0
    victim = lru.select_victim()
    assert victim is not None


def test_balance_demotes_active_tail():
    lru = ActiveInactiveLRU()
    pages = make_pages(4)
    for page in pages:
        lru.insert(page)
        lru.note_access(page)
    demoted = lru.balance(0.5)
    assert demoted == 2
    assert len(lru.inactive) == 2


def test_remove_from_either_list():
    lru = ActiveInactiveLRU()
    a, b = make_pages(2)
    lru.insert(a)
    lru.insert(b)
    lru.note_access(b)
    lru.remove(a)
    lru.remove(b)
    assert len(lru) == 0


def test_len_and_contains():
    lru = ActiveInactiveLRU()
    page = Page(0)
    assert page not in lru
    lru.insert(page)
    assert page in lru
    assert len(lru) == 1


def test_select_victim_rotates_all_referenced_tail_pages():
    """An all-referenced inactive list is aged one full rotation: every
    page loses its referenced bit, then the original tail is evicted."""
    lru = ActiveInactiveLRU()
    pages = make_pages(3)
    for page in pages:
        lru.insert(page)
        page.referenced = True
    victim = lru.select_victim()
    assert victim is pages[0]
    assert all(not page.referenced for page in pages)
    # The survivors kept their relative order through the rotation.
    assert list(lru.inactive) == [pages[1], pages[2]]


def test_select_victim_rotation_preserves_scan_order():
    lru = ActiveInactiveLRU()
    pages = make_pages(4)
    for page in pages:
        lru.insert(page)
    pages[0].referenced = True
    pages[1].referenced = True
    victim = lru.select_victim()
    assert victim is pages[2]
    # Both rotated pages moved to the head, oldest rotated first.
    assert list(lru.inactive) == [pages[3], pages[0], pages[1]]


def test_select_victim_empty_lru_returns_none():
    lru = ActiveInactiveLRU()
    assert lru.select_victim() is None
    assert len(lru) == 0


def test_balance_on_empty_lists_is_noop():
    lru = ActiveInactiveLRU()
    assert lru.balance() == 0
    assert lru.balance(1.0) == 0
    assert len(lru.active) == 0 and len(lru.inactive) == 0


def test_balance_with_all_pages_inactive_demotes_nothing():
    lru = ActiveInactiveLRU()
    pages = make_pages(3)
    for page in pages:
        lru.insert(page)
    assert lru.balance(0.5) == 0
    assert list(lru.inactive) == pages


def test_balance_exhausts_active_list_without_spinning():
    """A target the active list cannot satisfy stops at an empty list."""
    lru = ActiveInactiveLRU()
    pages = make_pages(2)
    for page in pages:
        lru.insert(page)
        lru.note_access(page)  # all active
    demoted = lru.balance(1.0)
    assert demoted == 2
    assert len(lru.active) == 0
    assert len(lru.inactive) == 2


def test_balance_clears_referenced_bit_on_demotion():
    lru = ActiveInactiveLRU()
    pages = make_pages(2)
    for page in pages:
        lru.insert(page)
        lru.note_access(page)
        page.referenced = True
    lru.balance(0.5)
    demoted = lru.inactive.peek_tail()
    assert demoted is not None and not demoted.referenced


# -- generation-stamp LRU: A/B equivalence with the linked structure ------
#
# GenerationLRU stores ordering as stamps over the address space's flat
# arrays; ActiveInactiveLRU links pages.  Every ordering event writes a
# fresh stamp, so ascending stamp order must equal the linked list's
# tail-to-head order — these tests drive both structures with identical
# seeded op sequences and demand identical observable behaviour.

import random

import numpy as np

from repro.mem import AddressSpace, GenerationLRU


class _Mirror:
    """The same logical page set on both structures."""

    def __init__(self, n_pages, epoch_limit=1 << 62):
        self.space = AddressSpace("flat")
        vma = self.space.map_region(n_pages)
        self.flat = GenerationLRU(self.space, name="flat", epoch_limit=epoch_limit)
        self.linked = ActiveInactiveLRU(name="linked")
        self.vpns = list(vma.vpns())
        # Free-standing twin pages for the linked side so referenced-bit
        # traffic from one structure cannot leak into the other.
        self.linked_pages = {vpn: Page(vpn) for vpn in self.vpns}
        self.flat_pages = {vpn: self.space.pages[vpn] for vpn in self.vpns}
        self.on_lru = []  # vpns currently inserted

    def insert(self, vpn):
        self.flat.insert(self.flat_pages[vpn])
        self.linked.insert(self.linked_pages[vpn])
        self.on_lru.append(vpn)

    def note_access(self, vpn):
        self.flat.note_access(self.flat_pages[vpn])
        self.linked.note_access(self.linked_pages[vpn])

    def set_referenced(self, vpn):
        self.flat_pages[vpn].referenced = True
        self.linked_pages[vpn].referenced = True

    def remove(self, vpn):
        self.flat.remove(self.flat_pages[vpn])
        self.linked.remove(self.linked_pages[vpn])
        self.on_lru.remove(vpn)

    def balance(self, frac):
        a = self.flat.balance(frac)
        b = self.linked.balance(frac)
        assert a == b
        return a

    def select_victim(self):
        a = self.flat.select_victim()
        b = self.linked.select_victim()
        if b is None:
            assert a is None
            return None
        assert a is not None and a.vpn == b.vpn
        self.on_lru.remove(a.vpn)
        return a

    def check_state(self):
        assert len(self.flat) == len(self.linked)
        assert len(self.flat.active) == len(self.linked.active)
        assert len(self.flat.inactive) == len(self.linked.inactive)
        for view_a, view_b in (
            (self.flat.active, self.linked.active),
            (self.flat.inactive, self.linked.inactive),
        ):
            assert [p.vpn for p in view_a] == [p.vpn for p in view_b]
        for vpn in self.vpns:
            assert (
                self.flat_pages[vpn].referenced
                == self.linked_pages[vpn].referenced
            )


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
@pytest.mark.parametrize("epoch_limit", [1 << 62, 97])
def test_generation_lru_matches_linked_on_random_ops(seed, epoch_limit):
    """Property test: identical victims, orders, and demote counts on a
    seeded random op mix — with and without epoch renormalization."""
    rng = random.Random(seed)
    mirror = _Mirror(48, epoch_limit=epoch_limit)
    for vpn in mirror.vpns[:24]:
        mirror.insert(vpn)
    for _ in range(600):
        roll = rng.random()
        if roll < 0.35 and mirror.on_lru:
            mirror.note_access(rng.choice(mirror.on_lru))
        elif roll < 0.45 and mirror.on_lru:
            mirror.set_referenced(rng.choice(mirror.on_lru))
        elif roll < 0.60:
            off = [v for v in mirror.vpns if v not in mirror.on_lru]
            if off:
                mirror.insert(rng.choice(off))
        elif roll < 0.70 and mirror.on_lru:
            mirror.remove(rng.choice(mirror.on_lru))
        elif roll < 0.80:
            mirror.balance(rng.choice([0.25, 0.5, 0.75]))
        else:
            mirror.select_victim()
    mirror.check_state()
    # Drain: eviction order must agree to the last page.
    while mirror.select_victim() is not None:
        pass
    assert len(mirror.flat) == 0
    if epoch_limit == 97:
        assert mirror.flat.epochs > 0


def test_generation_lru_epoch_rollover_preserves_order():
    """Renormalization compacts stamps without reordering anything."""
    mirror = _Mirror(16, epoch_limit=8)
    for vpn in mirror.vpns:
        mirror.insert(vpn)  # crosses the epoch edge twice
    assert mirror.flat.epochs >= 1
    mirror.check_state()
    order = [p.vpn for p in mirror.flat.inactive]
    assert order == mirror.vpns
    # Stamps are compacted to ranks after a rollover triggered mid-run.
    mirror.note_access(mirror.vpns[3])
    mirror.check_state()


def test_note_access_run_equals_sequential_note_access():
    """The vectorized bulk promote must leave the exact state a scalar
    per-access loop would, duplicates included."""
    space_a = AddressSpace("a")
    space_b = AddressSpace("b")
    vma_a = space_a.map_region(32)
    space_b.map_region(32)
    lru_a = GenerationLRU(space_a, name="a")
    lru_b = GenerationLRU(space_b, name="b")
    vpns = list(vma_a.vpns())
    for vpn in vpns:
        lru_a.insert(space_a.pages[vpn])
        lru_b.insert(space_b.pages[vpn])
    run = [vpns[5], vpns[2], vpns[5], vpns[9], vpns[2], vpns[7]]
    lru_a.note_access_run(np.asarray(run, dtype=np.int64))
    for vpn in run:
        lru_b.note_access(space_b.pages[vpn])
    assert np.array_equal(space_a.lru_where, space_b.lru_where)
    assert np.array_equal(space_a.lru_stamp, space_b.lru_stamp)
    assert lru_a._gen == lru_b._gen


def test_generation_lru_insert_and_access_validation():
    space = AddressSpace("v")
    vma = space.map_region(2)
    lru = GenerationLRU(space)
    page = space.pages[vma.start_vpn]
    other = space.pages[vma.start_vpn + 1]
    lru.insert(page)
    with pytest.raises(ValueError):
        lru.insert(page)
    with pytest.raises(ValueError):
        lru.note_access(other)
    with pytest.raises(KeyError):
        lru.remove(other)
    assert not lru.discard(other)
    assert lru.discard(page)
    assert len(lru) == 0


def test_generation_lru_victim_queue_revalidates_stale_entries():
    """Promotions after a queue refill must not resurrect stale victims."""
    space = AddressSpace("q")
    vma = space.map_region(8)
    lru = GenerationLRU(space)
    pages = [space.pages[v] for v in vma.vpns()]
    for page in pages:
        lru.insert(page)
    first = lru.select_victim()  # fills the candidate queue
    assert first is pages[0]
    lru.note_access(pages[1])  # promote the queue front out from under it
    victim = lru.select_victim()
    assert victim is pages[2]


# -- grouped victim selection (PR 8) --------------------------------------


def _twin_generation_lrus(n_pages, seed):
    """Two identically-populated GenerationLRUs with random bit state."""
    rng = random.Random(seed)
    twins = []
    for tag in ("a", "b"):
        space = AddressSpace(tag)
        vma = space.map_region(n_pages)
        lru = GenerationLRU(space, name=tag)
        vpns = list(vma.vpns())
        state = random.Random(seed)  # same rolls on both twins
        for vpn in vpns:
            lru.insert(space.pages[vpn])
        for vpn in vpns:
            if state.random() < 0.3:
                lru.note_access(space.pages[vpn])
            if state.random() < 0.35:
                space.pages[vpn].referenced = True
            if state.random() < 0.25:
                space.pages[vpn].dirty = True
        lru.balance(0.5)
        twins.append((space, lru))
    del rng
    return twins


def _serial_select(lru, n, stop=None):
    victims = []
    while len(victims) < n:
        page = lru.select_victim()
        if page is None:
            break
        victims.append(page)
        if stop is not None and stop(page):
            break
    return victims


@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
@pytest.mark.parametrize("n", [1, 3, 7, 48])
def test_select_victims_matches_serial_loop(seed, n):
    """One batched pass returns the victims a select_victim loop would,
    and leaves identical flat-array state behind."""
    (space_a, lru_a), (space_b, lru_b) = _twin_generation_lrus(32, seed)
    batched = lru_a.select_victims(n)
    serial = _serial_select(lru_b, n)
    assert [p.vpn for p in batched] == [p.vpn for p in serial]
    assert np.array_equal(space_a.lru_where, space_b.lru_where)
    assert np.array_equal(space_a.lru_stamp, space_b.lru_stamp)
    assert np.array_equal(space_a.referenced_bits, space_b.referenced_bits)
    assert lru_a._gen == lru_b._gen
    assert len(lru_a) == len(lru_b)


@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
def test_select_victims_stop_predicate_cuts_batch_like_serial(seed):
    """The reclaim batch-cut: selection stops after the first victim the
    predicate flags (dirty here), exactly like the serial loop."""
    stop = lambda page: page.dirty  # noqa: E731
    (space_a, lru_a), (space_b, lru_b) = _twin_generation_lrus(32, seed)
    batched = lru_a.select_victims(16, stop=stop)
    serial = _serial_select(lru_b, 16, stop=stop)
    assert [p.vpn for p in batched] == [p.vpn for p in serial]
    if batched and any(p.dirty for p in batched):
        assert batched[-1].dirty  # the cut victim ends the batch
        assert not any(p.dirty for p in batched[:-1])
    assert np.array_equal(space_a.lru_where, space_b.lru_where)
    assert np.array_equal(space_a.lru_stamp, space_b.lru_stamp)


def test_select_victims_drains_to_empty_and_stops():
    space = AddressSpace("drain")
    vma = space.map_region(12)
    lru = GenerationLRU(space)
    for vpn in vma.vpns():
        lru.insert(space.pages[vpn])
    victims = lru.select_victims(50)
    assert len(victims) == 12
    assert len(lru) == 0
    assert lru.select_victims(4) == []
    assert lru.select_victims(0) == []


def test_active_inactive_select_victims_matches_serial():
    """The linked-list baseline's select_victims is the serial loop."""
    lru_a, lru_b = ActiveInactiveLRU(), ActiveInactiveLRU()
    pages_a, pages_b = make_pages(10), make_pages(10)
    for a, b in zip(pages_a, pages_b):
        lru_a.insert(a)
        lru_b.insert(b)
    pages_a[4].dirty = pages_b[4].dirty = True
    stop = lambda page: page.dirty  # noqa: E731
    batched = lru_a.select_victims(8, stop=stop)
    serial = _serial_select(lru_b, 8, stop=stop)
    assert [p.vpn for p in batched] == [p.vpn for p in serial]
    assert batched[-1].vpn == 4
