"""Unit tests for LRU lists and the active/inactive aging structure."""

import pytest

from repro.mem import ActiveInactiveLRU, LRUList, Page


def make_pages(n):
    return [Page(vpn) for vpn in range(n)]


def test_lru_add_and_pop_order():
    lru = LRUList()
    pages = make_pages(3)
    for page in pages:
        lru.add_to_head(page)
    assert lru.pop_tail() is pages[0]
    assert lru.pop_tail() is pages[1]
    assert lru.pop_tail() is pages[2]
    assert lru.pop_tail() is None


def test_lru_move_to_head_changes_victim():
    lru = LRUList()
    pages = make_pages(3)
    for page in pages:
        lru.add_to_head(page)
    lru.move_to_head(pages[0])
    assert lru.pop_tail() is pages[1]


def test_lru_duplicate_add_rejected():
    lru = LRUList()
    page = Page(0)
    lru.add_to_head(page)
    with pytest.raises(ValueError):
        lru.add_to_head(page)


def test_lru_head_pages_mru_first():
    lru = LRUList()
    pages = make_pages(5)
    for page in pages:
        lru.add_to_head(page)
    head = lru.head_pages(3)
    assert head == [pages[4], pages[3], pages[2]]


def test_lru_head_pages_larger_than_list():
    lru = LRUList()
    pages = make_pages(2)
    for page in pages:
        lru.add_to_head(page)
    assert len(lru.head_pages(10)) == 2


def test_lru_discard():
    lru = LRUList()
    page = Page(0)
    assert not lru.discard(page)
    lru.add_to_head(page)
    assert lru.discard(page)
    assert len(lru) == 0


def test_active_inactive_insert_goes_inactive():
    lru = ActiveInactiveLRU()
    page = Page(0)
    lru.insert(page)
    assert page in lru.inactive
    assert page not in lru.active


def test_access_promotes_to_active():
    lru = ActiveInactiveLRU()
    page = Page(0)
    lru.insert(page)
    lru.note_access(page)
    assert page in lru.active


def test_access_unknown_page_raises():
    lru = ActiveInactiveLRU()
    with pytest.raises(ValueError):
        lru.note_access(Page(0))


def test_select_victim_prefers_inactive_tail():
    lru = ActiveInactiveLRU()
    pages = make_pages(3)
    for page in pages:
        lru.insert(page)
    victim = lru.select_victim()
    assert victim is pages[0]


def test_select_victim_gives_second_chance():
    lru = ActiveInactiveLRU()
    pages = make_pages(2)
    for page in pages:
        lru.insert(page)
    pages[0].referenced = True
    victim = lru.select_victim()
    assert victim is pages[1]
    assert not pages[0].referenced  # second chance consumed


def test_select_victim_falls_back_to_active():
    lru = ActiveInactiveLRU()
    pages = make_pages(4)
    for page in pages:
        lru.insert(page)
        lru.note_access(page)  # all active
    assert len(lru.inactive) == 0
    victim = lru.select_victim()
    assert victim is not None


def test_balance_demotes_active_tail():
    lru = ActiveInactiveLRU()
    pages = make_pages(4)
    for page in pages:
        lru.insert(page)
        lru.note_access(page)
    demoted = lru.balance(0.5)
    assert demoted == 2
    assert len(lru.inactive) == 2


def test_remove_from_either_list():
    lru = ActiveInactiveLRU()
    a, b = make_pages(2)
    lru.insert(a)
    lru.insert(b)
    lru.note_access(b)
    lru.remove(a)
    lru.remove(b)
    assert len(lru) == 0


def test_len_and_contains():
    lru = ActiveInactiveLRU()
    page = Page(0)
    assert page not in lru
    lru.insert(page)
    assert page in lru
    assert len(lru) == 1


def test_select_victim_rotates_all_referenced_tail_pages():
    """An all-referenced inactive list is aged one full rotation: every
    page loses its referenced bit, then the original tail is evicted."""
    lru = ActiveInactiveLRU()
    pages = make_pages(3)
    for page in pages:
        lru.insert(page)
        page.referenced = True
    victim = lru.select_victim()
    assert victim is pages[0]
    assert all(not page.referenced for page in pages)
    # The survivors kept their relative order through the rotation.
    assert list(lru.inactive) == [pages[1], pages[2]]


def test_select_victim_rotation_preserves_scan_order():
    lru = ActiveInactiveLRU()
    pages = make_pages(4)
    for page in pages:
        lru.insert(page)
    pages[0].referenced = True
    pages[1].referenced = True
    victim = lru.select_victim()
    assert victim is pages[2]
    # Both rotated pages moved to the head, oldest rotated first.
    assert list(lru.inactive) == [pages[3], pages[0], pages[1]]


def test_select_victim_empty_lru_returns_none():
    lru = ActiveInactiveLRU()
    assert lru.select_victim() is None
    assert len(lru) == 0


def test_balance_on_empty_lists_is_noop():
    lru = ActiveInactiveLRU()
    assert lru.balance() == 0
    assert lru.balance(1.0) == 0
    assert len(lru.active) == 0 and len(lru.inactive) == 0


def test_balance_with_all_pages_inactive_demotes_nothing():
    lru = ActiveInactiveLRU()
    pages = make_pages(3)
    for page in pages:
        lru.insert(page)
    assert lru.balance(0.5) == 0
    assert list(lru.inactive) == pages


def test_balance_exhausts_active_list_without_spinning():
    """A target the active list cannot satisfy stops at an empty list."""
    lru = ActiveInactiveLRU()
    pages = make_pages(2)
    for page in pages:
        lru.insert(page)
        lru.note_access(page)  # all active
    demoted = lru.balance(1.0)
    assert demoted == 2
    assert len(lru.active) == 0
    assert len(lru.inactive) == 2


def test_balance_clears_referenced_bit_on_demotion():
    lru = ActiveInactiveLRU()
    pages = make_pages(2)
    for page in pages:
        lru.insert(page)
        lru.note_access(page)
        page.referenced = True
    lru.balance(0.5)
    demoted = lru.inactive.peek_tail()
    assert demoted is not None and not demoted.referenced
