"""Unit tests for the telemetry layer."""

import pytest

from repro.kernel.telemetry import Telemetry
from repro.rdma.message import RdmaOp, RdmaRequest, RequestKind
from repro.swap import SwapPartition


def completed_request(op, kind, app, enqueued, completed):
    part = completed_request._part
    req = RdmaRequest(op, kind, app, part.pop_free())
    req.enqueued_at_us = enqueued
    req.completed_at_us = completed
    return req


completed_request._part = SwapPartition("t", 4096)


def test_read_completion_feeds_bandwidth_and_latency():
    telemetry = Telemetry()
    req = completed_request(RdmaOp.READ, RequestKind.DEMAND, "a", 0.0, 12.0)
    telemetry.on_rdma_completion(req)
    assert telemetry.read_bandwidth.totals["a"] == 4096
    hist = telemetry.latency_hist("a", RequestKind.DEMAND)
    assert hist.count == 1
    assert hist.mean == pytest.approx(12.0)


def test_write_completion_goes_to_write_meter():
    telemetry = Telemetry()
    req = completed_request(RdmaOp.WRITE, RequestKind.SWAPOUT, "a", 0.0, 9.0)
    telemetry.on_rdma_completion(req)
    assert telemetry.write_bandwidth.totals["a"] == 4096
    assert "a" not in telemetry.read_bandwidth.totals


def test_latency_split_by_kind():
    telemetry = Telemetry()
    telemetry.on_rdma_completion(
        completed_request(RdmaOp.READ, RequestKind.DEMAND, "a", 0.0, 5.0)
    )
    telemetry.on_rdma_completion(
        completed_request(RdmaOp.READ, RequestKind.PREFETCH, "a", 0.0, 50.0)
    )
    assert telemetry.latency_hist("a", RequestKind.DEMAND).count == 1
    assert telemetry.latency_hist("a", RequestKind.PREFETCH).count == 1


def test_merged_latency_combines_apps():
    telemetry = Telemetry()
    for app, latency in (("a", 5.0), ("b", 15.0)):
        telemetry.on_rdma_completion(
            completed_request(RdmaOp.READ, RequestKind.DEMAND, app, 0.0, latency)
        )
    merged = telemetry.merged_latency(RequestKind.DEMAND)
    assert merged.count == 2
    assert merged.mean == pytest.approx(10.0)


def test_merged_latency_excludes_other_kinds():
    telemetry = Telemetry()
    telemetry.on_rdma_completion(
        completed_request(RdmaOp.READ, RequestKind.PREFETCH, "a", 0.0, 99.0)
    )
    assert telemetry.merged_latency(RequestKind.DEMAND).count == 0


def test_meters_are_per_app_and_cached():
    telemetry = Telemetry()
    meter = telemetry.swapout_rate("a")
    assert telemetry.swapout_rate("a") is meter
    assert telemetry.swapout_rate("b") is not meter
    assert telemetry.alloc_rate("a") is telemetry.alloc_rate("a")
    assert telemetry.timeliness_hist("a") is telemetry.timeliness_hist("a")
