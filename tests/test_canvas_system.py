"""Integration tests for the Canvas swap system."""

import numpy as np

from repro.core import CanvasConfig
from repro.harness.driver import spawn_app, run_to_completion
from repro.harness.machine import Machine
from repro.mem import PageState
from tests.conftest import build_canvas, seq_stream


def test_per_app_partitions_and_caches_exist():
    machine = Machine(seed=0)
    system, apps = build_canvas(
        machine, apps_spec=[("a", 512, 128, 2), ("b", 512, 128, 2)]
    )
    assert system.partition_of("a") is not system.partition_of("b")
    assert system.cache_of("a") is not system.cache_of("b")
    assert system.partition_of("a").name == "a.swap"


def test_prepopulated_cold_pages_carry_reservations():
    machine = Machine(seed=0)
    system, apps = build_canvas(machine)
    app = apps["a"]
    cold = [p for p in app.space.pages.values() if not p.resident]
    assert cold
    assert all(p.reserved_entry is not None for p in cold)
    assert all(p.state is PageState.COLD_RESERVED for p in cold)


def test_isolation_only_variant_has_no_reservations():
    machine = Machine(seed=0)
    config = CanvasConfig(
        adaptive_allocation=False, two_tier_prefetch=False, horizontal_scheduling=False
    )
    system, apps = build_canvas(machine, canvas_config=config)
    app = apps["a"]
    assert system.adaptive_stats("a") is None
    assert system.two_tier_stats("a") is None
    cold = [p for p in app.space.pages.values() if not p.resident]
    assert all(p.reserved_entry is None for p in cold)


def test_workload_completes_on_canvas():
    machine = Machine(seed=1)
    system, apps = build_canvas(machine)
    app = apps["a"]
    proc = spawn_app(system, app, [seq_stream(app, 3000, write=True)])
    run_to_completion(machine.engine, [proc])
    assert app.finished_at_us is not None
    assert app.stats.faults > 0
    # Adaptive allocation turned most swap-outs lock-free.
    stats = system.adaptive_stats("a")
    assert stats.reserved_swapouts > stats.locked_allocations


def test_frame_accounting_holds_on_canvas():
    machine = Machine(seed=2)
    system, apps = build_canvas(machine)
    app = apps["a"]
    proc = spawn_app(system, app, [seq_stream(app, 2500, write=True)])
    run_to_completion(machine.engine, [proc])
    assert app.pool.stats.peak_used <= app.pool.capacity_pages


def test_two_apps_do_not_share_entries():
    machine = Machine(seed=3)
    system, apps = build_canvas(
        machine, apps_spec=[("a", 512, 128, 2), ("b", 512, 128, 2)]
    )
    procs = [
        spawn_app(system, apps["a"], [seq_stream(apps["a"], 1500, write=True)]),
        spawn_app(system, apps["b"], [seq_stream(apps["b"], 1500, write=True)]),
    ]
    run_to_completion(machine.engine, procs)
    for name, app in apps.items():
        for page in app.space.pages.values():
            if page.swap_entry is not None:
                assert page.swap_entry.partition_name == f"{name}.swap"


def test_shared_pages_use_global_partition():
    machine = Machine(seed=4)
    system, apps = build_canvas(
        machine, apps_spec=[("a", 512, 256, 2), ("b", 512, 256, 2)]
    )
    a, b = apps["a"], apps["b"]
    shared_vma = a.space.map_region(64, name="shm")
    b.space.map_shared_from(a.space, shared_vma)
    page = a.space.page(shared_vma.start_vpn)
    assert page.shared
    assert system._cache_for(a, page) is system.global_cache
    assert system._allocator_for(a, page) is system.global_allocator


def test_scheduler_registered_per_app():
    machine = Machine(seed=5)
    system, apps = build_canvas(
        machine, apps_spec=[("a", 512, 128, 2), ("b", 512, 128, 2)]
    )
    assert set(system.scheduler._apps) == {"a", "b"}


def test_attach_runtime_handler_after_registration():
    machine = Machine(seed=6)
    system, apps = build_canvas(machine)
    app = apps["a"]

    class Runtime:
        def handle_forwarded_fault(self, tid, vpn):
            return []

    app.runtime = Runtime()
    system.attach_runtime_handler(app)
    assert system._state["a"].uffd.has_handler


def test_prefetch_drop_unwinds_state():
    machine = Machine(seed=7)
    system, apps = build_canvas(machine)
    app = apps["a"]
    page = next(p for p in app.space.pages.values() if not p.resident)
    entry = page.swap_entry
    app.pool.try_charge(1)  # mimic the prefetch charge
    from repro.rdma.message import RdmaOp, RdmaRequest, RequestKind

    cache = system.cache_of("a")
    request = RdmaRequest(RdmaOp.READ, RequestKind.PREFETCH, "a", entry, page)
    system._inflight_req[page] = request
    system._inflight[page] = machine.engine.event()
    page.locked = True
    cache.insert(entry, page, prefetched=True)
    used_before = app.pool.used
    system._on_prefetch_dropped(request)
    assert not page.locked
    assert not page.in_swap_cache
    assert app.pool.used == used_before - 1
    assert page not in system._inflight_req


def test_canvas_full_run_with_drops_and_two_tier():
    """End-to-end: pointer-chasing app exercises two-tier forwarding."""
    machine = Machine(seed=8)
    system, apps = build_canvas(machine)
    app = apps["a"]

    from repro.runtime import JvmRuntime

    runtime = JvmRuntime("a")
    runtime.register_threads([0, 1], [])
    vpns = sorted(app.space.pages)
    rng = np.random.default_rng(0)
    chain = list(rng.permutation(vpns))
    for src, dst in zip(chain, chain[1:]):
        runtime.record_reference(src, dst)
    app.runtime = runtime
    system.attach_runtime_handler(app)

    def chase(start):
        for i in range(1500):
            yield (chain[(start + i) % len(chain)], False, 0.1)

    proc = spawn_app(system, app, [chase(0), chase(len(chain) // 2)])
    run_to_completion(machine.engine, [proc])
    assert app.finished_at_us is not None
    # Pointer chasing defeats kernel readahead → faults get forwarded up.
    assert app.stats.uffd_forwards > 0
    assert runtime.stats.faults_handled > 0
